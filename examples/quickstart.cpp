// Quickstart: the typed transactional API in one file.
//
//   $ ./quickstart
//
// Demonstrates the library's core surface:
//   1. TVar<T>  — typed transactional cells (any trivially-copyable T, even
//                 multi-word structs), read/written through tx.Load/tx.Store.
//   2. Retry    — condition synchronization with no locks, no condition
//                 variables, no explicit retry loop (the transaction's
//                 unrolling is the back-edge).
//   3. OrElse   — composable choice: try one alternative, fall back to the
//                 other, atomically.
//   4. RetryFor — bounded waiting: give up after a timeout, atomically.
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"
#include "src/sync/bounded_buffer.h"

using namespace std::chrono_literals;

int main() {
  using namespace tcs;

  // One TM domain; pick any backend (eager STM, lazy STM, or simulated HTM).
  Runtime rt({.backend = Backend::kEagerStm});

  // --- 1. TVar<T>: typed cells, including multi-word structs ---------------
  struct Account {
    std::uint64_t balance;
    std::uint64_t txn_count;
  };
  TVar<Account> checking(Account{100, 0});
  TVar<Account> savings(Account{900, 0});

  // Atomic transfer across two multi-word cells.
  Atomically(rt.sys(), [&](Tx& tx) {
    Account from = tx.Load(savings);
    Account to = tx.Load(checking);
    from.balance -= 50;
    from.txn_count++;
    to.balance += 50;
    to.txn_count++;
    tx.Store(savings, from);
    tx.Store(checking, to);
  });
  std::printf("after transfer: checking=%llu savings=%llu\n",
              static_cast<unsigned long long>(checking.UnsafeRead().balance),
              static_cast<unsigned long long>(savings.UnsafeRead().balance));

  // --- 2. Retry: block until a precondition holds --------------------------
  BoundedBuffer buffer(&rt, Mechanism::kRetry, 4);
  constexpr std::uint64_t kItems = 10;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      buffer.Produce(i * i);
    }
  });
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std::uint64_t v = buffer.Consume();
      std::printf("  consumed %llu\n", static_cast<unsigned long long>(v));
    }
  });
  producer.join();
  consumer.join();

  // --- 3. OrElse: composable choice -----------------------------------------
  // Withdraw from checking if it has funds, else from savings — one atomic
  // decision. If a branch Retry()s, its effects roll back and the alternative
  // runs; if both retry, the thread sleeps until either branch could proceed.
  auto withdraw_from = [](TVar<Account>& acct, std::uint64_t amount) {
    return [&acct, amount](Tx& tx) -> const char* {
      Account a = tx.Load(acct);
      if (a.balance < amount) {
        tx.Retry();
      }
      a.balance -= amount;
      a.txn_count++;
      tx.Store(acct, a);
      return "ok";
    };
  };
  Atomically(rt.sys(), [&](Tx& tx) {
    return tx.OrElse(withdraw_from(checking, 200),  // checking has 150 -> retries
                     withdraw_from(savings, 200));  // savings covers it
  });
  std::printf("after OrElse withdraw: checking=%llu savings=%llu\n",
              static_cast<unsigned long long>(checking.UnsafeRead().balance),
              static_cast<unsigned long long>(savings.UnsafeRead().balance));

  // --- 4. RetryFor: bounded waiting ----------------------------------------
  // The buffer is empty and nobody is producing: a bounded consume gives up
  // after the timeout instead of blocking forever.
  std::optional<std::uint64_t> got = buffer.TryConsumeFor(50ms);
  std::printf("bounded consume on empty buffer: %s\n",
              got.has_value() ? "got a value (unexpected!)" : "timed out (expected)");

  // The same primitive, used directly: wait up to 50ms for a flag.
  TVar<std::uint64_t> flag(0);
  bool ready = Atomically(rt.sys(), [&](Tx& tx) -> bool {
    if (tx.Load(flag) == 0) {
      if (tx.RetryFor(50ms) == WaitResult::kTimedOut) {
        return false;
      }
    }
    return true;
  });
  std::printf("bounded flag wait: %s\n", ready ? "ready" : "timed out (expected)");

  TxStats s = rt.AggregateStats();
  std::printf("stats: %llu commits, %llu sleeps, %llu wakeups, %llu timeouts, "
              "%llu orelse fallbacks\n",
              static_cast<unsigned long long>(s.Get(Counter::kCommits)),
              static_cast<unsigned long long>(s.Get(Counter::kSleeps)),
              static_cast<unsigned long long>(s.Get(Counter::kWakeups)),
              static_cast<unsigned long long>(s.Get(Counter::kWaitTimeouts)),
              static_cast<unsigned long long>(s.Get(Counter::kOrElseFallbacks)));
  return 0;
}
