// Quickstart: a producer/consumer bounded buffer coordinated with Retry.
//
//   $ ./quickstart
//
// Demonstrates the library's core loop: transactions via tcs::Atomically, and
// condition synchronization via tx.Retry() — no condition variables, no locks,
// no explicit retry loop (the transaction's unrolling is the back-edge).
#include <cstdio>
#include <thread>

#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/sync/bounded_buffer.h"

int main() {
  using namespace tcs;

  // One TM domain; pick any backend (eager STM, lazy STM, or simulated HTM).
  Runtime rt({.backend = Backend::kEagerStm});

  // A 4-slot buffer whose blocking operations use Retry.
  BoundedBuffer buffer(&rt, Mechanism::kRetry, 4);

  constexpr std::uint64_t kItems = 10;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      buffer.Produce(i * i);
      std::printf("produced %llu\n", static_cast<unsigned long long>(i * i));
    }
  });
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std::uint64_t v = buffer.Consume();
      std::printf("           consumed %llu\n", static_cast<unsigned long long>(v));
    }
  });
  producer.join();
  consumer.join();

  // Raw transactional state + Retry, without the adapter:
  std::uint64_t ready = 0;
  std::uint64_t payload = 0;
  std::thread waiter([&] {
    std::uint64_t got = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
      if (tx.Load(ready) == 0) {
        tx.Retry();  // sleeps until something this transaction read changes
      }
      return tx.Load(payload);
    });
    std::printf("waiter observed payload %llu\n",
                static_cast<unsigned long long>(got));
  });
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(payload, std::uint64_t{1234});
    tx.Store(ready, std::uint64_t{1});
  });
  waiter.join();

  TxStats s = rt.AggregateStats();
  std::printf("stats: %llu commits, %llu sleeps, %llu wakeups\n",
              static_cast<unsigned long long>(s.Get(Counter::kCommits)),
              static_cast<unsigned long long>(s.Get(Counter::kSleeps)),
              static_cast<unsigned long long>(s.Get(Counter::kWakeups)));
  return 0;
}
