// A dedup-style compression pipeline on the public API, runnable with any
// mechanism and backend:
//
//   $ ./pipeline_compress                 # Retry on eager STM
//   $ ./pipeline_compress await htm       # Await on simulated HTM
//
// Stage 1 chunks the input, stage 2 compresses chunks in parallel, stage 3
// writes them in order. Blocking stage hand-off and the in-order output gate are
// both condition synchronization.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/pipeline_channel.h"
#include "src/sync/ticket_gate.h"

using namespace tcs;

namespace {

Mechanism ParseMech(const char* s) {
  if (std::strcmp(s, "pthreads") == 0) {
    return Mechanism::kPthreads;
  }
  if (std::strcmp(s, "condvar") == 0) {
    return Mechanism::kTmCondVar;
  }
  if (std::strcmp(s, "waitpred") == 0) {
    return Mechanism::kWaitPred;
  }
  if (std::strcmp(s, "await") == 0) {
    return Mechanism::kAwait;
  }
  if (std::strcmp(s, "restart") == 0) {
    return Mechanism::kRestart;
  }
  return Mechanism::kRetry;
}

Backend ParseBackend(const char* s) {
  if (std::strcmp(s, "lazy") == 0) {
    return Backend::kLazyStm;
  }
  if (std::strcmp(s, "htm") == 0) {
    return Backend::kSimHtm;
  }
  return Backend::kEagerStm;
}

}  // namespace

int main(int argc, char** argv) {
  Mechanism mech = argc > 1 ? ParseMech(argv[1]) : Mechanism::kRetry;
  Backend backend = argc > 2 ? ParseBackend(argv[2]) : Backend::kEagerStm;

  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(mech)) {
    rt = std::make_unique<Runtime>(TmConfig{.backend = backend, .max_threads = 16});
  }
  std::printf("pipeline with mechanism=%s backend=%s\n", MechanismName(mech),
              MechanismUsesTm(mech) ? BackendName(backend) : "(none)");

  constexpr std::uint64_t kChunks = 64;
  constexpr int kCompressors = 3;
  PipelineChannel to_compress(rt.get(), mech, 8, 1);
  PipelineChannel to_write(rt.get(), mech, 8, kCompressors);
  TicketGate order(rt.get(), mech);
  std::vector<std::uint64_t> compressed(kChunks);

  double t0 = NowSeconds();
  std::vector<std::thread> compressors;
  for (int w = 0; w < kCompressors; ++w) {
    compressors.emplace_back([&] {
      while (auto id = to_compress.Pop()) {
        compressed[*id] = BusyWork(*id, 20000);  // "compress" the chunk
        order.WaitFor(*id);                      // in-order hand-off
        to_write.Push(*id);
        order.Bump();
      }
      to_write.ProducerDone();
    });
  }
  std::uint64_t output_hash = 0;
  std::thread writer([&] {
    while (auto id = to_write.Pop()) {
      output_hash = BusyWork(output_hash ^ compressed[*id], 64);
    }
  });
  for (std::uint64_t id = 0; id < kChunks; ++id) {
    to_compress.Push(id);
  }
  to_compress.ProducerDone();
  for (auto& c : compressors) {
    c.join();
  }
  writer.join();
  double t1 = NowSeconds();

  std::printf("compressed %llu chunks in %.3fs, output hash %016llx\n",
              static_cast<unsigned long long>(kChunks), t1 - t0,
              static_cast<unsigned long long>(output_hash));
  return 0;
}
