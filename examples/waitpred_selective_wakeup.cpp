// WaitPred's selling point (§2.2.5): waking only the waiters whose predicate the
// new state satisfies, where Retry would wake everyone on any change.
//
//   $ ./waitpred_selective_wakeup
//
// Three "dispatchers" each wait for a job whose priority meets their bar (low /
// medium / high). Producers submit jobs of increasing priority; each submission
// wakes only the dispatchers it can satisfy. The event counters printed at the
// end show zero false wakeups with WaitPred; the same program with Retry wakes
// every dispatcher on every submission.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/transaction.h"

using namespace tcs;

namespace {

struct JobBoard {
  TVar<std::uint64_t> top_priority;  // priority of the best pending job
  TVar<std::uint64_t> job_payload;
};

bool PriorityAtLeast(TmSystem& sys, const WaitArgs& args) {
  const auto* board = reinterpret_cast<const JobBoard*>(args.v[0]);
  TmWord p = sys.Read(board->top_priority.word());
  return p >= args.v[1];
}

std::uint64_t RunDispatchers(Runtime& rt, JobBoard& board, bool use_waitpred) {
  std::vector<std::thread> dispatchers;
  for (std::uint64_t bar : {10ull, 20ull, 30ull}) {
    dispatchers.emplace_back([&, bar] {
      std::uint64_t payload = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
        if (tx.Load(board.top_priority) < bar) {
          if (use_waitpred) {
            WaitArgs args;
            args.v[0] = reinterpret_cast<TmWord>(&board);
            args.v[1] = bar;
            args.n = 2;
            tx.WaitPred(&PriorityAtLeast, args);
          } else {
            tx.Retry();
          }
        }
        return tx.Load(board.job_payload);
      });
      std::printf("  dispatcher(bar=%llu) got job %llu\n",
                  static_cast<unsigned long long>(bar),
                  static_cast<unsigned long long>(payload));
    });
  }
  // Submit jobs with rising priority: 5, 15, 25, 35.
  for (std::uint64_t p : {5ull, 15ull, 25ull, 35ull}) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(board.top_priority, p);
      tx.Store(board.job_payload, p * 100);
    });
  }
  for (auto& d : dispatchers) {
    d.join();
  }
  return rt.AggregateStats().Get(Counter::kFalseWakeups);
}

}  // namespace

int main() {
  {
    std::printf("WaitPred (predicate-filtered wakeups):\n");
    Runtime rt({.backend = Backend::kEagerStm});
    JobBoard board;
    std::uint64_t false_wakeups = RunDispatchers(rt, board, /*use_waitpred=*/true);
    std::printf("  false wakeups: %llu\n\n",
                static_cast<unsigned long long>(false_wakeups));
  }
  {
    std::printf("Retry (wake on any change):\n");
    Runtime rt({.backend = Backend::kEagerStm});
    JobBoard board;
    std::uint64_t false_wakeups = RunDispatchers(rt, board, /*use_waitpred=*/false);
    std::printf("  false wakeups: %llu\n",
                static_cast<unsigned long long>(false_wakeups));
  }
  return 0;
}
