// The paper's motivating scenario (Algorithm 3): compose Produce and Consume
// into one atomic Produce1Consume2 operation.
//
//   $ ./compose_produce1consume2
//
// With transactional condition variables, the wait inside the nested Consume
// COMMITS the in-flight transaction, exposing the partial update (inprogress=1)
// — the "dangerous scenario" of §2.2.1. With Retry, the whole composition rolls
// back and re-executes; no partial state is ever visible. This program runs both
// and reports what an observer thread saw.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/condsync/tm_condvar.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/sync/bounded_buffer.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

using namespace tcs;

namespace {

// Returns how many times the observer saw the in-progress flag.
int RunScenario(bool use_condvar) {
  Runtime rt({.backend = Backend::kEagerStm});
  BoundedBuffer buf(&rt, Mechanism::kRetry, 8);
  TmCondVar notempty(8);
  TVar<std::uint64_t> inprogress(0);
  std::atomic<bool> stop{false};
  std::atomic<int> observed{0};

  std::thread observer([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t v =
          Atomically(rt.sys(), [&](Tx& tx) { return tx.Load(inprogress); });
      if (v != 0) {
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        observed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });

  std::thread composer([&] {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(inprogress, std::uint64_t{1});
      buf.Put(tx, 1);
      a = buf.Get(tx);
      if (buf.Empty(tx)) {
        if (use_condvar) {
          tx.CondWait(notempty);  // atomicity break: commits, then sleeps
        } else {
          tx.Retry();  // rolls everything back, then sleeps
        }
      }
      b = buf.Get(tx);
      tx.Store(inprogress, std::uint64_t{0});
    });
    std::printf("  composed operation consumed %llu and %llu\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Atomically(rt.sys(), [&](Tx& tx) {
    buf.Put(tx, 2);
    if (use_condvar) {
      tx.CondSignal(notempty);
    }
  });
  composer.join();
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  observer.join();
  // mo: acquire — [harness] observe worker-published state.
  return observed.load(std::memory_order_acquire);
}

}  // namespace

int main() {
  std::printf("composing Produce + Consume + Consume (Algorithm 3)...\n\n");

  std::printf("with transactional condition variables:\n");
  int leaked = RunScenario(/*use_condvar=*/true);
  std::printf("  observer saw the in-progress flag %d times -> atomicity BROKEN\n\n",
              leaked);

  std::printf("with Retry:\n");
  int clean = RunScenario(/*use_condvar=*/false);
  std::printf("  observer saw the in-progress flag %d times -> atomicity preserved\n",
              clean);
  return clean == 0 && leaked > 0 ? 0 : 1;
}
