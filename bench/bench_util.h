// Shared benchmark-harness utilities: flag parsing, timing statistics, and
// aligned table output matching the paper's figure series.
#ifndef TCS_BENCH_BENCH_UTIL_H_
#define TCS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tcs {

// Minimal --key=value flag parser. Unrecognized flags abort with usage text.
class BenchFlags {
 public:
  BenchFlags(int argc, char** argv);

  // Returns the flag value or `def` when absent.
  std::uint64_t GetU64(const std::string& key, std::uint64_t def) const;
  bool GetBool(const std::string& key, bool def) const;

  bool Has(const std::string& key) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

struct TrialStats {
  double mean = 0.0;
  double stddev = 0.0;
};

TrialStats Summarize(const std::vector<double>& samples);

double NowSec();

// Prints a row of the form the paper's plots are built from.
void PrintHeader(const std::string& figure, const std::string& description);
void PrintColumns(const std::vector<std::string>& cols);

}  // namespace tcs

#endif  // TCS_BENCH_BENCH_UTIL_H_
