#include "bench/wake_scenarios.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {

namespace {

// One cell per cache line so the cells stay in distinct orecs on every
// backend, including the simulated HTM's line-granular table — the scenarios
// are about *which* waiters a write concerns, so orec aliasing between cells
// would muddy the measurement.
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

constexpr std::uint64_t kStop = ~std::uint64_t{0};

}  // namespace

const char* WaitsetShapeName(WaitsetShape s) {
  return s == WaitsetShape::kDisjoint ? "disjoint" : "overlapping";
}

WakeTrialResult RunWakeIndexTrial(const WakeTrialOptions& opts) {
  TmConfig cfg;
  cfg.backend = opts.backend;
  cfg.max_threads = opts.waiters + 8;
  cfg.targeted_wakeup = opts.targeted;
  if (opts.num_shards > 0) {
    cfg.wake_index_shards = opts.num_shards;
  }
  if (opts.wake_batch_size > 0) {
    cfg.wake_batch_size = opts.wake_batch_size;
  }
  cfg.cas_claim_fast_path = opts.cas_claim_fast_path;
  cfg.adaptive_wake_batch = opts.adaptive_wake_batch;
  Runtime rt(cfg);

  const int waiters = opts.waiters;
  const bool overlap = opts.shape == WaitsetShape::kOverlapping;
  auto cells = std::make_unique<PaddedCell[]>(static_cast<std::size_t>(waiters));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int w = 0; w < waiters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t last_seen = 0;
      for (;;) {
        std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[w].v);
          if (overlap) {
            // The neighbor read widens the waitset to {w, w+1}: a write to
            // the neighbor's cell now wakes this waiter too (a false wakeup
            // unless its own cell moved), which is exactly the overlapping
            // shape the index must stay precise under.
            (void)tx.Load(cells[(w + 1) % waiters].v);
          }
          if (cur == last_seen) {
            tx.Retry();
          }
          return cur;
        });
        if (v == kStop) {
          return;
        }
        last_seen = v;
      }
    });
  }

  // Every waiter must be parked before the clock starts, or the trial measures
  // thread startup instead of wake-path cost.
  while (rt.sys().waiters().RegisteredCount() < waiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  rt.ResetStats();

  double t0 = NowSec();
  for (std::uint64_t i = 1; i <= opts.producer_commits; ++i) {
    // A silent producer re-stores 0 (the parked value): still a writer commit
    // that pays the wake path, but no waiter is ever satisfied.
    std::uint64_t val = opts.silent_producer ? 0 : i;
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[0].v, val); });
  }
  double t1 = NowSec();
  TxStats st = rt.AggregateStats();
  // Latency distributions cover the hot phase only: ResetStats above cleared
  // the histograms, and the snapshot lands before the release commits.
  TmSystem::ObsSnapshot obs = rt.sys().SnapshotObs();

  // Release: one commit per cell, in index order so an overlap neighbor that
  // gets falsely woken by cell w's release has already exited (it was waiter
  // w-1). Per-cell commits also keep the shutdown path identical to the
  // measured one.
  for (int w = 0; w < waiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, kStop); });
  }
  for (auto& t : threads) {
    t.join();
  }

  WakeTrialResult r;
  r.backend = opts.backend;
  r.targeted = opts.targeted;
  r.waiters = waiters;
  r.num_shards = rt.config().wake_index_shards;
  r.shape = opts.shape;
  r.silent_producer = opts.silent_producer;
  r.wake_batch_size = rt.config().wake_batch_size;
  r.producer_commits = opts.producer_commits;
  r.seconds = t1 - t0;
  r.commits_per_sec =
      r.seconds > 0 ? static_cast<double>(opts.producer_commits) / r.seconds
                    : 0.0;
  r.cas_claim_fast_path = rt.config().cas_claim_fast_path;
  r.adaptive_wake_batch = rt.config().adaptive_wake_batch;
  r.wake_checks = st.Get(Counter::kWakeChecks);
  r.wake_batches = st.Get(Counter::kWakeBatches);
  r.cas_claims = st.Get(Counter::kCasWakeClaims);
  r.cas_fallbacks = st.Get(Counter::kCasClaimFallbacks);
  r.wake_tx_aborts = st.Get(Counter::kWakeTxAborts);
  r.wakeups = st.Get(Counter::kWakeups);
  // Precision rows must not credit conservative empty-waitset posts as
  // genuine wakes (they inflate wake-precision metrics).
  r.vacuous_wakeups = st.Get(Counter::kVacuousWakeups);
  r.genuine_wakeups = r.wakeups - r.vacuous_wakeups;
  r.wake_checks_per_commit = static_cast<double>(r.wake_checks) /
                             static_cast<double>(opts.producer_commits);
  r.wake_batches_per_commit = static_cast<double>(r.wake_batches) /
                              static_cast<double>(opts.producer_commits);
  r.commit_latency_count = obs.commit_latency.Count();
  r.commit_p50_ns = obs.commit_latency.Percentile(50);
  r.commit_p99_ns = obs.commit_latency.Percentile(99);
  r.commit_p999_ns = obs.commit_latency.Percentile(99.9);
  r.wake_latency_count = obs.wake_latency.Count();
  r.wake_p50_ns = obs.wake_latency.Percentile(50);
  r.wake_p99_ns = obs.wake_latency.Percentile(99);
  r.wake_p999_ns = obs.wake_latency.Percentile(99.9);
  return r;
}

WakeTrialResult RunWakeIndexTrial(Backend backend, bool targeted, int waiters,
                                  std::uint64_t producer_commits) {
  WakeTrialOptions opts;
  opts.backend = backend;
  opts.targeted = targeted;
  opts.waiters = waiters;
  opts.producer_commits = producer_commits;
  return RunWakeIndexTrial(opts);
}

}  // namespace tcs
