#include "bench/wake_scenarios.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {

namespace {

// One cell per cache line so the cells stay in distinct orecs on every
// backend, including the simulated HTM's line-granular table — the scenario is
// about *disjoint* waiters.
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

constexpr std::uint64_t kStop = ~std::uint64_t{0};

}  // namespace

WakeTrialResult RunWakeIndexTrial(Backend backend, bool targeted, int waiters,
                                  std::uint64_t producer_commits) {
  TmConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = waiters + 8;
  cfg.targeted_wakeup = targeted;
  Runtime rt(cfg);

  auto cells = std::make_unique<PaddedCell[]>(static_cast<std::size_t>(waiters));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int w = 0; w < waiters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t last_seen = 0;
      for (;;) {
        std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[w].v);
          if (cur == last_seen) {
            tx.Retry();
          }
          return cur;
        });
        if (v == kStop) {
          return;
        }
        last_seen = v;
      }
    });
  }

  // Every waiter must be parked before the clock starts, or the trial measures
  // thread startup instead of wake-path cost.
  while (rt.sys().waiters().RegisteredCount() < waiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  rt.ResetStats();

  double t0 = NowSec();
  for (std::uint64_t i = 1; i <= producer_commits; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[0].v, i); });
  }
  double t1 = NowSec();
  TxStats st = rt.AggregateStats();

  // Release: one commit per cell (a single large transaction would overflow
  // nothing here, but per-cell commits keep the shutdown path identical to the
  // measured one).
  for (int w = 0; w < waiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, kStop); });
  }
  for (auto& t : threads) {
    t.join();
  }

  WakeTrialResult r;
  r.backend = backend;
  r.targeted = targeted;
  r.waiters = waiters;
  r.producer_commits = producer_commits;
  r.seconds = t1 - t0;
  r.commits_per_sec =
      r.seconds > 0 ? static_cast<double>(producer_commits) / r.seconds : 0.0;
  r.wake_checks = st.Get(Counter::kWakeChecks);
  r.wakeups = st.Get(Counter::kWakeups);
  r.wake_checks_per_commit =
      static_cast<double>(r.wake_checks) / static_cast<double>(producer_commits);
  return r;
}

}  // namespace tcs
