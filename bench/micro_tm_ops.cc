// google-benchmark microbenchmarks: raw costs of the TM substrates' primitive
// operations per backend. These bound the instrumentation overhead discussed in
// §2.4.1 (the "roughly 3x latency overhead of STM instrumentation").
#include <benchmark/benchmark.h>

#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

Backend BackendOf(const benchmark::State& state) {
  return static_cast<Backend>(state.range(0));
}

TmConfig MicroConfig(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.max_threads = 8;
  return cfg;
}

void BM_ReadOnlyTx(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> x(42);
  for (auto _ : state) {
    std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) { return tx.Load(x); });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ReadOnlyTx)->Arg(0)->Arg(1)->Arg(2);

void BM_WriterTx(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> x(0);
  for (auto _ : state) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  benchmark::DoNotOptimize(x.UnsafeRead());
}
BENCHMARK(BM_WriterTx)->Arg(0)->Arg(1)->Arg(2);

void BM_Tx10Reads(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> xs[10];
  for (auto _ : state) {
    std::uint64_t sum = Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t s = 0;
      for (auto& x : xs) {
        s += tx.Load(x);
      }
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Tx10Reads)->Arg(0)->Arg(1)->Arg(2);

void BM_Tx10Writes(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> xs[10];
  for (auto _ : state) {
    Atomically(rt.sys(), [&](Tx& tx) {
      for (auto& x : xs) {
        tx.Store(x, tx.Load(x) + 1);
      }
    });
  }
}
BENCHMARK(BM_Tx10Writes)->Arg(0)->Arg(1)->Arg(2);

void BM_ReadOwnWrite(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> x(0);
  for (auto _ : state) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(x, std::uint64_t{1});
      benchmark::DoNotOptimize(tx.Load(x));
    });
  }
}
BENCHMARK(BM_ReadOwnWrite)->Arg(0)->Arg(1)->Arg(2);

// The writer fast path when no waiter exists: the commit-side overhead that the
// paper's design keeps off in-flight (hardware) transactions.
void BM_WriterCommitNoWaiters(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  TVar<std::uint64_t> x(0);
  for (auto _ : state) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  if (rt.AggregateStats().Get(Counter::kWakeChecks) != 0) {
    state.SkipWithError("unexpected wake checks");
  }
}
BENCHMARK(BM_WriterCommitNoWaiters)->Arg(0)->Arg(1)->Arg(2);

void BM_TxAllocFree(benchmark::State& state) {
  Runtime rt(MicroConfig(BackendOf(state)));
  for (auto _ : state) {
    Atomically(rt.sys(), [&](Tx& tx) {
      void* p = tx.AllocBytes(64);
      benchmark::DoNotOptimize(p);
      tx.FreeBytes(p);
    });
  }
}
BENCHMARK(BM_TxAllocFree)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace tcs

BENCHMARK_MAIN();
