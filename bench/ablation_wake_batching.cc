// Ablation: batched wake transactions vs the paper's per-candidate wake path.
//
// N waiters park on N disjoint cells; one hot producer repeatedly commits to
// cell 0 under the *global-scan* wake path, so every producer commit
// wake-checks all N registered waiters. With wake_batch_size=1 (Algorithm 4)
// each check runs in its own internal transaction — N clock RMWs and tx
// setups/commits per producer commit. Batching coalesces up to `batch` checks
// into one wake transaction: wake_batches_per_commit tracks
// ceil(candidates / batch), and producer commits/sec is the wake-path
// throughput win.
//
// The run doubles as a correctness gate for CI: after each sweep point, a
// deterministic no-lost-wakeup phase parks `--verify_waiters` threads and
// satisfies each exactly once; if any waiter fails to wake within the
// deadline, the binary prints the failure and exits nonzero (the bench-smoke
// job fails).
//
// Flags: --commits=N --waiters=a,b,... (default 256; the paper-scale sweep is
//        256,1024) --batches=a,b,... (default 1,4,8,16) --backend=0|1|2
//        --verify_waiters=N
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wake_scenarios.h"
#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace {

std::vector<int> ParseIntList(int argc, char** argv, const std::string& key,
                              std::vector<int> def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) != 0) {
      continue;
    }
    std::vector<int> out;
    const char* p = arg.c_str() + prefix.size();
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p || v <= 0) {
        std::fprintf(stderr, "bad --%s list: %s\n", key.c_str(), arg.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    return out;
  }
  return def;
}

struct PaddedCell {
  alignas(64) tcs::TVar<std::uint64_t> v;
};

// Parks `waiters` threads on disjoint cells, satisfies each exactly once, and
// requires every waiter to wake within `deadline`. Returns false (after
// printing the failure) on a lost wakeup.
bool VerifyNoLostWakeups(tcs::Backend backend, int batch, int waiters,
                         std::chrono::seconds deadline) {
  using namespace tcs;
  TmConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = waiters + 8;
  cfg.wake_batch_size = batch;
  Runtime rt(cfg);
  auto cells = std::make_unique<PaddedCell[]>(static_cast<std::size_t>(waiters));
  std::atomic<int> woken{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int w = 0; w < waiters; ++w) {
    threads.emplace_back([&, w] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[w].v) == 0) {
          tx.Retry();
        }
      });
      woken.fetch_add(1);
    });
  }
  while (rt.sys().waiters().RegisteredCount() < waiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (int w = 0; w < waiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
  }
  auto until = std::chrono::steady_clock::now() + deadline;
  while (woken.load() < waiters) {
    if (std::chrono::steady_clock::now() >= until) {
      std::fprintf(stderr,
                   "LOST WAKEUP: backend=%s batch=%d — %d of %d waiters woke\n",
                   BackendName(backend), batch, woken.load(), waiters);
      std::fprintf(stderr, "wake-batching verification FAILED\n");
      // Exit here on purpose: the stuck waiters (and the runtime they point
      // into) cannot be torn down, and unwinding past joinable threads would
      // std::terminate before the failure message mattered.
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : threads) {
    t.join();
  }
  if (!rt.sys().wake_index().Empty() ||
      rt.sys().waiters().RegisteredCount() != 0) {
    std::fprintf(stderr, "LEAKED WAKE ENTRY: backend=%s batch=%d\n",
                 BackendName(backend), batch);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t commits = flags.GetU64("commits", 600);
  Backend backend = static_cast<Backend>(flags.GetU64("backend", 0));
  std::vector<int> waiter_counts = ParseIntList(argc, argv, "waiters", {256});
  std::vector<int> batch_sizes =
      ParseIntList(argc, argv, "batches", {1, 4, 8, 16});
  int verify_waiters =
      static_cast<int>(flags.GetU64("verify_waiters", 64));

  PrintHeader("Ablation: batched wake transactions vs per-candidate wake path",
              "N disjoint waiters, 1 hot producer, global-scan wake path; "
              "each commit wake-checks all N — batching coalesces the checks "
              "into shared internal transactions");
  std::printf("# backend=%s commits=%llu\n", BackendName(backend),
              static_cast<unsigned long long>(commits));
  std::printf("%-8s %-7s %14s %18s %18s %18s %10s\n", "waiters", "batch",
              "wake_batches", "batches_per_commit", "checks_per_commit",
              "commits_per_sec", "speedup");

  bool ok = true;
  for (int n : waiter_counts) {
    double base_cps = 0.0;
    for (int batch : batch_sizes) {
      WakeTrialOptions opts;
      opts.backend = backend;
      opts.targeted = false;  // global scan: every commit checks everyone
      opts.waiters = n;
      opts.producer_commits = commits;
      opts.wake_batch_size = batch;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      if (batch == batch_sizes.front()) {
        base_cps = r.commits_per_sec;
      }
      double speedup = base_cps > 0 ? r.commits_per_sec / base_cps : 0.0;
      std::printf("%-8d %-7d %14llu %18.2f %18.2f %18.0f %9.2fx\n", n, batch,
                  static_cast<unsigned long long>(r.wake_batches),
                  r.wake_batches_per_commit, r.wake_checks_per_commit,
                  r.commits_per_sec, speedup);
      ok = ok && VerifyNoLostWakeups(backend, batch, verify_waiters,
                                     std::chrono::seconds(60));
    }
  }
  if (!ok) {
    std::fprintf(stderr, "wake-batching verification FAILED\n");
    return 1;
  }
  std::printf("# no-lost-wakeup verification passed (%d waiters per point)\n",
              verify_waiters);
  return 0;
}
