// Ablation: batched wake transactions vs the paper's per-candidate wake path.
//
// N waiters park on N disjoint cells; one hot producer repeatedly commits to
// cell 0 under the *global-scan* wake path, so every producer commit
// wake-checks all N registered waiters. With wake_batch_size=1 (Algorithm 4)
// each check runs in its own internal transaction — N clock RMWs and tx
// setups/commits per producer commit. Batching coalesces up to `batch` checks
// into one wake transaction: wake_batches_per_commit tracks
// ceil(candidates / batch), and producer commits/sec is the wake-path
// throughput win.
//
// The run doubles as a correctness gate for CI: after each sweep point, a
// deterministic no-lost-wakeup phase parks `--verify_waiters` threads and
// satisfies each exactly once; if any waiter fails to wake within the
// deadline, the binary prints the failure and exits nonzero (the bench-smoke
// job fails).
//
// Two further sweeps ride along:
//  * CAS fast-path acceptance — 1–4 disjoint waiters on the targeted wake
//    path, fast path off vs on. The fast path must STRICTLY reduce wake
//    transactions per commit, and the common case must claim with zero wake
//    transactions; a violation exits nonzero.
//  * Adaptive batch sizing — wake_batch_size becomes a cap and the effective
//    size follows the wake-tx abort-rate EWMA; the adaptive row must land
//    within tolerance of the best fixed size at every waiter count.
//
// Flags: --commits=N --waiters=a,b,... (default 256; the paper-scale sweep is
//        256,1024) --batches=a,b,... (default 1,4,8,16) --backend=0|1|2
//        --verify_waiters=N --cas=0|1 (fixed-sweep fast path, default 0)
//        --adaptive=0|1 (fixed-sweep adaptive sizing, default 0)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wake_scenarios.h"
#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace {

std::vector<int> ParseIntList(int argc, char** argv, const std::string& key,
                              std::vector<int> def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) != 0) {
      continue;
    }
    std::vector<int> out;
    const char* p = arg.c_str() + prefix.size();
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p || v <= 0) {
        std::fprintf(stderr, "bad --%s list: %s\n", key.c_str(), arg.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    return out;
  }
  return def;
}

struct PaddedCell {
  alignas(64) tcs::TVar<std::uint64_t> v;
};

// Parks `waiters` threads on disjoint cells, satisfies each exactly once, and
// requires every waiter to wake within `deadline`. Returns false (after
// printing the failure) on a lost wakeup.
bool VerifyNoLostWakeups(tcs::Backend backend, int batch, bool cas,
                         bool adaptive, int waiters,
                         std::chrono::seconds deadline) {
  using namespace tcs;
  TmConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = waiters + 8;
  cfg.wake_batch_size = batch;
  cfg.cas_claim_fast_path = cas;
  cfg.adaptive_wake_batch = adaptive;
  Runtime rt(cfg);
  auto cells = std::make_unique<PaddedCell[]>(static_cast<std::size_t>(waiters));
  std::atomic<int> woken{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(waiters));
  for (int w = 0; w < waiters; ++w) {
    threads.emplace_back([&, w] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[w].v) == 0) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  while (rt.sys().waiters().RegisteredCount() < waiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (int w = 0; w < waiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
  }
  auto until = std::chrono::steady_clock::now() + deadline;
  // mo: acquire — [harness] observe worker-published state.
  while (woken.load(std::memory_order_acquire) < waiters) {
    if (std::chrono::steady_clock::now() >= until) {
      std::fprintf(stderr,
                   "LOST WAKEUP: backend=%s batch=%d — %d of %d waiters woke\n",
                   // mo: acquire — [harness] observe worker-published state.
                   BackendName(backend), batch, woken.load(std::memory_order_acquire), waiters);
      std::fprintf(stderr, "wake-batching verification FAILED\n");
      // Exit here on purpose: the stuck waiters (and the runtime they point
      // into) cannot be torn down, and unwinding past joinable threads would
      // std::terminate before the failure message mattered.
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : threads) {
    t.join();
  }
  if (!rt.sys().wake_index().Empty() ||
      rt.sys().waiters().RegisteredCount() != 0) {
    std::fprintf(stderr, "LEAKED WAKE ENTRY: backend=%s batch=%d\n",
                 BackendName(backend), batch);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t commits = flags.GetU64("commits", 600);
  Backend backend = static_cast<Backend>(flags.GetU64("backend", 0));
  std::vector<int> waiter_counts = ParseIntList(argc, argv, "waiters", {256});
  std::vector<int> batch_sizes =
      ParseIntList(argc, argv, "batches", {1, 4, 8, 16});
  int verify_waiters =
      static_cast<int>(flags.GetU64("verify_waiters", 64));
  const bool sweep_cas = flags.GetU64("cas", 0) != 0;
  const bool sweep_adaptive = flags.GetU64("adaptive", 0) != 0;

  PrintHeader("Ablation: batched wake transactions vs per-candidate wake path",
              "N disjoint waiters, 1 hot producer, global-scan wake path; "
              "each commit wake-checks all N — batching coalesces the checks "
              "into shared internal transactions");
  std::printf("# backend=%s commits=%llu\n", BackendName(backend),
              static_cast<unsigned long long>(commits));
  std::printf("%-8s %-7s %14s %18s %18s %18s %10s\n", "waiters", "batch",
              "wake_batches", "batches_per_commit", "checks_per_commit",
              "commits_per_sec", "speedup");

  bool ok = true;
  for (int n : waiter_counts) {
    double base_cps = 0.0;
    double best_fixed_cps = 0.0;
    for (int batch : batch_sizes) {
      WakeTrialOptions opts;
      opts.backend = backend;
      opts.targeted = false;  // global scan: every commit checks everyone
      opts.waiters = n;
      opts.producer_commits = commits;
      opts.wake_batch_size = batch;
      opts.cas_claim_fast_path = sweep_cas;
      opts.adaptive_wake_batch = sweep_adaptive;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      if (batch == batch_sizes.front()) {
        base_cps = r.commits_per_sec;
      }
      if (r.commits_per_sec > best_fixed_cps) {
        best_fixed_cps = r.commits_per_sec;
      }
      double speedup = base_cps > 0 ? r.commits_per_sec / base_cps : 0.0;
      std::printf("%-8d %-7d %14llu %18.2f %18.2f %18.0f %9.2fx\n", n, batch,
                  static_cast<unsigned long long>(r.wake_batches),
                  r.wake_batches_per_commit, r.wake_checks_per_commit,
                  r.commits_per_sec, speedup);
      ok = ok && VerifyNoLostWakeups(backend, batch, sweep_cas, sweep_adaptive,
                                     verify_waiters, std::chrono::seconds(60));
    }

    // Adaptive sizing against the best fixed batch at this waiter count. The
    // bar is "matches or beats" with a noise allowance — a real regression
    // (adaptive collapsing to tiny batches without abort pressure) lands far
    // below it.
    {
      WakeTrialOptions opts;
      opts.backend = backend;
      opts.targeted = false;
      opts.waiters = n;
      opts.producer_commits = commits;
      opts.wake_batch_size = batch_sizes.back();
      opts.cas_claim_fast_path = sweep_cas;
      opts.adaptive_wake_batch = true;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      double vs_best =
          best_fixed_cps > 0 ? r.commits_per_sec / best_fixed_cps : 0.0;
      std::printf("%-8d %-7s %14llu %18.2f %18.2f %18.0f %9.2fx\n", n, "ada",
                  static_cast<unsigned long long>(r.wake_batches),
                  r.wake_batches_per_commit, r.wake_checks_per_commit,
                  r.commits_per_sec, vs_best);
      // Adaptive typically lands at 0.95–1.05x of the best fixed size; the
      // hard gate only trips on a structural collapse (e.g. shrinking to
      // tiny batches with no abort pressure), because short CI runs see
      // ±30% machine noise between identical sweep points.
      if (vs_best < 0.5) {
        std::fprintf(stderr,
                     "ADAPTIVE REGRESSION: waiters=%d adaptive=%.0f/s is "
                     "%.2fx of best fixed %.0f/s\n",
                     n, r.commits_per_sec, vs_best, best_fixed_cps);
        ok = false;
      } else if (vs_best < 0.9) {
        std::printf("# warning: adaptive at %.2fx of best fixed (noise?)\n",
                    vs_best);
      }
      ok = ok && VerifyNoLostWakeups(backend, batch_sizes.back(), sweep_cas,
                                     /*adaptive=*/true, verify_waiters,
                                     std::chrono::seconds(60));
    }
  }

  // CAS fast-path acceptance: 1–4 disjoint waiters on the targeted wake path.
  // The fast path must strictly reduce wake transactions per commit, and the
  // common case must claim without ANY wake transaction.
  std::printf("\n# CAS fast-path acceptance (targeted, disjoint waiters)\n");
  std::printf("%-8s %-5s %14s %18s %14s\n", "waiters", "cas", "wake_batches",
              "batches_per_commit", "cas_claims");
  for (int n : {1, 2, 4}) {
    std::uint64_t batches_off = 0;
    std::uint64_t batches_on = 0;
    std::uint64_t claims_on = 0;
    for (bool cas : {false, true}) {
      WakeTrialOptions opts;
      opts.backend = backend;
      opts.targeted = true;
      opts.waiters = n;
      opts.producer_commits = commits;
      opts.cas_claim_fast_path = cas;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      std::printf("%-8d %-5s %14llu %18.3f %14llu\n", n, cas ? "on" : "off",
                  static_cast<unsigned long long>(r.wake_batches),
                  r.wake_batches_per_commit,
                  static_cast<unsigned long long>(r.cas_claims));
      if (cas) {
        batches_on = r.wake_batches;
        claims_on = r.cas_claims;
      } else {
        batches_off = r.wake_batches;
      }
    }
    // Strict reduction, and the common case claims without a wake tx. The
    // residue allowance (commits/10) covers the racing-re-registration
    // window, where the registration transaction holds the slot's orec and
    // the fast path correctly falls back.
    if (batches_on >= batches_off || batches_on > commits / 10 ||
        claims_on == 0) {
      std::fprintf(stderr,
                   "CAS FAST PATH REGRESSION: waiters=%d wake_batches "
                   "off=%llu on=%llu cas_claims=%llu (want on << off, "
                   "claims > 0)\n",
                   n, static_cast<unsigned long long>(batches_off),
                   static_cast<unsigned long long>(batches_on),
                   static_cast<unsigned long long>(claims_on));
      ok = false;
    }
    ok = ok && VerifyNoLostWakeups(backend, batch_sizes.back(), /*cas=*/true,
                                   /*adaptive=*/true, verify_waiters,
                                   std::chrono::seconds(60));
  }

  if (!ok) {
    std::fprintf(stderr, "wake-batching verification FAILED\n");
    return 1;
  }
  std::printf("# no-lost-wakeup verification passed (%d waiters per point)\n",
              verify_waiters);
  return 0;
}
