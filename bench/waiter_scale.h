// Capacity-tier sweep: how far the parked-waiter count can be pushed before
// memory or wake latency gives out. Each point parks N waiter threads (small
// pthread stacks — the point is 10^4–10^5 waiters, where glibc's default 8MB
// stacks alone would be 100s of GB of address space), measures the condsync
// footprint per waiter while everyone is parked, then drives a verify phase
// that wakes distinct waiters one commit at a time and counts acknowledgments
// — any gap is a lost wakeup. A configurable fraction of the waiters churns
// short timed waits throughout, so the point also exercises the TimerWheel
// (N timed sleepers share one ticker; the wheel-tick count must stay far
// below the timed-wait count, or the wheel is degenerating into per-wait
// timers).
#ifndef TCS_BENCH_WAITER_SCALE_H_
#define TCS_BENCH_WAITER_SCALE_H_

#include <cstdint>

#include "src/tm/tm_config.h"

namespace tcs {

struct WaiterScaleOptions {
  Backend backend = Backend::kEagerStm;
  // Requested waiter count. The trial clamps this to what the machine can
  // actually host (kernel.pid_max minus live threads, with headroom) before
  // spawning — every pthread consumes a PID, so e.g. the stock pid_max of
  // 32768 caps any process at ~32k threads no matter how small the stacks
  // are. Both numbers land in the result (`requested_waiters` vs `waiters`),
  // so `spawned == waiters` stays a meaningful gate on any machine.
  int waiters = 0;
  // Verify-phase wake commits; clamped to the spawned waiter count so every
  // wake targets a distinct cell (two stores to one cell can coalesce into
  // one observed change, which would read as a false lost wakeup).
  std::uint64_t wake_rounds = 2000;
  // Every Nth waiter runs bounded waits (RetryFor) instead of open-ended
  // ones, timing out and re-arming continuously. 0 disables timed churn.
  int timed_every = 8;
  std::uint64_t timed_timeout_ms = 5;
  // TmConfig::park_backend (0 auto / 1 futex / 2 pool) and timer_wheel.
  int park_backend = 0;
  bool timer_wheel = true;
};

struct WaiterScaleResult {
  Backend backend = Backend::kEagerStm;
  int requested_waiters = 0;  // WaiterScaleOptions::waiters as asked for
  int waiters = 0;   // target after the pid_max spawn-ceiling clamp
  int spawned = 0;   // actually running (thread creation may hit EAGAIN)
  int park_backend = 0;
  bool uses_futex = false;
  bool timer_wheel = false;
  double park_seconds = 0.0;  // spawn start → all spawned waiters registered
  double wake_seconds = 0.0;  // verify-phase wall time
  // Verify phase: wake_rounds distinct-cell wake commits, acks counted by the
  // woken waiters. lost_wakeups = rounds - acks after a generous grace wait.
  std::uint64_t wake_rounds = 0;
  std::uint64_t acks = 0;
  std::uint64_t lost_wakeups = 0;
  // Condsync footprint while all spawned waiters were parked.
  std::uint64_t registry_bytes = 0;
  std::uint64_t wake_index_bytes = 0;
  int registry_segments = 0;
  double mem_bytes_per_waiter = 0.0;
  // Timed-wait churn vs the shared wheel.
  std::uint64_t timed_waits = 0;  // kWaitTimeouts delivered
  std::uint64_t wheel_ticks = 0;
  std::uint64_t wheel_scheduled = 0;
  std::uint64_t wheel_fired = 0;
  std::uint64_t wheel_stale = 0;
  std::uint64_t wheel_max_lag_ns = 0;
  // Wake-path hand-off latency over the verify phase (post → resume).
  std::uint64_t wake_latency_count = 0;
  std::uint64_t wake_p50_ns = 0;
  std::uint64_t wake_p99_ns = 0;
  std::uint64_t wake_p999_ns = 0;
};

WaiterScaleResult RunWaiterScaleTrial(const WaiterScaleOptions& opts);

}  // namespace tcs

#endif  // TCS_BENCH_WAITER_SCALE_H_
