// Ablation: wakeup precision across the three mechanisms (§2.3's claimed
// tradeoff). Four waiters wait for a shared counter to reach different
// thresholds; one writer increments it one step at a time. WaitPred should wake
// each waiter exactly when its threshold is met; Retry/Await wake on *every*
// change (false wakeups). Reported from the runtime's event counters.
//
// Flags: --steps=N
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

bool ThresholdPred(TmSystem& sys, const WaitArgs& args) {
  const auto* counter = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(counter->word()) >= args.v[1];
}

struct Row {
  const char* mech;
  std::uint64_t sleeps;
  std::uint64_t wakeups;
  std::uint64_t wake_checks;
  std::uint64_t false_wakeups;
  std::uint64_t waitset_entries;
  double seconds;
};

Row RunOne(Backend backend, Mechanism mech, std::uint64_t steps) {
  TmConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = 16;
  Runtime rt(cfg);
  TVar<std::uint64_t> counter(0);
  constexpr int kWaiters = 4;

  double t0 = NowSec();
  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      // Waiter w's threshold: evenly spread across the step range.
      std::uint64_t threshold = (static_cast<std::uint64_t>(w) + 1) * steps / kWaiters;
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(counter) < threshold) {
          switch (mech) {
            case Mechanism::kWaitPred: {
              WaitArgs args;
              args.v[0] = reinterpret_cast<TmWord>(&counter);
              args.v[1] = threshold;
              args.n = 2;
              tx.WaitPred(&ThresholdPred, args);
            }
            case Mechanism::kAwait:
              tx.Await(counter);
            default:
              tx.Retry();
          }
        }
      });
    });
  }
  // All four waiters must be asleep before the writer starts, or the sweep
  // degenerates (they would observe an already-satisfied counter and never wait).
  while (rt.AggregateStats().Get(Counter::kSleeps) < kWaiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (std::uint64_t s = 0; s < steps; ++s) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
  }
  for (auto& w : waiters) {
    w.join();
  }
  double t1 = NowSec();

  TxStats st = rt.AggregateStats();
  return {MechanismName(mech),
          st.Get(Counter::kSleeps),
          st.Get(Counter::kWakeups),
          st.Get(Counter::kWakeChecks),
          st.Get(Counter::kFalseWakeups),
          st.Get(Counter::kWaitsetEntries),
          t1 - t0};
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t steps = flags.GetU64("steps", 2000);
  PrintHeader("Ablation: wakeup precision",
              "4 threshold waiters, 1 incrementing writer; WaitPred wakes "
              "precisely, Retry/Await broadcast on every change");
  std::printf("# steps=%llu backend=eager-stm\n",
              static_cast<unsigned long long>(steps));
  std::printf("%-10s %8s %8s %12s %14s %16s %10s\n", "mechanism", "sleeps",
              "wakeups", "wake_checks", "false_wakeups", "waitset_entries",
              "seconds");
  for (Mechanism m :
       {Mechanism::kWaitPred, Mechanism::kAwait, Mechanism::kRetry}) {
    Row r = RunOne(Backend::kEagerStm, m, steps);
    std::printf("%-10s %8llu %8llu %12llu %14llu %16llu %10.4f\n", r.mech,
                static_cast<unsigned long long>(r.sleeps),
                static_cast<unsigned long long>(r.wakeups),
                static_cast<unsigned long long>(r.wake_checks),
                static_cast<unsigned long long>(r.false_wakeups),
                static_cast<unsigned long long>(r.waitset_entries),
                r.seconds);
  }
  return 0;
}
