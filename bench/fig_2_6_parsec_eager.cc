// Figure 2.6: mini-PARSEC performance with eager STM.
// 8 apps × threads {1,2,4,8} × 7 mechanisms.
// Flags: --scale=N --trials=N --max_threads=N --paper.
#include "bench/parsec_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::ParsecGridOptions opts;
  opts.backend = tcs::Backend::kEagerStm;
  opts = tcs::ApplyParsecFlags(opts, flags);
  tcs::RunParsecGrid("Figure 2.6 (mini-PARSEC, eager STM)", opts);
  return 0;
}
