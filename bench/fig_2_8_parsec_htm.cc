// Figure 2.8: mini-PARSEC performance with (simulated) HTM.
// Retry-Orig is omitted (STM-only, §2.1).
// Flags: --scale=N --trials=N --max_threads=N --paper.
#include "bench/parsec_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::ParsecGridOptions opts;
  opts.backend = tcs::Backend::kSimHtm;
  opts.include_retry_orig = false;
  opts = tcs::ApplyParsecFlags(opts, flags);
  tcs::RunParsecGrid("Figure 2.8 (mini-PARSEC, simulated HTM)", opts);
  return 0;
}
