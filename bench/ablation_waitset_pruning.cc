// Ablation: Await's waitset pruning (§2.4.2 — "Await effectively prunes the set
// of locations on which a sleeping transaction waits. This, in turn, reduces
// overhead in wakeWaiters, saving time after every transaction commit").
//
// A waiter reads K unrelated words before waiting on one flag; writers then
// commit repeatedly. With Retry, every writer commit re-validates a K+1-entry
// waitset; with Await (and WaitPred) the waitset is a single entry, independent
// of K.
//
// Flags: --reads=K --commits=N
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

struct Row {
  std::uint64_t extra_reads;
  const char* mech;
  std::uint64_t waitset_entries;
  double writer_seconds;  // time for the writer-commit phase (wakeWaiters cost)
};

Row RunOne(Mechanism mech, std::uint64_t extra_reads, std::uint64_t commits) {
  TmConfig cfg;
  cfg.backend = Backend::kEagerStm;
  cfg.max_threads = 8;
  Runtime rt(cfg);
  std::vector<TVar<std::uint64_t>> table(extra_reads + 1);
  for (auto& cell : table) {
    cell.UnsafeWrite(1);
  }
  TVar<std::uint64_t> flag(0);
  TVar<std::uint64_t> unrelated(0);

  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      // The transaction's read set includes the whole table...
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < extra_reads; ++i) {
        sum += tx.Load(table[i]);
      }
      if (tx.Load(flag) + sum == sum) {  // flag == 0: not released yet
        switch (mech) {
          case Mechanism::kAwait:
            tx.Await(flag);  // ...but Await waits on one word only
          default:
            tx.Retry();  // ...while Retry waits on all of them
        }
      }
    });
  });
  // Wait until the waiter is asleep.
  while (rt.AggregateStats().Get(Counter::kSleeps) == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Writer phase: commits that do NOT satisfy the waiter, each paying one
  // wakeWaiters evaluation of the published waitset.
  double t0 = NowSec();
  for (std::uint64_t i = 0; i < commits; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(unrelated, i); });
  }
  double t1 = NowSec();
  // Release the waiter.
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(flag, std::uint64_t{1} << 62);
  });
  waiter.join();
  return {extra_reads, MechanismName(mech),
          rt.AggregateStats().Get(Counter::kWaitsetEntries), t1 - t0};
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t commits = flags.GetU64("commits", 5000);
  PrintHeader("Ablation: waitset pruning (Await vs Retry)",
              "writer-commit cost vs waiter read-set size; Await's waitset stays "
              "one entry while Retry's grows with the read set");
  std::printf("%-12s %-8s %16s %16s %18s\n", "extra_reads", "mech",
              "waitset_entries", "writer_seconds", "ns_per_commit");
  for (std::uint64_t k : {std::uint64_t{0}, std::uint64_t{64}, std::uint64_t{512},
                          std::uint64_t{4096}}) {
    for (Mechanism m : {Mechanism::kAwait, Mechanism::kRetry}) {
      Row r = RunOne(m, k, commits);
      std::printf("%-12llu %-8s %16llu %16.4f %18.1f\n",
                  static_cast<unsigned long long>(r.extra_reads), r.mech,
                  static_cast<unsigned long long>(r.waitset_entries),
                  r.writer_seconds,
                  r.writer_seconds * 1e9 / static_cast<double>(commits));
    }
  }
  return 0;
}
