// Tracing smoke scenario for the CI round-trip check: run a short wake
// workload with TmConfig::tracing on, dump the Chrome trace, and exit
// non-zero if anything is off. tools/check_trace.py then parses and
// schema-validates the JSON (field presence, per-thread timestamp
// monotonicity, drop-count reporting).
//
// In a TCS_TRACING=OFF build this still exercises the DumpTrace empty-
// document path — the output is valid JSON with "tracing_compiled": false —
// so the binary is buildable and runnable in every configuration.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/tvar.h"

namespace {

constexpr int kWaiters = 4;
constexpr int kRounds = 32;

}  // namespace

int main(int argc, char** argv) {
  std::string out = argc > 1 ? argv[1] : "trace.json";

  tcs::TmConfig cfg;
  cfg.backend = tcs::Backend::kEagerStm;
  cfg.tracing = true;
  cfg.trace_ring_capacity = 1 << 12;
  tcs::Runtime rt(cfg);

  tcs::TVar<std::int64_t> tokens(0);
  tcs::TVar<std::int64_t> consumed(0);
  tcs::TVar<std::int64_t> done(0);

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      for (;;) {
        bool stop = false;
        tcs::Atomically(rt.sys(), [&](tcs::Tx& tx) {
          if (tx.Load(done) != 0) {
            stop = true;
            return;
          }
          stop = false;
          std::int64_t t = tx.Load(tokens);
          if (t == 0) {
            tx.Retry();  // deschedule until a producer commit adds a token
          }
          tx.Store(tokens, t - 1);
          tx.Store(consumed, tx.Load(consumed) + 1);
        });
        if (stop) {
          return;
        }
      }
    });
  }

  // Producer: one token per commit, so every commit's wake pass has work.
  for (int r = 0; r < kRounds; ++r) {
    tcs::Atomically(rt.sys(), [&](tcs::Tx& tx) {
      tx.Store(tokens, tx.Load(tokens) + 1);
    });
  }
  // Wait for all tokens to drain, then release the waiters.
  tcs::Atomically(rt.sys(), [&](tcs::Tx& tx) {
    if (tx.Load(consumed) != kRounds) {
      tx.Retry();
    }
  });
  tcs::Atomically(rt.sys(),
                  [&](tcs::Tx& tx) { tx.Store(done, std::int64_t{1}); });
  for (std::thread& t : waiters) {
    t.join();
  }

  if (!rt.sys().DumpTrace(out)) {
    std::fprintf(stderr, "trace_smoke: failed to write %s\n", out.c_str());
    return 1;
  }

  tcs::TxStats stats = rt.AggregateStats();
  std::fprintf(stderr,
               "trace_smoke: commits=%llu sleeps=%llu wakeups=%llu "
               "trace_events=%llu trace_drops=%llu -> %s\n",
               static_cast<unsigned long long>(
                   stats.Get(tcs::Counter::kCommits)),
               static_cast<unsigned long long>(stats.Get(tcs::Counter::kSleeps)),
               static_cast<unsigned long long>(
                   stats.Get(tcs::Counter::kWakeups)),
               static_cast<unsigned long long>(
                   stats.Get(tcs::Counter::kTraceEvents)),
               static_cast<unsigned long long>(
                   stats.Get(tcs::Counter::kTraceDrops)),
               out.c_str());

  if (stats.Get(tcs::Counter::kCommits) == 0 ||
      stats.Get(tcs::Counter::kWakeups) == 0) {
    std::fprintf(stderr, "trace_smoke: scenario did not exercise the wake path\n");
    return 1;
  }
#if TCS_TRACING
  if (stats.Get(tcs::Counter::kTraceEvents) == 0) {
    std::fprintf(stderr, "trace_smoke: tracing compiled+enabled but no events\n");
    return 1;
  }
#endif
  return 0;
}
