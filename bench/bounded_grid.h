// The bounded-buffer micro-benchmark grid behind Figures 2.3-2.5: producers ×
// consumers × buffer size × mechanism, reporting seconds per trial exactly as the
// paper's panels plot them.
#ifndef TCS_BENCH_BOUNDED_GRID_H_
#define TCS_BENCH_BOUNDED_GRID_H_

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/mechanism.h"
#include "src/tm/tm_config.h"

namespace tcs {

struct BoundedGridOptions {
  Backend backend = Backend::kEagerStm;
  // Figures 2.3/2.4 include Retry-Orig; Figure 2.5 (HTM) cannot (§2.1).
  bool include_retry_orig = true;
  // Total elements produced (and consumed) per trial. The paper uses 2^20; the
  // default here is scaled down for container-class hardware (override with
  // --ops). The buffer is half-filled before each trial (§2.4.1).
  std::uint64_t ops = 1 << 14;
  std::uint64_t trials = 3;
  // Keep oversubscribed panels bounded on tiny machines: skip producer/consumer
  // counts above this (override with --max_threads).
  int max_side = 8;
};

// One measured grid point; the JSON harness (bench_main) serializes these and
// the figure binaries print them.
struct BoundedGridRow {
  int producers;
  int consumers;
  std::uint64_t buffer_size;
  Mechanism mech;
  double mean_s;
  double stddev_s;
};

// Runs the full grid and returns one row per (panel, buffer size, mechanism).
std::vector<BoundedGridRow> CollectBoundedGrid(const BoundedGridOptions& opts);

// Runs the full grid and prints one row per (panel, buffer size, mechanism).
void RunBoundedGrid(const char* figure_name, const BoundedGridOptions& opts);

// Applies --ops/--trials/--max_side/--paper flags.
BoundedGridOptions ApplyFlags(BoundedGridOptions opts, const BenchFlags& flags);

}  // namespace tcs

#endif  // TCS_BENCH_BOUNDED_GRID_H_
