// Figure 2.7: mini-PARSEC performance with lazy STM.
// Flags: --scale=N --trials=N --max_threads=N --paper.
#include "bench/parsec_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::ParsecGridOptions opts;
  opts.backend = tcs::Backend::kLazyStm;
  opts = tcs::ApplyParsecFlags(opts, flags);
  tcs::RunParsecGrid("Figure 2.7 (mini-PARSEC, lazy STM)", opts);
  return 0;
}
