#include "bench/parsec_grid.h"

#include <cstdio>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"

namespace tcs {

ParsecGridOptions ApplyParsecFlags(ParsecGridOptions opts, const BenchFlags& flags) {
  opts.scale = flags.GetU64("scale", opts.scale);
  opts.trials = flags.GetU64("trials", opts.trials);
  opts.max_threads = static_cast<int>(flags.GetU64("max_threads", opts.max_threads));
  if (flags.GetBool("paper", false)) {
    opts.scale = 8;
    opts.trials = 5;
  }
  return opts;
}

std::vector<ParsecGridRow> CollectParsecGrid(const ParsecGridOptions& opts) {
  std::vector<ParsecGridRow> rows;
  for (const AppInfo& app : MiniParsecApps()) {
    if (!opts.apps.empty()) {
      bool wanted = false;
      for (const std::string& name : opts.apps) {
        if (name == app.name) {
          wanted = true;
          break;
        }
      }
      if (!wanted) {
        continue;
      }
    }
    for (int threads : {1, 2, 4, 8}) {
      if (threads > opts.max_threads) {
        continue;
      }
      std::uint64_t reference = 0;
      bool have_reference = false;
      for (Mechanism m : kAllMechanisms) {
        if (m == Mechanism::kRetryOrig &&
            (!opts.include_retry_orig || opts.backend == Backend::kSimHtm)) {
          continue;
        }
        std::vector<double> samples;
        std::uint64_t checksum = 0;
        for (std::uint64_t t = 0; t < opts.trials; ++t) {
          AppConfig cfg;
          cfg.mech = m;
          cfg.backend = opts.backend;
          cfg.threads = threads;
          cfg.scale = static_cast<int>(opts.scale);
          AppResult r = app.run(cfg);
          samples.push_back(r.seconds);
          checksum = r.checksum;
        }
        if (!have_reference) {
          reference = checksum;
          have_reference = true;
        } else {
          TCS_CHECK_MSG(checksum == reference,
                        "mechanism changed an app checksum — synchronization bug");
        }
        TrialStats s = Summarize(samples);
        double throughput =
            s.mean > 0 ? static_cast<double>(opts.scale) / s.mean : 0.0;
        rows.push_back({app.name, threads, m, s.mean, s.stddev, throughput});
      }
    }
  }
  return rows;
}

void RunParsecGrid(const char* figure_name, const ParsecGridOptions& opts) {
  PrintHeader(figure_name,
              "mini-PARSEC: time in seconds; rows = app x threads x mechanism; "
              "checksums verified against the Pthreads reference");
  std::printf("# backend=%s scale=%llu trials=%llu\n", BackendName(opts.backend),
              static_cast<unsigned long long>(opts.scale),
              static_cast<unsigned long long>(opts.trials));
  PrintColumns({"app", "threads", "mechanism", "mean_s", "stddev_s",
                "throughput"});

  for (const ParsecGridRow& r : CollectParsecGrid(opts)) {
    char mean[32];
    char dev[32];
    char tput[32];
    std::snprintf(mean, sizeof(mean), "%.4f", r.mean_s);
    std::snprintf(dev, sizeof(dev), "%.4f", r.stddev_s);
    std::snprintf(tput, sizeof(tput), "%.2f", r.throughput);
    PrintColumns({r.app, std::to_string(r.threads), MechanismName(r.mech), mean,
                  dev, tput});
  }
}

}  // namespace tcs
