// Figure 2.4: bounded buffer performance with lazy STM.
// Flags: --ops=N --trials=N --max_side=N --paper (2^20 ops, 5 trials).
#include "bench/bounded_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::BoundedGridOptions opts;
  opts.backend = tcs::Backend::kLazyStm;
  opts.include_retry_orig = true;
  opts = tcs::ApplyFlags(opts, flags);
  tcs::RunBoundedGrid("Figure 2.4 (bounded buffer, lazy STM)", opts);
  return 0;
}
