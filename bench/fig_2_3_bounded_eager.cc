// Figure 2.3: bounded buffer performance with eager STM.
// 16 panels (p ∈ {1,2,4,8} × c ∈ {1,2,4,8}), buffer ∈ {4,16,128}, 7 mechanisms.
// Flags: --ops=N --trials=N --max_side=N --paper (2^20 ops, 5 trials).
#include "bench/bounded_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::BoundedGridOptions opts;
  opts.backend = tcs::Backend::kEagerStm;
  opts.include_retry_orig = true;
  opts = tcs::ApplyFlags(opts, flags);
  tcs::RunBoundedGrid("Figure 2.3 (bounded buffer, eager STM)", opts);
  return 0;
}
