#include "bench/waiter_scale.h"

#include <pthread.h>
#include <sys/mman.h>

#include <atomic>
#include <chrono>
#include <climits>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/assert.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/tm/tm_system.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: ack and phase counters published by waiter threads and
// observed by the trial body (additionally ordered by thread join at the
// end). acquire/release is a uniform upper bound chosen over per-site
// minimality; none of these sites needs seq_cst totality.

namespace tcs {
namespace {

// One cell per cache line so cells stay in distinct orecs on every backend
// (same rationale as wake_scenarios.cc): the verify phase relies on "one
// commit concerns exactly one waiter".
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

constexpr std::uint64_t kStop = ~std::uint64_t{0};

// 10^5 glibc-default 8MB stacks would reserve ~800GB of address space and two
// VMAs per thread (default vm.max_map_count is 65530, so per-thread stacks
// alone cap the spawn near 32k threads); the waiters only run a retry loop
// over heap-allocated TM state, so a small fixed stack is plenty.
constexpr std::size_t kWaiterStackBytes = 256 * 1024;

// One anonymous mapping carved into fixed-size waiter stacks: the whole
// 10^5-stack arena is a single VMA (pages materialize on first touch), so the
// spawn never brushes vm.max_map_count. No per-stack guard page — the waiters
// are shallow (a retry loop over heap TM state) and 256KB is ~25x their
// worst-case depth. Must outlive every thread it backs (trial joins all
// waiters before returning).
class StackArena {
 public:
  StackArena(std::size_t count, std::size_t bytes_each)
      : bytes_each_(bytes_each), size_(count * bytes_each) {
#if defined(MAP_NORESERVE)
    const int flags = MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE;
#else
    const int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#endif
    void* p = mmap(nullptr, size_, PROT_READ | PROT_WRITE, flags, -1, 0);
    base_ = (p == MAP_FAILED) ? nullptr : p;
  }
  ~StackArena() {
    if (base_ != nullptr) {
      munmap(base_, size_);
    }
  }
  StackArena(const StackArena&) = delete;
  StackArena& operator=(const StackArena&) = delete;

  bool ok() const { return base_ != nullptr; }
  void* StackOf(std::size_t i) {
    return static_cast<char*>(base_) + i * bytes_each_;
  }
  std::size_t bytes_each() const { return bytes_each_; }

 private:
  std::size_t bytes_each_;
  std::size_t size_;
  void* base_ = nullptr;
};

long ReadProcLong(const char* path, long fallback) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    return fallback;
  }
  long v = fallback;
  if (std::fscanf(f, "%ld", &v) != 1) {
    v = fallback;
  }
  std::fclose(f);
  return v;
}

// Threads alive system-wide: fourth field of /proc/loadavg is
// "runnable/total".
long SystemThreadCount() {
  std::FILE* f = std::fopen("/proc/loadavg", "r");
  if (f == nullptr) {
    return 0;
  }
  double l1, l5, l15;
  long runnable = 0, total = 0;
  if (std::fscanf(f, "%lf %lf %lf %ld/%ld", &l1, &l5, &l15, &runnable,
                  &total) != 5) {
    total = 0;
  }
  std::fclose(f);
  return total;
}

// Every pthread consumes a PID, so kernel.pid_max (stock: 32768) bounds the
// spawn regardless of stack size. Clamp the target to the remaining PID
// budget (minus headroom for the rest of the system) instead of letting
// pthread_create fail EAGAIN a third of the way through a 10^5 point.
int SpawnCeiling(int requested) {
  const long pid_max = ReadProcLong("/proc/sys/kernel/pid_max", LONG_MAX);
  if (pid_max == LONG_MAX) {
    return requested;  // not Linux (or /proc unavailable): no clamp
  }
  long budget = pid_max - SystemThreadCount() - 512;
  if (budget < 1) {
    budget = 1;
  }
  return static_cast<int>(
      std::min<long>(static_cast<long>(requested), budget));
}

struct TrialCtx {
  Runtime* rt = nullptr;
  PaddedCell* cells = nullptr;
  const WaiterScaleOptions* opts = nullptr;
  std::atomic<std::uint64_t> ack_count{0};
  // Timed waiters bump this after their first RetryFor round completes (a
  // timeout — nothing is written during the park phase), proving they have
  // descheduled at least once and materialized their registry/index segment.
  std::atomic<int> timed_entered{0};
};

struct WaiterArg {
  TrialCtx* ctx = nullptr;
  int index = 0;
  bool timed = false;
};

void RunUntimedWaiter(TrialCtx& ctx, int w) {
  Runtime& rt = *ctx.rt;
  std::uint64_t last_seen = 0;
  for (;;) {
    std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
      std::uint64_t cur = tx.Load(ctx.cells[w].v);
      if (cur == last_seen) {
        tx.Retry();
      }
      return cur;
    });
    if (v == kStop) {
      return;
    }
    last_seen = v;
    // mo: release — [harness] publish the ack to the trial body.
    ctx.ack_count.fetch_add(1, std::memory_order_release);
  }
}

void RunTimedWaiter(TrialCtx& ctx, int w) {
  Runtime& rt = *ctx.rt;
  const std::chrono::nanoseconds timeout =
      std::chrono::milliseconds(ctx.opts->timed_timeout_ms);
  std::uint64_t last_seen = 0;
  bool first_round = true;
  for (;;) {
    std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
      std::uint64_t cur = tx.Load(ctx.cells[w].v);
      if (cur == last_seen) {
        // kTimedOut returns inline (the deadline spans restarts); a genuine
        // wake restarts the transaction and re-reads a changed cell instead.
        if (tx.RetryFor(timeout) == WaitResult::kTimedOut) {
          return cur;
        }
      }
      return cur;
    });
    if (first_round) {
      first_round = false;
      // mo: release — [harness] publish park-phase progress to the trial body.
      ctx.timed_entered.fetch_add(1, std::memory_order_release);
    }
    if (v == kStop) {
      return;
    }
    if (v != last_seen) {
      last_seen = v;
      // mo: release — [harness] publish the ack to the trial body.
      ctx.ack_count.fetch_add(1, std::memory_order_release);
    }
    // v == last_seen: the bounded wait expired; loop around and re-arm.
  }
}

void* WaiterMain(void* p) {
  WaiterArg* arg = static_cast<WaiterArg*>(p);
  if (arg->timed) {
    RunTimedWaiter(*arg->ctx, arg->index);
  } else {
    RunUntimedWaiter(*arg->ctx, arg->index);
  }
  return nullptr;
}

}  // namespace

WaiterScaleResult RunWaiterScaleTrial(const WaiterScaleOptions& opts) {
  TCS_CHECK(opts.waiters > 0);
  const int target = SpawnCeiling(opts.waiters);
  TmConfig cfg;
  cfg.backend = opts.backend;
  cfg.max_threads = target + 64;
  cfg.park_backend = opts.park_backend;
  cfg.timer_wheel = opts.timer_wheel;
  Runtime rt(cfg);

  auto cells =
      std::make_unique<PaddedCell[]>(static_cast<std::size_t>(target));
  TrialCtx ctx;
  ctx.rt = &rt;
  ctx.cells = cells.get();
  ctx.opts = &opts;

  auto args = std::make_unique<WaiterArg[]>(static_cast<std::size_t>(target));
  std::vector<pthread_t> threads;
  threads.reserve(static_cast<std::size_t>(target));
  StackArena arena(static_cast<std::size_t>(target), kWaiterStackBytes);
  pthread_attr_t attr;
  TCS_CHECK(pthread_attr_init(&attr) == 0);
  if (!arena.ok()) {
    // Arena reservation failed: fall back to per-thread kernel stacks (two
    // VMAs each, so the map limit may cap `spawned` — reported honestly).
    TCS_CHECK(pthread_attr_setstacksize(&attr, kWaiterStackBytes) == 0);
  }

  const double t_spawn = NowSec();
  int spawned = 0;
  int timed_spawned = 0;
  for (int w = 0; w < target; ++w) {
    const bool timed = opts.timed_every > 0 && (w % opts.timed_every) == 0 &&
                       opts.timed_every <= target;
    args[w] = WaiterArg{&ctx, w, timed};
    if (arena.ok()) {
      TCS_CHECK(pthread_attr_setstack(&attr,
                                      arena.StackOf(static_cast<std::size_t>(w)),
                                      arena.bytes_each()) == 0);
    }
    pthread_t t;
    if (pthread_create(&t, &attr, &WaiterMain, &args[w]) != 0) {
      // EAGAIN (thread/VMA limits): run the point at whatever count the
      // machine supports and report the degraded `spawned` honestly.
      break;
    }
    threads.push_back(t);
    spawned++;
    if (timed) {
      timed_spawned++;
    }
  }
  pthread_attr_destroy(&attr);
  const int untimed_spawned = spawned - timed_spawned;

  // Park barrier. Untimed waiters stay registered until woken, so the
  // registry count reaching their total means all of them are parked. Timed
  // waiters churn (deregistering for a moment on every timeout), so an exact
  // RegisteredCount match may never hold; their first completed RetryFor
  // round is the proof they parked and materialized their segments.
  while (rt.sys().waiters().RegisteredCount() < untimed_spawned ||
         // mo: acquire — [harness] observe worker-published progress.
         ctx.timed_entered.load(std::memory_order_acquire) < timed_spawned) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double t_parked = NowSec();

  // Footprint while everyone is (or has been) parked. Segments are never
  // freed, so the snapshot is the high-water mark even if timed waiters are
  // momentarily between registrations.
  TmSystem::ObsSnapshot obs_parked = rt.sys().SnapshotObs();
  // Timed waits completed during the park phase (cleared by ResetStats below;
  // added back so timed_waits covers the whole trial).
  const std::uint64_t park_phase_timeouts =
      rt.AggregateStats().Get(Counter::kWaitTimeouts);
  rt.ResetStats();

  // Verify phase: each round writes a fresh value to a DISTINCT cell, so
  // expected acks == rounds exactly (a second write to the same cell could
  // land while its waiter is still between wake and re-park, coalescing two
  // wakes into one observed change — a false "lost wakeup").
  const std::uint64_t rounds =
      spawned > 0
          ? std::min<std::uint64_t>(opts.wake_rounds,
                                    static_cast<std::uint64_t>(spawned))
          : 0;
  const double t_wake0 = NowSec();
  for (std::uint64_t i = 1; i <= rounds; ++i) {
    const int w = static_cast<int>((i - 1) % static_cast<std::uint64_t>(spawned));
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, i); });
  }
  // Grace: every woken waiter acks before re-parking; 30s is orders of
  // magnitude beyond any real hand-off, so a shortfall is a lost wakeup, not
  // impatience.
  const auto grace_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  // mo: acquire — [harness] observe worker-published acks.
  while (ctx.ack_count.load(std::memory_order_acquire) < rounds &&
         std::chrono::steady_clock::now() < grace_deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double t_wake1 = NowSec();

  TxStats st = rt.AggregateStats();
  TmSystem::ObsSnapshot obs_end = rt.sys().SnapshotObs();

  // Release + join. Every join completing is the definitive no-lost-wakeup
  // check for the release broadcast itself.
  for (int w = 0; w < spawned; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, kStop); });
  }
  for (pthread_t t : threads) {
    pthread_join(t, nullptr);
  }

  WaiterScaleResult r;
  r.backend = opts.backend;
  r.requested_waiters = opts.waiters;
  r.waiters = target;
  r.spawned = spawned;
  r.park_backend = opts.park_backend;
  r.uses_futex = rt.sys().parking().UsesFutex();
  r.timer_wheel = opts.timer_wheel;
  r.park_seconds = t_parked - t_spawn;
  r.wake_seconds = t_wake1 - t_wake0;
  r.wake_rounds = rounds;
  // mo: acquire — [harness] observe worker-published acks (joins above also
  // order everything, belt and braces).
  r.acks = ctx.ack_count.load(std::memory_order_acquire);
  r.lost_wakeups = r.acks >= rounds ? 0 : rounds - r.acks;
  r.registry_bytes = obs_parked.condsync_registry_bytes;
  r.wake_index_bytes = obs_parked.condsync_wake_index_bytes;
  r.registry_segments = obs_parked.registry_segments;
  r.mem_bytes_per_waiter =
      spawned > 0 ? static_cast<double>(r.registry_bytes + r.wake_index_bytes) /
                        static_cast<double>(spawned)
                  : 0.0;
  r.timed_waits = park_phase_timeouts + st.Get(Counter::kWaitTimeouts);
  r.wheel_ticks = obs_end.wheel.ticks;
  r.wheel_scheduled = obs_end.wheel.scheduled;
  r.wheel_fired = obs_end.wheel.fired;
  r.wheel_stale = obs_end.wheel.stale;
  r.wheel_max_lag_ns = obs_end.wheel.max_lag_ns;
  r.wake_latency_count = obs_end.wake_latency.Count();
  r.wake_p50_ns = obs_end.wake_latency.Percentile(50);
  r.wake_p99_ns = obs_end.wake_latency.Percentile(99);
  r.wake_p999_ns = obs_end.wake_latency.Percentile(99.9);
  return r;
}

}  // namespace tcs
