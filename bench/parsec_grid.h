// The mini-PARSEC sweep behind Figures 2.6-2.8: app × thread count × mechanism,
// reporting seconds (the paper's bar heights).
#ifndef TCS_BENCH_PARSEC_GRID_H_
#define TCS_BENCH_PARSEC_GRID_H_

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/mechanism.h"
#include "src/tm/tm_config.h"

namespace tcs {

struct ParsecGridOptions {
  Backend backend = Backend::kEagerStm;
  bool include_retry_orig = true;
  std::uint64_t scale = 4;
  std::uint64_t trials = 3;
  int max_threads = 8;
  // Restrict to these apps when non-empty (bench_main --quick uses a subset).
  std::vector<std::string> apps;
};

struct ParsecGridRow {
  std::string app;
  int threads;
  Mechanism mech;
  double mean_s;
  double stddev_s;
  // Scale-normalized throughput (workload units per second): scale / mean_s,
  // comparable across runs with different --scale values.
  double throughput;
};

// Runs the sweep and returns one row per (app, threads, mechanism); aborts if
// any mechanism disagrees with the run's reference checksum.
std::vector<ParsecGridRow> CollectParsecGrid(const ParsecGridOptions& opts);

void RunParsecGrid(const char* figure_name, const ParsecGridOptions& opts);

ParsecGridOptions ApplyParsecFlags(ParsecGridOptions opts, const BenchFlags& flags);

}  // namespace tcs

#endif  // TCS_BENCH_PARSEC_GRID_H_
