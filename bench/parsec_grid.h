// The mini-PARSEC sweep behind Figures 2.6-2.8: app × thread count × mechanism,
// reporting seconds (the paper's bar heights).
#ifndef TCS_BENCH_PARSEC_GRID_H_
#define TCS_BENCH_PARSEC_GRID_H_

#include "bench/bench_util.h"
#include "src/tm/tm_config.h"

namespace tcs {

struct ParsecGridOptions {
  Backend backend = Backend::kEagerStm;
  bool include_retry_orig = true;
  std::uint64_t scale = 4;
  std::uint64_t trials = 3;
  int max_threads = 8;
};

void RunParsecGrid(const char* figure_name, const ParsecGridOptions& opts);

ParsecGridOptions ApplyParsecFlags(ParsecGridOptions opts, const BenchFlags& flags);

}  // namespace tcs

#endif  // TCS_BENCH_PARSEC_GRID_H_
