// Table 2.1: lines of code added and removed for different condition-
// synchronization mechanisms in (mini-)PARSEC.
//
// The paper counts source lines changed when porting each benchmark from
// condition variables to WaitPred / Await / Retry. This harness regenerates the
// analogous table from *measured* source: for each app, it sums — over the app's
// synchronization points (whose kinds mirror the original benchmark's structure)
// — the per-mechanism arm of the adapter operation implementing that point, and
// reports the pthread/condvar code those arms replace as "Removed". Counts are
// parsed from the adapter sources at src/sync/ on every run, so the table tracks
// the code.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"

namespace tcs {
namespace {

#ifndef TCS_SOURCE_DIR
#error "TCS_SOURCE_DIR must be defined by the build"
#endif

std::vector<std::string> ReadLines(const std::string& rel_path) {
  std::string path = std::string(TCS_SOURCE_DIR) + "/" + rel_path;
  std::ifstream in(path);
  TCS_CHECK_MSG(in.good(), "cannot open adapter source for line counting");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// Index of the line containing `needle`, starting at `from`; -1 if absent.
int FindLine(const std::vector<std::string>& lines, const std::string& needle,
             int from = 0) {
  for (int i = from; i < static_cast<int>(lines.size()); ++i) {
    if (lines[i].find(needle) != std::string::npos) {
      return i;
    }
  }
  return -1;
}

// Given the index of a line that opens a block, returns the index of the line
// closing it (brace tracking).
int BlockEnd(const std::vector<std::string>& lines, int open_idx) {
  int depth = 0;
  for (int i = open_idx; i < static_cast<int>(lines.size()); ++i) {
    for (char c : lines[i]) {
      if (c == '{') {
        depth++;
      } else if (c == '}') {
        depth--;
        if (depth == 0) {
          return i;
        }
      }
    }
  }
  TCS_CHECK_MSG(false, "unbalanced braces in adapter source");
  return -1;
}

int CountNonBlank(const std::vector<std::string>& lines, int first, int last) {
  int n = 0;
  for (int i = first; i <= last; ++i) {
    bool blank = true;
    for (char c : lines[i]) {
      if (c != ' ' && c != '\t') {
        blank = false;
        break;
      }
    }
    if (!blank) {
      n++;
    }
  }
  return n;
}

struct OpSource {
  std::string file;       // relative to the repo root
  std::string signature;  // locates the operation's function
};

// The adapter operation implementing each synchronization-point kind.
const std::map<SyncKind, OpSource>& OpSources() {
  static const auto* m = new std::map<SyncKind, OpSource>{
      {SyncKind::kQueuePop,
       {"src/sync/work_queue.cc", "std::optional<std::uint64_t> WorkQueue::Pop()"}},
      {SyncKind::kQueuePush, {"src/sync/work_queue.cc", "void WorkQueue::Push("}},
      {SyncKind::kBarrier,
       {"src/sync/phase_barrier.cc", "void PhaseBarrier::ArriveAndWait()"}},
      {SyncKind::kGate, {"src/sync/ticket_gate.cc", "void TicketGate::WaitFor("}},
  };
  return *m;
}

struct KindCounts {
  int waitpred = 0;
  int await = 0;
  int retry = 0;
  int removed = 0;  // pthread mutex/condvar lines the mechanism arms replace
};

// Lines of the `case Mechanism::kX:` arm inside [first, last].
int ArmLines(const std::vector<std::string>& lines, int first, int last,
             const std::string& label) {
  int start = FindLine(lines, "case Mechanism::" + label + ":", first);
  if (start < 0 || start > last) {
    return 0;
  }
  int end = start;
  for (int i = start + 1; i <= last; ++i) {
    if (lines[i].find("case Mechanism::") != std::string::npos ||
        lines[i].find("default:") != std::string::npos) {
      break;
    }
    end = i;
  }
  return CountNonBlank(lines, start, end);
}

// Pthread-path lines of one adapter operation: the dedicated *Pthreads helper if
// the operation has one, otherwise the inline `if (mech_ == kPthreads)` block.
int PthreadLines(const std::vector<std::string>& lines, const OpSource& op) {
  if (op.signature.find("WorkQueue::Pop") != std::string::npos) {
    int f = FindLine(lines, "std::optional<std::uint64_t> WorkQueue::PopPthreads()");
    return CountNonBlank(lines, f, BlockEnd(lines, f));
  }
  if (op.signature.find("WorkQueue::Push") != std::string::npos) {
    int f = FindLine(lines, "void WorkQueue::PushPthreads(");
    return CountNonBlank(lines, f, BlockEnd(lines, f));
  }
  int f = FindLine(lines, op.signature);
  TCS_CHECK(f >= 0);
  int body_end = BlockEnd(lines, f);
  int p = FindLine(lines, "Mechanism::kPthreads", f);
  TCS_CHECK(p >= 0 && p <= body_end);
  return CountNonBlank(lines, p, BlockEnd(lines, p));
}

KindCounts CountsForKind(SyncKind kind) {
  const OpSource& op = OpSources().at(kind);
  std::vector<std::string> lines = ReadLines(op.file);
  int f = FindLine(lines, op.signature);
  TCS_CHECK_MSG(f >= 0, "adapter operation signature not found");
  int end = BlockEnd(lines, f);
  KindCounts k;
  k.waitpred = ArmLines(lines, f, end, "kWaitPred");
  k.await = ArmLines(lines, f, end, "kAwait");
  k.retry = ArmLines(lines, f, end, "kRetry");
  k.removed = PthreadLines(lines, op);
  return k;
}

}  // namespace
}  // namespace tcs

int main() {
  using namespace tcs;
  std::printf(
      "# Table 2.1: lines of code added and removed for different condition\n"
      "# synchronization mechanisms in mini-PARSEC. Numbers in parentheses are\n"
      "# the unique condition-synchronization points per benchmark (matching the\n"
      "# original PARSEC counts). Counts are measured from src/sync/ sources.\n");
  std::printf("%-20s %-9s %-7s %-7s %-8s\n", "benchmark", "WaitPred", "Await",
              "Retry", "Removed");

  std::map<int, KindCounts> cache;
  for (const AppInfo& app : MiniParsecApps()) {
    KindCounts total;
    for (const SyncPointInfo& sp : app.sync_points) {
      int key = static_cast<int>(sp.kind);
      if (cache.find(key) == cache.end()) {
        cache[key] = CountsForKind(sp.kind);
      }
      const KindCounts& k = cache[key];
      total.waitpred += k.waitpred;
      total.await += k.await;
      total.retry += k.retry;
      total.removed += k.removed;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "%s (%zu)", app.name,
                  app.sync_points.size());
    std::printf("%-20s %-9d %-7d %-7d %-8d\n", name, total.waitpred, total.await,
                total.retry, total.removed);
  }
  return 0;
}
