#include "bench/bounded_grid.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/sync/bounded_buffer.h"

namespace tcs {
namespace {

double RunTrial(Backend backend, Mechanism mech, int producers, int consumers,
                std::uint64_t buffer_size, std::uint64_t total_ops) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(mech)) {
    TmConfig cfg;
    cfg.backend = backend;
    cfg.max_threads = producers + consumers + 4;
    rt = std::make_unique<Runtime>(cfg);
  }
  BoundedBuffer buf(rt.get(), mech, buffer_size);
  buf.UnsafePrefill(buffer_size / 2, 1'000'000);

  std::uint64_t per_producer = total_ops / static_cast<std::uint64_t>(producers);
  std::uint64_t produced = per_producer * static_cast<std::uint64_t>(producers);
  std::uint64_t per_consumer = produced / static_cast<std::uint64_t>(consumers);
  std::uint64_t consumed = per_consumer * static_cast<std::uint64_t>(consumers);
  // Keep the buffer population balanced across the trial: consume exactly what
  // gets produced, leaving the prefill in place.
  std::uint64_t leftover = produced - consumed;

  double t0 = NowSec();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        buf.Produce(static_cast<std::uint64_t>(p) * per_producer + i);
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < per_consumer; ++i) {
        buf.Consume();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Drain the division remainder so every trial moves the same element count.
  for (std::uint64_t i = 0; i < leftover; ++i) {
    buf.Consume();
  }
  return NowSec() - t0;
}

}  // namespace

BoundedGridOptions ApplyFlags(BoundedGridOptions opts, const BenchFlags& flags) {
  if (flags.GetBool("paper", false)) {
    // Paper-scale run: 2^20 elements, 5 trials (§2.4.1).
    opts.ops = 1 << 20;
    opts.trials = 5;
  }
  opts.ops = flags.GetU64("ops", opts.ops);
  opts.trials = flags.GetU64("trials", opts.trials);
  opts.max_side = static_cast<int>(flags.GetU64("max_side", opts.max_side));
  return opts;
}

std::vector<BoundedGridRow> CollectBoundedGrid(const BoundedGridOptions& opts) {
  std::vector<BoundedGridRow> rows;
  for (int p : {1, 2, 4, 8}) {
    for (int c : {1, 2, 4, 8}) {
      if (p > opts.max_side || c > opts.max_side) {
        continue;
      }
      for (std::uint64_t buf : {std::uint64_t{4}, std::uint64_t{16},
                                std::uint64_t{128}}) {
        for (Mechanism m : kAllMechanisms) {
          if (m == Mechanism::kRetryOrig && !opts.include_retry_orig) {
            continue;
          }
          std::vector<double> samples;
          for (std::uint64_t t = 0; t < opts.trials; ++t) {
            samples.push_back(RunTrial(opts.backend, m, p, c, buf, opts.ops));
          }
          TrialStats s = Summarize(samples);
          rows.push_back({p, c, buf, m, s.mean, s.stddev});
        }
      }
    }
  }
  return rows;
}

void RunBoundedGrid(const char* figure_name, const BoundedGridOptions& opts) {
  PrintHeader(figure_name,
              "bounded buffer: time in seconds per trial; rows = panel(p-c) x "
              "buffer size x mechanism");
  std::printf("# backend=%s ops=%llu trials=%llu\n", BackendName(opts.backend),
              static_cast<unsigned long long>(opts.ops),
              static_cast<unsigned long long>(opts.trials));
  PrintColumns({"panel", "bufsize", "mechanism", "mean_s", "stddev_s"});

  for (const BoundedGridRow& r : CollectBoundedGrid(opts)) {
    char panel[16];
    std::snprintf(panel, sizeof(panel), "p%d-c%d", r.producers, r.consumers);
    char mean[32];
    char dev[32];
    std::snprintf(mean, sizeof(mean), "%.4f", r.mean_s);
    std::snprintf(dev, sizeof(dev), "%.4f", r.stddev_s);
    PrintColumns({panel, std::to_string(r.buffer_size), MechanismName(r.mech),
                  mean, dev});
  }
}

}  // namespace tcs
