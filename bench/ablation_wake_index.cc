// Ablation: sharded wake index vs the paper's global wakeWaiters scan.
//
// N waiters park on N disjoint buffers; one hot producer commits writes to a
// single buffer. Under the global scan every producer commit re-runs all N
// waiters' predicates; under the wake index it checks only the shard covering
// the hot buffer (~1 waiter). Wake-path throughput (producer commits/sec) and
// wake checks per commit quantify the O(all) → O(relevant) win.
//
// Flags: --commits=N --waiters=a,b,... (default 4,16,64) --backend=0|1|2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wake_scenarios.h"

namespace {

std::vector<int> ParseWaiterList(int argc, char** argv,
                                 std::vector<int> def) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--waiters=";
    if (arg.rfind(prefix, 0) != 0) {
      continue;
    }
    std::vector<int> out;
    const char* p = arg.c_str() + prefix.size();
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p || v <= 0) {
        std::fprintf(stderr, "bad --waiters list: %s\n", arg.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    return out;
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t commits = flags.GetU64("commits", 4000);
  Backend backend = static_cast<Backend>(flags.GetU64("backend", 0));
  std::vector<int> waiter_counts = ParseWaiterList(argc, argv, {4, 16, 64});

  PrintHeader("Ablation: sharded wake index vs global scan",
              "N disjoint waiters, 1 hot producer; targeted wakeup work scales "
              "with write-set-relevant waiters, not total registered waiters");
  std::printf("# backend=%s commits=%llu\n", BackendName(backend),
              static_cast<unsigned long long>(commits));
  std::printf("%-8s %-12s %12s %18s %18s %10s\n", "waiters", "mode",
              "wake_checks", "checks_per_commit", "commits_per_sec", "seconds");

  for (int n : waiter_counts) {
    WakeTrialResult scan = RunWakeIndexTrial(backend, /*targeted=*/false, n,
                                             commits);
    WakeTrialResult idx = RunWakeIndexTrial(backend, /*targeted=*/true, n,
                                            commits);
    for (const WakeTrialResult* r : {&scan, &idx}) {
      std::printf("%-8d %-12s %12llu %18.2f %18.0f %10.4f\n", r->waiters,
                  r->targeted ? "wake_index" : "global_scan",
                  static_cast<unsigned long long>(r->wake_checks),
                  r->wake_checks_per_commit, r->commits_per_sec, r->seconds);
    }
    double speedup = scan.commits_per_sec > 0
                         ? idx.commits_per_sec / scan.commits_per_sec
                         : 0.0;
    std::printf("# waiters=%d speedup(wake_index/global_scan)=%.2fx\n", n,
                speedup);
  }
  return 0;
}
