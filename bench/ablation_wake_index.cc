// Ablation: sharded wake index vs the paper's global wakeWaiters scan.
//
// N waiters park on N disjoint buffers; one hot producer commits writes to a
// single buffer. Under the global scan every producer commit re-runs all N
// waiters' predicates; under the wake index it checks only the shard covering
// the hot buffer (~1 waiter). Wake-path throughput (producer commits/sec) and
// wake checks per commit quantify the O(all) → O(relevant) win.
//
// With --shards the targeted trial is additionally swept over shard counts:
// wake_checks_per_commit above 1.0 is shard aliasing, which more shards
// shrink (the >64-shard bitmap index exists for exactly this).
//
// Flags: --commits=N --waiters=a,b,... (default 4,16,64) --backend=0|1|2
//        --shards=a,b,... (optional shard-count sweep, e.g. 64,256,1024)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wake_scenarios.h"
#include "src/condsync/wake_index.h"

namespace {

std::vector<int> ParseIntList(int argc, char** argv, const std::string& key,
                              std::vector<int> def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) != 0) {
      continue;
    }
    std::vector<int> out;
    const char* p = arg.c_str() + prefix.size();
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p || v <= 0) {
        std::fprintf(stderr, "bad --%s list: %s\n", key.c_str(), arg.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    return out;
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t commits = flags.GetU64("commits", 4000);
  Backend backend = static_cast<Backend>(flags.GetU64("backend", 0));
  std::vector<int> waiter_counts =
      ParseIntList(argc, argv, "waiters", {4, 16, 64});
  std::vector<int> shard_counts = ParseIntList(argc, argv, "shards", {});
  for (int s : shard_counts) {
    if ((s & (s - 1)) != 0 || s > WakeIndex::kMaxShards) {
      std::fprintf(stderr,
                   "bad --shards value %d: must be a power of two in [1, %d]\n",
                   s, WakeIndex::kMaxShards);
      return 2;
    }
  }

  PrintHeader("Ablation: sharded wake index vs global scan",
              "N disjoint waiters, 1 hot producer; targeted wakeup work scales "
              "with write-set-relevant waiters, not total registered waiters");
  std::printf("# backend=%s commits=%llu\n", BackendName(backend),
              static_cast<unsigned long long>(commits));
  std::printf("%-8s %-12s %12s %18s %18s %10s\n", "waiters", "mode",
              "wake_checks", "checks_per_commit", "commits_per_sec", "seconds");

  for (int n : waiter_counts) {
    WakeTrialResult scan = RunWakeIndexTrial(backend, /*targeted=*/false, n,
                                             commits);
    WakeTrialResult idx = RunWakeIndexTrial(backend, /*targeted=*/true, n,
                                            commits);
    for (const WakeTrialResult* r : {&scan, &idx}) {
      std::printf("%-8d %-12s %12llu %18.2f %18.0f %10.4f\n", r->waiters,
                  r->targeted ? "wake_index" : "global_scan",
                  static_cast<unsigned long long>(r->wake_checks),
                  r->wake_checks_per_commit, r->commits_per_sec, r->seconds);
    }
    double speedup = scan.commits_per_sec > 0
                         ? idx.commits_per_sec / scan.commits_per_sec
                         : 0.0;
    std::printf("# waiters=%d speedup(wake_index/global_scan)=%.2fx\n", n,
                speedup);
  }

  if (!shard_counts.empty()) {
    std::printf("\n# shard-count sweep (targeted, silent producer: "
                "checks_per_commit == waiters aliased into the hot shard; "
                "1.0 is ideal)\n");
    std::printf("%-8s %-8s %12s %18s %18s %10s\n", "waiters", "shards",
                "wake_checks", "checks_per_commit", "commits_per_sec",
                "seconds");
    for (int n : waiter_counts) {
      for (int shards : shard_counts) {
        WakeTrialOptions opts;
        opts.backend = backend;
        opts.targeted = true;
        opts.waiters = n;
        opts.producer_commits = commits;
        opts.num_shards = shards;
        opts.silent_producer = true;
        WakeTrialResult r = RunWakeIndexTrial(opts);
        std::printf("%-8d %-8d %12llu %18.2f %18.0f %10.4f\n", r.waiters,
                    r.num_shards,
                    static_cast<unsigned long long>(r.wake_checks),
                    r.wake_checks_per_commit, r.commits_per_sec, r.seconds);
      }
    }
  }
  return 0;
}
