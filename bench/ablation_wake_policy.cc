// Ablation: broadcast vs single-wake policy (§2.4.1 diagnoses the pathological
// p1-cN behavior — "after the production, 4 consumers are woken. They all
// contend for the same element, one succeeds, three fail, and then the failed
// threads go back to sleep"). The wake_single configuration stops the waiter
// scan at the first satisfied waiter, emulating pthread-style signal.
//
// Flags: --ops=N
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/sync/bounded_buffer.h"

namespace tcs {
namespace {

struct Row {
  bool wake_single;
  double seconds;
  std::uint64_t wakeups;
  std::uint64_t false_wakeups;
};

Row RunOne(bool wake_single, std::uint64_t ops) {
  TmConfig cfg;
  cfg.backend = Backend::kEagerStm;
  cfg.max_threads = 16;
  cfg.wake_single = wake_single;
  Runtime rt(cfg);
  BoundedBuffer buf(&rt, Mechanism::kRetry, 4);

  constexpr int kConsumers = 4;
  std::uint64_t per_consumer = ops / kConsumers;
  double t0 = NowSec();
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < per_consumer; ++i) {
        buf.Consume();
      }
    });
  }
  threads.emplace_back([&] {
    for (std::uint64_t i = 0; i < per_consumer * kConsumers; ++i) {
      buf.Produce(i);
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  double t1 = NowSec();
  TxStats s = rt.AggregateStats();
  return {wake_single, t1 - t0, s.Get(Counter::kWakeups),
          s.Get(Counter::kFalseWakeups)};
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) {
  using namespace tcs;
  BenchFlags flags(argc, argv);
  std::uint64_t ops = flags.GetU64("ops", 1 << 13);
  PrintHeader("Ablation: wake policy (broadcast vs single)",
              "p1-c4 bounded buffer with Retry; single-wake emulates pthread "
              "signal and avoids thundering-herd false wakeups");
  std::printf("# ops=%llu\n", static_cast<unsigned long long>(ops));
  std::printf("%-12s %10s %10s %14s\n", "policy", "seconds", "wakeups",
              "false_wakeups");
  for (bool single : {false, true}) {
    Row r = RunOne(single, ops);
    std::printf("%-12s %10.4f %10llu %14llu\n",
                r.wake_single ? "single" : "broadcast", r.seconds,
                static_cast<unsigned long long>(r.wakeups),
                static_cast<unsigned long long>(r.false_wakeups));
  }
  return 0;
}
