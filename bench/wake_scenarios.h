// The many-waiters wakeup scenarios behind the wake-index ablations: N waiters
// parked on N cache-line-padded buffers, one hot producer repeatedly touching a
// single buffer. With the sharded wake index a producer commit wake-checks only
// the shards its write lands in (~the relevant waiters); with the global scan
// it re-runs every registered waiter's predicate — O(all) vs O(relevant).
//
// Two waitset shapes:
//  * kDisjoint    — waiter w waits on cell w only; one relevant waiter per
//                   producer commit, so wake_checks_per_commit measures pure
//                   shard-aliasing noise (1.0 is ideal).
//  * kOverlapping — waiter w waits on cells {w, w+1 mod N}; a write to cell 0
//                   concerns waiters 0 and N-1, so ~2 checks per commit is
//                   ideal and the index must still prune the other N-2.
//
// The shard count is sweepable (64 / 256 / 1024 ablation): more shards mean
// fewer unrelated waiters aliasing into the hot shard.
#ifndef TCS_BENCH_WAKE_SCENARIOS_H_
#define TCS_BENCH_WAKE_SCENARIOS_H_

#include <cstdint>

#include "src/tm/tm_config.h"

namespace tcs {

enum class WaitsetShape : int {
  kDisjoint = 0,
  kOverlapping = 1,
};

const char* WaitsetShapeName(WaitsetShape s);

struct WakeTrialOptions {
  Backend backend = Backend::kEagerStm;
  bool targeted = true;
  int waiters = 0;
  std::uint64_t producer_commits = 0;
  // 0 = TmConfig's default shard count.
  int num_shards = 0;
  WaitsetShape shape = WaitsetShape::kDisjoint;
  // Silent producer: every commit writer-commits the hot cell's *unchanged*
  // value, so no waiter is ever satisfied and all N stay parked. This makes
  // wake_checks_per_commit a deterministic precision metric — exactly the
  // waiters aliasing into the hot cell's shard (1.0 is ideal) — instead of a
  // number dominated by how fast the woken waiter re-registers.
  bool silent_producer = false;
  // 0 = TmConfig's default wake batch size; 1 reverts to the paper's
  // one-transaction-per-candidate wake path (the batching ablation baseline).
  int wake_batch_size = 0;
  // Lock-free CAS wake-claim fast path (TmConfig::cas_claim_fast_path).
  // Disabling it reverts to the all-transactional claim baseline.
  bool cas_claim_fast_path = true;
  // Abort-rate-driven effective batch sizing (TmConfig::adaptive_wake_batch);
  // wake_batch_size becomes the cap. Disabling pins the batch at the cap.
  bool adaptive_wake_batch = true;
};

struct WakeTrialResult {
  Backend backend;
  bool targeted = false;
  int waiters = 0;
  int num_shards = 0;              // the count actually configured
  WaitsetShape shape = WaitsetShape::kDisjoint;
  bool silent_producer = false;
  int wake_batch_size = 0;         // the batch size actually configured
  std::uint64_t producer_commits = 0;
  double seconds = 0.0;            // hot-producer phase wall time
  double commits_per_sec = 0.0;    // wake-path throughput
  bool cas_claim_fast_path = false;  // as configured
  bool adaptive_wake_batch = false;  // as configured
  std::uint64_t wake_checks = 0;   // predicate evaluations writers paid
  std::uint64_t wake_batches = 0;  // internal wake transactions writers paid
  std::uint64_t cas_claims = 0;    // waiters claimed without any wake tx
  std::uint64_t cas_fallbacks = 0;  // fast-path bails into the batched path
  std::uint64_t wake_tx_aborts = 0;  // aborted wake-transaction attempts
  std::uint64_t wakeups = 0;       // all semaphore posts, vacuous included
  // Conservative empty-waitset posts: no evidence anyone was satisfied, so
  // precision rows report genuine_wakeups = wakeups - vacuous_wakeups.
  std::uint64_t vacuous_wakeups = 0;
  std::uint64_t genuine_wakeups = 0;
  double wake_checks_per_commit = 0.0;
  double wake_batches_per_commit = 0.0;
  // Latency distributions (log2-bucket histograms, src/obs/), sampled over the
  // hot-producer phase only. Commit latency covers the producer's committed
  // attempts; wake latency is the waker's semaphore post → waiter resume
  // hand-off. Percentile values are bucket upper bounds (conservative).
  std::uint64_t commit_latency_count = 0;
  std::uint64_t commit_p50_ns = 0;
  std::uint64_t commit_p99_ns = 0;
  std::uint64_t commit_p999_ns = 0;
  std::uint64_t wake_latency_count = 0;
  std::uint64_t wake_p50_ns = 0;
  std::uint64_t wake_p99_ns = 0;
  std::uint64_t wake_p999_ns = 0;
};

// Runs one trial: parks `waiters` threads on cache-line-padded cells (shape
// selects disjoint or neighbor-overlapping waitsets), then times
// `producer_commits` writer commits against cell 0 (waiter 0 cycles
// wake/sleep; all others stay parked except overlap neighbors), and finally
// releases everyone.
WakeTrialResult RunWakeIndexTrial(const WakeTrialOptions& opts);

// Convenience overload for the classic disjoint scenario at default shards.
WakeTrialResult RunWakeIndexTrial(Backend backend, bool targeted, int waiters,
                                  std::uint64_t producer_commits);

}  // namespace tcs

#endif  // TCS_BENCH_WAKE_SCENARIOS_H_
