// The many-waiters wakeup scenario behind the wake-index ablation: N waiters
// parked on N disjoint buffers, one hot producer repeatedly touching a single
// buffer. With the sharded wake index a producer commit wake-checks only the
// shard its write lands in (~1 relevant waiter); with the global scan it
// re-runs every registered waiter's predicate — O(all) vs O(relevant).
#ifndef TCS_BENCH_WAKE_SCENARIOS_H_
#define TCS_BENCH_WAKE_SCENARIOS_H_

#include <cstdint>

#include "src/tm/tm_config.h"

namespace tcs {

struct WakeTrialResult {
  Backend backend;
  bool targeted = false;
  int waiters = 0;
  std::uint64_t producer_commits = 0;
  double seconds = 0.0;            // hot-producer phase wall time
  double commits_per_sec = 0.0;    // wake-path throughput
  std::uint64_t wake_checks = 0;   // predicate evaluations writers paid
  std::uint64_t wakeups = 0;
  double wake_checks_per_commit = 0.0;
};

// Runs one trial: parks `waiters` threads on disjoint cache-line-padded cells,
// then times `producer_commits` writer commits against cell 0 (waiter 0 cycles
// wake/sleep; all others stay parked), and finally releases everyone.
WakeTrialResult RunWakeIndexTrial(Backend backend, bool targeted, int waiters,
                                  std::uint64_t producer_commits);

}  // namespace tcs

#endif  // TCS_BENCH_WAKE_SCENARIOS_H_
