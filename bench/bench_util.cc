#include "bench/bench_util.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tcs {

BenchFlags::BenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unknown argument: %s (expected --key=value)\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      kv_.emplace_back(std::string(arg + 2), "1");
    } else {
      kv_.emplace_back(std::string(arg + 2, eq), std::string(eq + 1));
    }
  }
}

bool BenchFlags::Has(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

std::uint64_t BenchFlags::GetU64(const std::string& key, std::uint64_t def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) {
      return std::strtoull(v.c_str(), nullptr, 10);
    }
  }
  return def;
}

bool BenchFlags::GetBool(const std::string& key, bool def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) {
      return v != "0" && v != "false";
    }
  }
  return def;
}

TrialStats Summarize(const std::vector<double>& samples) {
  TrialStats s;
  if (samples.empty()) {
    return s;
  }
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("# %s\n# %s\n", figure.c_str(), description.c_str());
}

void PrintColumns(const std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " ", cols[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace tcs
