// Unified benchmark runner: sweeps the bounded-buffer grid, the mini-PARSEC
// apps, and the wake-index ablation over a thread × backend × mechanism
// matrix, and emits one machine-readable BENCH_wakeup.json so performance is
// comparable PR-to-PR (the CI bench-smoke job uploads it as an artifact).
//
// Flags:
//   --quick              CI-sized run: eager backend only, small op counts
//   --out=PATH           output file (default BENCH_wakeup.json)
//   --scenario=NAME      all | wake_index | waiter_scale | bounded | parsec
//                        (default all)
//   --ops=N --trials=N --scale=N --max_threads=N --commits=N --many_commits=N
//   --scale_waiters=N    waiter_scale point size (default 1e5, --quick 1e4)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/bounded_grid.h"
#include "bench/parsec_grid.h"
#include "src/common/json_writer.h"
#include "bench/waiter_scale.h"
#include "bench/wake_scenarios.h"

namespace tcs {
namespace {

std::string FlagString(int argc, char** argv, const std::string& key,
                       const std::string& def) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return def;
}

void EmitWakeTrialRow(JsonWriter& w, const WakeTrialResult& r) {
  w.BeginObject();
  w.Key("backend").String(BackendName(r.backend));
  w.Key("mode").String(r.targeted ? "wake_index" : "global_scan");
  w.Key("waiters").Int(r.waiters);
  w.Key("num_shards").Int(r.num_shards);
  w.Key("waitset_shape").String(WaitsetShapeName(r.shape));
  w.Key("producer").String(r.silent_producer ? "silent" : "hot");
  w.Key("producer_commits").U64(r.producer_commits);
  w.Key("wake_batch_size").Int(r.wake_batch_size);
  w.Key("cas_claim_fast_path").Bool(r.cas_claim_fast_path);
  w.Key("adaptive_wake_batch").Bool(r.adaptive_wake_batch);
  w.Key("seconds").Double(r.seconds);
  w.Key("commits_per_sec").Double(r.commits_per_sec);
  w.Key("wake_checks").U64(r.wake_checks);
  w.Key("wake_checks_per_commit").Double(r.wake_checks_per_commit);
  w.Key("wake_batches").U64(r.wake_batches);
  w.Key("wake_batches_per_commit").Double(r.wake_batches_per_commit);
  w.Key("cas_claims").U64(r.cas_claims);
  w.Key("cas_fallbacks").U64(r.cas_fallbacks);
  w.Key("wake_tx_aborts").U64(r.wake_tx_aborts);
  // Precision rows: vacuous empty-waitset posts are conservative broadcasts,
  // not satisfied wakes, so they are subtracted out of genuine_wakeups.
  w.Key("wakeups").U64(r.wakeups);
  w.Key("vacuous_wakeups").U64(r.vacuous_wakeups);
  w.Key("genuine_wakeups").U64(r.genuine_wakeups);
  // Latency distributions (src/obs/ histograms, hot phase only). Percentiles
  // are log2-bucket upper bounds — conservative for SLO claims.
  w.Key("commit_latency_count").U64(r.commit_latency_count);
  w.Key("commit_p50_ns").U64(r.commit_p50_ns);
  w.Key("commit_p99_ns").U64(r.commit_p99_ns);
  w.Key("commit_p999_ns").U64(r.commit_p999_ns);
  w.Key("wake_latency_count").U64(r.wake_latency_count);
  w.Key("wake_p50_ns").U64(r.wake_p50_ns);
  w.Key("wake_p99_ns").U64(r.wake_p99_ns);
  w.Key("wake_p999_ns").U64(r.wake_p999_ns);
  w.EndObject();
}

void EmitWakeIndex(JsonWriter& w, const std::vector<Backend>& backends,
                   const std::vector<int>& waiter_counts,
                   std::uint64_t commits) {
  w.Key("wake_index").BeginArray();
  struct Summary {
    Backend backend;
    int waiters;
    double speedup;
  };
  std::vector<Summary> summaries;
  for (Backend b : backends) {
    for (int n : waiter_counts) {
      WakeTrialResult scan =
          RunWakeIndexTrial(b, /*targeted=*/false, n, commits);
      WakeTrialResult idx = RunWakeIndexTrial(b, /*targeted=*/true, n, commits);
      EmitWakeTrialRow(w, scan);
      EmitWakeTrialRow(w, idx);
      double speedup = scan.commits_per_sec > 0
                           ? idx.commits_per_sec / scan.commits_per_sec
                           : 0.0;
      summaries.push_back({b, n, speedup});
      std::printf("wake_index  backend=%-10s waiters=%-4d "
                  "global=%.0f/s targeted=%.0f/s speedup=%.2fx\n",
                  BackendName(b), n, scan.commits_per_sec, idx.commits_per_sec,
                  speedup);
    }
  }
  w.EndArray();
  w.Key("wake_index_summary").BeginArray();
  for (const Summary& s : summaries) {
    w.BeginObject();
    w.Key("backend").String(BackendName(s.backend));
    w.Key("waiters").Int(s.waiters);
    w.Key("speedup_wake_index_vs_global_scan").Double(s.speedup);
    w.EndObject();
  }
  w.EndArray();
}

// Shard-count ablation: 64 disjoint waiters, silent producer (every commit
// pays the wake path, nobody is ever satisfied, so all 64 stay parked), shard
// count swept 64 / 256 / 1024. wake_checks_per_commit is then a deterministic
// precision metric — 1.0 means the producer only ever checks the one waiter
// registered under the hot cell's shard; the gap above 1.0 is shard aliasing,
// which more shards shrink.
void EmitWakeShardSweep(JsonWriter& w, const std::vector<Backend>& backends,
                        std::uint64_t commits) {
  w.Key("wake_index_shard_sweep").BeginArray();
  for (Backend b : backends) {
    for (int shards : {64, 256, 1024}) {
      WakeTrialOptions opts;
      opts.backend = b;
      opts.targeted = true;
      opts.waiters = 64;
      opts.producer_commits = commits;
      opts.num_shards = shards;
      opts.silent_producer = true;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      EmitWakeTrialRow(w, r);
      std::printf("wake_shard_sweep backend=%-10s shards=%-5d "
                  "checks/commit=%.3f targeted=%.0f/s\n",
                  BackendName(b), shards, r.wake_checks_per_commit,
                  r.commits_per_sec);
    }
  }
  w.EndArray();
}

// Many-waiter scenario (256–1024 parked threads): disjoint and overlapping
// waitsets, targeted vs global scan. This is the production-scale shape the
// >64-shard index exists for; the global-scan baseline at these counts pays
// waiters × commits wake checks.
void EmitWakeManyWaiters(JsonWriter& w, const std::vector<Backend>& backends,
                         const std::vector<int>& waiter_counts,
                         std::uint64_t commits) {
  w.Key("wake_index_many_waiters").BeginArray();
  for (Backend b : backends) {
    for (int n : waiter_counts) {
      for (WaitsetShape shape :
           {WaitsetShape::kDisjoint, WaitsetShape::kOverlapping}) {
        for (bool targeted : {false, true}) {
          WakeTrialOptions opts;
          opts.backend = b;
          opts.targeted = targeted;
          opts.waiters = n;
          opts.producer_commits = commits;
          opts.shape = shape;
          WakeTrialResult r = RunWakeIndexTrial(opts);
          EmitWakeTrialRow(w, r);
          std::printf("wake_many   backend=%-10s waiters=%-5d shape=%-11s "
                      "mode=%-11s checks/commit=%.3f commits/s=%.0f\n",
                      BackendName(b), n, WaitsetShapeName(shape),
                      targeted ? "wake_index" : "global_scan",
                      r.wake_checks_per_commit, r.commits_per_sec);
        }
      }
    }
  }
  w.EndArray();
}

// Wake-batching ablation: batch size swept 1/4/8/16 with many parked waiters
// under the global-scan wake path — the shape where a committing writer pays
// one wake check per registered waiter, so the per-candidate internal
// transactions (batch_size=1, the paper's Algorithm 4) dominate the wake
// path. Batching coalesces those checks: wake_batches_per_commit should track
// ceil(candidates / batch_size), and commits_per_sec is the throughput win.
void EmitWakeBatchSweep(JsonWriter& w, const std::vector<Backend>& backends,
                        const std::vector<int>& waiter_counts,
                        std::uint64_t commits) {
  w.Key("wake_batching_sweep").BeginArray();
  for (Backend b : backends) {
    for (int n : waiter_counts) {
      if (n > 256 && b != Backend::kEagerStm) {
        // 1024 parked threads per trial; keep the tail of the sweep on one
        // backend so full-run wall time stays sane.
        continue;
      }
      double base_cps = 0.0;
      double best_fixed_cps = 0.0;
      for (int batch : {1, 4, 8, 16}) {
        WakeTrialOptions opts;
        opts.backend = b;
        opts.targeted = false;  // global scan: every commit checks everyone
        opts.waiters = n;
        opts.producer_commits = commits;
        opts.wake_batch_size = batch;
        // Fixed-batch rows isolate the batching variable: no fast-path
        // claims, no adaptive resizing.
        opts.cas_claim_fast_path = false;
        opts.adaptive_wake_batch = false;
        WakeTrialResult r = RunWakeIndexTrial(opts);
        EmitWakeTrialRow(w, r);
        if (batch == 1) {
          base_cps = r.commits_per_sec;
        }
        best_fixed_cps = std::max(best_fixed_cps, r.commits_per_sec);
        double speedup =
            base_cps > 0 ? r.commits_per_sec / base_cps : 0.0;
        std::printf("wake_batch  backend=%-10s waiters=%-5d batch=%-3d "
                    "batches/commit=%.2f checks/commit=%.2f commits/s=%.0f "
                    "speedup_vs_batch1=%.2fx\n",
                    BackendName(b), n, batch, r.wake_batches_per_commit,
                    r.wake_checks_per_commit, r.commits_per_sec, speedup);
      }
      // Adaptive row: same shape, batch capped at the sweep maximum, the
      // effective size steered by the wake-tx abort-rate EWMA. Compared
      // against the best fixed size from the rows above.
      WakeTrialOptions opts;
      opts.backend = b;
      opts.targeted = false;
      opts.waiters = n;
      opts.producer_commits = commits;
      opts.wake_batch_size = 16;
      opts.cas_claim_fast_path = false;
      opts.adaptive_wake_batch = true;
      WakeTrialResult r = RunWakeIndexTrial(opts);
      EmitWakeTrialRow(w, r);
      double vs_best =
          best_fixed_cps > 0 ? r.commits_per_sec / best_fixed_cps : 0.0;
      std::printf("wake_batch  backend=%-10s waiters=%-5d batch=ada "
                  "batches/commit=%.2f checks/commit=%.2f commits/s=%.0f "
                  "vs_best_fixed=%.2fx\n",
                  BackendName(b), n, r.wake_batches_per_commit,
                  r.wake_checks_per_commit, r.commits_per_sec, vs_best);
    }
  }
  w.EndArray();
}

// CAS fast-path ablation: 1–4 disjoint waiters — the paper's common case of a
// few threads blocked on distinct conditions — on the targeted wake path.
// With the fast path off, every satisfied waiter costs at least one internal
// wake transaction; with it on, the claim is a single orec CAS and
// wake_batches_per_commit collapses to ~0 while cas_claims carries the wakes.
void EmitCasClaimAblation(JsonWriter& w, const std::vector<Backend>& backends,
                          std::uint64_t commits) {
  w.Key("cas_claim_ablation").BeginArray();
  for (Backend b : backends) {
    for (int n : {1, 2, 4}) {
      for (bool cas : {false, true}) {
        WakeTrialOptions opts;
        opts.backend = b;
        opts.targeted = true;
        opts.waiters = n;
        opts.producer_commits = commits;
        opts.cas_claim_fast_path = cas;
        WakeTrialResult r = RunWakeIndexTrial(opts);
        EmitWakeTrialRow(w, r);
        std::printf("cas_claim   backend=%-10s waiters=%-2d cas=%-3s "
                    "batches/commit=%.3f cas_claims=%llu commits/s=%.0f\n",
                    BackendName(b), n, cas ? "on" : "off",
                    r.wake_batches_per_commit,
                    static_cast<unsigned long long>(r.cas_claims),
                    r.commits_per_sec);
      }
    }
  }
  w.EndArray();
}

// Before/after row for the memory-order diet (the [wake-publish] relaxation):
// the publication op mix a waiter/writer pair executes on the WakeIndex
// bitmaps — insert, scan, clear — timed once under the pre-diet blanket
// seq_cst orders and once under the acq/rel//relaxed orders the code ships
// with now. memory_order is an ordinary runtime value in C++, so both arms
// run the identical instruction sequence apart from the ordering itself.
struct MoDietResult {
  const char* mode;
  std::uint64_t ops;
  double seconds;
  double ops_per_sec;
};

MoDietResult RunMoDietTrial(bool before, std::uint64_t ops) {
  // Order selection for the A/B arms. The analyzer requires these seq_cst
  // mentions to be justified like any other site:
  // mo: seq_cst — the "before" arm reproduces the pre-diet blanket seq_cst
  // publication orders; the "after" arm uses the shipped [wake-publish]
  // orders (release insert, acquire scan, relaxed clear).
  // seq_cst-required: A/B measurement baseline, not a synchronization claim.
  const std::memory_order insert_memory_order =
      before ? std::memory_order_seq_cst : std::memory_order_release;
  // mo: seq_cst — before-arm selector, as above.
  // seq_cst-required: A/B measurement baseline, not a synchronization claim.
  const std::memory_order scan_memory_order =
      before ? std::memory_order_seq_cst : std::memory_order_acquire;
  // mo: seq_cst — before-arm selector, as above.
  // seq_cst-required: A/B measurement baseline, not a synchronization claim.
  const std::memory_order clear_memory_order =
      before ? std::memory_order_seq_cst : std::memory_order_relaxed;

  constexpr int kWords = 64;
  auto words = std::make_unique<std::atomic<std::uint64_t>[]>(kWords);
  for (int i = 0; i < kWords; ++i) {
    // mo: relaxed — single-threaded setup before the timed loop.
    words[i].store(0, std::memory_order_relaxed);
  }
  std::uint64_t sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const int w = static_cast<int>(i & (kWords - 1));
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    words[w].fetch_or(bit, insert_memory_order);   // waiter: publish
    sink += words[w].load(scan_memory_order);      // writer: scan
    words[w].fetch_and(~bit, clear_memory_order);  // waiter: deregister
  }
  auto t1 = std::chrono::steady_clock::now();
  // Keep `sink` observable so the scan load cannot be dropped.
  if (sink == std::uint64_t{0x5eed}) {
    std::printf("# sink %llu\n", static_cast<unsigned long long>(sink));
  }
  MoDietResult r;
  r.mode = before ? "seq_cst_before" : "acq_rel_after";
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(ops) / r.seconds : 0.0;
  return r;
}

void EmitMoDiet(JsonWriter& w, std::uint64_t ops) {
  w.Key("mo_diet").BeginArray();
  for (bool before : {true, false}) {
    MoDietResult r = RunMoDietTrial(before, ops);
    w.BeginObject();
    w.Key("mode").String(r.mode);
    w.Key("op_mix").String("wake_publish_insert_scan_clear");
    w.Key("ops").U64(r.ops);
    w.Key("seconds").Double(r.seconds);
    w.Key("ops_per_sec").Double(r.ops_per_sec);
    w.EndObject();
    std::printf("mo_diet     mode=%-15s ops=%llu %.0f ops/s\n", r.mode,
                static_cast<unsigned long long>(r.ops), r.ops_per_sec);
  }
  w.EndArray();
}

void EmitWaiterScaleRow(JsonWriter& w, const WaiterScaleResult& r) {
  w.BeginObject();
  w.Key("backend").String(BackendName(r.backend));
  w.Key("requested_waiters").Int(r.requested_waiters);
  w.Key("waiters").Int(r.waiters);
  w.Key("spawned").Int(r.spawned);
  w.Key("park_backend").Int(r.park_backend);
  w.Key("uses_futex").Bool(r.uses_futex);
  w.Key("timer_wheel").Bool(r.timer_wheel);
  w.Key("park_seconds").Double(r.park_seconds);
  w.Key("wake_seconds").Double(r.wake_seconds);
  w.Key("wake_rounds").U64(r.wake_rounds);
  w.Key("acks").U64(r.acks);
  w.Key("lost_wakeups").U64(r.lost_wakeups);
  w.Key("registry_bytes").U64(r.registry_bytes);
  w.Key("wake_index_bytes").U64(r.wake_index_bytes);
  w.Key("registry_segments").Int(r.registry_segments);
  w.Key("mem_bytes_per_waiter").Double(r.mem_bytes_per_waiter);
  w.Key("timed_waits").U64(r.timed_waits);
  w.Key("wheel_ticks").U64(r.wheel_ticks);
  w.Key("wheel_scheduled").U64(r.wheel_scheduled);
  w.Key("wheel_fired").U64(r.wheel_fired);
  w.Key("wheel_stale").U64(r.wheel_stale);
  w.Key("wheel_max_lag_ns").U64(r.wheel_max_lag_ns);
  w.Key("wake_latency_count").U64(r.wake_latency_count);
  w.Key("wake_p50_ns").U64(r.wake_p50_ns);
  w.Key("wake_p99_ns").U64(r.wake_p99_ns);
  w.Key("wake_p999_ns").U64(r.wake_p999_ns);
  w.EndObject();
}

void PrintWaiterScaleRow(const char* variant, const WaiterScaleResult& r) {
  if (r.waiters < r.requested_waiters) {
    std::printf(
        "waiter_scale: requested %d waiters clamped to %d by the machine's "
        "PID budget (kernel.pid_max)\n",
        r.requested_waiters, r.waiters);
  }
  std::printf(
      "waiter_scale backend=%-10s variant=%-9s waiters=%-7d spawned=%-7d "
      "lost=%llu mem/waiter=%.0fB wake_p99=%lluns timed=%llu ticks=%llu\n",
      BackendName(r.backend), variant, r.waiters, r.spawned,
      static_cast<unsigned long long>(r.lost_wakeups), r.mem_bytes_per_waiter,
      static_cast<unsigned long long>(r.wake_p99_ns),
      static_cast<unsigned long long>(r.timed_waits),
      static_cast<unsigned long long>(r.wheel_ticks));
}

// Capacity-tier sweep: one 10^4/10^5-waiter point per backend (pooled parking
// + timer wheel at defaults), plus two eager-backend variant rows — the
// portable mutex+condvar parking pool, and the wheel off (per-wait kernel
// timeouts) — so the defaults' wins are visible in the same artifact. The CI
// gate (bench-smoke) asserts lost_wakeups == 0, bounded mem_bytes_per_waiter,
// and wheel_ticks < timed_waits over these rows.
void EmitWaiterScale(JsonWriter& w, const std::vector<Backend>& backends,
                     int waiters, int variant_waiters) {
  w.Key("waiter_scale_sweep").BeginArray();
  for (Backend b : backends) {
    WaiterScaleOptions opts;
    opts.backend = b;
    opts.waiters = waiters;
    WaiterScaleResult r = RunWaiterScaleTrial(opts);
    EmitWaiterScaleRow(w, r);
    PrintWaiterScaleRow("default", r);
  }
  {
    WaiterScaleOptions opts;
    opts.backend = Backend::kEagerStm;
    opts.waiters = variant_waiters;
    opts.park_backend = 2;  // mutex+condvar pool (portable fallback)
    WaiterScaleResult r = RunWaiterScaleTrial(opts);
    EmitWaiterScaleRow(w, r);
    PrintWaiterScaleRow("pool", r);
  }
  {
    WaiterScaleOptions opts;
    opts.backend = Backend::kEagerStm;
    // Smaller than the other variants: without the wheel, timed-wait expiries
    // land scattered instead of batched at tick boundaries, so the churners'
    // commits (and their quiescence) never leave a quiet window for the rest
    // of the park phase — at 10^4 waiters the row alone costs minutes. The
    // contrast the row exists for (per-wait timeouts vs one wheel) is just as
    // visible at this size.
    opts.waiters = std::min(variant_waiters, 2500);
    opts.timer_wheel = false;  // per-wait kernel timeouts (pre-capacity tier)
    WaiterScaleResult r = RunWaiterScaleTrial(opts);
    EmitWaiterScaleRow(w, r);
    PrintWaiterScaleRow("no_wheel", r);
  }
  w.EndArray();
}

void EmitBounded(JsonWriter& w, const std::vector<Backend>& backends,
                 const BoundedGridOptions& base) {
  w.Key("bounded_buffer").BeginArray();
  for (Backend b : backends) {
    BoundedGridOptions opts = base;
    opts.backend = b;
    opts.include_retry_orig = (b != Backend::kSimHtm);
    for (const BoundedGridRow& r : CollectBoundedGrid(opts)) {
      w.BeginObject();
      w.Key("backend").String(BackendName(b));
      w.Key("mechanism").String(MechanismName(r.mech));
      w.Key("producers").Int(r.producers);
      w.Key("consumers").Int(r.consumers);
      w.Key("buffer_size").U64(r.buffer_size);
      w.Key("mean_s").Double(r.mean_s);
      w.Key("stddev_s").Double(r.stddev_s);
      w.EndObject();
    }
    std::printf("bounded_buffer backend=%s done\n", BackendName(b));
  }
  w.EndArray();
}

void EmitParsec(JsonWriter& w, const std::vector<Backend>& backends,
                const ParsecGridOptions& base) {
  w.Key("parsec").BeginArray();
  for (Backend b : backends) {
    ParsecGridOptions opts = base;
    opts.backend = b;
    opts.include_retry_orig = (b != Backend::kSimHtm);
    for (const ParsecGridRow& r : CollectParsecGrid(opts)) {
      w.BeginObject();
      w.Key("backend").String(BackendName(b));
      w.Key("app").String(r.app);
      w.Key("mechanism").String(MechanismName(r.mech));
      w.Key("threads").Int(r.threads);
      w.Key("mean_s").Double(r.mean_s);
      w.Key("stddev_s").Double(r.stddev_s);
      w.Key("throughput").Double(r.throughput);
      w.EndObject();
    }
    std::printf("parsec backend=%s done\n", BackendName(b));
  }
  w.EndArray();
}

int Run(int argc, char** argv) {
  BenchFlags flags(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const std::string out = FlagString(argc, argv, "out", "BENCH_wakeup.json");
  const std::string scenario = FlagString(argc, argv, "scenario", "all");

  std::vector<Backend> backends =
      quick ? std::vector<Backend>{Backend::kEagerStm}
            : std::vector<Backend>{Backend::kEagerStm, Backend::kLazyStm,
                                   Backend::kSimHtm};

  std::vector<int> waiter_counts = quick ? std::vector<int>{16, 64}
                                         : std::vector<int>{4, 16, 64};
  std::uint64_t commits = flags.GetU64("commits", quick ? 1500 : 4000);
  // Many-waiter trials pay waiters × commits wake checks on the global-scan
  // baseline, so they run fewer producer commits.
  std::vector<int> many_waiter_counts =
      quick ? std::vector<int>{256} : std::vector<int>{256, 1024};
  std::uint64_t many_commits =
      flags.GetU64("many_commits", quick ? 300 : 600);

  BoundedGridOptions bounded;
  bounded.ops = flags.GetU64("ops", quick ? 1 << 11 : 1 << 14);
  bounded.trials = flags.GetU64("trials", quick ? 1 : 3);
  bounded.max_side = static_cast<int>(flags.GetU64("max_side", quick ? 2 : 4));

  ParsecGridOptions parsec;
  parsec.scale = flags.GetU64("scale", quick ? 1 : 2);
  parsec.trials = flags.GetU64("trials", quick ? 1 : 3);
  parsec.max_threads =
      static_cast<int>(flags.GetU64("max_threads", quick ? 4 : 8));
  // All eight apps run even in --quick: the CI artifact carries per-app
  // throughput for the whole suite (scale stays test-sized).

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("tcsync");
  w.Key("schema_version").Int(1);
  w.Key("quick").Bool(quick);
  w.Key("scenarios").BeginObject();
  if (scenario == "all" || scenario == "wake_index") {
    EmitWakeIndex(w, backends, waiter_counts, commits);
    EmitWakeShardSweep(w, backends, commits);
    // The many-waiter matrix spawns up to 1024 threads per trial; sweep it on
    // the eager backend only to keep the full run's wall time sane.
    EmitWakeManyWaiters(w, {Backend::kEagerStm}, many_waiter_counts,
                        many_commits);
    // The batching sweep reuses the many-waiter shape (global scan, so every
    // commit pays one check per waiter); full runs cover all three backends
    // at 256 waiters plus eager at 1024.
    EmitWakeBatchSweep(w, backends, many_waiter_counts, many_commits);
    EmitCasClaimAblation(w, backends, commits);
    EmitMoDiet(w, flags.GetU64("mo_diet_ops", quick ? 2000000 : 20000000));
  }
  if (scenario == "all" || scenario == "waiter_scale") {
    // 10^5 parked waiters per full-run point; CI (--quick) runs the 10^4
    // point. Variant rows (pool parking, wheel off) stay at the CI size even
    // in full runs — they exist for comparison, not for the capacity record.
    const int scale_waiters = static_cast<int>(
        flags.GetU64("scale_waiters", quick ? 10000 : 100000));
    const int variant_waiters = std::min(scale_waiters, 10000);
    EmitWaiterScale(w, backends, scale_waiters, variant_waiters);
  }
  if (scenario == "all" || scenario == "bounded") {
    EmitBounded(w, backends, bounded);
  }
  if (scenario == "all" || scenario == "parsec") {
    EmitParsec(w, backends, parsec);
  }
  w.EndObject();
  w.EndObject();
  if (!w.WriteFile(out)) {
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace tcs

int main(int argc, char** argv) { return tcs::Run(argc, argv); }
