// Figure 2.5: bounded buffer performance with (simulated) HTM.
// Retry-Orig is omitted: it requires STM metadata (§2.1).
// Flags: --ops=N --trials=N --max_side=N --paper (2^20 ops, 5 trials).
#include "bench/bounded_grid.h"

int main(int argc, char** argv) {
  tcs::BenchFlags flags(argc, argv);
  tcs::BoundedGridOptions opts;
  opts.backend = tcs::Backend::kSimHtm;
  opts.include_retry_orig = false;
  opts = tcs::ApplyFlags(opts, flags);
  tcs::RunBoundedGrid("Figure 2.5 (bounded buffer, simulated HTM)", opts);
  return 0;
}
