#!/usr/bin/env python3
"""Happens-before edge analyzer and seq_cst budget for the tcsync tree.

Grows tools/lint_tm_discipline.py's per-site annotation check into a
cross-file static analysis over the `// mo:` annotation grammar (shared
parsing core: tools/tm_lint_lib.py). Run:

    tools/tm_analyze.py src bench examples tests --report tm_analyze_report.json

What it verifies:

1. Edge graph well-formedness. Every `[tag]` referenced by an annotation is an
   endpoint of that happens-before edge. Tags are declared either in the
   glossary appendix of src/condsync/wake_index.h (cross-file edges) or by a
   file-local `// mo-edge: [tag] (minimal: spec)` line. Per declared edge:
     - minimal `release/acquire`: at least one release-side endpoint (release,
       acq_rel, or seq_cst) and one acquire-side endpoint (acquire, acq_rel,
       or seq_cst) must exist in code; relaxed endpoints only *ride* the edge.
     - minimal `seq_cst`: a Dekker-style edge — it needs at least two seq_cst
       anchors (the two legs, ops or fences), each carrying a
       `seq_cst-required:` justification; weaker endpoints ride the anchors.
     - minimal `relaxed` / `external`: no endpoint obligations (sync comes
       from another edge or from a non-atomic primitive).
   A tag used but declared nowhere is an orphan; a declared tag with zero code
   endpoints is dead.

2. seq_cst budget. Every memory_order_seq_cst site — including seq_cst fences
   — must carry `seq_cst-required: <reason>` in its annotation block, naming
   why acquire/release is insufficient (e.g. a Dekker/store-buffering shape).
   The JSON report carries the budget totals so CI can fail on any new
   unjustified seq_cst.

3. Implicit seq_cst. Atomic member calls with no ordering argument and
   operator forms (=, ++, op=) on std::atomic variables default to seq_cst
   without ever saying so; both are findings everywhere the analyzer runs.

4. Per-site discipline (inherited from the lint): every std::memory_order_*
   argument carries a `// mo:` annotation, and the annotation's claimed order
   matches the order the code actually uses (no tag ends up attached to a
   weaker ordering than its annotation argues).

Exit status: 0 if clean, 1 if any finding. Findings print as
path:line: [rule] message. The --report JSON is written either way.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import tm_lint_lib as lib

DEFAULT_GLOSSARY = "src/condsync/wake_index.h"

RELEASE_SIDE = {"release", "acq_rel", "seq_cst"}
ACQUIRE_SIDE = {"acquire", "acq_rel", "seq_cst", "consume"}


def endpoint_sides(order, fence):
    """Which sides of an edge this endpoint can anchor. A fence anchors the
    side(s) its order names; seq_cst anchors both."""
    sides = []
    if order in RELEASE_SIDE:
        sides.append("release")
    if order in ACQUIRE_SIDE:
        sides.append("acquire")
    _ = fence
    return sides


class Analysis:
    def __init__(self):
        self.findings = []   # (path, line, rule, message)
        self.files = {}      # path -> per-file counters
        self.edges = {}      # tag -> edge record
        self.local_decls = {}  # path -> {tag: (spec, line)}
        self.glossary = {}   # tag -> (spec, line)
        self.glossary_path = None

    def finding(self, path, line, rule, msg):
        self.findings.append((path, line, rule, msg))

    def edge(self, tag):
        return self.edges.setdefault(
            tag, {"minimal": None, "declared_in": None, "declared_line": None,
                  "endpoints": []})


def load_glossary(analysis, glossary_path):
    p = Path(glossary_path)
    if not p.is_file():
        print(f"tm_analyze: glossary file not found: {glossary_path}",
              file=sys.stderr)
        return False
    _, lines = lib.read_lines(p)
    analysis.glossary = lib.parse_glossary(lines)
    analysis.glossary_path = p.as_posix()
    for tag, (spec, line) in analysis.glossary.items():
        if spec not in lib.MINIMAL_SPECS:
            analysis.finding(
                analysis.glossary_path, line, "bad-minimal-spec",
                f"glossary entry [{tag}] declares minimal '{spec}'; expected "
                f"one of {', '.join(lib.MINIMAL_SPECS)}")
        e = analysis.edge(tag)
        e["minimal"] = spec
        e["declared_in"] = analysis.glossary_path
        e["declared_line"] = line
    return True


def analyze_file(analysis, path, rel):
    _, lines = lib.read_lines(path)
    code = lib.strip_comments(lines)

    local = lib.parse_local_edges(lines)
    analysis.local_decls[rel] = local
    for tag, (spec, line) in local.items():
        if spec not in lib.MINIMAL_SPECS:
            analysis.finding(
                rel, line, "bad-minimal-spec",
                f"mo-edge [{tag}] declares minimal '{spec}'; expected one of "
                f"{', '.join(lib.MINIMAL_SPECS)}")
        if tag in analysis.glossary:
            analysis.finding(
                rel, line, "shadowed-edge",
                f"mo-edge [{tag}] re-declares a glossary edge; reference the "
                "glossary tag directly instead")
            continue
        e = analysis.edge(tag)
        # First declaration wins for bookkeeping; all file-local uses are
        # checked against the declaration in their own file.
        if e["declared_in"] is None:
            e["minimal"] = spec
            e["declared_in"] = rel
            e["declared_line"] = line

    stats = {"explicit": {}, "implicit": 0,
             "seq_cst_justified": 0, "seq_cst_unjustified": 0}
    analysis.files[rel] = stats

    for site in lib.scan_explicit_sites(lines, code):
        anno = site.annotation
        orders = set(site.orders)
        for o in orders:
            stats["explicit"][o] = stats["explicit"].get(o, 0) + 1
        if anno is None or anno.order is None:
            analysis.finding(
                rel, site.line, "mo-justification",
                "std::memory_order_* without a `// mo:` annotation naming its "
                "happens-before partner")
            if "seq_cst" in orders:
                stats["seq_cst_unjustified"] += 1
                analysis.finding(
                    rel, site.line, "unjustified-seq_cst",
                    "memory_order_seq_cst with no `seq_cst-required:` "
                    "justification (no annotation at all)")
            continue
        if anno.order not in orders:
            analysis.finding(
                rel, site.line, "order-mismatch",
                f"annotation claims `{anno.order}` but the code uses "
                f"{', '.join(sorted('memory_order_' + o for o in orders))}")
        if "seq_cst" in orders:
            if anno.seq_cst_reason:
                stats["seq_cst_justified"] += 1
            else:
                stats["seq_cst_unjustified"] += 1
                analysis.finding(
                    rel, site.line, "unjustified-seq_cst",
                    "memory_order_seq_cst without a `seq_cst-required: "
                    "<reason>` tag naming why acquire/release is insufficient")
        for tag in anno.tags:
            declared = tag in analysis.glossary or tag in local
            if not declared:
                analysis.finding(
                    rel, site.line, "orphan-tag",
                    f"annotation references [{tag}], which is declared "
                    "neither in the glossary "
                    f"({analysis.glossary_path}) nor by a local `// mo-edge:` "
                    "line in this file")
                continue
            analysis.edge(tag)["endpoints"].append({
                "file": rel,
                "line": site.line,
                "order": anno.order,
                "fence": site.fence,
                "justified": bool(anno.seq_cst_reason),
                "sides": endpoint_sides(anno.order, site.fence),
            })

    for line, what in lib.scan_implicit_sites(lines, code):
        stats["implicit"] += 1
        analysis.finding(
            rel, line, "implicit-order",
            f"{what} — defaults to seq_cst; write the ordering explicitly "
            "(with its `// mo:` justification)")


def check_edges(analysis):
    for tag, e in sorted(analysis.edges.items()):
        where = e["declared_in"]
        line = e["declared_line"] or 1
        if where is None:
            # Orphans were already reported per-site.
            continue
        eps = e["endpoints"]
        if not eps:
            analysis.finding(
                where, line, "dead-edge",
                f"declared edge [{tag}] has zero code endpoints — delete the "
                "declaration or annotate the sites that form it")
            continue
        minimal = e["minimal"]
        if minimal == "release/acquire":
            rel_side = [p for p in eps if "release" in p["sides"]]
            acq_side = [p for p in eps if "acquire" in p["sides"]]
            if not rel_side or not acq_side:
                have = "release" if rel_side else (
                    "acquire" if acq_side else "no")
                analysis.finding(
                    where, line, "one-sided-edge",
                    f"edge [{tag}] (minimal: release/acquire) has {have}-side "
                    "endpoints only — a release must pair with an acquire, or "
                    "the edge needs a `seq_cst-required:` Dekker argument")
        elif minimal == "seq_cst":
            anchors = [p for p in eps if p["order"] == "seq_cst"]
            for p in anchors:
                if not p["justified"]:
                    analysis.finding(
                        p["file"], p["line"], "weak-dekker-endpoint",
                        f"edge [{tag}] is declared minimal seq_cst (Dekker); "
                        "this seq_cst anchor lacks a `seq_cst-required:` "
                        "justification")
            if len(anchors) < 2:
                analysis.finding(
                    where, line, "one-sided-edge",
                    f"edge [{tag}] (minimal: seq_cst) has "
                    f"{len(anchors)} seq_cst anchor(s) — a Dekker needs both "
                    "legs (two seq_cst ops/fences); weaker endpoints only "
                    "ride the anchors")
        # minimal relaxed/external: nothing to enforce.


def build_report(analysis, roots):
    budget_justified = sum(
        f["seq_cst_justified"] for f in analysis.files.values())
    budget_unjustified = sum(
        f["seq_cst_unjustified"] for f in analysis.files.values())
    implicit = sum(f["implicit"] for f in analysis.files.values())
    edges = {}
    for tag, e in sorted(analysis.edges.items()):
        if e["declared_in"] is None:
            continue
        eps = e["endpoints"]
        edges[tag] = {
            "minimal": e["minimal"],
            "declared_in": e["declared_in"],
            "endpoints": eps,
            "release_side": sum(1 for p in eps if "release" in p["sides"]),
            "acquire_side": sum(1 for p in eps if "acquire" in p["sides"]),
        }
    return {
        "schema_version": 1,
        "tool": "tm_analyze",
        "roots": roots,
        "files": analysis.files,
        "edges": edges,
        "budget": {
            "seq_cst_total": budget_justified + budget_unjustified,
            "seq_cst_justified": budget_justified,
            "seq_cst_unjustified": budget_unjustified,
            "implicit_order_sites": implicit,
        },
        "findings": [
            {"file": p, "line": l, "rule": r, "message": m}
            for p, l, r, m in analysis.findings
        ],
    }


def main(argv):
    ap = argparse.ArgumentParser(
        prog="tm_analyze",
        description="Happens-before edge analyzer and seq_cst budget")
    ap.add_argument("roots", nargs="*", default=None,
                    help="files or directories to scan (default: src)")
    ap.add_argument("--glossary", default=DEFAULT_GLOSSARY,
                    help="file holding the cross-file edge glossary appendix")
    ap.add_argument("--report", default=None,
                    help="write the machine-readable JSON report here")
    args = ap.parse_args(argv[1:])
    roots = args.roots or ["src"]

    analysis = Analysis()
    if not load_glossary(analysis, args.glossary):
        return 1

    seen_any = False
    for p in lib.iter_source_files(roots):
        if not p.is_file():
            print(f"tm_analyze: no such file: {p}", file=sys.stderr)
            return 1
        seen_any = True
        analyze_file(analysis, p, p.as_posix())
    if not seen_any:
        print(f"tm_analyze: no source files under {roots}", file=sys.stderr)
        return 1

    check_edges(analysis)

    report = build_report(analysis, roots)
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=False) + "\n",
            encoding="utf-8")

    for path, line, rule, msg in sorted(analysis.findings):
        print(f"{path}:{line}: [{rule}] {msg}")
    b = report["budget"]
    print(
        f"tm_analyze: {len(analysis.findings)} finding(s); seq_cst budget "
        f"{b['seq_cst_justified']} justified / {b['seq_cst_unjustified']} "
        f"unjustified; {b['implicit_order_sites']} implicit-order site(s); "
        f"{len(report['edges'])} edge(s)",
        file=sys.stderr)
    return 1 if analysis.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
