#!/usr/bin/env python3
"""Self-test for tools/tm_analyze.py: seeded-violation fixtures, each of which
must produce exactly the expected finding (and nothing else), plus a clean
fixture that must produce none. Run from the repo root (ctest target
`tools_test` does):

    python3 tools/tm_analyze_selftest.py
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ANALYZER = REPO / "tools" / "tm_analyze.py"

GLOSSARY = """\
// Edge glossary fixture.
//
//  [pub]  (minimal: release/acquire)
//         A publication edge.
//  [dekker]  (minimal: seq_cst)
//         A store-buffering exclusion.
"""

# Each fixture: (name, source text, expected set of finding rules).
# The source is written as fixture.cc next to the glossary fixture.
FIXTURES = [
    ("clean", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] publish x.
  x.store(1, std::memory_order_release);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", set()),

    ("orphan_tag", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] publish x.
  x.store(1, std::memory_order_release);
  // mo: acquire — [pub] observe x; also names [nonexistent-edge].
  (void)x.load(std::memory_order_acquire);
}
""", {"orphan-tag"}),

    ("release_only_edge", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] publish x; nobody ever acquires it.
  x.store(1, std::memory_order_release);
}
""", {"one-sided-edge"}),

    ("unjustified_seq_cst", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: seq_cst — [pub] publish x with a blanket order and no reason.
  x.store(1, std::memory_order_seq_cst);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", {"unjustified-seq_cst"}),

    ("implicit_order_op", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] publish x.
  x.store(1, std::memory_order_release);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
  (void)x.load();
}
""", {"implicit-order"}),

    ("dead_glossary_entry", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] publish x.
  x.store(1, std::memory_order_release);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
// [dekker] is declared in the glossary but no site references it.
""", {"dead-edge"}),

    ("missing_annotation", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  x.store(1, std::memory_order_release);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", {"mo-justification", "one-sided-edge"}),

    ("order_mismatch", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: release — [pub] the annotation argues release but the code relaxed.
  x.store(1, std::memory_order_relaxed);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", {"order-mismatch"}),  # the endpoint registers under its *claimed* order

    ("one_legged_dekker", """\
#include <atomic>
std::atomic<int> x{0};
void f() {
  // mo: seq_cst — [dekker] only one leg present.
  // seq_cst-required: store-buffering exclusion fixture.
  x.store(1, std::memory_order_seq_cst);
  // mo: release — [pub] publish x.
  x.store(2, std::memory_order_release);
  // mo: acquire — [pub] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", {"one-sided-edge"}),

    ("local_edge_decl", """\
#include <atomic>
// mo-edge: [local-flag] (minimal: release/acquire) — file-local handshake.
std::atomic<int> x{0};
void f() {
  // mo: release — [local-flag] publish x.
  x.store(1, std::memory_order_release);
  // mo: acquire — [local-flag] observe x.
  (void)x.load(std::memory_order_acquire);
}
""", {"dead-edge"}),  # the glossary [pub] has no endpoints in this fixture
]


def run_fixture(name, source, expected):
    with tempfile.TemporaryDirectory(prefix=f"tmsel_{name}_") as td:
        tdir = Path(td)
        glossary = tdir / "glossary.h"
        glossary.write_text(GLOSSARY, encoding="utf-8")
        src = tdir / "fixture.cc"
        src.write_text(source, encoding="utf-8")
        report = tdir / "report.json"
        proc = subprocess.run(
            [sys.executable, str(ANALYZER), str(src),
             "--glossary", str(glossary), "--report", str(report)],
            capture_output=True, text=True)
        rep = json.loads(report.read_text(encoding="utf-8"))
        # The [dekker] glossary entry is unused by most fixtures; ignore its
        # dead-edge finding unless the fixture expects dead-edge findings.
        rules = set()
        for f in rep["findings"]:
            if f["rule"] == "dead-edge" and "dead-edge" not in expected:
                continue
            rules.add(f["rule"])
        errors = []
        if rules != expected:
            errors.append(f"finding rules {sorted(rules)}, "
                          f"expected {sorted(expected)}")
        want_exit = 1 if rep["findings"] else 0
        if proc.returncode != want_exit:
            errors.append(f"exit {proc.returncode}, expected {want_exit}")
        if rep["budget"]["seq_cst_unjustified"] != (
                1 if "unjustified-seq_cst" in expected else 0):
            errors.append("budget seq_cst_unjustified miscounted: "
                          f"{rep['budget']}")
        return errors, rep


def main():
    failures = 0
    for name, source, expected in FIXTURES:
        errors, rep = run_fixture(name, source, expected)
        status = "ok" if not errors else "FAIL"
        print(f"[{status}] {name}")
        for e in errors:
            failures += 1
            print(f"       {e}")
            for f in rep["findings"]:
                print(f"       > {f['file']}:{f['line']}: "
                      f"[{f['rule']}] {f['message']}")

    # Report-shape check on the clean fixture: edges and budget must be
    # present and structurally sane for the CI gate to consume.
    _, rep = run_fixture(*FIXTURES[0])
    for key in ("schema_version", "files", "edges", "budget", "findings"):
        if key not in rep:
            failures += 1
            print(f"[FAIL] report missing key `{key}`")
    pub = rep["edges"].get("pub", {})
    if pub.get("release_side", 0) < 1 or pub.get("acquire_side", 0) < 1:
        failures += 1
        print(f"[FAIL] clean fixture [pub] edge sides miscounted: {pub}")

    if failures:
        print(f"tm_analyze_selftest: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"tm_analyze_selftest: all {len(FIXTURES)} fixtures pass",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
