"""Shared parsing core for the tcsync atomics tooling.

Used by two front-ends:

  tools/lint_tm_discipline.py   per-site discipline lint (annotation presence,
                                atomics allowlist, DCHECK-in-hot-loop)
  tools/tm_analyze.py           cross-file happens-before edge analyzer and
                                seq_cst budget

The shared ground truth is the `// mo:` annotation grammar:

  // mo: <order>[ fence] — <free text naming the happens-before partner>

where <order> is one of relaxed | acquire | release | acq_rel | seq_cst.
The free text may reference named happens-before edges as `[tag]`; recurring
cross-file tags are declared in the glossary appendix of
src/condsync/wake_index.h, file-local tags via a declaration line

  // mo-edge: [tag] (minimal: <spec>) — <description>

with <spec> one of
  release/acquire   the edge needs at least one release-side and one
                    acquire-side endpoint in code
  seq_cst           a Dekker-style edge: at least two seq_cst anchors (ops or
                    fences), each with a `seq_cst-required:` justification;
                    weaker endpoints ride the anchors
  relaxed           endpoints only ride the edge (sync comes from another
                    declared edge); no endpoint obligations
  external          synchronization is provided by a non-atomic primitive
                    (semaphore, thread join, lock); no endpoint obligations

A seq_cst site is *justified* when its annotation block contains
`seq_cst-required: <reason>`; tm_analyze's budget gate fails on any
unjustified seq_cst site (including seq_cst fences).
"""

import re
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ORDERS = ("relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst")

MO_RE = re.compile(r"\bstd::memory_order_(\w+)")
MO_COMMENT_RE = re.compile(r"//.*\bmo:")
ANNOTATION_ORDER_RE = re.compile(
    r"\bmo:\s*(relaxed|consume|acquire|release|acq_rel|seq_cst)\b"
    r"(?:\s*\([^)]*\))?(\s+fence\b)?")
TAG_RE = re.compile(r"\[([a-zA-Z0-9][a-zA-Z0-9_-]*)\]")
SEQ_CST_REQUIRED_RE = re.compile(r"\bseq_cst-required:\s*(.*)")
EDGE_DECL_RE = re.compile(
    r"//\s*mo-edge:\s*\[([a-zA-Z0-9][a-zA-Z0-9_-]*)\]\s*"
    r"\(minimal:\s*([a-z/_ ]+?)\s*\)")
# Glossary appendix entries in wake_index.h:  `//  [tag]  (minimal: spec) ...`
GLOSSARY_ENTRY_RE = re.compile(
    r"^//\s+\[([a-zA-Z0-9][a-zA-Z0-9_-]*)\]\s+\(minimal:\s*([a-z/_ ]+?)\s*\)")

FENCE_RE = re.compile(r"\batomic_(?:thread|signal)_fence\s*\(")
ATOMIC_RE = re.compile(
    r"\bstd::atomic(?:_ref\b|_thread_fence\b|_signal_fence\b|\b|<)"
    r"|#\s*include\s*<atomic>"
)

# Atomic member operations that default to seq_cst when no explicit ordering
# argument is given. `.clear()`, `.wait()` and friends are omitted: those
# method names collide with containers all over a normal C++ tree.
ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|"
    r"fetch_xor|compare_exchange_strong|compare_exchange_weak)\s*\(")
# `std::atomic<T> name` / `std::atomic_flag name` declarations, so the
# operator forms (name = v, name++, name += v) can be flagged per file.
ATOMIC_DECL_RE = re.compile(
    r"\bstd::atomic(?:<[^;=({]*?>)?\s+(\w+)\s*(?:\{|=|;|\[)")

MAX_WALK_UP = 12
MAX_CALL_LOOKAHEAD = 8

MINIMAL_SPECS = ("release/acquire", "seq_cst", "relaxed", "external")


def strip_comments(lines):
    """Per-line code with // and /* */ comments blanked (strings kept)."""
    code = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        n = len(line)
        in_str = None
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if in_str:
                out.append(c)
                if c == "\\" and i + 1 < n:
                    out.append(line[i + 1])
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                out.append(c)
                i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            out.append(c)
            i += 1
        code.append("".join(out))
    return code


def is_comment_line(line):
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def has_mo_comment(line):
    return MO_COMMENT_RE.search(line) is not None


def find_annotation_start(lines, idx):
    """Index of the line whose comment opens the `// mo:` annotation covering
    lines[idx] (a code line with a memory_order argument), or None.

    Same walk the lint has always used: the annotation is on the same line, or
    on a preceding line reachable by walking up through comment lines and
    statement-continuation lines (a line not ending in `;` or `}`), up to
    MAX_WALK_UP lines.
    """
    if has_mo_comment(lines[idx]):
        return idx
    pos = idx
    for _ in range(MAX_WALK_UP):
        if pos == 0:
            return None
        prev = lines[pos - 1]
        stripped = prev.strip()
        if is_comment_line(prev):
            if has_mo_comment(prev):
                return pos - 1
            pos -= 1
            continue
        if not stripped or stripped.endswith(";") or stripped.endswith("}"):
            return None
        if has_mo_comment(prev):
            return pos - 1
        pos -= 1
    return None


def annotation_block(lines, start, site_idx):
    """The annotation text: from the `// mo:` line through the contiguous
    comment run below it, plus the site line's own trailing comment."""
    parts = []
    if start == site_idx:
        m = lines[start].find("//")
        return lines[start][m:] if m >= 0 else ""
    pos = start
    while pos < site_idx:
        line = lines[pos]
        if is_comment_line(line):
            parts.append(line.strip())
            pos += 1
            continue
        # A continuation code line between the annotation and the site; its
        # trailing comment (if any) still belongs to the block.
        m = line.find("//")
        if m >= 0:
            parts.append(line[m:])
        pos += 1
    m = lines[site_idx].find("//")
    if m >= 0:
        parts.append(lines[site_idx][m:])
    return "\n".join(parts)


class Annotation:
    __slots__ = ("order", "fence", "tags", "seq_cst_reason", "text")

    def __init__(self, order, fence, tags, seq_cst_reason, text):
        self.order = order
        self.fence = fence
        self.tags = tags
        self.seq_cst_reason = seq_cst_reason
        self.text = text


def parse_annotation(text):
    """Parse an annotation block into (order, fence?, tags, seq_cst reason)."""
    m = ANNOTATION_ORDER_RE.search(text)
    order = m.group(1) if m else None
    fence = bool(m and m.group(2))
    tags = []
    for t in TAG_RE.findall(text):
        if t not in tags:
            tags.append(t)
    req = SEQ_CST_REQUIRED_RE.search(text)
    reason = req.group(1).strip() if req else None
    return Annotation(order, fence, tags, reason, text)


class Site:
    """One explicit memory-order site (or fence) in a source file."""

    __slots__ = ("line", "orders", "fence", "annotation")

    def __init__(self, line, orders, fence, annotation):
        self.line = line          # 1-based
        self.orders = orders      # orders named on the site line
        self.fence = fence
        self.annotation = annotation  # Annotation or None


def scan_explicit_sites(lines, code):
    """Every code line naming std::memory_order_* becomes one Site."""
    sites = []
    for i, cl in enumerate(code):
        orders = MO_RE.findall(cl)
        if not orders:
            continue
        start = find_annotation_start(lines, i)
        anno = None
        if start is not None:
            anno = parse_annotation(annotation_block(lines, start, i))
        sites.append(Site(i + 1, orders, bool(FENCE_RE.search(cl)), anno))
    return sites


def _call_has_order(code, line_idx, open_pos):
    """True if the call whose '(' is at (line_idx, open_pos) names a
    memory_order argument anywhere inside its balanced parens."""
    depth = 0
    for li in range(line_idx, min(len(code), line_idx + MAX_CALL_LOOKAHEAD)):
        text = code[li]
        start = open_pos if li == line_idx else 0
        for ci in range(start, len(text)):
            c = text[ci]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    span = (code[line_idx][open_pos:] if li == line_idx
                            else "\n".join([code[line_idx][open_pos:]] +
                                           code[line_idx + 1:li + 1]))
                    return "memory_order" in span
        # Unbalanced so far: keep scanning the next line.
    return False  # Ran out of lookahead; treat conservatively as implicit.


def scan_implicit_sites(lines, code):
    """Atomic operations that default to seq_cst: member calls without a
    memory_order argument, and operator forms (=, ++, --, op=) on variables
    declared std::atomic in the same file. Returns [(1-based line, what)]."""
    findings = []
    for i, cl in enumerate(code):
        for m in ATOMIC_OP_RE.finditer(cl):
            open_pos = cl.find("(", m.end() - 1)
            if open_pos < 0:
                continue
            if not _call_has_order(code, i, open_pos):
                findings.append((i + 1, f".{m.group(1)}() with no ordering"))

    atomic_names = set()
    decl_lines = {}
    for i, cl in enumerate(code):
        if "std::atomic" not in cl:
            continue
        for m in ATOMIC_DECL_RE.finditer(cl):
            atomic_names.add(m.group(1))
            decl_lines.setdefault(m.group(1), set()).add(i)
    if atomic_names:
        op_res = [
            (re.compile(r"\b(" + "|".join(map(re.escape, atomic_names)) +
                        r")\s*(?:\[[^\]]*\]\s*)?(\+\+|--|\+=|-=|\|=|&=|\^=)"),
             "postfix/compound"),
            (re.compile(r"(\+\+|--)\s*(" +
                        "|".join(map(re.escape, atomic_names)) + r")\b"),
             "prefix"),
            (re.compile(r"\b(" + "|".join(map(re.escape, atomic_names)) +
                        r")\s*(?:\[[^\]]*\]\s*)?=(?!=)"), "assignment"),
        ]
        for i, cl in enumerate(code):
            for rex, kind in op_res:
                for m in rex.finditer(cl):
                    name = m.group(1) if kind != "prefix" else m.group(2)
                    if name not in atomic_names:
                        continue
                    if i in decl_lines.get(name, ()):  # the declaration itself
                        continue
                    findings.append(
                        (i + 1,
                         f"operator {kind} on std::atomic `{name}` "
                         "(implicit seq_cst)"))
    return findings


def parse_local_edges(lines):
    """`// mo-edge: [tag] (minimal: spec)` declarations in a file.
    Returns {tag: (spec, 1-based line)}."""
    out = {}
    for i, line in enumerate(lines):
        m = EDGE_DECL_RE.search(line)
        if m:
            out[m.group(1)] = (m.group(2).strip(), i + 1)
    return out


def parse_glossary(lines):
    """Glossary appendix entries (`//  [tag]  (minimal: spec) ...`).
    Returns {tag: (spec, 1-based line)}."""
    out = {}
    for i, line in enumerate(lines):
        m = GLOSSARY_ENTRY_RE.match(line)
        if m:
            out[m.group(1)] = (m.group(2).strip(), i + 1)
    return out


def iter_source_files(roots):
    """Yield every source file under the given roots (files or directories)."""
    for root in roots:
        rootp = Path(root)
        if rootp.is_dir():
            for p in sorted(rootp.rglob("*")):
                if p.suffix in SOURCE_SUFFIXES:
                    yield p
        else:
            yield rootp


def read_lines(path):
    text = Path(path).read_text(encoding="utf-8")
    return text, text.split("\n")
