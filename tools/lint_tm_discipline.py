#!/usr/bin/env python3
"""Atomics-discipline lint for the tcsync source tree.

Enforces three rules over src/ (run: tools/lint_tm_discipline.py src):

1. mo-justification: every `std::memory_order_*` argument must carry a
   `// mo:` comment naming its happens-before partner — on the same line, or
   on a preceding line reachable by walking up through comment lines and
   statement-continuation lines (a line not ending in `;` or `}`), up to
   12 lines. The recurring cross-file edges ([orec-publish], [clock-chain],
   [wake-publish], [serial-token], [sem]) are defined in the appendix at the
   top of src/condsync/wake_index.h.

2. atomics-allowlist: raw atomic primitives (`std::atomic`, `std::atomic_ref`,
   `std::atomic_thread_fence`, `<atomic>` includes) are allowed only under
   src/tm/, src/common/, and src/condsync/. Everything else must use the
   TVar/Atomically API (or a sync/ adapter built on it) — the memory-order
   reasoning lives in the allowlisted layers, nowhere else.

3. no-dcheck-in-hot-loop: in files tagged with a `lint:hot-path` marker
   comment, TCS_DCHECK must not appear inside a loop body. Debug iterations
   of per-access loops are exactly where DCHECK cost distorts Debug-build
   behavior (and where a disabled Release DCHECK hides a real invariant);
   use TCS_CHECK outside the loop or restructure.

Exit status: 0 if clean, 1 if any finding. Findings print as
path:line: [rule] message.
"""

import re
import sys
from pathlib import Path

ATOMIC_ALLOWLIST = ("src/tm/", "src/common/", "src/condsync/", "src/obs/")
SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

MO_RE = re.compile(r"\bstd::memory_order_\w+")
ATOMIC_RE = re.compile(
    r"\bstd::atomic(?:_ref\b|_thread_fence\b|_signal_fence\b|\b|<)"
    r"|#\s*include\s*<atomic>"
)
MO_COMMENT_RE = re.compile(r"//.*\bmo:")
HOT_PATH_TAG_RE = re.compile(r"lint:hot-path")
DCHECK_RE = re.compile(r"\bTCS_DCHECK(?:_MSG)?\s*\(")
LOOP_HEADER_RE = re.compile(r"(?:^|[^\w])(?:for|while)\s*\(|(?:^|[^\w])do\s*\{")

MAX_WALK_UP = 12


def strip_comments(lines):
    """Per-line code with // and /* */ comments blanked (strings kept)."""
    code = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        n = len(line)
        in_str = None
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if in_str:
                out.append(c)
                if c == "\\" and i + 1 < n:
                    out.append(line[i + 1])
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                out.append(c)
                i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            out.append(c)
            i += 1
        code.append("".join(out))
    return code


def is_comment_line(line):
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def has_mo_comment(line):
    return MO_COMMENT_RE.search(line) is not None


def mo_justified(lines, idx):
    """True if lines[idx] (0-based, contains memory_order) is annotated."""
    if has_mo_comment(lines[idx]):
        return True
    pos = idx
    for _ in range(MAX_WALK_UP):
        if pos == 0:
            return False
        prev = lines[pos - 1]
        stripped = prev.strip()
        if is_comment_line(prev):
            if has_mo_comment(prev):
                return True
            pos -= 1
            continue
        # A preceding line that ends a statement or block (or a blank line)
        # severs the attachment; anything else is a continuation the comment
        # may sit above.
        if not stripped or stripped.endswith(";") or stripped.endswith("}"):
            return False
        if has_mo_comment(prev):
            return True
        pos -= 1
    return False


def check_file(path, rel, findings):
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")
    code = strip_comments(lines)

    # Rule 1: mo-justification (all files — allowlisted dirs are where the
    # atomics live, so this is effectively their rule).
    for i, cl in enumerate(code):
        if MO_RE.search(cl) and not mo_justified(lines, i):
            findings.append(
                (rel, i + 1, "mo-justification",
                 "std::memory_order_* without a `// mo:` justification "
                 "naming its happens-before partner"))

    # Rule 2: atomics-allowlist.
    allowed = any(rel.startswith(p) for p in ATOMIC_ALLOWLIST)
    if not allowed:
        for i, cl in enumerate(code):
            m = ATOMIC_RE.search(cl)
            if m:
                findings.append(
                    (rel, i + 1, "atomics-allowlist",
                     f"raw atomic primitive `{m.group(0).strip()}` outside "
                     "src/tm|common|condsync — use the TVar/Atomically API"))

    # Rule 3: no-dcheck-in-hot-loop (tagged files only).
    if HOT_PATH_TAG_RE.search(text):
        depth_stack = []  # True for each open '{' that belongs to a loop
        pending_loop = False
        for i, cl in enumerate(code):
            if LOOP_HEADER_RE.search(cl):
                pending_loop = True
            if DCHECK_RE.search(cl) and any(depth_stack):
                findings.append(
                    (rel, i + 1, "no-dcheck-in-hot-loop",
                     "TCS_DCHECK inside a loop in a hot-path-tagged file — "
                     "hoist it or promote to TCS_CHECK outside the loop"))
            for c in cl:
                if c == "{":
                    depth_stack.append(pending_loop)
                    pending_loop = False
                elif c == "}":
                    if depth_stack:
                        depth_stack.pop()


def main(argv):
    roots = argv[1:] or ["src"]
    findings = []
    seen_any_file = False
    for root in roots:
        rootp = Path(root)
        files = (
            sorted(p for p in rootp.rglob("*") if p.suffix in SOURCE_SUFFIXES)
            if rootp.is_dir() else [rootp]
        )
        for p in files:
            seen_any_file = True
            check_file(p, p.as_posix(), findings)
    if not seen_any_file:
        print(f"lint_tm_discipline: no source files under {roots}", file=sys.stderr)
        return 1
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"lint_tm_discipline: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
