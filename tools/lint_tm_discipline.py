#!/usr/bin/env python3
"""Atomics-discipline lint for the tcsync source tree.

Per-site rules over src/ (run: tools/lint_tm_discipline.py src). The heavier
cross-file analysis — the happens-before edge graph, the seq_cst budget, and
implicit-ordering detection — lives in tools/tm_analyze.py; both front-ends
share the parsing core in tools/tm_lint_lib.py.

1. mo-justification: every `std::memory_order_*` argument must carry a
   `// mo:` comment naming its happens-before partner — on the same line, or
   on a preceding line reachable by walking up through comment lines and
   statement-continuation lines (a line not ending in `;` or `}`), up to
   12 lines. The recurring cross-file edges ([orec-publish], [clock-chain],
   [wake-publish], [serial-token], [park-handoff], ...) are defined in the appendix at
   the top of src/condsync/wake_index.h.

2. atomics-allowlist: raw atomic primitives (`std::atomic`, `std::atomic_ref`,
   `std::atomic_thread_fence`, `<atomic>` includes) are allowed only under
   src/tm/, src/common/, src/condsync/, and src/obs/. Everything else must use
   the TVar/Atomically API (or a sync/ adapter built on it) — the memory-order
   reasoning lives in the allowlisted layers, nowhere else. (This rule is
   src-scoped by design: tests, benches, and examples may use raw atomics for
   harness coordination, policed by tm_analyze instead.)

3. no-dcheck-in-hot-loop: in files tagged with a `lint:hot-path` marker
   comment, TCS_DCHECK must not appear inside a loop body. Debug iterations
   of per-access loops are exactly where DCHECK cost distorts Debug-build
   behavior (and where a disabled Release DCHECK hides a real invariant);
   use TCS_CHECK outside the loop or restructure.

Exit status: 0 if clean, 1 if any finding. Findings print as
path:line: [rule] message.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import tm_lint_lib as lib

ATOMIC_ALLOWLIST = ("src/tm/", "src/common/", "src/condsync/", "src/obs/")

HOT_PATH_TAG_RE = re.compile(r"lint:hot-path")
DCHECK_RE = re.compile(r"\bTCS_DCHECK(?:_MSG)?\s*\(")
LOOP_HEADER_RE = re.compile(r"(?:^|[^\w])(?:for|while)\s*\(|(?:^|[^\w])do\s*\{")


def check_file(path, rel, findings):
    text, lines = lib.read_lines(path)
    code = lib.strip_comments(lines)

    # Rule 1: mo-justification (all files — allowlisted dirs are where the
    # atomics live, so this is effectively their rule).
    for i, cl in enumerate(code):
        if lib.MO_RE.search(cl) and \
                lib.find_annotation_start(lines, i) is None:
            findings.append(
                (rel, i + 1, "mo-justification",
                 "std::memory_order_* without a `// mo:` justification "
                 "naming its happens-before partner"))

    # Rule 2: atomics-allowlist.
    allowed = any(rel.startswith(p) for p in ATOMIC_ALLOWLIST)
    if not allowed:
        for i, cl in enumerate(code):
            m = lib.ATOMIC_RE.search(cl)
            if m:
                findings.append(
                    (rel, i + 1, "atomics-allowlist",
                     f"raw atomic primitive `{m.group(0).strip()}` outside "
                     "src/tm|common|condsync|obs — use the TVar/Atomically "
                     "API"))

    # Rule 3: no-dcheck-in-hot-loop (tagged files only).
    if HOT_PATH_TAG_RE.search(text):
        depth_stack = []  # True for each open '{' that belongs to a loop
        pending_loop = False
        for i, cl in enumerate(code):
            if LOOP_HEADER_RE.search(cl):
                pending_loop = True
            if DCHECK_RE.search(cl) and any(depth_stack):
                findings.append(
                    (rel, i + 1, "no-dcheck-in-hot-loop",
                     "TCS_DCHECK inside a loop in a hot-path-tagged file — "
                     "hoist it or promote to TCS_CHECK outside the loop"))
            for c in cl:
                if c == "{":
                    depth_stack.append(pending_loop)
                    pending_loop = False
                elif c == "}":
                    if depth_stack:
                        depth_stack.pop()


def main(argv):
    roots = argv[1:] or ["src"]
    findings = []
    seen_any_file = False
    for p in lib.iter_source_files(roots):
        seen_any_file = True
        check_file(p, p.as_posix(), findings)
    if not seen_any_file:
        print(f"lint_tm_discipline: no source files under {roots}",
              file=sys.stderr)
        return 1
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"lint_tm_discipline: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
