#!/usr/bin/env python3
"""Schema check for TmSystem::DumpTrace output (Chrome trace-event JSON).

CI round-trip: build with -DTCS_TRACING=ON, run `trace_smoke trace.json`,
then `python3 tools/check_trace.py trace.json --require-events`.

Validates:
  * the document parses and has the trace-event container shape
    (traceEvents array + displayTimeUnit) plus our top-level bookkeeping
    keys (tracing_compiled, trace_events, trace_drops);
  * every event carries name/ph/pid/tid with sane types, and a numeric ts
    on everything except "M" metadata;
  * per-thread instant ("i") timestamps are non-decreasing — the rings are
    per-thread and single-writer, so any inversion is a dump bug;
  * with --require-events, at least one instant event exists and
    tracing_compiled is true (catches "smoke ran but hooks were compiled
    out" silently passing).
"""

import argparse
import collections
import json
import sys

REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")
KNOWN_EVENT_NAMES = {
    "tx_begin", "tx_commit", "tx_abort", "deschedule", "sleep", "wakeup",
    "wake_batch", "timestamp_extension", "htm_fallback", "orelse_fallback",
}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to a DumpTrace JSON file")
    ap.add_argument("--require-events", action="store_true",
                    help="fail unless instant events exist and "
                         "tracing_compiled is true")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    for key in ("traceEvents", "displayTimeUnit", "tracing_compiled",
                "trace_events", "trace_drops"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    if not isinstance(doc["tracing_compiled"], bool):
        fail("tracing_compiled is not a bool")
    for key in ("trace_events", "trace_drops"):
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{key} is not a non-negative integer")

    last_ts = {}
    counts = collections.Counter()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for field in REQUIRED_EVENT_FIELDS:
            if field not in ev:
                fail(f"event {i} missing field {field!r}: {ev}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"event {i} has a bad name: {ev}")
        if ev["ph"] not in ("i", "X", "M"):
            fail(f"event {i} has unexpected phase {ev['ph']!r}")
        if ev["ph"] != "M" and not isinstance(ev.get("ts"), (int, float)):
            # Metadata ("M") events carry no timestamp; everything else must.
            fail(f"event {i} ts is not numeric: {ev}")
        counts[ev["ph"]] += 1
        if ev["ph"] == "i":
            if ev["name"] not in KNOWN_EVENT_NAMES:
                fail(f"event {i} has unknown instant name {ev['name']!r}")
            tid = ev["tid"]
            if tid in last_ts and ev["ts"] < last_ts[tid]:
                fail(f"event {i}: per-thread timestamps regressed on tid "
                     f"{tid} ({ev['ts']} < {last_ts[tid]})")
            last_ts[tid] = ev["ts"]
        if ev["ph"] == "X" and (not isinstance(ev.get("dur"), (int, float))
                                or ev["dur"] < 0):
            fail(f"event {i}: X event without a non-negative dur: {ev}")

    if counts["i"] != doc["trace_events"]:
        fail(f"trace_events={doc['trace_events']} but document has "
             f"{counts['i']} instant events")

    if args.require_events:
        if not doc["tracing_compiled"]:
            fail("tracing_compiled is false (built without -DTCS_TRACING=ON?)")
        if counts["i"] == 0:
            fail("no instant events recorded")

    print(f"check_trace: OK: {counts['i']} instants, {counts['X']} spans, "
          f"{counts['M']} metadata events across {len(last_ts)} thread(s), "
          f"{doc['trace_drops']} drops, "
          f"tracing_compiled={doc['tracing_compiled']}")


if __name__ == "__main__":
    main()
