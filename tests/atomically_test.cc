// Facade semantics of Atomically()/Tx: return-value plumbing, flat nesting
// through helper functions, multiple TM domains per thread, domain lifecycle,
// and the type constraints of Load/Store.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

TEST(AtomicallyTest, ReturnsVoidAndValues) {
  Runtime rt((TmConfig()));
  std::uint64_t x = 5;
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{6}); });
  int i = Atomically(rt.sys(), [&](Tx&) { return 42; });
  EXPECT_EQ(i, 42);
  auto pair = Atomically(rt.sys(), [&](Tx& tx) {
    return std::make_pair(tx.Load(x), std::string("ok"));
  });
  EXPECT_EQ(pair.first, 6u);
  EXPECT_EQ(pair.second, "ok");
}

TEST(AtomicallyTest, MoveOnlyReturnValue) {
  Runtime rt((TmConfig()));
  auto p = Atomically(rt.sys(), [&](Tx&) { return std::make_unique<int>(7); });
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

std::uint64_t HelperIncrement(TmSystem& sys, std::uint64_t& var) {
  // Library code: atomic on its own, flat-nested when called from a transaction.
  return Atomically(sys, [&](Tx& tx) {
    std::uint64_t v = tx.Load(var) + 1;
    tx.Store(var, v);
    return v;
  });
}

TEST(AtomicallyTest, LibraryHelperComposes) {
  Runtime rt((TmConfig()));
  std::uint64_t x = 0;
  // Standalone call.
  EXPECT_EQ(HelperIncrement(rt.sys(), x), 1u);
  // Composed: two helper calls and a consistency check, all one transaction.
  Atomically(rt.sys(), [&](Tx& tx) {
    std::uint64_t a = HelperIncrement(rt.sys(), x);
    std::uint64_t b = HelperIncrement(rt.sys(), x);
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(tx.Load(x), b);
  });
  EXPECT_EQ(x, 3u);
}

TEST(AtomicallyTest, InTxReflectsState) {
  Runtime rt((TmConfig()));
  EXPECT_FALSE(rt.sys().InTx());
  Atomically(rt.sys(), [&](Tx& tx) {
    (void)tx;
    EXPECT_TRUE(rt.sys().InTx());
  });
  EXPECT_FALSE(rt.sys().InTx());
}

TEST(AtomicallyTest, TwoDomainsOnOneThread) {
  Runtime a({.backend = Backend::kEagerStm});
  Runtime b({.backend = Backend::kLazyStm});
  std::uint64_t xa = 0;
  std::uint64_t xb = 0;
  for (int i = 0; i < 100; ++i) {
    Atomically(a.sys(), [&](Tx& tx) { tx.Store(xa, tx.Load(xa) + 1); });
    Atomically(b.sys(), [&](Tx& tx) { tx.Store(xb, tx.Load(xb) + 2); });
  }
  EXPECT_EQ(xa, 100u);
  EXPECT_EQ(xb, 200u);
}

TEST(AtomicallyTest, ManyShortLivedDomains) {
  // Domain create/destroy churn: descriptor caches are uid-guarded, so a new
  // domain at a recycled address must not see stale thread state.
  for (int i = 0; i < 50; ++i) {
    auto rt = std::make_unique<Runtime>(TmConfig{});
    std::uint64_t x = 0;
    Atomically(rt->sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t(i)); });
    EXPECT_EQ(x, static_cast<std::uint64_t>(i));
  }
}

TEST(AtomicallyTest, ThreadChurnRecyclesDescriptors) {
  TmConfig cfg;
  cfg.max_threads = 8;  // far fewer than the threads created below
  Runtime rt(cfg);
  std::uint64_t x = 0;
  for (int round = 0; round < 30; ++round) {
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&] {
        Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
      });
    }
    for (auto& t : ts) {
      t.join();
    }
  }
  EXPECT_EQ(x, 120u);
}

TEST(AtomicallyTest, ConstLoadFromSharedState) {
  Runtime rt((TmConfig()));
  const std::uint64_t x = 99;  // read-only shared data is loadable
  std::uint64_t got = Atomically(rt.sys(), [&](Tx& tx) { return tx.Load(x); });
  EXPECT_EQ(got, 99u);
}

TEST(AtomicallyTest, EnumAndSignedFields) {
  enum class Color : std::uint32_t { kRed = 1, kBlue = 2 };
  Runtime rt((TmConfig()));
  alignas(8) Color c = Color::kRed;
  alignas(8) std::int64_t s = -5;
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(c, Color::kBlue);
    tx.Store(s, std::int64_t{-6});
    EXPECT_EQ(tx.Load(c), Color::kBlue);
    EXPECT_EQ(tx.Load(s), -6);
  });
  EXPECT_EQ(c, Color::kBlue);
  EXPECT_EQ(s, -6);
}

TEST(AtomicallyTest, DoubleFieldRoundTrips) {
  Runtime rt((TmConfig()));
  alignas(8) double d = 1.5;
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(d, 2.25); });
  EXPECT_EQ(d, 2.25);
}

TEST(AtomicallyTest, StatsResetClearsCounters) {
  Runtime rt((TmConfig()));
  std::uint64_t x = 0;
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{1}); });
  EXPECT_GT(rt.AggregateStats().Get(Counter::kCommits), 0u);
  rt.ResetStats();
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kCommits), 0u);
}

TEST(AtomicallyTest, CounterNamesAreUnique) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumCounters; ++i) {
    names.emplace_back(CounterName(static_cast<Counter>(i)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(std::count(names.begin(), names.end(), "unknown"), 0);
}

}  // namespace
}  // namespace tcs
