// Property-based tests: randomized workloads checked against sequential
// reference models and global invariants, swept across backends and sizes with
// parameterized suites.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/sync/bounded_buffer.h"
#include "src/sync/work_queue.h"
#include "src/tm/redo_log.h"
#include "src/tm/undo_log.h"
#include "tests/matrix.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

// --- RedoLog vs std::unordered_map reference, swept over workload sizes ---

class RedoLogPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RedoLogPropertyTest, MatchesMapReference) {
  const int ops = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(ops) * 2654435761u);
  std::vector<TmWord> arena(256, 0);
  RedoLog log;
  std::unordered_map<TmWord*, TmWord> model;
  for (int i = 0; i < ops; ++i) {
    TmWord* addr = &arena[rng.NextBounded(arena.size())];
    if (rng.NextBounded(3) == 0) {
      TmWord got = 0;
      bool hit = log.Lookup(addr, &got);
      auto it = model.find(addr);
      ASSERT_EQ(hit, it != model.end());
      if (hit) {
        ASSERT_EQ(got, it->second);
      }
    } else {
      TmWord val = rng.Next();
      log.Put(addr, val);
      model[addr] = val;
    }
  }
  ASSERT_EQ(log.Size(), model.size());
  log.WriteBack();
  for (const auto& [addr, val] : model) {
    ASSERT_EQ(*addr, val);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RedoLogPropertyTest,
                         ::testing::Values(1, 7, 32, 100, 500, 2000, 10000));

// --- UndoLog: random write sequences must roll back to the initial image ---

class UndoLogPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UndoLogPropertyTest, UndoRestoresInitialImage) {
  const int writes = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(writes) + 99);
  std::vector<TmWord> arena(64);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena[i] = rng.Next();
  }
  std::vector<TmWord> initial = arena;
  UndoLog log;
  for (int i = 0; i < writes; ++i) {
    TmWord* addr = &arena[rng.NextBounded(arena.size())];
    log.Append(addr, *addr);
    *addr = rng.Next();
  }
  log.UndoAll();
  ASSERT_EQ(arena, initial);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UndoLogPropertyTest,
                         ::testing::Values(0, 1, 5, 50, 500, 5000));

// --- Transactional invariants under randomized concurrent load ---

class TmInvariantTest : public ::testing::TestWithParam<Backend> {
 protected:
  TmInvariantTest() : rt_(MatrixConfig(GetParam(), 32)) {}
  Runtime rt_;
};

TEST_P(TmInvariantTest, SumPreservingRandomTransfersWithFullAudit) {
  // Every transaction re-verifies the global invariant over ALL cells before
  // mutating, so any serializability violation trips inside the transaction.
  constexpr int kCells = 12;
  constexpr std::uint64_t kTotal = 12000;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  std::vector<std::uint64_t> cells(kCells, kTotal / kCells);
  std::atomic<int> violations{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      SplitMix64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        int from = static_cast<int>(rng.NextBounded(kCells));
        int to = static_cast<int>(rng.NextBounded(kCells));
        std::uint64_t amount = rng.NextBounded(5);
        Atomically(rt_.sys(), [&](Tx& tx) {
          std::uint64_t sum = 0;
          for (int c = 0; c < kCells; ++c) {
            sum += tx.Load(cells[c]);
          }
          if (sum != kTotal) {
            // mo: acq_rel — [harness] cross-thread counter/flag RMW.
            violations.fetch_add(1, std::memory_order_acq_rel);
            return;
          }
          std::uint64_t f = tx.Load(cells[from]);
          if (f >= amount) {
            tx.Store(cells[from], f - amount);
            tx.Store(cells[to], tx.Load(cells[to]) + amount);
          }
        });
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0);
  std::uint64_t total = 0;
  for (auto c : cells) {
    total += c;
  }
  EXPECT_EQ(total, kTotal);
}

TEST_P(TmInvariantTest, CommitCounterMatchesExternalCount) {
  // Each writer transaction increments a transactional counter; the final value
  // must equal the number of Atomically() calls that returned (exactly-once
  // commit semantics even under aborts and retries).
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::uint64_t counter = 0;
  std::atomic<std::uint64_t> external{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        external.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(counter, external.load(std::memory_order_acquire));
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST_P(TmInvariantTest, RandomizedRestartInjection) {
  // Failure injection: bodies randomly self-restart mid-flight; committed
  // effects must still be exactly once per successful completion.
  constexpr int kOps = 3000;
  std::uint64_t counter = 0;
  SplitMix64 rng(1234);
  for (int i = 0; i < kOps; ++i) {
    int attempts = 0;
    bool inject = rng.NextBounded(4) == 0;
    Atomically(rt_.sys(), [&](Tx& tx) {
      std::uint64_t v = tx.Load(counter);
      tx.Store(counter, v + 1);
      if (inject && attempts++ == 0) {
        tx.RestartNow();
      }
    });
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kOps));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TmInvariantTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// --- Bounded buffer vs std::deque reference (single-threaded, random ops) ---

class BufferModelTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(BufferModelTest, RandomOpsMatchDequeModel) {
  TmConfig cfg = MatrixConfig(GetParam().backend);
  Runtime rt(cfg);
  Mechanism mech = GetParam().mech;
  if (mech == Mechanism::kPthreads) {
    GTEST_SKIP() << "model test drives the transactional building blocks";
  }
  BoundedBuffer buf(&rt, mech, 8);
  std::deque<std::uint64_t> model;
  SplitMix64 rng(2024);
  for (int i = 0; i < 4000; ++i) {
    bool produce = rng.NextBounded(2) == 0;
    std::uint64_t value = rng.Next();
    if (produce) {
      bool did = Atomically(rt.sys(), [&](Tx& tx) -> bool {
        if (buf.Full(tx)) {
          return false;
        }
        buf.Put(tx, value);
        return true;
      });
      ASSERT_EQ(did, model.size() < 8);
      if (did) {
        model.push_back(value);
      }
    } else {
      std::uint64_t got = 0;
      bool did = Atomically(rt.sys(), [&](Tx& tx) -> bool {
        if (buf.Empty(tx)) {
          return false;
        }
        got = buf.Get(tx);
        return true;
      });
      ASSERT_EQ(did, !model.empty());
      if (did) {
        ASSERT_EQ(got, model.front());
        model.pop_front();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, BufferModelTest,
                         ::testing::ValuesIn(AllMatrixCombos()), MatrixParamName);

// --- Mechanism interoperability: mixed waiters in one TM domain ---

TEST(MechanismInteropTest, MixedWaitersShareOneRuntime) {
  // One writer advances a counter; three waiters use three different
  // mechanisms simultaneously on the same location.
  Runtime rt(MatrixConfig(Backend::kEagerStm));
  std::uint64_t counter = 0;
  std::atomic<int> done{0};

  std::thread retry_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(counter) < 1) {
        tx.Retry();
      }
    });
    // mo: acq_rel — [harness] cross-thread counter/flag RMW.
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  std::thread await_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(counter) < 2) {
        tx.Await(counter);
      }
    });
    // mo: acq_rel — [harness] cross-thread counter/flag RMW.
    done.fetch_add(1, std::memory_order_acq_rel);
  });
  std::thread orig_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(counter) < 3) {
        tx.RetryOrig();
      }
    });
    // mo: acq_rel — [harness] cross-thread counter/flag RMW.
    done.fetch_add(1, std::memory_order_acq_rel);
  });

  for (int i = 1; i <= 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
  }
  retry_waiter.join();
  await_waiter.join();
  orig_waiter.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(done.load(std::memory_order_acquire), 3);
}

TEST(MechanismInteropTest, RandomMixedWaitStress) {
  // Random waiters pick a random mechanism each round; the writer advances a
  // round counter. Any lost wakeup hangs the test.
  Runtime rt(MatrixConfig(Backend::kEagerStm));
  constexpr int kRounds = 150;
  constexpr int kWaiters = 3;
  std::uint64_t round = 0;

  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      SplitMix64 rng(static_cast<std::uint64_t>(w) + 5);
      for (int r = 1; r <= kRounds; ++r) {
        std::uint64_t pick = rng.NextBounded(3);
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(round) < static_cast<std::uint64_t>(r)) {
            switch (pick) {
              case 0:
                tx.Retry();
              case 1:
                tx.Await(round);
              default:
                tx.RetryOrig();
            }
          }
        });
      }
    });
  }
  for (int r = 1; r <= kRounds; ++r) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(round, static_cast<std::uint64_t>(r));
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& w : waiters) {
    w.join();
  }
  SUCCEED();
}

// --- WorkQueue FIFO property (single producer, single consumer) ---

class QueueFifoTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(QueueFifoTest, SpScPreservesOrder) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(GetParam().mech)) {
    rt = std::make_unique<Runtime>(MatrixConfig(GetParam().backend));
  }
  WorkQueue q(rt.get(), GetParam().mech, 4);
  constexpr std::uint64_t kItems = 1200;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      q.Push(i);
    }
    q.Close();
  });
  std::uint64_t expect = 0;
  while (auto v = q.Pop()) {
    ASSERT_EQ(*v, expect);
    expect++;
  }
  producer.join();
  EXPECT_EQ(expect, kItems);
}

INSTANTIATE_TEST_SUITE_P(Matrix, QueueFifoTest,
                         ::testing::ValuesIn(AllMatrixCombos()), MatrixParamName);

}  // namespace
}  // namespace tcs
