// Litmus-shaped regression tests for the relaxed happens-before edges in the
// glossary (src/condsync/wake_index.h). Each test pins one edge to the
// classic weak-memory shape its argument is phrased in — message passing
// (MP), publication, and store buffering (SB) — so any future weakening of an
// endpoint ordering has a dedicated failing shape, natively and under TSan.
//
// These are *pinning* tests: on strong hardware (x86) most reorderings the
// edges forbid cannot manifest anyway, but TSan checks the happens-before
// reasoning itself (a payload read without the edge's synchronization is a
// reported race), and on weaker ISAs the shapes fail outright if an edge's
// release/acquire pairing is dropped.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/tm/orec_table.h"
#include "src/tm/version_clock.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

// --------------------------------------------------------------------------
// [wake-publish] — message passing through the bitmap + clock chain.
//
// Waiter: plain payload write → release bitmap insert → clock RMW (its
// registration commit). Writer: clock RMW → bitmap scan. The edge's claim:
// whenever the writer's RMW serializes after the waiter's in the [clock-chain]
// release sequence, the scan sees the bit, and seeing the bit (acquire read of
// the release insert) makes the payload visible.
// --------------------------------------------------------------------------
TEST(LitmusWakePublishTest, InsertPublishesThroughClockChain) {
  constexpr int kRounds = 300;
  constexpr int kTid = 3;
  WakeIndex idx(/*max_threads=*/64, /*num_shards=*/64);
  VersionClock clock;
  Orec o;
  const Orec* orecs[1] = {&o};
  for (int round = 0; round < kRounds; ++round) {
    std::uint64_t payload = 0;        // plain: published by the edge
    std::uint64_t end_waiter = 0;     // read after join only
    std::uint64_t end_writer = 0;
    bool seen = false;
    std::uint64_t seen_payload = 0;
    std::thread waiter([&] {
      payload = static_cast<std::uint64_t>(round) + 1;
      idx.AddIndexed(kTid, orecs, 1);
      end_waiter = clock.Increment();
    });
    std::thread writer([&] {
      end_writer = clock.Increment();
      std::vector<std::uint64_t> shard_set(
          static_cast<std::size_t>(idx.shard_words()));
      idx.BuildShardSet(orecs, 1, shard_set.data());
      idx.ForEachCandidateIn(shard_set.data(), [&](int tid) {
        if (tid == kTid) {
          seen = true;
          seen_payload = payload;  // race-free iff [wake-publish] holds
        }
        return true;
      });
    });
    waiter.join();
    writer.join();
    if (end_writer > end_waiter) {
      EXPECT_TRUE(seen) << "writer serialized after registration (commit "
                        << end_writer << " > " << end_waiter
                        << ") but missed the bitmap bit — lost wakeup shape";
      EXPECT_EQ(seen_payload, static_cast<std::uint64_t>(round) + 1)
          << "bit visible but pre-insert payload not published";
    }
    idx.Remove(kTid);
  }
  EXPECT_TRUE(idx.Empty());
}

// --------------------------------------------------------------------------
// [orec-publish] — publication: a committer's plain data write-back followed
// by the orec word's release store of an unlocked version; any acquire load
// that observes the new version must also observe the data.
// --------------------------------------------------------------------------
TEST(LitmusOrecPublishTest, ReleaseVersionStorePublishesData) {
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    Orec o;
    std::uint64_t data = 0;  // plain: the "write-back"
    std::uint64_t observed = 0;
    bool saw_version = false;
    std::thread committer([&] {
      data = 42;
      // mo: release — [orec-publish]: the unlocked-version store publishes
      // the plain write-back above, exactly as a commit's orec release does.
      o.word.store(Orec::MakeVersion(1), std::memory_order_release);
    });
    std::thread reader([&] {
      // mo: acquire — [orec-publish]: samples the orec word like a
      // transactional read's pre/post-validation load.
      std::uint64_t w = o.word.load(std::memory_order_acquire);
      if (!Orec::IsLocked(w) && Orec::Version(w) == 1) {
        saw_version = true;
        observed = data;  // race-free iff [orec-publish] holds
      }
    });
    committer.join();
    reader.join();
    if (saw_version) {
      EXPECT_EQ(observed, 42u)
          << "orec version visible but write-back not published";
    }
  }
}

// --------------------------------------------------------------------------
// [retry-dekker] — store buffering: the fence-anchored exclusion behind
// RetryOrig. Waiter: raise count (relaxed), seq_cst fence, read orec.
// Writer: release orec, seq_cst fence, read count. Forbidden outcome: both
// read the pre-update values (waiter validates stale AND writer sees no
// waiter → lost wakeup). The model mirrors WaitForOverlap/the commit path in
// tm_system.cc op for op.
// --------------------------------------------------------------------------
TEST(LitmusRetryDekkerTest, FencesExcludeStoreBufferingOutcome) {
  constexpr int kRounds = 400;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> orec{0};
    std::uint64_t waiter_saw_orec = ~std::uint64_t{0};
    std::uint64_t writer_saw_count = ~std::uint64_t{0};
    std::thread waiter([&] {
      // mo: relaxed — [retry-dekker] rider: the raise is anchored by the
      // fence below, as in RetryOrigRegistry::WaitForOverlap.
      count.fetch_add(1, std::memory_order_relaxed);
      // mo: seq_cst fence — [retry-dekker] waiter leg.
      // seq_cst-required: store-buffering exclusion — W(count)/R(orec) here
      // vs the writer's W(orec)/R(count); acquire/release fences cannot
      // forbid both sides reading the pre-update values.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // mo: acquire — [orec-publish], riding the [retry-dekker] fences: the
      // validation load.
      waiter_saw_orec = orec.load(std::memory_order_acquire);
    });
    std::thread writer([&] {
      // mo: release — [orec-publish]: the commit's orec release.
      orec.store(1, std::memory_order_release);
      // mo: seq_cst fence — [retry-dekker] writer leg.
      // seq_cst-required: same store-buffering exclusion as the waiter leg;
      // mirrors the commit-side fence in tm_system.cc.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // mo: relaxed — [retry-dekker] rider: the HasWaiters peek.
      writer_saw_count = count.load(std::memory_order_relaxed);
    });
    waiter.join();
    writer.join();
    EXPECT_FALSE(waiter_saw_orec == 0 && writer_saw_count == 0)
        << "both sides read pre-update values: the lost-wakeup SB outcome "
           "the [retry-dekker] fences forbid";
  }
}

// --------------------------------------------------------------------------
// End-to-end publication litmus on every backend: a waiter whose predicate is
// false retries; a writer then commits the predicate true. The wakeup must
// arrive (RetryFor is a bounded safety net, not the expected path). This is
// the full-stack shape the [wake-publish] + [clock-chain] relaxation must
// keep intact on eager STM, lazy STM, and sim-HTM alike.
// --------------------------------------------------------------------------
class LitmusBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(LitmusBackendTest, CommitAfterRegistrationIsNeverLost) {
  TmConfig cfg;
  cfg.backend = GetParam();
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 16;
  Runtime rt(cfg);
  constexpr int kRounds = 25;
  std::uint64_t cell = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t target = static_cast<std::uint64_t>(round) + 1;
    std::atomic<bool> timed_out{false};
    std::thread waiter([&] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cell) < target) {
          if (tx.RetryFor(std::chrono::seconds(20)) ==
              WaitResult::kTimedOut) {
            // mo: release — [harness] publish the failure to the test body.
            timed_out.store(true, std::memory_order_release);
          }
        }
      });
    });
    // Wait until the waiter is observably asleep so the commit below races
    // the registration path, not thread startup.
    for (int i = 0; i < 100000; ++i) {
      if (rt.AggregateStats().Get(Counter::kSleeps) >=
          static_cast<std::uint64_t>(round) + 1) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, target); });
    waiter.join();
    // mo: acquire — [harness] observe worker-published state.
    ASSERT_FALSE(timed_out.load(std::memory_order_acquire))
        << "lost wakeup on " << BackendName(GetParam()) << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, LitmusBackendTest,
    ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                      Backend::kSimHtm),
    [](const ::testing::TestParamInfo<Backend>& info) {
      std::string out = BackendName(info.param);
      for (char& c : out) {
        if (c == '-') {
          c = '_';
        }
      }
      return out;
    });

}  // namespace
}  // namespace tcs
