// The lock-free CAS wake-claim fast path racing the batched wake-transaction
// path (both live by default): the common disjoint-waiter case must claim with
// zero wake transactions, arbitrary-predicate waiters must still go through
// the batch path, and under churn the two claim paths must never double-post
// or lose a wakeup. CI runs this binary under TSan and again with
// TCS_PROTOCOL_CHECKS=ON, where any claim/post imbalance (a CAS claim without
// a post, a post without a claim, a double claim) aborts the process.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TmConfig ConfigFor(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 64;
  // Defaults, but spelled out: this suite is about both paths being live.
  cfg.cas_claim_fast_path = true;
  cfg.adaptive_wake_batch = true;
  cfg.wake_batch_size = 4;
  return cfg;
}

void AwaitCounter(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

// Cache-line padding keeps each cell in its own orec on every backend,
// including the simulated HTM's line-granular table.
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

std::string BackendTestName(Backend b) {
  switch (b) {
    case Backend::kEagerStm:
      return "EagerStm";
    case Backend::kLazyStm:
      return "LazyStm";
    case Backend::kSimHtm:
      return "SimHtm";
  }
  return "Unknown";
}

class CasClaimTest : public ::testing::TestWithParam<Backend> {};

// The acceptance case: 1..4 disjoint waiters released one at a time by an
// uncontended writer. Every claim must come from the CAS fast path, with zero
// wake transactions — the fast path strictly reduces wake transactions per
// commit relative to the batched baseline (which needed one per wake pass).
TEST_P(CasClaimTest, DisjointWaitersClaimWithoutWakeTransactions) {
  for (int n_waiters : {1, 2, 4}) {
    Runtime rt(ConfigFor(GetParam()));
    auto cells = std::make_unique<PaddedCell[]>(n_waiters);
    std::vector<std::thread> waiters;
    for (int t = 0; t < n_waiters; ++t) {
      waiters.emplace_back([&, t] {
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(cells[t].v) == 0) {
            tx.Retry();
          }
        });
      });
    }
    AwaitCounter(rt, Counter::kSleeps, n_waiters);
    rt.ResetStats();
    for (int t = 0; t < n_waiters; ++t) {
      Atomically(rt.sys(),
                 [&](Tx& tx) { tx.Store(cells[t].v, std::uint64_t{1}); });
    }
    for (auto& w : waiters) {
      w.join();
    }
    TxStats s = rt.AggregateStats();
    EXPECT_EQ(s.Get(Counter::kCasWakeClaims),
              static_cast<std::uint64_t>(n_waiters))
        << n_waiters << " disjoint waiters";
    EXPECT_EQ(s.Get(Counter::kWakeBatches), 0u)
        << "an uncontended claim still paid for a wake transaction";
    EXPECT_EQ(s.Get(Counter::kWakeups),
              static_cast<std::uint64_t>(n_waiters));
    EXPECT_EQ(s.Get(Counter::kFalseWakeups), 0u);
    EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
    EXPECT_TRUE(rt.sys().wake_index().Empty());
  }
}

struct ThresholdState {
  std::uint64_t count = 0;
};

bool CountAtLeastPred(TmSystem& sys, const WaitArgs& args) {
  const auto* st = reinterpret_cast<const ThresholdState*>(args.v[0]);
  TmWord v = sys.Read(reinterpret_cast<const TmWord*>(&st->count));
  return v >= args.v[1];
}

// Arbitrary predicates cannot be snapshot-evaluated outside a transaction, so
// WaitPred waiters must be claimed by the batched path even with the fast
// path enabled — and the fast path must count them as fallbacks, not claims.
TEST_P(CasClaimTest, ArbitraryPredicateWaitersUseTheBatchPath) {
  Runtime rt(ConfigFor(GetParam()));
  ThresholdState st;
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(st.count) < 1) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&st);
        args.v[1] = 1;
        args.n = 2;
        tx.WaitPred(&CountAtLeastPred, args);
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  rt.ResetStats();
  Atomically(rt.sys(),
             [&](Tx& tx) { tx.Store(st.count, tx.Load(st.count) + 1); });
  waiter.join();
  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kCasWakeClaims), 0u)
      << "a non-findChanges predicate was claimed without a transaction";
  EXPECT_GE(s.Get(Counter::kCasClaimFallbacks), 1u);
  EXPECT_GE(s.Get(Counter::kWakeBatches), 1u);
  EXPECT_GE(s.Get(Counter::kWakeups), 1u);
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// Race stress: many writers hammer a shared hub (every parked waiter becomes
// a candidate of every commit, so concurrent wake passes race on the same
// slots — CAS losers fall back to wake transactions mid-flight) while waiters
// churn through timed and untimed parks. Correctness bars: nobody hangs, no
// false wakeups (a claim of an unsatisfied waiter), exact claim/post balance
// (enforced fatally by the protocol checker when compiled in), and no leaked
// registry or index entries.
TEST_P(CasClaimTest, FastAndBatchedClaimsRaceUnderChurn) {
  constexpr int kWaiters = 8;
  constexpr int kWriters = 4;
  constexpr int kRoundsPerWaiter = 25;
  Runtime rt(ConfigFor(GetParam()));
  PaddedCell hub;
  auto cells = std::make_unique<PaddedCell[]>(kWaiters);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t i = 0;
      // mo: acquire — [harness] observe worker-published state.
      while (!stop.load(std::memory_order_acquire)) {
        if ((i + w) % 2 == 0) {
          Atomically(rt.sys(),
                     [&](Tx& tx) { tx.Store(hub.v, tx.Load(hub.v) + 1); });
        } else {
          int target = static_cast<int>(i + w) % kWaiters;
          Atomically(rt.sys(), [&](Tx& tx) {
            tx.Store(cells[target].v, tx.Load(cells[target].v) + 1);
          });
        }
        ++i;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t last_hub = 0;
      std::uint64_t last_own = 0;
      for (int r = 0; r < kRoundsPerWaiter; ++r) {
        auto timeout = std::chrono::microseconds(50 + (r % 5) * 150);
        auto pair = Atomically(
            rt.sys(), [&](Tx& tx) -> std::pair<std::uint64_t, std::uint64_t> {
              std::uint64_t h = tx.Load(hub.v);
              std::uint64_t own = tx.Load(cells[t].v);
              if (h == last_hub && own == last_own) {
                if (tx.RetryFor(timeout) == WaitResult::kTimedOut) {
                  return {h, own};
                }
              }
              return {h, own};
            });
        last_hub = pair.first;
        last_own = pair.second;
      }
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }

  // Deterministic finale: everyone parks untimed, each is released by its own
  // write. A lost wakeup (double claim, missed claim) hangs the join.
  waiters.clear();
  std::atomic<int> woken{0};
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t seen = cells[t].v.UnsafeRead();
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[t].v) == seen) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  while (rt.sys().waiters().RegisteredCount() < kWaiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (int t = 0; t < kWaiters; ++t) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(cells[t].v, tx.Load(cells[t].v) + 1);
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(woken.load(std::memory_order_acquire), kWaiters);
  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kFalseWakeups), 0u)
      << "a claim path woke a waiter whose predicate never changed";
  EXPECT_GE(s.Get(Counter::kCasWakeClaims), 1u)
      << "the fast path never claimed anything under churn";
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty())
      << "an index entry leaked through the racing claim paths";
}

// wake_single with the fast path: a commit satisfying many waiters may post
// exactly one wakeup, even when the claims come from the CAS path.
TEST_P(CasClaimTest, WakeSingleBudgetHoldsOnTheFastPath) {
  constexpr int kWaiters = 6;
  TmConfig cfg = ConfigFor(GetParam());
  cfg.wake_single = true;
  Runtime rt(cfg);
  PaddedCell cell;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cell.v) == 0) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  AwaitCounter(rt, Counter::kSleeps, kWaiters);
  rt.ResetStats();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  while (woken.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 1u)
      << "wake_single leaked extra wakeups through the fast path";
  // The woken waiter's read-only commit wakes nobody; drive the rest out.
  // mo: acquire — [harness] observe worker-published state.
  while (woken.load(std::memory_order_acquire) < kWaiters) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CasClaimTest,
                         ::testing::Values(Backend::kEagerStm,
                                           Backend::kLazyStm, Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return BackendTestName(info.param);
                         });

}  // namespace
}  // namespace tcs
