// Multi-threaded correctness of the three backends: atomicity of increments,
// conserved invariants under contention, write-skew prevention, and privatization
// via transactional free. All tests are parameterized over the backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

class StmConcurrentTest : public ::testing::TestWithParam<Backend> {
 protected:
  StmConcurrentTest() : rt_(MakeConfig()) {}

  TmConfig MakeConfig() {
    TmConfig cfg;
    cfg.backend = GetParam();
    cfg.orec_table_log2 = 14;
    cfg.max_threads = 32;
    return cfg;
  }

  Runtime rt_;
};

TEST_P(StmConcurrentTest, ParallelIncrementsAreExact) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::uint64_t counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_P(StmConcurrentTest, BankTransfersConserveTotal) {
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kTransfers = 3000;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<std::uint64_t> accounts(kAccounts, kInitial);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kTransfers; ++i) {
        int from = static_cast<int>(rng.NextBounded(kAccounts));
        int to = static_cast<int>(rng.NextBounded(kAccounts));
        std::uint64_t amount = rng.NextBounded(10);
        Atomically(rt_.sys(), [&](Tx& tx) {
          std::uint64_t f = tx.Load(accounts[from]);
          if (f < amount) {
            return;
          }
          tx.Store(accounts[from], f - amount);
          tx.Store(accounts[to], tx.Load(accounts[to]) + amount);
        });
        // Concurrent read-only audit: the total must be conserved in every
        // serializable snapshot, not only at the end.
        if (i % 64 == 0) {
          std::uint64_t total = Atomically(rt_.sys(), [&](Tx& tx) {
            std::uint64_t sum = 0;
            for (int a = 0; a < kAccounts; ++a) {
              sum += tx.Load(accounts[a]);
            }
            return sum;
          });
          EXPECT_EQ(total, kAccounts * kInitial);
        }
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  std::uint64_t total = 0;
  for (auto a : accounts) {
    total += a;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_P(StmConcurrentTest, WriteSkewIsPrevented) {
  // Classic write-skew: each transaction reads both flags and sets its own only
  // if the other is clear. A serializable TM never lets both end up set.
  for (int round = 0; round < 200; ++round) {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::thread t1([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(y) == 0) {
          tx.Store(x, std::uint64_t{1});
        }
      });
    });
    std::thread t2([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(x) == 0) {
          tx.Store(y, std::uint64_t{1});
        }
      });
    });
    t1.join();
    t2.join();
    EXPECT_FALSE(x == 1 && y == 1) << "round " << round;
  }
}

TEST_P(StmConcurrentTest, TransactionalListInsertRemove) {
  // A singly linked list of transactionally allocated nodes: concurrent inserts
  // and removals with transactional free (exercises privatization/quiescence).
  struct Node {
    std::uint64_t value;
    Node* next;
  };
  Node* head = nullptr;
  constexpr int kThreads = 4;
  constexpr int kOps = 800;

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(t) * kOps + i;
        if (i % 2 == 0) {
          Atomically(rt_.sys(), [&](Tx& tx) {
            auto* n = static_cast<Node*>(tx.AllocBytes(sizeof(Node)));
            tx.Store(n->value, v);
            tx.Store(n->next, tx.Load(head));
            tx.Store(head, n);
          });
        } else {
          Atomically(rt_.sys(), [&](Tx& tx) {
            Node* h = tx.Load(head);
            if (h == nullptr) {
              return;
            }
            tx.Store(head, tx.Load(h->next));
            tx.FreeBytes(h);
          });
        }
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  // Walk and free what remains; the structure must be a well-formed list.
  int remaining = 0;
  Atomically(rt_.sys(), [&](Tx& tx) {
    remaining = 0;
    Node* n = tx.Load(head);
    while (n != nullptr) {
      Node* next = tx.Load(n->next);
      tx.FreeBytes(n);
      n = next;
      remaining++;
    }
    tx.Store(head, static_cast<Node*>(nullptr));
  });
  EXPECT_GE(remaining, 0);
  EXPECT_LE(remaining, kThreads * kOps / 2);
}

TEST_P(StmConcurrentTest, ReadersSeeConsistentPairs) {
  // Writers keep x == y at all times; readers must never observe x != y
  // (opacity: no zombie snapshots).
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (int i = 1; i <= 4000; ++i) {
      Atomically(rt_.sys(), [&](Tx& tx) {
        tx.Store(x, static_cast<std::uint64_t>(i));
        tx.Store(y, static_cast<std::uint64_t>(i));
      });
    }
    // mo: release — [harness] publish state to other harness threads.
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      // mo: acquire — [harness] observe worker-published state.
      while (!stop.load(std::memory_order_acquire)) {
        auto pair = Atomically(rt_.sys(), [&](Tx& tx) {
          return std::make_pair(tx.Load(x), tx.Load(y));
        });
        if (pair.first != pair.second) {
          // mo: acq_rel — [harness] cross-thread counter/flag RMW.
          violations.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StmConcurrentTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tcs
