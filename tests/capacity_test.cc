// Capacity-tier tests: 10^4 parked waiters per backend against the segmented
// registry/index + pooled parking, the max_threads ceiling's loud death, the
// mutex+condvar parking-pool fallback, and timed-wait churn through (and
// without) the shared TimerWheel.
#include <gtest/gtest.h>

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <thread>

#include "src/common/parking_lot.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/tm/tm_system.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TCS_CAPACITY_TSAN 1
#endif
#endif
#if !defined(TCS_CAPACITY_TSAN) && defined(__SANITIZE_THREAD__)
#define TCS_CAPACITY_TSAN 1
#endif

namespace tcs {
namespace {

// TSan instruments every thread and keeps per-thread shadow state; 10^4
// threads under it is minutes of wall time and GBs of shadow, so the
// sanitizer job runs the same protocol at a few hundred waiters.
#if defined(TCS_CAPACITY_TSAN)
constexpr int kManyWaiters = 256;
#else
constexpr int kManyWaiters = 10000;
#endif

// The ISSUE's memory gate: directory + segments, per parked waiter.
constexpr double kMaxCondsyncBytesPerWaiter = 4096.0;

struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

constexpr std::uint64_t kStop = ~std::uint64_t{0};

// Thousands of glibc-default (8MB) stacks burn address space and VMA count
// for threads that only run a retry loop; park the waiters on small fixed
// stacks instead, like the waiter_scale bench.
class SmallStackThreads {
 public:
  ~SmallStackThreads() { JoinAll(); }

  bool Spawn(std::function<void()> fn) {
    fns_.push_back(std::move(fn));  // deque: stable address for the trampoline
    pthread_attr_t attr;
    pthread_attr_init(&attr);
    pthread_attr_setstacksize(&attr, 256 * 1024);
    pthread_t t;
    int rc = pthread_create(&t, &attr, &Trampoline, &fns_.back());
    pthread_attr_destroy(&attr);
    if (rc != 0) {
      fns_.pop_back();
      return false;
    }
    handles_.push_back(t);
    return true;
  }

  int spawned() const { return static_cast<int>(handles_.size()); }

  void JoinAll() {
    for (pthread_t t : handles_) {
      pthread_join(t, nullptr);
    }
    handles_.clear();
    fns_.clear();
  }

 private:
  static void* Trampoline(void* p) {
    (*static_cast<std::function<void()>*>(p))();
    return nullptr;
  }

  std::deque<std::function<void()>> fns_;
  std::deque<pthread_t> handles_;
};

// Parks `waiters` threads on distinct cells, verifies the per-waiter condsync
// footprint bound while everyone is parked, wakes `wake_rounds` distinct
// waiters and counts their acks (any shortfall is a lost wakeup), then
// releases and joins everyone (the definitive no-lost-wakeup check for the
// release broadcast).
void RunManyWaitersPoint(Backend backend, int waiters, int park_backend) {
  TmConfig cfg;
  cfg.backend = backend;
  cfg.max_threads = waiters + 16;
  cfg.park_backend = park_backend;
  Runtime rt(cfg);

  auto cells = std::make_unique<PaddedCell[]>(static_cast<std::size_t>(waiters));
  std::atomic<std::uint64_t> acks{0};
  SmallStackThreads pool;
  for (int w = 0; w < waiters; ++w) {
    bool ok = pool.Spawn([&rt, &cells, &acks, w] {
      std::uint64_t last_seen = 0;
      for (;;) {
        std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[w].v);
          if (cur == last_seen) {
            tx.Retry();
          }
          return cur;
        });
        if (v == kStop) {
          return;
        }
        last_seen = v;
        // mo: release — [harness] publish the ack to the test body.
        acks.fetch_add(1, std::memory_order_release);
      }
    });
    ASSERT_TRUE(ok) << "thread creation failed at " << w;
  }

  while (rt.sys().waiters().RegisteredCount() < waiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  TmSystem::ObsSnapshot parked = rt.sys().SnapshotObs();
  EXPECT_EQ(parked.registered_waiters, waiters);
  EXPECT_GT(parked.condsync_registry_bytes, 0u);
  EXPECT_GT(parked.condsync_wake_index_bytes, 0u);
  const double per_waiter =
      static_cast<double>(parked.condsync_registry_bytes +
                          parked.condsync_wake_index_bytes) /
      static_cast<double>(waiters);
  EXPECT_LT(per_waiter, kMaxCondsyncBytesPerWaiter);
  // Segments materialize on demand: tids run 0..waiters+main, so the segment
  // count must track ceil(tids / 256), not max_threads.
  EXPECT_LE(parked.registry_segments, (waiters + 16 + 255) / 256);

  // Wake a distinct-cell sample; every wake must produce exactly one ack.
  const std::uint64_t rounds =
      std::min<std::uint64_t>(256, static_cast<std::uint64_t>(waiters));
  for (std::uint64_t i = 1; i <= rounds; ++i) {
    const int w = static_cast<int>(i - 1);
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, i); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  // mo: acquire — [harness] observe worker-published acks.
  while (acks.load(std::memory_order_acquire) < rounds &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // mo: acquire — [harness] observe worker-published acks.
  EXPECT_EQ(acks.load(std::memory_order_acquire), rounds) << "lost wakeups";

  for (int w = 0; w < waiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, kStop); });
  }
  pool.JoinAll();

  // Leak check: every waiter deregistered on its way out.
  EXPECT_FALSE(rt.sys().waiters().HasWaiters());
  EXPECT_EQ(rt.sys().SnapshotObs().registered_waiters, 0);
  EXPECT_EQ(rt.sys().ProtocolViolations(), 0u);
}

TEST(CapacityTest, ManyWaitersEager) {
  RunManyWaitersPoint(Backend::kEagerStm, kManyWaiters, /*park_backend=*/0);
}

TEST(CapacityTest, ManyWaitersLazy) {
  RunManyWaitersPoint(Backend::kLazyStm, kManyWaiters, /*park_backend=*/0);
}

TEST(CapacityTest, ManyWaitersHtm) {
  RunManyWaitersPoint(Backend::kSimHtm, kManyWaiters, /*park_backend=*/0);
}

// The portable mutex+condvar parking pool must pass the same protocol the
// futex backend does (it is the only backend off-Linux).
TEST(CapacityTest, ManyWaitersPoolParking) {
  RunManyWaitersPoint(Backend::kEagerStm, std::min(kManyWaiters, 2048),
                      /*park_backend=*/2);
}

TEST(CapacityTest, PoolBackendReportsNoFutex) {
  TmConfig cfg;
  cfg.park_backend = 2;
  Runtime rt(cfg);
  EXPECT_FALSE(rt.sys().parking().UsesFutex());
}

// Segment directories grow by appending 256-tid blocks as tids are touched;
// with ~600 waiters the registry must hold exactly ceil(tids/256) = 3
// segments, not a max_threads-sized slab.
TEST(CapacityTest, SegmentsGrowOnDemand) {
  constexpr int kWaiters = 600;
  TmConfig cfg;
  cfg.max_threads = 4096;
  Runtime rt(cfg);
  auto cells = std::make_unique<PaddedCell[]>(kWaiters);
  SmallStackThreads pool;
  for (int w = 0; w < kWaiters; ++w) {
    ASSERT_TRUE(pool.Spawn([&rt, &cells, w] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[w].v) == 0) {
          tx.Retry();
        }
      });
    }));
  }
  while (rt.sys().waiters().RegisteredCount() < kWaiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  TmSystem::ObsSnapshot obs = rt.sys().SnapshotObs();
  // tids 0..600 (waiters + the main thread) span three 256-tid segments.
  EXPECT_EQ(obs.registry_segments, 3);
  EXPECT_LE(obs.wake_index_segments, 3);
  // The ceiling (4096 tids = 16 segments) was NOT pre-materialized.
  EXPECT_LT(obs.condsync_registry_bytes + obs.condsync_wake_index_bytes,
            static_cast<std::uint64_t>(kMaxCondsyncBytesPerWaiter) * kWaiters);
  for (int w = 0; w < kWaiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
  }
  pool.JoinAll();
}

// Registration past the max_threads ceiling must die loudly (TCS_CHECK), not
// scribble past a directory. Both threads hold their registration alive while
// the second registers, so tid recycling cannot mask the overflow.
TEST(CapacityDeathTest, MaxThreadsCeilingDiesLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TmConfig cfg;
        cfg.max_threads = 1;
        Runtime rt(cfg);
        std::uint64_t x = 0;
        std::atomic<bool> first_registered{false};
        std::atomic<bool> second_died{false};  // never set; pins thread a
        // Thread a registers (tid 0) and then stays alive, so its tid cannot
        // be recycled to mask the overflow when b registers.
        std::thread a([&] {
          Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{1}); });
          // mo: release — [harness] publish registration to the test body.
          first_registered.store(true, std::memory_order_release);
          // mo: acquire — [harness] spin until the process dies under us.
          while (!second_died.load(std::memory_order_acquire)) {
          }
        });
        // mo: acquire — [harness] observe worker-published state.
        while (!first_registered.load(std::memory_order_acquire)) {
        }
        std::thread b([&] {
          Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{2}); });
        });
        b.join();
        a.join();
      },
      "too many threads for this TM domain");
}

// Timed churn against the shared wheel: many concurrent short timed waits
// must be serviced by ONE ticker at O(1) per tick — the wheel's tick count
// stays far below the timed-wait count (the pre-wheel design paid one kernel
// timeout per wait).
TEST(CapacityTest, TimedChurnSharesOneWheel) {
  constexpr int kTimedWaiters = 64;
  TmConfig cfg;
  cfg.max_threads = kTimedWaiters + 16;
  Runtime rt(cfg);
  auto cells = std::make_unique<PaddedCell[]>(kTimedWaiters);
  SmallStackThreads pool;
  for (int w = 0; w < kTimedWaiters; ++w) {
    ASSERT_TRUE(pool.Spawn([&rt, &cells, w] {
      for (;;) {
        std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[w].v);
          if (cur == 0) {
            // kTimedOut returns inline; a wake restarts and re-reads.
            if (tx.RetryFor(std::chrono::milliseconds(2)) ==
                WaitResult::kTimedOut) {
              return cur;
            }
          }
          return cur;
        });
        if (v != 0) {
          return;
        }
      }
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (int w = 0; w < kTimedWaiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
  }
  pool.JoinAll();

  const std::uint64_t timed_waits =
      rt.AggregateStats().Get(Counter::kWaitTimeouts);
  TmSystem::ObsSnapshot obs = rt.sys().SnapshotObs();
  ASSERT_TRUE(obs.wheel_enabled);
  // 64 waiters × (500ms / 2ms) ≈ 16k waits; the 1ms ticker fits ~500 ticks
  // in the same window. Generous margins keep this robust on loaded CI.
  EXPECT_GT(timed_waits, static_cast<std::uint64_t>(kTimedWaiters));
  EXPECT_GT(obs.wheel.scheduled, 0u);
  EXPECT_GT(obs.wheel.fired, 0u);
  EXPECT_LT(obs.wheel.ticks, timed_waits / 2) << "wheel degenerated toward "
                                                 "one tick per timed wait";
  EXPECT_EQ(rt.sys().ProtocolViolations(), 0u);
}

// Wheel-off ablation regression: per-wait kernel timeouts (ParkUntil) must
// still deliver expiries and survive wake-vs-timeout races (the drain
// documented in DescheduleImpl).
TEST(CapacityTest, WheelOffTimedWaitsStillExpireAndWake) {
  TmConfig cfg;
  cfg.timer_wheel = false;
  Runtime rt(cfg);
  TVar<std::uint64_t> cell;
  std::thread waiter([&] {
    for (;;) {
      std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
        std::uint64_t cur = tx.Load(cell);
        if (cur == 0) {
          if (tx.RetryFor(std::chrono::milliseconds(3)) ==
              WaitResult::kTimedOut) {
            return cur;
          }
        }
        return cur;
      });
      if (v != 0) {
        return;
      }
    }
  });
  while (rt.AggregateStats().Get(Counter::kWaitTimeouts) < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  waiter.join();
  TmSystem::ObsSnapshot obs = rt.sys().SnapshotObs();
  EXPECT_FALSE(obs.wheel_enabled);
  EXPECT_EQ(obs.wheel.scheduled, 0u);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWaitTimeouts), 5u);
}

// Wake-vs-timeout churn with the wheel ON: rapid writer commits against a
// 1ms-timeout waiter force every interleaving of claimed wake, wheel fire,
// and re-arm (ArmTimed must retire stale timeout tokens, ParkEither must
// prefer the wake token). Termination of the join is the assertion.
TEST(CapacityTest, TimedWaitWakeRaceChurn) {
  TmConfig cfg;
  cfg.timer_wheel_tick_us = 500;
  Runtime rt(cfg);
  TVar<std::uint64_t> cell;
  std::thread waiter([&] {
    std::uint64_t last_seen = 0;
    for (;;) {
      std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
        std::uint64_t cur = tx.Load(cell);
        if (cur == last_seen) {
          if (tx.RetryFor(std::chrono::milliseconds(1)) ==
              WaitResult::kTimedOut) {
            return cur;
          }
        }
        return cur;
      });
      if (v == kStop) {
        return;
      }
      last_seen = v;
    }
  });
  for (std::uint64_t i = 1; i <= 300; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, i); });
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, kStop); });
  waiter.join();
  EXPECT_EQ(rt.sys().ProtocolViolations(), 0u);
}

}  // namespace
}  // namespace tcs
