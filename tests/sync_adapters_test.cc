// Mechanism-parameterized building blocks: WorkQueue (task pools), PhaseBarrier
// (timestep loops), TicketGate (dependency waits), PipelineChannel (pipelines).
// These are the synchronization skeletons the mini-PARSEC apps are built from.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/sync/phase_barrier.h"
#include "src/sync/pipeline_channel.h"
#include "src/sync/ticket_gate.h"
#include "src/sync/work_queue.h"
#include "tests/matrix.h"

namespace tcs {
namespace {

class AdapterMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  AdapterMatrixTest() : rt_(MatrixConfig(GetParam().backend)) {}
  Runtime rt_;
};

TEST_P(AdapterMatrixTest, WorkQueueDeliversExactlyOnce) {
  constexpr int kWorkers = 3;
  constexpr std::uint64_t kTasks = 1500;
  WorkQueue q(&rt_, GetParam().mech, 8);
  std::vector<std::vector<std::uint64_t>> got(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (auto t = q.Pop()) {
        got[w].push_back(*t);
      }
    });
  }
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    q.Push(i);
  }
  q.Close();
  for (auto& t : workers) {
    t.join();
  }
  std::vector<std::uint64_t> all;
  for (auto& v : got) {
    all.insert(all.end(), v.begin(), v.end());
  }
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(all[i], i);
  }
}

TEST_P(AdapterMatrixTest, WorkQueueCloseWakesIdleWorkers) {
  WorkQueue q(&rt_, GetParam().mech, 4);
  std::vector<std::thread> workers;
  std::atomic<int> exited{0};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      while (q.Pop()) {
      }
      exited.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  for (auto& t : workers) {
    t.join();
  }
  EXPECT_EQ(exited.load(), 3);
}

TEST_P(AdapterMatrixTest, PhaseBarrierSynchronizesRounds) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  PhaseBarrier barrier(&rt_, GetParam().mech, kThreads);
  // arrived[r] counts threads that finished round r's work. When a thread leaves
  // the barrier of round r, ALL threads must have finished round r's work.
  std::array<std::atomic<int>, kRounds> arrived{};
  std::atomic<int> violations{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        arrived[r].fetch_add(1);
        barrier.ArriveAndWait();
        if (arrived[r].load() != kThreads) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(AdapterMatrixTest, TicketGateOrdersDependentWork) {
  TicketGate gate(&rt_, GetParam().mech);
  constexpr std::uint64_t kSteps = 300;
  std::atomic<std::uint64_t> last_seen{0};
  std::thread consumer([&] {
    for (std::uint64_t s = 1; s <= kSteps; ++s) {
      gate.WaitFor(s);
      last_seen.store(s);
    }
  });
  for (std::uint64_t s = 1; s <= kSteps; ++s) {
    gate.Publish(s);
  }
  consumer.join();
  EXPECT_EQ(last_seen.load(), kSteps);
}

TEST_P(AdapterMatrixTest, PipelineChannelClosesAfterLastProducer) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 200;
  PipelineChannel ch(&rt_, GetParam().mech, 8, kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ch.Push(static_cast<std::uint64_t>(p) * kPerProducer + i);
      }
      ch.ProducerDone();
    });
  }
  std::vector<std::uint64_t> got;
  while (auto t = ch.Pop()) {
    got.push_back(*t);
  }
  for (auto& t : producers) {
    t.join();
  }
  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  std::sort(got.begin(), got.end());
  for (std::uint64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], i);
  }
}

TEST_P(AdapterMatrixTest, TwoStagePipelineEndToEnd) {
  // stage 1 doubles, stage 2 sums: a miniature dedup/ferret-shaped flow.
  constexpr std::uint64_t kItems = 600;
  PipelineChannel s1(&rt_, GetParam().mech, 8, 1);
  PipelineChannel s2(&rt_, GetParam().mech, 8, 2);
  std::thread w1a([&] {
    while (auto t = s1.Pop()) {
      s2.Push(*t * 2);
    }
    s2.ProducerDone();
  });
  std::thread w1b([&] {
    while (auto t = s1.Pop()) {
      s2.Push(*t * 2);
    }
    s2.ProducerDone();
  });
  std::uint64_t sum = 0;
  std::thread w2([&] {
    while (auto t = s2.Pop()) {
      sum += *t;
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    s1.Push(i);
  }
  s1.ProducerDone();
  w1a.join();
  w1b.join();
  w2.join();
  EXPECT_EQ(sum, kItems * (kItems - 1));  // 2 * sum(0..n-1)
}

INSTANTIATE_TEST_SUITE_P(Matrix, AdapterMatrixTest,
                         ::testing::ValuesIn(AllMatrixCombos()), MatrixParamName);

}  // namespace
}  // namespace tcs
