// Mechanism-parameterized building blocks: WorkQueue (task pools), PhaseBarrier
// (timestep loops), TicketGate (dependency waits), PipelineChannel (pipelines).
// These are the synchronization skeletons the mini-PARSEC apps are built from.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/sync/bounded_buffer.h"
#include "src/sync/phase_barrier.h"
#include "src/sync/pipeline_channel.h"
#include "src/sync/ticket_gate.h"
#include "src/sync/work_queue.h"
#include "tests/matrix.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

class AdapterMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  AdapterMatrixTest() : rt_(MatrixConfig(GetParam().backend)) {}
  Runtime rt_;
};

TEST_P(AdapterMatrixTest, WorkQueueDeliversExactlyOnce) {
  constexpr int kWorkers = 3;
  constexpr std::uint64_t kTasks = 1500;
  WorkQueue q(&rt_, GetParam().mech, 8);
  std::vector<std::vector<std::uint64_t>> got(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (auto t = q.Pop()) {
        got[w].push_back(*t);
      }
    });
  }
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    q.Push(i);
  }
  q.Close();
  for (auto& t : workers) {
    t.join();
  }
  std::vector<std::uint64_t> all;
  for (auto& v : got) {
    all.insert(all.end(), v.begin(), v.end());
  }
  ASSERT_EQ(all.size(), kTasks);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(all[i], i);
  }
}

TEST_P(AdapterMatrixTest, WorkQueueCloseWakesIdleWorkers) {
  WorkQueue q(&rt_, GetParam().mech, 4);
  std::vector<std::thread> workers;
  std::atomic<int> exited{0};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      while (q.Pop()) {
      }
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      exited.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  for (auto& t : workers) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(exited.load(std::memory_order_acquire), 3);
}

TEST_P(AdapterMatrixTest, PhaseBarrierSynchronizesRounds) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  PhaseBarrier barrier(&rt_, GetParam().mech, kThreads);
  // arrived[r] counts threads that finished round r's work. When a thread leaves
  // the barrier of round r, ALL threads must have finished round r's work.
  std::array<std::atomic<int>, kRounds> arrived{};
  std::atomic<int> violations{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        arrived[r].fetch_add(1, std::memory_order_acq_rel);
        barrier.ArriveAndWait();
        // mo: acquire — [harness] observe worker-published state.
        if (arrived[r].load(std::memory_order_acquire) != kThreads) {
          // mo: acq_rel — [harness] cross-thread counter/flag RMW.
          violations.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0);
}

TEST_P(AdapterMatrixTest, TicketGateOrdersDependentWork) {
  TicketGate gate(&rt_, GetParam().mech);
  constexpr std::uint64_t kSteps = 300;
  std::atomic<std::uint64_t> last_seen{0};
  std::thread consumer([&] {
    for (std::uint64_t s = 1; s <= kSteps; ++s) {
      gate.WaitFor(s);
      // mo: release — [harness] publish state to other harness threads.
      last_seen.store(s, std::memory_order_release);
    }
  });
  for (std::uint64_t s = 1; s <= kSteps; ++s) {
    gate.Publish(s);
  }
  consumer.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(last_seen.load(std::memory_order_acquire), kSteps);
}

TEST_P(AdapterMatrixTest, PipelineChannelClosesAfterLastProducer) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 200;
  PipelineChannel ch(&rt_, GetParam().mech, 8, kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ch.Push(static_cast<std::uint64_t>(p) * kPerProducer + i);
      }
      ch.ProducerDone();
    });
  }
  std::vector<std::uint64_t> got;
  while (auto t = ch.Pop()) {
    got.push_back(*t);
  }
  for (auto& t : producers) {
    t.join();
  }
  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  std::sort(got.begin(), got.end());
  for (std::uint64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], i);
  }
}

TEST_P(AdapterMatrixTest, TwoStagePipelineEndToEnd) {
  // stage 1 doubles, stage 2 sums: a miniature dedup/ferret-shaped flow.
  constexpr std::uint64_t kItems = 600;
  PipelineChannel s1(&rt_, GetParam().mech, 8, 1);
  PipelineChannel s2(&rt_, GetParam().mech, 8, 2);
  std::thread w1a([&] {
    while (auto t = s1.Pop()) {
      s2.Push(*t * 2);
    }
    s2.ProducerDone();
  });
  std::thread w1b([&] {
    while (auto t = s1.Pop()) {
      s2.Push(*t * 2);
    }
    s2.ProducerDone();
  });
  std::uint64_t sum = 0;
  std::thread w2([&] {
    while (auto t = s2.Pop()) {
      sum += *t;
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    s1.Push(i);
  }
  s1.ProducerDone();
  w1a.join();
  w1b.join();
  w2.join();
  EXPECT_EQ(sum, kItems * (kItems - 1));  // 2 * sum(0..n-1)
}

INSTANTIATE_TEST_SUITE_P(Matrix, AdapterMatrixTest,
                         ::testing::ValuesIn(AllMatrixCombos()), MatrixParamName);

// --- per-call deadlines for the adapters' own composed timed waits ---
//
// Two timed adapter waits composed into ONE transaction (sequentially, or as
// OrElse branches) must each get an independent deadline slot. The regression
// these tests pin down: if both waits funneled into one shared budget, the
// second wait would find the first call's already-expired deadline and return
// kTimedOut instantly, so total elapsed time would be ~one budget instead of
// the sum. Only the timed-wait-capable TM mechanisms participate (kRetry,
// kAwait, kWaitPred — the others bound waits through RetryFor anyway, and
// kPthreads cannot compose transactionally).

class ComposedDeadlineTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  ComposedDeadlineTest() : rt_(MatrixConfig(GetParam().backend)) {}
  Runtime rt_;
};

std::vector<MatrixParam> TimedWaitCombos() {
  std::vector<MatrixParam> out;
  for (Backend b : {Backend::kEagerStm, Backend::kLazyStm, Backend::kSimHtm}) {
    for (Mechanism m :
         {Mechanism::kRetry, Mechanism::kAwait, Mechanism::kWaitPred}) {
      out.push_back({b, m});
    }
  }
  return out;
}

TEST_P(ComposedDeadlineTest, SequentialQueuePopsGetIndependentBudgets) {
  constexpr auto kBudget = std::chrono::milliseconds(120);
  WorkQueue q1(&rt_, GetParam().mech, 4);
  WorkQueue q2(&rt_, GetParam().mech, 4);
  auto t0 = std::chrono::steady_clock::now();
  Atomically(rt_.sys(), [&](Tx&) -> int {
    // Both queues stay empty: each PopFor must wait out its own full budget.
    auto a = q1.PopFor(kBudget);
    auto b = q2.PopFor(kBudget);
    EXPECT_FALSE(a.has_value());
    EXPECT_FALSE(b.has_value());
    return 0;
  });
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(200))
      << "the second composed PopFor inherited the first call's spent budget";
}

TEST_P(ComposedDeadlineTest, SequentialGateWaitsOnOneGateGetIndependentBudgets) {
  constexpr auto kBudget = std::chrono::milliseconds(120);
  TicketGate gate(&rt_, GetParam().mech);
  auto t0 = std::chrono::steady_clock::now();
  Atomically(rt_.sys(), [&](Tx&) -> int {
    // Same adapter, same call site inside WaitForUpTo, different logical
    // waits: the occurrence/key machinery must keep their budgets apart.
    EXPECT_FALSE(gate.WaitForUpTo(1, kBudget));
    EXPECT_FALSE(gate.WaitForUpTo(2, kBudget));
    return 0;
  });
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(200))
      << "two timed waits through one WaitForUpTo call site shared one budget";
}

TEST_P(ComposedDeadlineTest, OrElseComposedBufferWaitsGetIndependentBudgets) {
  constexpr auto kBudget = std::chrono::milliseconds(120);
  BoundedBuffer bufA(&rt_, GetParam().mech, 4);
  BoundedBuffer bufB(&rt_, GetParam().mech, 4);
  BoundedBuffer bufC(&rt_, GetParam().mech, 4);
  BoundedBuffer bufD(&rt_, GetParam().mech, 4);
  auto t0 = std::chrono::steady_clock::now();
  Atomically(rt_.sys(), [&](Tx& tx) -> int {
    // All buffers empty. In each OrElse the first branch falls through to the
    // alternative immediately (timed waits never block while an alternative
    // is pending), so each OrElse waits its second branch's full budget — and
    // the second OrElse must not inherit the first one's expired slot.
    int r1 = tx.OrElse(
        [&](Tx&) { return bufA.TryConsumeFor(kBudget) ? 1 : 0; },
        [&](Tx&) { return bufB.TryConsumeFor(kBudget) ? 2 : 0; });
    int r2 = tx.OrElse(
        [&](Tx&) { return bufC.TryConsumeFor(kBudget) ? 3 : 0; },
        [&](Tx&) { return bufD.TryConsumeFor(kBudget) ? 4 : 0; });
    EXPECT_EQ(r1, 0);
    EXPECT_EQ(r2, 0);
    return 0;
  });
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(200))
      << "OrElse-composed timed buffer waits shared one deadline budget";
}

INSTANTIATE_TEST_SUITE_P(TimedMatrix, ComposedDeadlineTest,
                         ::testing::ValuesIn(TimedWaitCombos()),
                         MatrixParamName);

}  // namespace
}  // namespace tcs
