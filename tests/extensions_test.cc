// Tests for the two optional extensions discussed in the paper:
//  * eager-STM timestamp extension (Appendix A's "overly conservative" abort and
//    its standard fix), and
//  * the HTM pred-table fast path (§2.2.6): WaitPred descheduling via the 8-bit
//    explicit-abort code, with no software-mode re-execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/semaphore.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/tm/sim_htm.h"

namespace tcs {
namespace {

void AwaitCounterValue(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

TmConfig EagerExtConfig() {
  TmConfig cfg;
  cfg.backend = Backend::kEagerStm;
  cfg.timestamp_extension = true;
  // The test parks a transaction mid-flight on purpose; commit-time quiescence
  // would deadlock against that, so it is off here.
  cfg.privatization_safety = false;
  cfg.max_threads = 8;
  return cfg;
}

TEST(TimestampExtensionTest, SalvagesReadAfterUnrelatedCommit) {
  Runtime rt(EagerExtConfig());
  std::uint64_t x = 1;
  std::uint64_t y = 2;
  Semaphore reader_paused;
  Semaphore writer_done;

  std::thread reader([&] {
    bool paused = false;
    auto pair = Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();  // let a writer commit mid-transaction
      }
      // y's orec version is now greater than this transaction's start time; the
      // extension must revalidate {x} and accept instead of aborting.
      std::uint64_t b = tx.Load(y);
      return std::make_pair(a, b);
    });
    EXPECT_EQ(pair.first, 1u);
    EXPECT_EQ(pair.second, 20u);
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 1u);
  EXPECT_EQ(s.Get(Counter::kAborts), 0u);
}

TEST(TimestampExtensionTest, ConflictingCommitStillAborts) {
  Runtime rt(EagerExtConfig());
  std::uint64_t x = 1;
  std::uint64_t y = 2;
  Semaphore reader_paused;
  Semaphore writer_done;

  std::thread reader([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      (void)a;
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();
        // The writer changed x itself: extension must fail, aborting here.
        std::uint64_t b = tx.Load(y);
        (void)b;
        ADD_FAILURE() << "read of y should have aborted the first attempt";
      }
      EXPECT_EQ(tx.Load(x), 10u);  // second attempt sees the new value
    });
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{10});
    tx.Store(y, std::uint64_t{20});
  });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
}

TEST(TimestampExtensionTest, DisabledByDefaultAborts) {
  TmConfig cfg = EagerExtConfig();
  cfg.timestamp_extension = false;
  Runtime rt(cfg);
  std::uint64_t x = 1;
  std::uint64_t y = 2;
  Semaphore reader_paused;
  Semaphore writer_done;

  std::thread reader([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      (void)tx.Load(x);
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();
      }
      (void)tx.Load(y);
    });
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_EQ(s.Get(Counter::kTimestampExtensions), 0u);
}

// --- pred-table fast path ---

struct Cell {
  std::uint64_t value = 0;
};

bool CellReadyPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const Cell*>(args.v[0]);
  return sys.Read(reinterpret_cast<const TmWord*>(&cell->value)) != 0;
}

TmConfig PredTableConfig(bool enabled) {
  TmConfig cfg;
  cfg.backend = Backend::kSimHtm;
  cfg.htm_pred_table = enabled;
  cfg.max_threads = 8;
  return cfg;
}

TEST(HtmPredTableTest, RegisteredPredDeschedulesWithoutSoftwareMode) {
  Runtime rt(PredTableConfig(true));
  auto& htm = static_cast<SimHtm&>(rt.sys());
  Cell cell;
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&cell);
  args.n = 1;
  std::uint8_t code = htm.RegisterPred(&CellReadyPred, args);
  ASSERT_GT(code, 0);
  // Registering the same combination again returns the same code.
  EXPECT_EQ(htm.RegisterPred(&CellReadyPred, args), code);

  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell.value) == 0) {
        tx.WaitPred(&CellReadyPred, args);
      }
      EXPECT_NE(tx.Load(cell.value), 0u);
    });
  });
  AwaitCounterValue(rt, Counter::kSleeps, 1);
  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kHtmPredTableFastPath), 1u);
  EXPECT_EQ(s.Get(Counter::kHtmFallbacks), 0u)
      << "fast path must not re-execute in serial software mode";
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.value, std::uint64_t{7}); });
  waiter.join();
}

TEST(HtmPredTableTest, UnregisteredComboFallsBackToSoftwareMode) {
  Runtime rt(PredTableConfig(true));
  Cell cell;
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&cell);
  args.n = 1;
  // Not registered: WaitPred must take the abort-and-reexecute-serially path.
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell.value) == 0) {
        tx.WaitPred(&CellReadyPred, args);
      }
    });
  });
  AwaitCounterValue(rt, Counter::kSleeps, 1);
  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kHtmPredTableFastPath), 0u);
  EXPECT_GE(s.Get(Counter::kHtmFallbacks), 1u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.value, std::uint64_t{7}); });
  waiter.join();
}

TEST(HtmPredTableTest, DisabledConfigIgnoresRegistrations) {
  Runtime rt(PredTableConfig(false));
  auto& htm = static_cast<SimHtm&>(rt.sys());
  Cell cell;
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&cell);
  args.n = 1;
  htm.RegisterPred(&CellReadyPred, args);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell.value) == 0) {
        tx.WaitPred(&CellReadyPred, args);
      }
    });
  });
  AwaitCounterValue(rt, Counter::kSleeps, 1);
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kHtmPredTableFastPath), 0u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.value, std::uint64_t{7}); });
  waiter.join();
}

TEST(HtmPredTableTest, TableFullReturnsZero) {
  Runtime rt(PredTableConfig(true));
  auto& htm = static_cast<SimHtm&>(rt.sys());
  Cell cell;
  std::uint8_t last = 0;
  for (int i = 0; i < 300; ++i) {
    WaitArgs args;
    args.v[0] = reinterpret_cast<TmWord>(&cell);
    args.v[1] = static_cast<TmWord>(i);
    args.n = 2;
    last = htm.RegisterPred(&CellReadyPred, args);
  }
  EXPECT_EQ(last, 0) << "a full table must reject new combinations";
}

}  // namespace
}  // namespace tcs
