// TVar<T> typed-cell coverage: multi-word values, alignment, padding
// determinism, parity with the raw word-granularity API, and multi-word
// atomicity (no torn reads) plus Await/Retry wakeups on multi-word cells —
// across all three TM backends.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TmConfig ConfigFor(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 32;
  return cfg;
}

void AwaitCounter(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

struct Triple {
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
  bool operator==(const Triple&) const = default;
};
static_assert(sizeof(Triple) == 24);
static_assert(TVar<Triple>::kWords == 3);

struct Odd {
  std::uint64_t x;
  std::uint32_t y;
  bool operator==(const Odd&) const = default;
};
static_assert(TVar<Odd>::kWords == 2);

struct alignas(32) OverAligned {
  std::uint64_t v[4];
};
static_assert(TVar<OverAligned>::kWords == 4);

class TVarTest : public ::testing::TestWithParam<Backend> {
 protected:
  TVarTest() : rt_(ConfigFor(GetParam())) {}
  Runtime rt_;
};

TEST_P(TVarTest, MultiWordRoundTrip) {
  TVar<Triple> cell(Triple{1, 2, 3});
  EXPECT_EQ(cell.UnsafeRead(), (Triple{1, 2, 3}));
  Triple got = Atomically(rt_.sys(), [&](Tx& tx) {
    Triple t = tx.Load(cell);
    t.a += 10;
    t.c += 30;
    tx.Store(cell, t);
    return tx.Load(cell);  // read-own-write across all words
  });
  EXPECT_EQ(got, (Triple{11, 2, 33}));
  EXPECT_EQ(cell.UnsafeRead(), (Triple{11, 2, 33}));
}

TEST_P(TVarTest, OddSizePaddingIsDeterministic) {
  TVar<Odd> cell(Odd{7, 9});
  // The tail word's padding bytes must be zero so value-based waitset
  // comparisons on the final word never see garbage.
  EXPECT_EQ(*cell.word(1) >> 32, 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(cell, Odd{8, 10}); });
  EXPECT_EQ(cell.UnsafeRead(), (Odd{8, 10}));
  EXPECT_EQ(*cell.word(1) >> 32, 0u);
}

TEST_P(TVarTest, StorageIsWordAndTypeAligned) {
  TVar<Odd> small;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small.word(0)) % sizeof(TmWord), 0u);
  TVar<OverAligned> big;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.word(0)) % 32, 0u);
}

TEST_P(TVarTest, SubWordParityWithRawApi) {
  // A sub-word T in a TVar occupies its own full word; the raw API splices the
  // same T into whatever word contains it. Both must round-trip identically.
  TVar<std::uint32_t> typed(41);
  struct {
    std::uint32_t lo = 41;
    std::uint32_t hi = 77;
  } packed;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(typed, tx.Load(typed) + 1);
    tx.Store(packed.lo, tx.Load(packed.lo) + 1);
  });
  EXPECT_EQ(typed.UnsafeRead(), 42u);
  EXPECT_EQ(packed.lo, 42u);
  EXPECT_EQ(packed.hi, 77u) << "raw sub-word splice must not clobber neighbors";
}

TEST_P(TVarTest, NoTornMultiWordReads) {
  // A writer flips the cell between two self-consistent patterns; readers must
  // never observe a mix — the multi-word load is one atomic unit.
  TVar<Triple> cell(Triple{0, 0, 0});
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 2000; ++i) {
      Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(cell, Triple{i, i, i}); });
    }
    // mo: release — [harness] publish state to other harness threads.
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      Triple t = Atomically(rt_.sys(), [&](Tx& tx) { return tx.Load(cell); });
      if (t.a != t.b || t.b != t.c) {
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        torn.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });
  writer.join();
  reader.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(torn.load(std::memory_order_acquire), 0);
  EXPECT_EQ(cell.UnsafeRead(), (Triple{2000, 2000, 2000}));
}

TEST_P(TVarTest, RetryWakesOnMultiWordChange) {
  // The waiter's read set spans all three words; a write that changes only the
  // last field must still wake it.
  TVar<Triple> cell(Triple{1, 2, 3});
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(cell).c == 3) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) {
    Triple t = tx.Load(cell);
    t.c = 4;
    tx.Store(cell, t);
  });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(TVarTest, AwaitCoversEveryBackingWord) {
  TVar<Triple> cell(Triple{1, 2, 3});
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(cell).b == 2) {
        tx.Await(cell);  // registers all kWords addresses
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) {
    Triple t = tx.Load(cell);
    t.b = 9;  // middle word only
    tx.Store(cell, t);
  });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(TVarTest, SilentMultiWordStoreDoesNotWake) {
  // Re-storing an equal value writes identical words (padding zeroed), so a
  // Retry waiter must check but not wake — TVar preserves the value-based
  // waitset's silent-store immunity.
  TVar<Odd> cell(Odd{5, 6});
  TVar<std::uint64_t> flag(0);
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Load(cell);
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(cell, Odd{5, 6}); });  // silent
  AwaitCounter(rt_, Counter::kWakeChecks, 1);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeups), 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(TVarTest, ConcurrentCountersOnTypedCells) {
  TVar<std::uint64_t> counter(0);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Atomically(rt_.sys(),
                   [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.UnsafeRead(), kThreads * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TVarTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tcs
