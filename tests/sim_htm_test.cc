// Simulated-HTM specifics: capacity limits, the serial-irrevocable fallback and
// its progress rule, cache-line conflict granularity, and serial/hardware
// interaction under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/semaphore.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/tm/sim_htm.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TmConfig HtmConfig() {
  TmConfig cfg;
  cfg.backend = Backend::kSimHtm;
  cfg.max_threads = 16;
  return cfg;
}

TEST(SimHtmTest, ReadCapacityOverflowFallsBack) {
  TmConfig cfg = HtmConfig();
  cfg.htm_read_capacity_lines = 16;
  Runtime rt(cfg);
  std::vector<std::uint64_t> data(16 * 64, 1);  // far more lines than the budget
  std::uint64_t sum = Atomically(rt.sys(), [&](Tx& tx) {
    std::uint64_t s = 0;
    for (auto& d : data) {
      s += tx.Load(d);
    }
    return s;
  });
  EXPECT_EQ(sum, data.size());
  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kHtmCapacityAborts), 1u);
  EXPECT_GE(s.Get(Counter::kHtmFallbacks), 1u);
}

TEST(SimHtmTest, WriteCapacityOverflowFallsBack) {
  TmConfig cfg = HtmConfig();
  cfg.htm_write_capacity_lines = 8;
  Runtime rt(cfg);
  std::vector<std::uint64_t> data(8 * 64, 0);
  Atomically(rt.sys(), [&](Tx& tx) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      tx.Store(data[i], i);
    }
  });
  for (std::size_t i = 0; i < data.size(); i += 61) {
    EXPECT_EQ(data[i], i);
  }
  EXPECT_GE(rt.AggregateStats().Get(Counter::kHtmCapacityAborts), 1u);
}

TEST(SimHtmTest, SmallTransactionsNeverFallBack) {
  Runtime rt(HtmConfig());
  std::uint64_t x = 0;
  for (int i = 0; i < 500; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  EXPECT_EQ(x, 500u);
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kHtmFallbacks), 0u);
}

TEST(SimHtmTest, ZeroAttemptsForcesSerialEveryTime) {
  // The GCC progress rule taken to its extreme: every transaction is serial.
  TmConfig cfg = HtmConfig();
  cfg.htm_max_attempts = 0;
  Runtime rt(cfg);
  std::uint64_t x = 0;
  constexpr int kOps = 200;
  for (int i = 0; i < kOps; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  EXPECT_EQ(x, kOps);
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kHtmFallbacks),
            static_cast<std::uint64_t>(kOps));
}

TEST(SimHtmTest, SerialModeIsCorrectUnderConcurrency) {
  // All-serial execution must still be a correct (if slow) TM.
  TmConfig cfg = HtmConfig();
  cfg.htm_max_attempts = 0;
  Runtime rt(cfg);
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        Atomically(rt.sys(), [&](Tx& tx) { tx.Store(counter, tx.Load(counter) + 1); });
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(SimHtmTest, MixedSerialAndHardwareIsCorrect) {
  // Thread 0 runs large (always-fallback) transactions while others run small
  // hardware ones; the serial token must order them safely.
  TmConfig cfg = HtmConfig();
  cfg.htm_write_capacity_lines = 4;
  Runtime rt(cfg);
  std::vector<std::uint64_t> big(1024, 0);
  std::uint64_t small_counter = 0;
  std::atomic<bool> stop{false};

  std::thread big_writer([&] {
    for (int i = 1; i <= 50; ++i) {
      Atomically(rt.sys(), [&](Tx& tx) {
        for (auto& b : big) {
          tx.Store(b, static_cast<std::uint64_t>(i));
        }
      });
    }
    // mo: release — [harness] publish state to other harness threads.
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> small_writers;
  std::atomic<std::uint64_t> small_ops{0};
  for (int t = 0; t < 2; ++t) {
    small_writers.emplace_back([&] {
      // mo: acquire — [harness] observe worker-published state.
      while (!stop.load(std::memory_order_acquire)) {
        Atomically(rt.sys(), [&](Tx& tx) {
          tx.Store(small_counter, tx.Load(small_counter) + 1);
        });
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        small_ops.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  // Readers verify the big array is always uniform (serial writes are atomic).
  std::atomic<int> violations{0};
  std::thread reader([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      Atomically(rt.sys(), [&](Tx& tx) {
        std::uint64_t first = tx.Load(big[0]);
        std::uint64_t mid = tx.Load(big[512]);
        std::uint64_t last = tx.Load(big[1023]);
        if (first != mid || mid != last) {
          // mo: acq_rel — [harness] cross-thread counter/flag RMW.
          violations.fetch_add(1, std::memory_order_acq_rel);
        }
      });
    }
  });
  big_writer.join();
  reader.join();
  for (auto& t : small_writers) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0);
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(small_counter, small_ops.load(std::memory_order_acquire));
  EXPECT_EQ(big[7], 50u);
}

TEST(SimHtmTest, OverlappingWriterConflictAbortsDeterministically) {
  // A transaction that read the hot line before another writer committed to it
  // must conflict-abort at its own write. Forced with a mid-transaction
  // handshake (quiescence off: the paused transaction would otherwise deadlock
  // the writer's privatization fence).
  TmConfig cfg = HtmConfig();
  cfg.privatization_safety = false;
  Runtime rt(cfg);
  std::uint64_t hot = 0;
  Semaphore reader_paused;
  Semaphore writer_done;
  std::thread t1([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t v = tx.Load(hot);
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();
      }
      tx.Store(hot, v + 1);
    });
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(hot, tx.Load(hot) + 10); });
  writer_done.Post();
  t1.join();
  EXPECT_EQ(hot, 11u);  // 10 from the interloper, then +1 on the clean retry
  EXPECT_GE(rt.AggregateStats().Get(Counter::kHtmConflictAborts), 1u);
}

TEST(SimHtmTest, LineGranularityMakesNeighborsConflict) {
  // Two disjoint words in one cache line are a false conflict for HTM (but not
  // for the word-granular STMs) — the source of the paper's observation that
  // TSX aborts on conflicts STM tolerates (§2.4.1).
  Runtime rt(HtmConfig());
  alignas(64) std::uint64_t line[8] = {};
  constexpr int kOps = 2000;
  std::thread t1([&] {
    for (int i = 0; i < kOps; ++i) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(line[0], tx.Load(line[0]) + 1); });
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kOps; ++i) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(line[7], tx.Load(line[7]) + 1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(line[0], kOps);
  EXPECT_EQ(line[7], kOps);
}

}  // namespace
}  // namespace tcs
