// Focused TmCondVar semantics: one-waiter signal, broadcast, deferred signals
// dying with aborted attempts, multiple condvars, and FIFO wake order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/condsync/tm_condvar.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

class TmCondVarTest : public ::testing::TestWithParam<Backend> {
 protected:
  TmCondVarTest() : rt_(MakeConfig()) {}
  TmConfig MakeConfig() {
    TmConfig cfg;
    cfg.backend = GetParam();
    cfg.max_threads = 32;
    return cfg;
  }
  void AwaitWaiters(std::uint64_t n) {
    for (int i = 0; i < 100000; ++i) {
      if (rt_.AggregateStats().Get(Counter::kCondVarWaits) >= n) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    FAIL() << "waiters never queued";
  }
  Runtime rt_;
};

TEST_P(TmCondVarTest, SignalWakesExactlyOne) {
  TmCondVar cv(32);
  std::uint64_t go = 0;
  std::atomic<int> awake{0};
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(go) == 0) {
          tx.CondWait(cv);
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      awake.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  AwaitWaiters(kWaiters);
  // One signal with the condition still false: exactly one waiter wakes,
  // re-checks, and re-queues (the condvar while-loop idiom).
  Atomically(rt_.sys(), [&](Tx& tx) { tx.CondSignal(cv); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(awake.load(std::memory_order_acquire), 0);  // woke but re-waited; none exited
  AwaitWaiters(kWaiters + 1);  // the woken thread re-queued

  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go, std::uint64_t{1});
    tx.CondBroadcast(cv);
  });
  for (auto& w : waiters) {
    w.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(awake.load(std::memory_order_acquire), kWaiters);
}

TEST_P(TmCondVarTest, BroadcastWakesAll) {
  TmCondVar cv(32);
  std::uint64_t go = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(go) == 0) {
          tx.CondWait(cv);
        }
      });
    });
  }
  AwaitWaiters(kWaiters);
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go, std::uint64_t{1});
    tx.CondBroadcast(cv);
  });
  for (auto& w : waiters) {
    w.join();
  }
  SUCCEED();
}

TEST_P(TmCondVarTest, SignalWithoutWaitersIsANoop) {
  TmCondVar cv(32);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.CondSignal(cv); });
  Atomically(rt_.sys(), [&](Tx& tx) { tx.CondBroadcast(cv); });
  SUCCEED();
}

TEST_P(TmCondVarTest, SignalOutsideTransactionFiresImmediately) {
  TmCondVar cv(32);
  std::uint64_t go = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(go) == 0) {
        tx.CondWait(cv);
      }
    });
  });
  AwaitWaiters(1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(go, std::uint64_t{1}); });
  cv.Signal(rt_.sys());  // non-transactional signal
  waiter.join();
  SUCCEED();
}

TEST_P(TmCondVarTest, DeferredSignalDiesWithAbortedAttempt) {
  TmCondVar cv(32);
  std::uint64_t go = 0;
  std::atomic<int> woken{0};
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(go) == 0) {
        tx.CondWait(cv);
      }
    });
    // mo: acq_rel — [harness] cross-thread counter/flag RMW.
    woken.fetch_add(1, std::memory_order_acq_rel);
  });
  AwaitWaiters(1);
  // The transaction signals, then restarts itself; on the re-execution it does
  // NOT signal. A naive implementation would leak the first attempt's signal.
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    if (!restarted) {
      tx.CondSignal(cv);
      restarted = true;
      tx.RestartNow();
    }
    // no signal on the second attempt
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(woken.load(std::memory_order_acquire), 0) << "aborted attempt's deferred signal leaked";
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go, std::uint64_t{1});
    tx.CondSignal(cv);
  });
  waiter.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(woken.load(std::memory_order_acquire), 1);
}

TEST_P(TmCondVarTest, TwoCondVarsAreIndependent) {
  TmCondVar cv_a(32);
  TmCondVar cv_b(32);
  std::uint64_t go_a = 0;
  std::uint64_t go_b = 0;
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  std::thread ta([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(go_a) == 0) {
        tx.CondWait(cv_a);
      }
    });
    // mo: release — [harness] publish state to other harness threads.
    a_done.store(1, std::memory_order_release);
  });
  std::thread tb([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(go_b) == 0) {
        tx.CondWait(cv_b);
      }
    });
    // mo: release — [harness] publish state to other harness threads.
    b_done.store(1, std::memory_order_release);
  });
  AwaitWaiters(2);
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go_b, std::uint64_t{1});
    tx.CondSignal(cv_b);
  });
  tb.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(b_done.load(std::memory_order_acquire), 1);
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(a_done.load(std::memory_order_acquire), 0) << "signal on cv_b must not wake cv_a's waiter";
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go_a, std::uint64_t{1});
    tx.CondSignal(cv_a);
  });
  ta.join();
}

// Regression: the ring used to enqueue with no fullness check, so the
// (capacity+1)-th concurrent waiter silently overwrote the oldest parked
// waiter's tid and that waiter's wakeup was lost forever — this test hung at
// the final join. Now a full ring grows transactionally instead.
TEST_P(TmCondVarTest, MoreWaitersThanCapacityLoseNoWakeups) {
  constexpr int kCapacity = 2;
  constexpr int kWaiters = 11;  // forces several doublings
  TmCondVar cv(kCapacity);
  std::uint64_t go = 0;
  std::atomic<int> awake{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(go) == 0) {
          tx.CondWait(cv);
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      awake.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  AwaitWaiters(kWaiters);
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(go, std::uint64_t{1});
    tx.CondBroadcast(cv);
  });
  for (auto& w : waiters) {
    w.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(awake.load(std::memory_order_acquire), kWaiters);
  TxStats s = rt_.AggregateStats();
  EXPECT_GE(s.Get(Counter::kCondVarRingGrowths), 1u)
      << "11 concurrent waiters on a 2-slot ring never grew it";
  EXPECT_GE(s.Get(Counter::kCondVarBatches), 1u);
}

// A second overflow shape: churn through wait/wake rounds so the cursors wrap
// the ring several times while it is at (or near) capacity — catches masking
// bugs a single monotone fill misses.
TEST_P(TmCondVarTest, WrappedCursorsSurviveRepeatedOverflow) {
  constexpr int kWaiters = 6;
  constexpr int kRounds = 5;
  TmCondVar cv(2);
  std::uint64_t go = 0;
  std::atomic<int> awake{0};
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t round_waits =
        rt_.AggregateStats().Get(Counter::kCondVarWaits);
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(go, std::uint64_t{0}); });
    std::vector<std::thread> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&] {
        Atomically(rt_.sys(), [&](Tx& tx) {
          if (tx.Load(go) == 0) {
            tx.CondWait(cv);
          }
        });
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        awake.fetch_add(1, std::memory_order_acq_rel);
      });
    }
    AwaitWaiters(round_waits + kWaiters);
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Store(go, std::uint64_t{1});
      tx.CondBroadcast(cv);
    });
    for (auto& w : waiters) {
      w.join();
    }
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(awake.load(std::memory_order_acquire), kWaiters * kRounds);
}

using TmCondVarDeathTest = TmCondVarTest;

TEST_P(TmCondVarDeathTest, NonPositiveCapacityFailsLoudly) {
  // RoundUpPow2(capacity + 1) on a negative capacity used to wrap through
  // size_t and spin the doubling loop; zero built a degenerate ring. Both now
  // die in the constructor instead of corrupting later waits.
  EXPECT_DEATH(TmCondVar cv(0), "capacity must be positive");
  EXPECT_DEATH(TmCondVar cv(-3), "capacity must be positive");
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TmCondVarDeathTest,
                         ::testing::Values(Backend::kEagerStm),
                         [](const ::testing::TestParamInfo<Backend>&) {
                           return "EagerStm";
                         });

INSTANTIATE_TEST_SUITE_P(AllBackends, TmCondVarTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tcs
