// Regression coverage for the unified timestamp-extension path
// (TmSystem::TryExtendTimestamp): one implementation now serves
//  * plain validation-failure extension on a too-new read (eager AND lazy STM),
//  * the eager OrElse partial-rollback orec release (which must extend — its
//    release bumps publish versions past the transaction's start),
//  * the simulated HTM's buffered-mode branch-line release (opportunistic), and
//  * lazy STM's commit-time validation (write-orec acquisition on a too-new
//    orec, and read-set revalidation) — instead of aborting outright.
// The per-site counters (kExtendOnValidation / kExtendOnOrecRelease /
// kExtendOnCommitValidation) prove the call sites actually funnel through the
// shared path rather than keeping private revalidation loops.
#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "src/common/semaphore.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

TmConfig ExtConfig(Backend b, bool extension = true) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.timestamp_extension = extension;
  // Some tests park a transaction mid-flight on purpose; commit-time
  // quiescence would deadlock against that.
  cfg.privatization_safety = false;
  cfg.max_threads = 8;
  return cfg;
}

class ValidationExtensionTest : public ::testing::TestWithParam<Backend> {};

// A concurrent commit to an unrelated location makes the next read too new;
// the shared extension must revalidate and salvage it on eager and lazy alike.
TEST_P(ValidationExtensionTest, SalvagesReadAfterUnrelatedCommit) {
  Runtime rt(ExtConfig(GetParam()));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  Semaphore reader_paused;
  Semaphore writer_done;

  std::thread reader([&] {
    bool paused = false;
    auto pair = Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();  // let a writer commit mid-transaction
      }
      std::uint64_t b = tx.Load(y);
      return std::make_pair(a, b);
    });
    EXPECT_EQ(pair.first, 1u);
    EXPECT_EQ(pair.second, 20u);
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 1u);
  EXPECT_GE(s.Get(Counter::kExtendOnValidation), 1u)
      << "validation failure must reach the shared extension path";
  EXPECT_EQ(s.Get(Counter::kExtendOnOrecRelease), 0u);
  EXPECT_EQ(s.Get(Counter::kAborts), 0u);
}

// A commit that touched a location the transaction already read must defeat
// the extension: revalidation fails and the attempt aborts.
TEST_P(ValidationExtensionTest, ConflictingCommitStillAborts) {
  Runtime rt(ExtConfig(GetParam()));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  Semaphore reader_paused;
  Semaphore writer_done;

  std::thread reader([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      (void)a;
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();
      }
      (void)tx.Load(y);
      EXPECT_EQ(tx.Load(x), 10u);  // only a post-abort attempt gets here
    });
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{10});
    tx.Store(y, std::uint64_t{20});
  });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_GE(s.Get(Counter::kExtendOnValidation), 1u)
      << "the failed salvage attempt still goes through the shared path";
  EXPECT_EQ(s.Get(Counter::kTimestampExtensions), 0u)
      << "a defeated extension must not advance the timestamp";
}

INSTANTIATE_TEST_SUITE_P(StmBackends, ValidationExtensionTest,
                         ::testing::Values(Backend::kEagerStm,
                                           Backend::kLazyStm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kEagerStm ? "EagerStm"
                                                                   : "LazyStm";
                         });

// --- lazy commit-time validation extension (ROADMAP follow-up) ---

// Shared scaffolding for the commit-validation trio: a lazy transaction loads
// x, pauses mid-flight while `interleaved` commits, then buffer-writes
// y = x + 10 and commits — so its write orec (and possibly its read of x) is
// stale by commit time.
void RunPausedLazyWriter(Runtime& rt, TVar<std::uint64_t>& x,
                         TVar<std::uint64_t>& y,
                         const std::function<void()>& interleaved) {
  Semaphore writer_paused;
  Semaphore other_done;
  std::thread writer([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      if (!paused) {
        paused = true;
        writer_paused.Post();
        other_done.Wait();  // let another writer commit mid-transaction
      }
      tx.Store(y, a + 10);  // buffered; orec acquired at commit
    });
  });
  writer_paused.Wait();
  interleaved();
  other_done.Post();
  writer.join();
}

// Lazy STM acquires its write orecs only at commit. If another thread
// committed to a to-be-written location in the meantime, the orec is too new
// for this transaction's start — but the buffered write doesn't depend on the
// old value, so the shared extension (revalidate the read set, advance start)
// must salvage the commit instead of aborting outright.
TEST(CommitValidationExtensionTest, LazySalvagesWriteAcquisitionAfterConcurrentCommit) {
  Runtime rt(ExtConfig(Backend::kLazyStm));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedLazyWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kExtendOnCommitValidation), 1u)
      << "commit-time acquisition must reach the shared extension path";
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 1u);
  EXPECT_EQ(s.Get(Counter::kAborts), 0u)
      << "the extension should have salvaged the commit without an abort";
  EXPECT_EQ(y.UnsafeRead(), 11u);
}

// A concurrent commit that also touched a location this transaction *read*
// must still defeat the commit-time extension: revalidation fails, the
// attempt aborts, and the re-execution observes the new state.
TEST(CommitValidationExtensionTest, LazyCommitExtensionFailsOnRealReadConflict) {
  Runtime rt(ExtConfig(Backend::kLazyStm));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedLazyWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(x, std::uint64_t{5});  // invalidates the writer's read
      tx.Store(y, std::uint64_t{20});
    });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kExtendOnCommitValidation), 1u)
      << "the failed salvage attempt still goes through the shared path";
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_EQ(s.Get(Counter::kTimestampExtensions), 0u)
      << "a defeated extension must not advance the timestamp";
  EXPECT_EQ(y.UnsafeRead(), 15u) << "the re-execution must see x=5";
}

// With the knob off, the commit-time site must not attempt extension at all.
TEST(CommitValidationExtensionTest, DisabledExtensionStillAbortsOutright) {
  Runtime rt(ExtConfig(Backend::kLazyStm, /*extension=*/false));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedLazyWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kExtendOnCommitValidation), 0u);
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_EQ(y.UnsafeRead(), 11u) << "the retried attempt still lands a+10";
}

// --- eager encounter-time write-orec acquisition extension ---

// Same scaffolding as the lazy trio, but on eager STM the write happens at
// encounter time: the transaction loads x, pauses while `interleaved`
// commits, then stores y = x + 10 in place — so WriteWord meets y's orec
// already committed past its start.
void RunPausedEagerWriter(Runtime& rt, TVar<std::uint64_t>& x,
                          TVar<std::uint64_t>& y,
                          const std::function<void()>& interleaved) {
  Semaphore writer_paused;
  Semaphore other_done;
  std::thread writer([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t a = tx.Load(x);
      if (!paused) {
        paused = true;
        writer_paused.Post();
        other_done.Wait();  // let another writer commit mid-transaction
      }
      tx.Store(y, a + 10);  // in place; orec acquired right here
    });
  });
  writer_paused.Wait();
  interleaved();
  other_done.Post();
  writer.join();
}

// Eager STM used to abort outright when the encounter-time acquisition found
// a too-new orec, even though the blind in-place write doesn't depend on the
// location's old value — the reads-intact case is genuinely salvageable,
// exactly like lazy's commit-time acquisition (which got the fix in PR 4).
TEST(EncounterAcquisitionExtensionTest, EagerSalvagesAcquisitionAfterConcurrentCommit) {
  Runtime rt(ExtConfig(Backend::kEagerStm));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedEagerWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kExtendOnEncounterAcquisition), 1u)
      << "encounter-time acquisition must reach the shared extension path";
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 1u);
  EXPECT_EQ(s.Get(Counter::kAborts), 0u)
      << "the extension should have salvaged the write without an abort";
  EXPECT_EQ(y.UnsafeRead(), 11u);
}

// A concurrent commit that also touched a location this transaction *read*
// must still defeat the encounter-time extension: revalidation fails, the
// attempt aborts, and the re-execution observes the new state.
TEST(EncounterAcquisitionExtensionTest, EagerExtensionFailsOnRealReadConflict) {
  Runtime rt(ExtConfig(Backend::kEagerStm));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedEagerWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(x, std::uint64_t{5});  // invalidates the writer's read
      tx.Store(y, std::uint64_t{20});
    });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kExtendOnEncounterAcquisition), 1u)
      << "the failed salvage attempt still goes through the shared path";
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_EQ(s.Get(Counter::kTimestampExtensions), 0u)
      << "a defeated extension must not advance the timestamp";
  EXPECT_EQ(y.UnsafeRead(), 15u) << "the re-execution must see x=5";
}

// With the knob off, the encounter-time site must not attempt extension.
TEST(EncounterAcquisitionExtensionTest, DisabledExtensionStillAbortsOutright) {
  Runtime rt(ExtConfig(Backend::kEagerStm, /*extension=*/false));
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);
  RunPausedEagerWriter(rt, x, y, [&] {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  });

  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kExtendOnEncounterAcquisition), 0u);
  EXPECT_GE(s.Get(Counter::kAborts), 1u);
  EXPECT_EQ(y.UnsafeRead(), 11u) << "the retried attempt still lands a+10";
}

// --- extension after OrElse orec release ---

// Abandoning a branch that blind-wrote releases its orecs at prev+1, which is
// newer than the transaction's start — the shared extension is what keeps the
// surviving branch able to re-read and re-write those locations.
TEST(OrecReleaseExtensionTest, EagerReleaseExtendsThroughSharedPath) {
  // Note: extension on the release path is correctness-relevant, so it runs
  // even with cfg.timestamp_extension = false.
  Runtime rt(ExtConfig(Backend::kEagerStm, /*extension=*/false));
  TVar<std::uint64_t> cell(5);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});  // blind write, then abandon
          t.Retry();
        },
        [&](Tx& t) {
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(cell, std::uint64_t{6});
        });
  });
  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_GE(s.Get(Counter::kExtendOnOrecRelease), 1u)
      << "the orec release must extend through the shared path";
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 6u);
}

// Simulated HTM, buffered (hardware) mode: the branch's lines release at their
// exact pre-acquisition version, and with timestamp_extension on, the release
// also extends opportunistically through the same shared path.
TEST(OrecReleaseExtensionTest, SimHtmBufferedReleaseUsesSharedPath) {
  Runtime rt(ExtConfig(Backend::kSimHtm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> other(0);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});
          t.Retry();
        },
        [&](Tx& t) {
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(other, std::uint64_t{1});
        });
  });
  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_GE(s.Get(Counter::kExtendOnOrecRelease), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 5u);
  EXPECT_EQ(other.UnsafeRead(), 1u);
}

// --- both call sites, one path ---

// One run in which a transaction extends from the orec-release site and
// another extends from the validation site: both per-site counters tick, and
// the successes land in the one shared kTimestampExtensions tally — the
// counter assertion that the call sites really share TryExtendTimestamp.
TEST(SharedExtensionPathTest, BothCallSitesHitTheSharedPath) {
  Runtime rt(ExtConfig(Backend::kEagerStm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> x(1);
  TVar<std::uint64_t> y(2);

  // Site 1: OrElse orec release.
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});
          t.Retry();
        },
        [&](Tx& t) { t.Store(cell, std::uint64_t{6}); });
  });

  // Site 2: validation-failure extension.
  Semaphore reader_paused;
  Semaphore writer_done;
  std::thread reader([&] {
    bool paused = false;
    Atomically(rt.sys(), [&](Tx& tx) {
      (void)tx.Load(x);
      if (!paused) {
        paused = true;
        reader_paused.Post();
        writer_done.Wait();
      }
      (void)tx.Load(y);
    });
  });
  reader_paused.Wait();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(y, std::uint64_t{20}); });
  writer_done.Post();
  reader.join();

  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kExtendOnOrecRelease), 1u);
  EXPECT_GE(s.Get(Counter::kExtendOnValidation), 1u);
  EXPECT_GE(s.Get(Counter::kTimestampExtensions), 2u)
      << "both sites must succeed through the one shared implementation";
}

}  // namespace
}  // namespace tcs
