// Unit tests for the TM building blocks: orecs, logs, waitsets, transactional
// allocation bookkeeping, quiescence, and the small common utilities.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/random.h"
#include "src/common/semaphore.h"
#include "src/common/spin_lock.h"
#include "src/tm/orec_table.h"
#include "src/tm/quiesce.h"
#include "src/tm/redo_log.h"
#include "src/tm/tx_malloc.h"
#include "src/tm/undo_log.h"
#include "src/tm/wait_set.h"

namespace tcs {
namespace {

TEST(OrecTest, VersionPackingRoundTrips) {
  for (std::uint64_t v : {0ULL, 1ULL, 42ULL, (1ULL << 40)}) {
    std::uint64_t w = Orec::MakeVersion(v);
    EXPECT_FALSE(Orec::IsLocked(w));
    EXPECT_EQ(Orec::Version(w), v);
  }
}

TEST(OrecTest, LockPackingRoundTrips) {
  for (int tid : {0, 1, 17, 255}) {
    std::uint64_t w = Orec::MakeLocked(tid);
    EXPECT_TRUE(Orec::IsLocked(w));
    EXPECT_EQ(Orec::Owner(w), tid);
  }
}

TEST(OrecTableTest, SameAddressSameOrec) {
  OrecTable t(10, 3);
  int x = 0;
  EXPECT_EQ(&t.For(&x), &t.For(&x));
}

TEST(OrecTableTest, CacheLineGranularityMapsLineTogether) {
  OrecTable t(10, 6);
  alignas(64) std::uint64_t line[8] = {};
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(&t.For(&line[0]), &t.For(&line[i])) << i;
  }
}

TEST(OrecTableTest, WordGranularitySpreadsNeighbors) {
  OrecTable t(12, 3);
  std::uint64_t words[64] = {};
  int distinct = 0;
  for (int i = 1; i < 64; ++i) {
    if (&t.For(&words[i]) != &t.For(&words[0])) {
      distinct++;
    }
  }
  EXPECT_GT(distinct, 32);
}

TEST(UndoLogTest, UndoRestoresInReverseOrder) {
  UndoLog log;
  TmWord a = 1;
  log.Append(&a, 1);  // first write: old value 1
  a = 2;
  log.Append(&a, 2);  // second write: old value 2
  a = 3;
  log.UndoAll();
  EXPECT_EQ(a, 1u);
}

TEST(UndoLogTest, FindOriginalReturnsFirstLoggedValue) {
  UndoLog log;
  TmWord a = 0;
  log.Append(&a, 7);
  log.Append(&a, 8);
  TmWord out = 0;
  ASSERT_TRUE(log.FindOriginal(&a, &out));
  EXPECT_EQ(out, 7u);
  TmWord b = 0;
  EXPECT_FALSE(log.FindOriginal(&b, &out));
}

TEST(RedoLogTest, PutThenLookup) {
  RedoLog log;
  TmWord a = 0;
  log.Put(&a, 42);
  TmWord out = 0;
  ASSERT_TRUE(log.Lookup(&a, &out));
  EXPECT_EQ(out, 42u);
}

TEST(RedoLogTest, PutOverwritesInPlace) {
  RedoLog log;
  TmWord a = 0;
  log.Put(&a, 1);
  log.Put(&a, 2);
  EXPECT_EQ(log.Size(), 1u);
  TmWord out = 0;
  ASSERT_TRUE(log.Lookup(&a, &out));
  EXPECT_EQ(out, 2u);
}

TEST(RedoLogTest, WriteBackPublishesAll) {
  RedoLog log;
  std::vector<TmWord> data(100, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    log.Put(&data[i], i + 1);
  }
  log.WriteBack();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i + 1);
  }
}

TEST(RedoLogTest, GrowsPastInitialIndexSize) {
  RedoLog log;
  std::vector<TmWord> data(5000, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    log.Put(&data[i], i);
  }
  EXPECT_EQ(log.Size(), data.size());
  for (std::size_t i = 0; i < data.size(); i += 97) {
    TmWord out = 1;
    ASSERT_TRUE(log.Lookup(&data[i], &out));
    EXPECT_EQ(out, i);
  }
}

TEST(RedoLogTest, ClearEmptiesAndReuses) {
  RedoLog log;
  TmWord a = 0;
  log.Put(&a, 9);
  log.Clear();
  EXPECT_TRUE(log.Empty());
  TmWord out;
  EXPECT_FALSE(log.Lookup(&a, &out));
  log.Put(&a, 10);
  ASSERT_TRUE(log.Lookup(&a, &out));
  EXPECT_EQ(out, 10u);
}

TEST(WaitSetTest, AppendAndContains) {
  WaitSet ws;
  TmWord a = 0;
  TmWord b = 0;
  ws.Append(&a, 5);
  EXPECT_TRUE(ws.ContainsAddr(&a));
  EXPECT_FALSE(ws.ContainsAddr(&b));
  EXPECT_EQ(ws.Size(), 1u);
  ws.Clear();
  EXPECT_TRUE(ws.Empty());
}

TEST(TxMallocTest, CommitPerformsDeferredFrees) {
  TxMallocLog mem;
  void* p = std::malloc(8);
  mem.Free(p);
  EXPECT_EQ(mem.FreeCount(), 1u);
  mem.OnCommit();  // must free p (checked by ASAN builds; here: no crash)
  EXPECT_EQ(mem.FreeCount(), 0u);
}

TEST(TxMallocTest, AbortUndoesAllocations) {
  TxMallocLog mem;
  void* p = mem.Alloc(16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mem.AllocCount(), 1u);
  mem.OnAbort();  // frees p
  EXPECT_EQ(mem.AllocCount(), 0u);
}

TEST(TxMallocTest, DescheduleKeepsAllocationsUntilReclaim) {
  TxMallocLog mem;
  void* p = mem.Alloc(16);
  mem.DeferForDeschedule();
  EXPECT_EQ(mem.AllocCount(), 0u);
  EXPECT_EQ(mem.DeferredCount(), 1u);
  // The memory must still be usable while deferred (a waitset may point into it).
  std::memset(p, 0xAB, 16);
  mem.ReclaimDeferred();
  EXPECT_EQ(mem.DeferredCount(), 0u);
}

TEST(QuiesceTest, InactiveThreadsDoNotBlock) {
  QuiesceTable q(4);
  q.WaitForReadersBefore(100, 0);  // nobody active: returns immediately
}

TEST(QuiesceTest, ActiveOldReaderBlocksUntilDone) {
  QuiesceTable q(2);
  q.SetActive(1, 5);
  Semaphore started;
  std::thread waiter([&] {
    started.Post();
    q.WaitForReadersBefore(10, 0);
  });
  started.Wait();
  q.SetInactive(1);
  waiter.join();
}

TEST(QuiesceTest, NewerReaderDoesNotBlock) {
  QuiesceTable q(2);
  q.SetActive(1, 50);
  q.WaitForReadersBefore(10, 0);  // 50 >= 10: no wait
  q.SetInactive(1);
}

TEST(SemaphoreTest, PostBeforeWaitDoesNotBlock) {
  Semaphore s;
  s.Post();
  s.Wait();
}

TEST(SemaphoreTest, TryWaitReflectsCount) {
  Semaphore s;
  EXPECT_FALSE(s.TryWait());
  s.Post();
  EXPECT_TRUE(s.TryWait());
  EXPECT_FALSE(s.TryWait());
}

TEST(SemaphoreTest, CountsMultiplePosts) {
  Semaphore s;
  s.Post();
  s.Post();
  s.Wait();
  s.Wait();
  EXPECT_FALSE(s.TryWait());
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard g(lock);
        counter++;
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST(RandomTest, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, BoundedStaysInRange) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(BackoffTest, PauseTerminates) {
  Backoff b(123);
  for (int i = 0; i < 20; ++i) {
    b.Pause();
  }
  b.Reset();
  b.Pause();
}

}  // namespace
}  // namespace tcs
