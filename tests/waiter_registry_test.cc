// Unit tests for the waiter registry's presence bitmap, the Retry-Orig waiting
// list, and edge cases of the deschedule machinery (slot reuse, unrelated
// transactions, stale presence bits).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/condsync/retry_orig.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TEST(WaiterRegistryTest, EmptyRegistryHasNoWaiters) {
  WaiterRegistry r(64);
  EXPECT_FALSE(r.HasWaiters());
  int visits = 0;
  r.ForEachRegistered([&](int, WaiterSlot&) {
    visits++;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(WaiterRegistryTest, MarkUnmarkRoundTrip) {
  WaiterRegistry r(128);
  r.MarkRegistered(0);
  r.MarkRegistered(63);
  r.MarkRegistered(64);
  r.MarkRegistered(127);
  EXPECT_TRUE(r.HasWaiters());
  std::vector<int> seen;
  r.ForEachRegistered([&](int tid, WaiterSlot&) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 63, 64, 127}));
  r.UnmarkRegistered(63);
  r.UnmarkRegistered(0);
  seen.clear();
  r.ForEachRegistered([&](int tid, WaiterSlot&) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{64, 127}));
  r.UnmarkRegistered(64);
  r.UnmarkRegistered(127);
  EXPECT_FALSE(r.HasWaiters());
}

TEST(WaiterRegistryTest, ForEachStopsWhenCallbackReturnsFalse) {
  WaiterRegistry r(64);
  for (int t = 0; t < 8; ++t) {
    r.MarkRegistered(t);
  }
  int visits = 0;
  r.ForEachRegistered([&](int, WaiterSlot&) {
    visits++;
    return visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

TEST(WaiterRegistryTest, SlotPrepareStoresPublication) {
  WaiterRegistry r(4);
  WaiterSlot& s = r.slot(2);
  WaitArgs args;
  args.v[0] = 0xDEAD;
  args.n = 1;
  ParkSpot spot;
  s.Prepare(&FindChangesPred, args, &spot);
  EXPECT_EQ(s.fn, &FindChangesPred);
  EXPECT_EQ(s.args.v[0], 0xDEADu);
  EXPECT_EQ(s.park, &spot);
}

// A stale presence bit (waiter between wake and unmark) must only cost the
// writer a rejected transactional check, never a wrong wake.
TEST(DescheduleEdgeTest, RepeatedSleepWakeOnOneSlot) {
  Runtime rt({.backend = Backend::kEagerStm});
  std::uint64_t round = 0;
  constexpr std::uint64_t kRounds = 200;
  std::thread waiter([&] {
    for (std::uint64_t r = 1; r <= kRounds; ++r) {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(round) < r) {
          tx.Retry();
        }
      });
    }
  });
  for (std::uint64_t r = 1; r <= kRounds; ++r) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(round, r); });
  }
  waiter.join();
  // The slot was reused kRounds times by the same thread without leaking state.
  EXPECT_LE(rt.AggregateStats().Get(Counter::kSleeps), kRounds);
}

TEST(DescheduleEdgeTest, ReadOnlyCommitsNeverScanWaiters) {
  Runtime rt({.backend = Backend::kEagerStm});
  std::uint64_t flag = 0;
  std::uint64_t data = 7;
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  while (rt.AggregateStats().Get(Counter::kSleeps) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Read-only transactions commit without wakeWaiters (only writers can
  // establish a precondition).
  for (int i = 0; i < 50; ++i) {
    std::uint64_t v = Atomically(rt.sys(), [&](Tx& tx) { return tx.Load(data); });
    EXPECT_EQ(v, 7u);
  }
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeChecks), 0u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
}

TEST(RetryOrigRegistryTest, ValidationFailureSkipsSleep) {
  RetryOrigRegistry reg(4);
  TxDesc d(0, 1);
  Orec o;
  // mo: relaxed — pre-concurrency test setup; no other thread runs yet.
  o.word.store(Orec::MakeVersion(10), std::memory_order_relaxed);
  // The orec's version (10) is newer than the transaction's start (5): something
  // committed since the snapshot, so the thread must not sleep.
  reg.WaitForOverlap(d, {&o}, /*start=*/5, {});
  EXPECT_EQ(d.stats.Get(Counter::kSleeps), 0u);
}

TEST(RetryOrigRegistryTest, OwnReleasedOrecDoesNotBlockSleep) {
  RetryOrigRegistry reg(4);
  Orec o;
  // The transaction read AND wrote this orec; its own rollback released it at
  // version 11 (prev 10 + 1). That must validate as "unchanged".
  // mo: relaxed — pre-concurrency test setup; the waker thread is created
  // afterwards and thread creation orders the store before it.
  o.word.store(Orec::MakeVersion(11), std::memory_order_relaxed);
  std::vector<RetryOrigRegistry::ReleasedOrec> released = {
      {&o, Orec::MakeVersion(11)}};
  TxDesc d(0, 1);
  std::thread waker([&] {
    // Wake once the entry is registered.
    for (int i = 0; i < 100000; ++i) {
      if (reg.HasWaiters()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ASSERT_TRUE(reg.HasWaiters());
    reg.OnWriterCommit({&o});
  });
  reg.WaitForOverlap(d, {&o}, /*start=*/5, released);
  waker.join();
  EXPECT_EQ(d.stats.Get(Counter::kSleeps), 1u);
}

// Pins the lost-wakeup repair for the pre-fence snapshot race: a writer whose
// post-fence HasWaiters peek finds waiters but whose snapshot heuristic
// skipped copying the write set has no orecs to intersect, so Commit() calls
// WakeAllSleepers — every sleeper must be posted, whatever it reads.
TEST(RetryOrigRegistryTest, WakeAllSleepersWakesEverySleeperConservatively) {
  RetryOrigRegistry reg(4);
  Orec a;
  Orec b;
  // mo: relaxed — pre-concurrency test setup; no other thread runs yet.
  a.word.store(Orec::MakeVersion(1), std::memory_order_relaxed);
  // mo: relaxed — pre-concurrency test setup; no other thread runs yet.
  b.word.store(Orec::MakeVersion(1), std::memory_order_relaxed);
  TxDesc d0(0, 2);
  TxDesc d1(1, 2);
  std::thread s0([&] { reg.WaitForOverlap(d0, {&a}, /*start=*/5, {}); });
  std::thread s1([&] { reg.WaitForOverlap(d1, {&b}, /*start=*/5, {}); });
  for (int i = 0; i < 100000; ++i) {
    if (d0.stats.Get(Counter::kSleeps) == 1 &&
        d1.stats.Get(Counter::kSleeps) == 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(reg.HasWaiters());
  reg.WakeAllSleepers();
  s0.join();
  s1.join();
  EXPECT_FALSE(reg.HasWaiters());
  // Idempotent on an empty list.
  reg.WakeAllSleepers();
}

TEST(RetryOrigRegistryTest, NonOverlappingCommitDoesNotWake) {
  RetryOrigRegistry reg(4);
  Orec read_orec;
  Orec other_orec;
  // mo: relaxed — pre-concurrency test setup; no other thread runs yet.
  read_orec.word.store(Orec::MakeVersion(1), std::memory_order_relaxed);
  TxDesc d(0, 1);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    reg.WaitForOverlap(d, {&read_orec}, /*start=*/5, {});
    // mo: release — [harness] publish state to other harness threads.
    woke.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 100000 && !reg.HasWaiters(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // A commit touching a different orec: the intersection is empty, no wake.
  reg.OnWriterCommit({&other_orec});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  reg.OnWriterCommit({&read_orec});
  sleeper.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace tcs
