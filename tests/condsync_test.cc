// Behavioral tests for the condition-synchronization mechanisms: Retry (Alg. 5),
// Await (Alg. 6), WaitPred (Alg. 7), Deschedule's lost-wakeup window, Retry-Orig
// (Alg. 1), TMCondVar (atomicity break), and the Restart strawman — across all
// three TM backends. Assertions use the runtime's event counters (sleeps, wakeups,
// wake checks) rather than timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "src/condsync/tm_condvar.h"
#include "src/condsync/waiter_registry.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TmConfig ConfigFor(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 32;
  return cfg;
}

// Polls aggregate stats until `counter` reaches `target` (waiter observably
// asleep / woken), bounded by a generous timeout.
void AwaitCounter(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

class CondSyncTest : public ::testing::TestWithParam<Backend> {
 protected:
  CondSyncTest() : rt_(ConfigFor(GetParam())) {}
  Runtime rt_;
};

TEST_P(CondSyncTest, RetryWakesOnChange) {
  std::uint64_t flag = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  TxStats s = rt_.AggregateStats();
  if (GetParam() == Backend::kSimHtm) {
    // On HTM, Retry aborts the hardware attempt and re-executes in software mode
    // with logging already enabled; there is no separate logging restart.
    EXPECT_GE(s.Get(Counter::kHtmExplicitAborts), 1u);
  } else {
    EXPECT_GE(s.Get(Counter::kRetryRestarts), 1u);  // first pass re-executes to log
  }
  EXPECT_GE(s.Get(Counter::kWakeups), 1u);
  EXPECT_GE(s.Get(Counter::kDeschedules), 1u);
}

TEST_P(CondSyncTest, SilentStoreDoesNotWakeRetry) {
  std::uint64_t flag = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  // A silent store: writes the value already present. Value-based waitsets make
  // this invisible to the waiter (§2.2.3); the writer checks but must not wake.
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{0}); });
  AwaitCounter(rt_, Counter::kWakeChecks, 1);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeups), 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(CondSyncTest, AwaitIgnoresUnrelatedWrites) {
  std::uint64_t interesting = 0;
  std::uint64_t unrelated = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(interesting) == 0) {
        tx.Await(interesting);
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  // Writes to locations outside the Await address list must not wake. With the
  // targeted wake index these commits normally skip even the wake *check*
  // (their write-set shards don't cover the waiter); a hash collision may
  // still produce a harmless rejected check, never a wakeup.
  for (int i = 1; i <= 3; ++i) {
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Store(unrelated, static_cast<std::uint64_t>(i));
    });
  }
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeups), 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(interesting, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(CondSyncTest, AwaitSeesOwnWritesRolledBack) {
  // A transaction that wrote the awaited location must log the pre-transaction
  // value, not its own speculative one, or it would wake spuriously (§2.2.6).
  std::uint64_t x = 5;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(x) == 5) {
        tx.Store(x, std::uint64_t{99});  // speculative write, undone by Await
        tx.Await(x);
      }
      // After wakeup: x was changed by the writer.
      EXPECT_EQ(tx.Load(x), 6u);
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  // A silent store to x targets the waiter's own shard, so the wake check runs
  // even under targeted wakeup; the waitset entry for x must hold 5 (the
  // rolled-back value), which still matches memory, so no wake.
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{5}); });
  AwaitCounter(rt_, Counter::kWakeChecks, 1);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeups), 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{6}); });
  waiter.join();
}

struct ThresholdState {
  std::uint64_t count = 0;
};

bool CountAtLeastPred(TmSystem& sys, const WaitArgs& args) {
  const auto* st = reinterpret_cast<const ThresholdState*>(args.v[0]);
  TmWord v = sys.Read(reinterpret_cast<const TmWord*>(&st->count));
  return v >= args.v[1];
}

TEST_P(CondSyncTest, WaitPredFiltersUnsatisfyingWrites) {
  ThresholdState st;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(st.count) < 3) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&st);
        args.v[1] = 3;
        args.n = 2;
        tx.WaitPred(&CountAtLeastPred, args);
      }
      EXPECT_GE(tx.Load(st.count), 3u);
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  // Increments 1 and 2 change the location the predicate reads, but do not
  // satisfy it: WaitPred's whole point is that these cause no wakeup (unlike
  // Retry/Await, which would wake on any change).
  for (int i = 1; i <= 2; ++i) {
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(st.count, tx.Load(st.count) + 1); });
  }
  AwaitCounter(rt_, Counter::kWakeChecks, 2);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeups), 0u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(st.count, tx.Load(st.count) + 1); });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), 1u);
}

TEST_P(CondSyncTest, DescheduleDoubleCheckAvoidsSleepWhenConditionHolds) {
  // If the precondition already holds when the registration transaction
  // double-checks it, the waiter must restart immediately instead of sleeping
  // (Algorithm 4, line 7). Forced deterministically with an always-true
  // predicate: the body's own test was stale, the registration check is not.
  std::uint64_t dummy = 1;
  int calls = 0;
  Atomically(rt_.sys(), [&](Tx& tx) {
    // Allow up to two attempts to reach WaitPred (on HTM the first call only
    // switches to software mode); the deschedule then restarts the body, which
    // must finally commit without ever sleeping.
    if (++calls <= 2) {
      WaitArgs args;
      args.v[0] = reinterpret_cast<TmWord>(&dummy);
      args.v[1] = 1;  // threshold already met
      args.n = 2;
      // Reuse the threshold predicate against a location that already satisfies
      // it: deschedules, double-checks, and restarts without sleeping.
      tx.WaitPred(&CountAtLeastPred, args);
    }
  });
  TxStats s = rt_.AggregateStats();
  EXPECT_GE(s.Get(Counter::kDeschedules), 1u);
  EXPECT_EQ(s.Get(Counter::kSleeps), 0u);
}

TEST_P(CondSyncTest, ManyWaitersBroadcastWake) {
  std::uint64_t flag = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(flag) == 0) {
          tx.Retry();
        }
      });
    });
  }
  AwaitCounter(rt_, Counter::kSleeps, kWaiters);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  for (auto& t : waiters) {
    t.join();
  }
  // One commit satisfied all waiters: effectively a broadcast (§2.4.1).
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWakeups), kWaiters);
}

TEST_P(CondSyncTest, PingPongRetry) {
  // Two threads alternate on a turn variable through many sleep/wake cycles.
  constexpr std::uint64_t kRounds = 400;
  std::uint64_t turn = 0;
  auto runner = [&](std::uint64_t me) {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(turn) % 2 != me) {
          tx.Retry();
        }
        tx.Store(turn, tx.Load(turn) + 1);
      });
    }
  };
  std::thread a([&] { runner(0); });
  std::thread b([&] { runner(1); });
  a.join();
  b.join();
  EXPECT_EQ(turn, 2 * kRounds);
}

TEST_P(CondSyncTest, LostWakeupStress) {
  // The central race (§2.1): a writer commits while the waiter is registering.
  // Any lost wakeup hangs this test (ctest timeout).
  constexpr int kRounds = 300;
  std::uint64_t flag = 0;
  for (int r = 1; r <= kRounds; ++r) {
    std::thread waiter([&] {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(flag) < static_cast<std::uint64_t>(r)) {
          tx.Retry();
        }
      });
    });
    // No sleep synchronization on purpose: the writer races the registration.
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, static_cast<std::uint64_t>(r)); });
    waiter.join();
  }
  SUCCEED();
}

TEST_P(CondSyncTest, RestartMechanismCompletes) {
  std::uint64_t flag = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.RestartNow();
      }
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kExplicitRestarts), 1u);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kSleeps), 0u);  // spins, never sleeps
}

TEST_P(CondSyncTest, TmCondVarBasicHandoff) {
  std::uint64_t flag = 0;
  TmCondVar cv(32);
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.CondWait(cv);
      }
    });
  });
  AwaitCounter(rt_, Counter::kCondVarWaits, 1);
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(flag, std::uint64_t{1});
    tx.CondSignal(cv);
  });
  waiter.join();
  EXPECT_EQ(flag, 1u);
}

TEST_P(CondSyncTest, TmCondVarBreaksAtomicity) {
  // The partial update before the wait becomes visible while the waiter sleeps —
  // the precise hazard of Algorithm 3 that the paper's mechanisms avoid.
  std::uint64_t partial = 0;
  std::uint64_t flag = 0;
  TmCondVar cv(32);
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Store(partial, std::uint64_t{1});
      if (tx.Load(flag) == 0) {
        tx.CondWait(cv);
      }
      tx.Store(partial, std::uint64_t{0});
    });
  });
  AwaitCounter(rt_, Counter::kCondVarWaits, 1);
  std::uint64_t observed =
      Atomically(rt_.sys(), [&](Tx& tx) { return tx.Load(partial); });
  EXPECT_EQ(observed, 1u) << "condvar wait must expose the partial update";
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(flag, std::uint64_t{1});
    tx.CondSignal(cv);
  });
  waiter.join();
  EXPECT_EQ(partial, 0u);
}

TEST_P(CondSyncTest, RetryPreservesAtomicityWhereCondVarBreaksIt) {
  // Same shape as TmCondVarBreaksAtomicity, but with Retry: the partial update
  // must never be observable.
  std::uint64_t partial = 0;
  std::uint64_t flag = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Store(partial, std::uint64_t{1});
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
      tx.Store(partial, std::uint64_t{0});
    });
  });
  std::thread observer([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t v =
          Atomically(rt_.sys(), [&](Tx& tx) { return tx.Load(partial); });
      if (v != 0) {
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        violations.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  observer.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CondSyncTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// Retry-Orig runs only on the STM backends (§2.1).
class RetryOrigTest : public ::testing::TestWithParam<Backend> {
 protected:
  RetryOrigTest() : rt_(ConfigFor(GetParam())) {}
  Runtime rt_;
};

TEST_P(RetryOrigTest, WakesOnOverlappingWrite) {
  std::uint64_t flag = 0;
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.RetryOrig();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  EXPECT_EQ(flag, 1u);
}

TEST_P(RetryOrigTest, SilentStoreWakesOrigButNotOurs) {
  // Orec-based wakeups cannot distinguish silent stores: Retry-Orig wakes (and
  // the waiter re-sleeps), demonstrating the imprecision value-based waitsets fix.
  std::uint64_t flag = 0;
  std::atomic<int> attempts{0};
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      attempts.fetch_add(1, std::memory_order_acq_rel);
      if (tx.Load(flag) == 0) {
        tx.RetryOrig();
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  // mo: acquire — [harness] observe worker-published state.
  int before = attempts.load(std::memory_order_acquire);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{0}); });  // silent
  // The orec version changed, so Retry-Orig wakes and the body re-runs.
  // mo: acquire — [harness] observe worker-published state.
  for (int i = 0; i < 10000 && attempts.load(std::memory_order_acquire) == before; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_GT(attempts.load(std::memory_order_acquire), before) << "Retry-Orig should wake on a silent store";
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
}

TEST_P(RetryOrigTest, PingPong) {
  constexpr std::uint64_t kRounds = 200;
  std::uint64_t turn = 0;
  auto runner = [&](std::uint64_t me) {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      Atomically(rt_.sys(), [&](Tx& tx) {
        if (tx.Load(turn) % 2 != me) {
          tx.RetryOrig();
        }
        tx.Store(turn, tx.Load(turn) + 1);
      });
    }
  };
  std::thread a([&] { runner(0); });
  std::thread b([&] { runner(1); });
  a.join();
  b.join();
  EXPECT_EQ(turn, 2 * kRounds);
}

INSTANTIATE_TEST_SUITE_P(StmBackends, RetryOrigTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kEagerStm ? "EagerStm"
                                                                   : "LazyStm";
                         });

// --- OrElse: composable choice with partial rollback ---

class OrElseTest : public ::testing::TestWithParam<Backend> {
 protected:
  OrElseTest() : rt_(ConfigFor(GetParam())) {}
  Runtime rt_;
};

TEST_P(OrElseTest, FirstBranchWinsWhenItCompletes) {
  TVar<std::uint64_t> x(7);
  std::uint64_t got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse([&](Tx& t) { return t.Load(x); },
                     [&](Tx&) -> std::uint64_t { return 999; });
  });
  EXPECT_EQ(got, 7u);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kOrElseFallbacks), 0u);
}

TEST_P(OrElseTest, FallsBackWhenFirstBranchRetries) {
  TVar<std::uint64_t> empty_flag(0);
  std::uint64_t got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse(
        [&](Tx& t) -> std::uint64_t {
          if (t.Load(empty_flag) == 0) {
            t.Retry();
          }
          return 1;
        },
        [&](Tx&) -> std::uint64_t { return 2; });
  });
  EXPECT_EQ(got, 2u);
  TxStats s = rt_.AggregateStats();
  EXPECT_GE(s.Get(Counter::kOrElseFallbacks), 1u);
  EXPECT_GE(s.Get(Counter::kPartialRollbacks), 1u);
  // The fallback happened inside one transaction: no deschedule, no sleep.
  EXPECT_EQ(s.Get(Counter::kSleeps), 0u);
}

TEST_P(OrElseTest, PartialRollbackUndoesFirstBranchWrites) {
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> gate(0);
  std::uint64_t seen_in_branch2 = 99;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});  // speculative, must be undone
          if (t.Load(gate) == 0) {
            t.Retry();
          }
        },
        [&](Tx& t) { seen_in_branch2 = t.Load(cell); });
  });
  EXPECT_EQ(seen_in_branch2, 5u) << "branch 2 must see pre-branch-1 state";
  EXPECT_EQ(cell.UnsafeRead(), 5u) << "branch 1's write must not commit";
}

TEST_P(OrElseTest, SecondBranchWritesCommit) {
  TVar<std::uint64_t> a(0);
  TVar<std::uint64_t> b(0);
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(a, std::uint64_t{1});
          t.Retry();
        },
        [&](Tx& t) { t.Store(b, std::uint64_t{2}); });
  });
  EXPECT_EQ(a.UnsafeRead(), 0u);
  EXPECT_EQ(b.UnsafeRead(), 2u);
}

TEST_P(OrElseTest, NestedOrElseCascadesInnermostFirst) {
  TVar<std::uint64_t> never(0);
  std::uint64_t got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse(
        [&](Tx& t) -> std::uint64_t {
          return t.OrElse(
              [&](Tx& t2) -> std::uint64_t {
                if (t2.Load(never) == 0) {
                  t2.Retry();  // inner branch 1 fails
                }
                return 1;
              },
              [&](Tx& t2) -> std::uint64_t {
                if (t2.Load(never) == 0) {
                  t2.Retry();  // inner branch 2 fails -> outer alternative
                }
                return 2;
              });
        },
        [&](Tx&) -> std::uint64_t { return 3; });
  });
  EXPECT_EQ(got, 3u);
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kOrElseFallbacks), 2u);
}

TEST_P(OrElseTest, BothBranchesRetryWakesOnEitherReadSet) {
  // The acceptance scenario: both branches retry, so the thread descheds on
  // the *union* of their read sets. A write to either cell must wake it.
  for (int round = 0; round < 2; ++round) {
    Runtime rt(ConfigFor(GetParam()));
    TVar<std::uint64_t> cell_a(0);
    TVar<std::uint64_t> cell_b(0);
    std::uint64_t got = 0;
    std::thread waiter([&] {
      got = Atomically(rt.sys(), [&](Tx& tx) {
        return tx.OrElse(
            [&](Tx& t) -> std::uint64_t {
              std::uint64_t v = t.Load(cell_a);
              if (v == 0) {
                t.Retry();
              }
              return 100 + v;
            },
            [&](Tx& t) -> std::uint64_t {
              std::uint64_t v = t.Load(cell_b);
              if (v == 0) {
                t.Retry();
              }
              return 200 + v;
            });
      });
    });
    AwaitCounter(rt, Counter::kSleeps, 1);
    if (round == 0) {
      // Wake via the FIRST branch's read set.
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell_a, std::uint64_t{1}); });
      waiter.join();
      EXPECT_EQ(got, 101u);
    } else {
      // Wake via the SECOND branch's read set.
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell_b, std::uint64_t{5}); });
      waiter.join();
      EXPECT_EQ(got, 205u);
    }
    EXPECT_GE(rt.AggregateStats().Get(Counter::kWakeups), 1u);
  }
}

TEST_P(OrElseTest, AwaitAndWaitPredAlsoTransferToAlternative) {
  // Every wait style inside an OrElse branch — not just Retry — must fall
  // back to the alternative instead of descheduling the whole transaction.
  TVar<std::uint64_t> cell(0);
  std::uint64_t got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse(
        [&](Tx& t) -> std::uint64_t {
          if (t.Load(cell) == 0) {
            t.Await(cell);  // would sleep forever without the fallback
          }
          return 1;
        },
        [&](Tx&) -> std::uint64_t { return 2; });
  });
  EXPECT_EQ(got, 2u);
  got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse(
        [&](Tx& t) -> std::uint64_t {
          if (t.Load(cell) == 0) {
            WaitArgs args;
            args.v[0] = reinterpret_cast<TmWord>(&cell);
            args.v[1] = 1;
            args.n = 2;
            t.WaitPred(&CountAtLeastPred, args);
          }
          return 1;
        },
        [&](Tx&) -> std::uint64_t { return 3; });
  });
  EXPECT_EQ(got, 3u);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kSleeps), 0u);
}

TEST_P(OrElseTest, ComposesAcrossNestedAtomically) {
  // Subsumption nesting: a Retry raised inside a nested Atomically body
  // propagates to the enclosing OrElse alternative (§1.2 composability).
  TVar<std::uint64_t> empty_flag(0);
  auto blocking_take = [&](Tx& tx) -> std::uint64_t {
    return Atomically(tx.sys(), [&](Tx& t) -> std::uint64_t {
      if (t.Load(empty_flag) == 0) {
        t.Retry();
      }
      return 1;
    });
  };
  std::uint64_t got = Atomically(rt_.sys(), [&](Tx& tx) {
    return tx.OrElse([&](Tx& t) { return blocking_take(t); },
                     [&](Tx&) -> std::uint64_t { return 42; });
  });
  EXPECT_EQ(got, 42u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OrElseTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// --- Timed waits: RetryFor / AwaitFor / WaitPredFor ---

class TimedWaitTest : public ::testing::TestWithParam<Backend> {
 protected:
  TimedWaitTest() : rt_(ConfigFor(GetParam())) {}
  Runtime rt_;
};

TEST_P(TimedWaitTest, RetryForTimesOutAndLeavesNoRegistryEntry) {
  TVar<std::uint64_t> flag(0);
  bool got = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
    if (tx.Load(flag) == 0) {
      if (tx.RetryFor(std::chrono::milliseconds(30)) == WaitResult::kTimedOut) {
        return false;
      }
    }
    return true;
  });
  EXPECT_FALSE(got);
  TxStats s = rt_.AggregateStats();
  EXPECT_GE(s.Get(Counter::kWaitTimeouts), 1u);
  EXPECT_GE(s.Get(Counter::kSleeps), 1u);
  // The acceptance criterion: the expired waiter must not leak its slot.
  EXPECT_EQ(rt_.sys().waiters().RegisteredCount(), 0);
  // And later writer commits must not pay wake checks for a ghost waiter.
  std::uint64_t checks_before = s.Get(Counter::kWakeChecks);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWakeChecks), checks_before);
}

TEST_P(TimedWaitTest, RetryForWakesBeforeDeadline) {
  TVar<std::uint64_t> flag(0);
  bool got = false;
  std::thread waiter([&] {
    got = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
      if (tx.Load(flag) == 0) {
        if (tx.RetryFor(std::chrono::seconds(30)) == WaitResult::kTimedOut) {
          return false;
        }
      }
      return true;
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  EXPECT_TRUE(got);
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 0u);
}

TEST_P(TimedWaitTest, RetryForInfiniteTimeoutEqualsRetry) {
  // kNoTimeout must behave exactly like plain Retry: sleep indefinitely, wake
  // on a relevant write, never produce a timeout.
  TVar<std::uint64_t> flag(0);
  std::thread waiter([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        WaitResult r = tx.RetryFor(kNoTimeout);
        // Unreachable: an untimed retry never returns.
        ADD_FAILURE() << "RetryFor(kNoTimeout) returned "
                      << static_cast<int>(r);
      }
    });
  });
  AwaitCounter(rt_, Counter::kSleeps, 1);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
  TxStats s = rt_.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kWaitTimeouts), 0u);
  EXPECT_GE(s.Get(Counter::kWakeups), 1u);
  EXPECT_GE(s.Get(Counter::kDeschedules), 1u);
}

TEST_P(TimedWaitTest, AwaitForTimesOut) {
  TVar<std::uint64_t> cell(0);
  bool timed_out = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
    if (tx.Load(cell) == 0) {
      return tx.AwaitFor(std::chrono::milliseconds(30), cell) ==
             WaitResult::kTimedOut;
    }
    return false;
  });
  EXPECT_TRUE(timed_out);
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 1u);
  EXPECT_EQ(rt_.sys().waiters().RegisteredCount(), 0);
}

bool FlagSetPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(cell->word()) != 0;
}

TEST_P(TimedWaitTest, WaitPredForTimesOut) {
  TVar<std::uint64_t> cell(0);
  bool timed_out = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
    if (tx.Load(cell) == 0) {
      WaitArgs args;
      args.v[0] = reinterpret_cast<TmWord>(&cell);
      args.n = 1;
      return tx.WaitPredFor(&FlagSetPred, args, std::chrono::milliseconds(30)) ==
             WaitResult::kTimedOut;
    }
    return false;
  });
  EXPECT_TRUE(timed_out);
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 1u);
  EXPECT_EQ(rt_.sys().waiters().RegisteredCount(), 0);
}

TEST_P(TimedWaitTest, TimeoutRaceWithWakeupDrainsSemaphore) {
  // Hammer the timeout/wakeup race: a waiter with a tiny deadline against a
  // writer committing at the same moment. Whatever interleaving happens, the
  // waiter must terminate (bounded!), leave no registry entry, and a stale
  // semaphore post must never satisfy the next round's sleep spuriously.
  for (int round = 1; round <= 50; ++round) {
    TVar<std::uint64_t> flag(0);
    std::thread waiter([&] {
      (void)Atomically(rt_.sys(), [&](Tx& tx) -> bool {
        if (tx.Load(flag) == 0) {
          if (tx.RetryFor(std::chrono::microseconds(200)) ==
              WaitResult::kTimedOut) {
            return false;
          }
        }
        return true;
      });
    });
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
    waiter.join();
    ASSERT_EQ(rt_.sys().waiters().RegisteredCount(), 0) << "round " << round;
  }
}

TEST_P(TimedWaitTest, DeadlineSpansRestartsNotSleeps) {
  // Two unsatisfying wakeups before the deadline: the bound covers total
  // elapsed time, so the waiter re-sleeps with the remaining budget and
  // eventually reports kTimedOut rather than resetting its clock per sleep.
  TVar<std::uint64_t> target(0);
  TVar<std::uint64_t> noise(0);
  std::atomic<bool> done{false};
  bool got = true;
  std::thread waiter([&] {
    got = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
      tx.Load(noise);
      if (tx.Load(target) == 0) {
        if (tx.RetryFor(std::chrono::milliseconds(150)) ==
            WaitResult::kTimedOut) {
          return false;
        }
      }
      return true;
    });
    // mo: release — [harness] publish state to other harness threads.
    done.store(true, std::memory_order_release);
  });
  // Unsatisfying wakeups: noise changes, target stays 0.
  auto start = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  // mo: acquire — [harness] observe worker-published state.
  while (!done.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(20)) {
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(noise, ++n); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  waiter.join();
  EXPECT_FALSE(got) << "waiter should time out despite repeated false wakeups";
  EXPECT_GE(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 1u);
}

TEST_P(TimedWaitTest, SequentialTimedWaitsGetIndependentDeadlines) {
  // Two timed waits in sequence: wait for step1 with a short budget, then —
  // after step1 is satisfied — wait for step2 with a generous one. Deadlines
  // are scoped to the individual call, so the second wait starts its own
  // clock. Under the old shared restart-spanning transaction deadline the
  // second wait inherited the first call's (short, mostly spent) budget and
  // timed out long before step2 was published.
  TVar<std::uint64_t> step1(0);
  TVar<std::uint64_t> step2(0);
  std::atomic<int> phase{0};
  bool step2_seen = false;
  std::thread waiter([&] {
    step2_seen = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
      if (tx.Load(step1) == 0) {
        // mo: release — [harness] publish state to other harness threads.
        phase.store(1, std::memory_order_release);
        if (tx.AwaitFor(std::chrono::milliseconds(500), step1) ==
            WaitResult::kTimedOut) {
          return false;
        }
      }
      if (tx.Load(step2) == 0) {
        // mo: release — [harness] publish state to other harness threads.
        phase.store(2, std::memory_order_release);
        if (tx.AwaitFor(std::chrono::seconds(30), step2) ==
            WaitResult::kTimedOut) {
          return false;
        }
      }
      return true;
    });
  });
  // mo: acquire — [harness] observe worker-published state.
  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(step1, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  while (phase.load(std::memory_order_acquire) < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Publish step2 well after the first call's 500ms budget is gone; the
  // second call's 30s budget has barely started.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(step2, std::uint64_t{1}); });
  waiter.join();
  EXPECT_TRUE(step2_seen)
      << "second timed wait inherited the first call's deadline";
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 0u);
}

TEST_P(TimedWaitTest, SameCallSiteSequentialWaitsGetIndependentDeadlines) {
  // The adapter pattern: both waits funnel through ONE RetryFor call site (a
  // shared helper), so the source location alone cannot tell them apart. The
  // wait's identity also folds in the waitset's addresses — the second wait
  // reads a different set and must still get its own budget.
  TVar<std::uint64_t> step1(0);
  TVar<std::uint64_t> step2(0);
  std::atomic<int> phase{0};
  bool ok = false;
  std::thread waiter([&] {
    ok = Atomically(rt_.sys(), [&](Tx& tx) -> bool {
      auto wait_nonzero = [&](TVar<std::uint64_t>& cell,
                              std::chrono::nanoseconds timeout,
                              int ph) -> bool {
        if (tx.Load(cell) != 0) {
          return true;
        }
        // mo: release — [harness] publish state to other harness threads.
        phase.store(ph, std::memory_order_release);
        // One shared call site for every wait in this transaction.
        return tx.RetryFor(timeout) != WaitResult::kTimedOut;
      };
      if (!wait_nonzero(step1, std::chrono::milliseconds(500), 1)) {
        return false;
      }
      if (!wait_nonzero(step2, std::chrono::seconds(30), 2)) {
        return false;
      }
      return true;
    });
  });
  // mo: acquire — [harness] observe worker-published state.
  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(step1, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  while (phase.load(std::memory_order_acquire) < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(step2, std::uint64_t{1}); });
  waiter.join();
  EXPECT_TRUE(ok) << "second wait through the shared call site inherited the "
                     "first wait's deadline";
  EXPECT_EQ(rt_.AggregateStats().Get(Counter::kWaitTimeouts), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TimedWaitTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// Simulated-HTM specifics.
TEST(SimHtmCondSyncTest, RetryFallsBackToSoftwareMode) {
  Runtime rt(ConfigFor(Backend::kSimHtm));
  std::uint64_t flag = 0;
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  TxStats s = rt.AggregateStats();
  // The hardware attempt aborted explicitly and re-executed serially.
  EXPECT_GE(s.Get(Counter::kHtmExplicitAborts), 1u);
  EXPECT_GE(s.Get(Counter::kHtmFallbacks), 1u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();
}

TEST(SimHtmCondSyncTest, NonWaitingTransactionsStayInHardwareMode) {
  Runtime rt(ConfigFor(Backend::kSimHtm));
  std::uint64_t x = 0;
  for (int i = 0; i < 100; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  // No waiter ever existed: writers paid no fallback and no wake checks.
  TxStats s = rt.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kHtmFallbacks), 0u);
  EXPECT_EQ(s.Get(Counter::kWakeChecks), 0u);
}

}  // namespace
}  // namespace tcs
