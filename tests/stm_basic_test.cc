// Single-threaded semantics of the three backends: visibility, rollback,
// read-own-writes, sub-word access splicing, transactional allocation, flat
// nesting, and return values. Parameterized over all backends (TEST_P).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {
namespace {

class StmBasicTest : public ::testing::TestWithParam<Backend> {
 protected:
  StmBasicTest() : rt_(MakeConfig()) {}

  TmConfig MakeConfig() {
    TmConfig cfg;
    cfg.backend = GetParam();
    cfg.orec_table_log2 = 12;
    cfg.max_threads = 8;
    return cfg;
  }

  Runtime rt_;
};

TEST_P(StmBasicTest, CommitMakesWritesVisible) {
  std::uint64_t x = 0;
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{7}); });
  EXPECT_EQ(x, 7u);
}

TEST_P(StmBasicTest, ReadReturnsCommittedValue) {
  std::uint64_t x = 13;
  std::uint64_t got =
      Atomically(rt_.sys(), [&](Tx& tx) -> std::uint64_t { return tx.Load(x); });
  EXPECT_EQ(got, 13u);
}

TEST_P(StmBasicTest, ReadOwnWriteReturnsSpeculativeValue) {
  std::uint64_t x = 1;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{2});
    EXPECT_EQ(tx.Load(x), 2u);
    tx.Store(x, std::uint64_t{3});
    EXPECT_EQ(tx.Load(x), 3u);
  });
  EXPECT_EQ(x, 3u);
}

TEST_P(StmBasicTest, RestartRollsBackAllEffects) {
  std::uint64_t x = 0;
  std::uint64_t y = 100;
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    // On the first attempt, observe clean state, dirty it, then restart;
    // the second attempt must see the original values.
    EXPECT_EQ(tx.Load(x), 0u);
    EXPECT_EQ(tx.Load(y), 100u);
    tx.Store(x, std::uint64_t{55});
    tx.Store(y, std::uint64_t{66});
    if (!restarted) {
      restarted = true;
      tx.RestartNow();
    }
    tx.Store(x, std::uint64_t{1});
  });
  EXPECT_TRUE(restarted);
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 66u);
}

TEST_P(StmBasicTest, SubWordAccessesSplice) {
  struct Packed {
    std::uint8_t a;
    std::uint8_t b;
    std::uint16_t c;
    std::uint32_t d;
  };
  alignas(8) Packed p{1, 2, 3, 4};
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(p.a, std::uint8_t{10});
    tx.Store(p.c, std::uint16_t{30});
    EXPECT_EQ(tx.Load(p.a), 10);
    EXPECT_EQ(tx.Load(p.b), 2);
    EXPECT_EQ(tx.Load(p.c), 30);
    EXPECT_EQ(tx.Load(p.d), 4u);
  });
  EXPECT_EQ(p.a, 10);
  EXPECT_EQ(p.b, 2);
  EXPECT_EQ(p.c, 30);
  EXPECT_EQ(p.d, 4u);
}

TEST_P(StmBasicTest, BoolAndPointerFields) {
  bool flag = false;
  std::uint64_t target = 5;
  std::uint64_t* ptr = nullptr;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(flag, true);
    tx.Store(ptr, &target);
  });
  EXPECT_TRUE(flag);
  ASSERT_EQ(ptr, &target);
}

TEST_P(StmBasicTest, SubWordRollbackRestoresNeighbors) {
  alignas(8) std::uint32_t pair[2] = {111, 222};
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(pair[0], std::uint32_t{999});
    if (!restarted) {
      restarted = true;
      tx.RestartNow();
    }
  });
  EXPECT_EQ(pair[0], 999u);
  EXPECT_EQ(pair[1], 222u);
}

TEST_P(StmBasicTest, FlatNestingRunsInnerInline) {
  std::uint64_t x = 0;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{1});
    Atomically(rt_.sys(), [&](Tx& inner) {
      EXPECT_EQ(inner.Load(x), 1u);  // inner sees outer's speculative state
      inner.Store(x, std::uint64_t{2});
    });
    EXPECT_EQ(tx.Load(x), 2u);
  });
  EXPECT_EQ(x, 2u);
}

TEST_P(StmBasicTest, NestedRestartUnrollsOutermost) {
  std::uint64_t x = 0;
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{10});
    Atomically(rt_.sys(), [&](Tx& inner) {
      if (!restarted) {
        restarted = true;
        inner.RestartNow();  // must unroll the outer write too
      }
      EXPECT_EQ(inner.Load(x), 10u);
    });
  });
  EXPECT_TRUE(restarted);
  EXPECT_EQ(x, 10u);
}

TEST_P(StmBasicTest, AtomicallyReturnsValue) {
  std::uint64_t x = 21;
  auto doubled = Atomically(rt_.sys(), [&](Tx& tx) { return tx.Load(x) * 2; });
  EXPECT_EQ(doubled, 42u);
}

TEST_P(StmBasicTest, TxAllocSurvivesCommit) {
  std::uint64_t* cell = nullptr;
  Atomically(rt_.sys(), [&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(tx.AllocBytes(sizeof(std::uint64_t)));
    tx.Store(*p, std::uint64_t{77});
    cell = p;  // capture for post-commit inspection
  });
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, 77u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.FreeBytes(cell); });
}

TEST_P(StmBasicTest, TxAllocUndoneOnRestart) {
  // The restarted attempt's allocation must be reclaimed; the committed attempt's
  // allocation survives. (ASAN build verifies the reclaim.)
  std::uint64_t* cell = nullptr;
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    auto* p = static_cast<std::uint64_t*>(tx.AllocBytes(sizeof(std::uint64_t)));
    tx.Store(*p, std::uint64_t{1});
    if (!restarted) {
      restarted = true;
      tx.RestartNow();
    }
    cell = p;
  });
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, 1u);
  Atomically(rt_.sys(), [&](Tx& tx) { tx.FreeBytes(cell); });
}

TEST_P(StmBasicTest, FreeIsDeferredUntilCommit) {
  auto* p = static_cast<std::uint64_t*>(std::malloc(sizeof(std::uint64_t)));
  *p = 5;
  bool restarted = false;
  Atomically(rt_.sys(), [&](Tx& tx) {
    tx.FreeBytes(p);
    if (!restarted) {
      restarted = true;
      tx.RestartNow();  // free must NOT have happened
    }
    // p is still valid here because the free only executes at commit.
    EXPECT_EQ(tx.Load(*p), 5u);
  });
}

TEST_P(StmBasicTest, ManySequentialTransactions) {
  std::uint64_t x = 0;
  for (int i = 0; i < 1000; ++i) {
    Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }
  EXPECT_EQ(x, 1000u);
}

TEST_P(StmBasicTest, LargeWriteSetCommits) {
  // Exceeds the simulated HTM's write capacity: must fall back and still commit.
  std::vector<std::uint64_t> data(100000, 0);
  Atomically(rt_.sys(), [&](Tx& tx) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      tx.Store(data[i], static_cast<std::uint64_t>(i));
    }
  });
  for (std::size_t i = 0; i < data.size(); i += 1017) {
    EXPECT_EQ(data[i], i);
  }
  if (GetParam() == Backend::kSimHtm) {
    TxStats s = rt_.AggregateStats();
    EXPECT_GE(s.Get(Counter::kHtmFallbacks), 1u);
    EXPECT_GE(s.Get(Counter::kHtmCapacityAborts), 1u);
  }
}

TEST_P(StmBasicTest, StatsCountCommits) {
  rt_.ResetStats();
  std::uint64_t x = 0;
  Atomically(rt_.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{1}); });
  Atomically(rt_.sys(), [&](Tx& tx) { (void)tx.Load(x); });
  TxStats s = rt_.AggregateStats();
  EXPECT_EQ(s.Get(Counter::kCommits), 1u);
  EXPECT_EQ(s.Get(Counter::kReadOnlyCommits), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StmBasicTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tcs
