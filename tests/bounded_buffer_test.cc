// The bounded buffer (Algorithm 2 / Figure 2.2) across the full mechanism ×
// backend matrix: exactly-once delivery, FIFO order, capacity bounds, and the
// Produce1Consume2 composability scenario (Algorithm 3) that motivates the paper.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/sync/bounded_buffer.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

struct MatrixParam {
  Backend backend;
  Mechanism mech;
};

std::string ParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string b = BackendName(info.param.backend);
  std::string m = MechanismName(info.param.mech);
  std::string out = b + "_" + m;
  for (char& c : out) {
    if (c == '-') {
      c = '_';
    }
  }
  return out;
}

std::vector<MatrixParam> AllCombos() {
  std::vector<MatrixParam> out;
  for (Backend b : {Backend::kEagerStm, Backend::kLazyStm, Backend::kSimHtm}) {
    for (Mechanism m : kAllMechanisms) {
      if (m == Mechanism::kRetryOrig && b == Backend::kSimHtm) {
        continue;  // Retry-Orig is STM-only (§2.1)
      }
      out.push_back({b, m});
    }
  }
  return out;
}

TmConfig ConfigFor(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 14;
  cfg.max_threads = 64;
  return cfg;
}

class BoundedBufferMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  BoundedBufferMatrixTest() : rt_(ConfigFor(GetParam().backend)) {}
  Runtime rt_;
};

TEST_P(BoundedBufferMatrixTest, AllItemsDeliveredExactlyOnce) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 1000;
  BoundedBuffer buf(&rt_, GetParam().mech, 4);

  std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        buf.Produce(static_cast<std::uint64_t>(p) * kPerProducer + i);
      }
    });
  }
  std::uint64_t per_consumer = kProducers * kPerProducer / kConsumers;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < per_consumer; ++i) {
        consumed[c].push_back(buf.Consume());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<std::uint64_t> all;
  for (auto& v : consumed) {
    all.insert(all.end(), v.begin(), v.end());
  }
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "value " << i << " missing or duplicated";
  }
}

TEST_P(BoundedBufferMatrixTest, FifoWithSingleProducerSingleConsumer) {
  constexpr std::uint64_t kItems = 2000;
  BoundedBuffer buf(&rt_, GetParam().mech, 16);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      buf.Produce(i);
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(buf.Consume(), i);
  }
  producer.join();
}

TEST_P(BoundedBufferMatrixTest, PrefillThenDrain) {
  BoundedBuffer buf(&rt_, GetParam().mech, 8);
  buf.UnsafePrefill(4, 100);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buf.Consume(), 100 + i);
  }
}

TEST_P(BoundedBufferMatrixTest, TinyBufferHeavyBlocking) {
  // Capacity 1 forces a sleep/wake (or restart) on nearly every operation.
  constexpr std::uint64_t kItems = 500;
  BoundedBuffer buf(&rt_, GetParam().mech, 1);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      buf.Produce(i);
    }
  });
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    sum += buf.Consume();
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Matrix, BoundedBufferMatrixTest,
                         ::testing::ValuesIn(AllCombos()), ParamName);

// --- Composability (Algorithm 3) ---
// Produce one element and atomically consume two. With the paper's mechanisms the
// whole operation is one atomic action: the in-progress flag is never observable
// and the transaction blocks *as a whole* until a second element exists.
class ComposabilityTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  ComposabilityTest() : rt_(ConfigFor(GetParam().backend)) {}
  Runtime rt_;
};

std::vector<MatrixParam> ComposableCombos() {
  // The composable mechanisms: Retry / Await / WaitPred / Retry-Orig / Restart.
  std::vector<MatrixParam> out;
  for (Backend b : {Backend::kEagerStm, Backend::kLazyStm, Backend::kSimHtm}) {
    for (Mechanism m : {Mechanism::kWaitPred, Mechanism::kAwait, Mechanism::kRetry,
                        Mechanism::kRetryOrig, Mechanism::kRestart}) {
      if (m == Mechanism::kRetryOrig && b == Backend::kSimHtm) {
        continue;
      }
      out.push_back({b, m});
    }
  }
  return out;
}

// §2.3's predicate-design subtlety, live: the composed transaction produces one
// element itself, but that production is *rolled back* while it waits. The
// predicate must therefore describe the precondition of the rolled-back world —
// "one element from elsewhere" (count >= 1), not "the two elements I will
// consume" (count >= 2), which the waiter's own rolled-back Put can never supply.
bool BufferHasOneElsewherePred(TmSystem& sys, const WaitArgs& args) {
  const auto* count = reinterpret_cast<const std::uint64_t*>(args.v[0]);
  return sys.Read(reinterpret_cast<const TmWord*>(count)) >= 1;
}

TEST_P(ComposabilityTest, Produce1Consume2StaysAtomic) {
  Mechanism mech = GetParam().mech;
  BoundedBuffer buf(&rt_, mech, 8);
  std::uint64_t inprogress = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Observer: the dangerous scenario's symptom is seeing inprogress == 1.
  std::thread observer([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t v =
          Atomically(rt_.sys(), [&](Tx& tx) { return tx.Load(inprogress); });
      if (v != 0) {
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        violations.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });

  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::thread composer([&] {
    Atomically(rt_.sys(), [&](Tx& tx) {
      tx.Store(inprogress, std::uint64_t{1});
      buf.Put(tx, 111);  // produce one element
      // consume two elements atomically; blocks until a second one exists
      if (buf.Count(tx) < 2) {
        switch (mech) {
          case Mechanism::kWaitPred: {
            WaitArgs args;
            args.v[0] = reinterpret_cast<TmWord>(&buf.count_ref());
            args.n = 1;
            tx.WaitPred(&BufferHasOneElsewherePred, args);
          }
          case Mechanism::kAwait:
            tx.Await(buf.count_ref());
          case Mechanism::kRetry:
            tx.Retry();
          case Mechanism::kRetryOrig:
            tx.RetryOrig();
          default:
            tx.RestartNow();
        }
      }
      a = buf.Get(tx);
      b = buf.Get(tx);
      tx.Store(inprogress, std::uint64_t{0});
    });
  });

  // Let the composer reach its wait, then supply the second element.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Atomically(rt_.sys(), [&](Tx& tx) { buf.Put(tx, 222); });

  composer.join();
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  observer.join();

  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(violations.load(std::memory_order_acquire), 0) << "composed transaction leaked partial state";
  // FIFO across the composed restart: the helper's element went in while the
  // composer was rolled back, so it comes out first.
  std::multiset<std::uint64_t> got{a, b};
  EXPECT_TRUE(got == std::multiset<std::uint64_t>({111, 222}));
  EXPECT_EQ(inprogress, 0u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ComposabilityTest,
                         ::testing::ValuesIn(ComposableCombos()), ParamName);

}  // namespace
}  // namespace tcs
