// Mini-PARSEC correctness: every app must produce the same checksum regardless
// of mechanism, backend, and thread count — synchronization must never change
// results, only timing. This is the portability property the paper's Table 2.1
// porting exercise relies on.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/miniparsec/app_common.h"
#include "tests/matrix.h"

namespace tcs {
namespace {

struct AppCase {
  std::string app;
  MatrixParam combo;
};

std::vector<AppCase> AllAppCases() {
  std::vector<AppCase> out;
  for (const AppInfo& app : MiniParsecApps()) {
    // Pthreads is the reference; the TM mechanisms run on eager STM (the full
    // backend × mechanism sweep is the Figure 2.6-2.8 harness's job), plus one
    // lazy and one sim-htm sample per app to cover backend interaction.
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kTmCondVar}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kWaitPred}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kAwait}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kRetry}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kRetryOrig}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kRestart}});
    out.push_back({app.name, {Backend::kLazyStm, Mechanism::kRetry}});
    out.push_back({app.name, {Backend::kSimHtm, Mechanism::kRetry}});
  }
  return out;
}

// Reference checksums, computed once per (app, threads) with plain pthreads.
std::uint64_t ReferenceChecksum(const std::string& app, int threads) {
  static std::map<std::pair<std::string, int>, std::uint64_t> cache;
  auto key = std::make_pair(app, threads);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  AppConfig cfg;
  cfg.mech = Mechanism::kPthreads;
  cfg.threads = threads;
  AppResult ref = RunMiniParsecApp(app, cfg);
  cache[key] = ref.checksum;
  return ref.checksum;
}

class MiniParsecTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(MiniParsecTest, ChecksumMatchesPthreadsReference) {
  const AppCase& c = GetParam();
  for (int threads : {1, 3}) {
    AppConfig cfg;
    cfg.mech = c.combo.mech;
    cfg.backend = c.combo.backend;
    cfg.threads = threads;
    AppResult got = RunMiniParsecApp(c.app, cfg);
    EXPECT_EQ(got.checksum, ReferenceChecksum(c.app, threads))
        << c.app << " with " << MechanismName(c.combo.mech) << " on "
        << BackendName(c.combo.backend) << " at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, MiniParsecTest, ::testing::ValuesIn(AllAppCases()),
                         [](const ::testing::TestParamInfo<AppCase>& info) {
                           std::string out =
                               info.param.app + "_" +
                               std::string(BackendName(info.param.combo.backend)) +
                               "_" + MechanismName(info.param.combo.mech);
                           for (char& c : out) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return out;
                         });

TEST(MiniParsecMetaTest, SyncPointCountsMatchPaperTable21) {
  // Table 2.1's parenthesized counts: bodytrack 5, dedup 3, facesim 7, ferret 2,
  // fluidanimate 4, raytrace 3, streamcluster 5, x264 1.
  std::map<std::string, std::size_t> expected = {
      {"bodytrack", 5}, {"dedup", 3},         {"facesim", 7},
      {"ferret", 2},    {"fluidanimate", 4},  {"raytrace", 3},
      {"streamcluster", 5}, {"x264", 1},
  };
  ASSERT_EQ(MiniParsecApps().size(), expected.size());
  for (const AppInfo& app : MiniParsecApps()) {
    ASSERT_TRUE(expected.count(app.name) == 1) << app.name;
    EXPECT_EQ(app.sync_points.size(), expected[app.name]) << app.name;
  }
}

TEST(MiniParsecMetaTest, ThreadCountDoesNotChangeReference) {
  // The pthreads reference itself must be thread-count independent.
  for (const AppInfo& app : MiniParsecApps()) {
    std::uint64_t ref1 = ReferenceChecksum(app.name, 1);
    std::uint64_t ref3 = ReferenceChecksum(app.name, 3);
    EXPECT_EQ(ref1, ref3) << app.name;
  }
}

}  // namespace
}  // namespace tcs
