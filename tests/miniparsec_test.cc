// Mini-PARSEC correctness: the full apps × backends matrix. Every one of the
// eight apps runs its end-state invariant check (the TCS_CHECKs inside each
// app: every task/chunk/tile/row processed exactly once) on eager STM, lazy
// STM, and the simulated HTM, at thread counts {1, 4, hw}, and must produce
// the same checksum as the plain-pthreads reference — synchronization must
// never change results, only timing. This is the portability property the
// paper's Table 2.1 porting exercise relies on, and (after the TVar port) the
// serializability check on every app's typed multi-word SharedCell state.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>

#include "src/miniparsec/app_common.h"
#include "tests/matrix.h"

namespace tcs {
namespace {

struct AppCase {
  std::string app;
  MatrixParam combo;
};

// Every app on every backend. Mechanisms: the three Deschedule-based ones run
// everywhere; the baselines (TMCondVar, Retry-Orig, Restart) are covered on
// eager STM (Retry-Orig is STM-only by design, and the full mechanism × figure
// sweep remains the Figure 2.6-2.8 harness's job).
std::vector<AppCase> AllAppCases() {
  std::vector<AppCase> out;
  for (const AppInfo& app : MiniParsecApps()) {
    for (Backend b : {Backend::kEagerStm, Backend::kLazyStm, Backend::kSimHtm}) {
      out.push_back({app.name, {b, Mechanism::kRetry}});
      out.push_back({app.name, {b, Mechanism::kAwait}});
      out.push_back({app.name, {b, Mechanism::kWaitPred}});
    }
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kTmCondVar}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kRetryOrig}});
    out.push_back({app.name, {Backend::kEagerStm, Mechanism::kRestart}});
  }
  return out;
}

// {1, 4, hw}: serial, the paper's four-thread sweet spot, and whatever this
// machine offers (deduplicated, capped so CI runners don't oversubscribe).
std::vector<int> MatrixThreadCounts() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  hw = std::clamp(hw, 2, 8);
  std::vector<int> counts = {1, 4};
  if (counts.end() == std::find(counts.begin(), counts.end(), hw)) {
    counts.push_back(hw);
  }
  return counts;
}

// Reference checksums, computed once per (app, threads) with plain pthreads.
std::uint64_t ReferenceChecksum(const std::string& app, int threads) {
  static std::map<std::pair<std::string, int>, std::uint64_t> cache;
  auto key = std::make_pair(app, threads);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  AppConfig cfg;
  cfg.mech = Mechanism::kPthreads;
  cfg.threads = threads;
  AppResult ref = RunMiniParsecApp(app, cfg);
  cache[key] = ref.checksum;
  return ref.checksum;
}

class MiniParsecTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(MiniParsecTest, ChecksumMatchesPthreadsReference) {
  const AppCase& c = GetParam();
  for (int threads : MatrixThreadCounts()) {
    AppConfig cfg;
    cfg.mech = c.combo.mech;
    cfg.backend = c.combo.backend;
    cfg.threads = threads;
    AppResult got = RunMiniParsecApp(c.app, cfg);
    EXPECT_EQ(got.checksum, ReferenceChecksum(c.app, threads))
        << c.app << " with " << MechanismName(c.combo.mech) << " on "
        << BackendName(c.combo.backend) << " at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, MiniParsecTest, ::testing::ValuesIn(AllAppCases()),
                         [](const ::testing::TestParamInfo<AppCase>& info) {
                           std::string out =
                               info.param.app + "_" +
                               std::string(BackendName(info.param.combo.backend)) +
                               "_" + MechanismName(info.param.combo.mech);
                           for (char& c : out) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return out;
                         });

TEST(MiniParsecMetaTest, SyncPointCountsMatchPaperTable21) {
  // Table 2.1's parenthesized counts: bodytrack 5, dedup 3, facesim 7, ferret 2,
  // fluidanimate 4, raytrace 3, streamcluster 5, x264 1.
  std::map<std::string, std::size_t> expected = {
      {"bodytrack", 5}, {"dedup", 3},         {"facesim", 7},
      {"ferret", 2},    {"fluidanimate", 4},  {"raytrace", 3},
      {"streamcluster", 5}, {"x264", 1},
  };
  ASSERT_EQ(MiniParsecApps().size(), expected.size());
  for (const AppInfo& app : MiniParsecApps()) {
    ASSERT_TRUE(expected.count(app.name) == 1) << app.name;
    EXPECT_EQ(app.sync_points.size(), expected[app.name]) << app.name;
  }
}

TEST(MiniParsecMetaTest, ThreadCountDoesNotChangeReference) {
  // The pthreads reference itself must be thread-count independent.
  for (const AppInfo& app : MiniParsecApps()) {
    std::uint64_t ref1 = ReferenceChecksum(app.name, 1);
    for (int threads : MatrixThreadCounts()) {
      EXPECT_EQ(ref1, ReferenceChecksum(app.name, threads))
          << app.name << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace tcs
