// Observability layer (src/obs/): trace-ring wraparound and drop accounting,
// histogram bucket math and percentile extraction against known inputs,
// abort-cause attribution seeded deterministically per backend, hot-orec
// contention tables, wake-latency sanity, and DumpTrace structure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/obs/abort_attribution.h"
#include "src/obs/latency_histogram.h"
#include "src/obs/trace_ring.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

std::uint64_t Cause(const TmSystem::ObsSnapshot& s, AbortCause c) {
  return s.abort_causes[static_cast<int>(c)];
}

// --- TraceRing ---------------------------------------------------------------

TEST(TraceRingTest, UninitializedRingIsInert) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  EXPECT_FALSE(ring.Record(TraceEvent::kTxBegin, 1));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);
}

TEST(TraceRingTest, RecordsInOrderBelowCapacity) {
  TraceRing ring;
  ring.Init(8);
  ASSERT_TRUE(ring.enabled());
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(ring.Record(TraceEvent::kTxCommit, 100 + i, i));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<std::uint64_t> ts;
  ring.Visit([&](const TraceRecord& r) { ts.push_back(r.ts_ns); });
  ASSERT_EQ(ts.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ts[i], 100 + i);
  }
}

TEST(TraceRingTest, WraparoundDropsOldestAndCounts) {
  TraceRing ring;
  ring.Init(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(ring.Record(TraceEvent::kTxBegin, i));
  }
  // Records 4..6 overwrite 0..2; each overwrite is reported.
  for (std::uint64_t i = 4; i < 7; ++i) {
    EXPECT_TRUE(ring.Record(TraceEvent::kTxBegin, i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  std::vector<std::uint64_t> ts;
  ring.Visit([&](const TraceRecord& r) { ts.push_back(r.ts_ns); });
  ASSERT_EQ(ts.size(), 4u);
  // Oldest-first view: the survivors are 3,4,5,6.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ts[i], 3 + i);
  }
}

TEST(TraceRingTest, ClearEmptiesButKeepsCapacity) {
  TraceRing ring;
  ring.Init(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.Record(TraceEvent::kSleep, i);
  }
  ring.Clear();
  EXPECT_TRUE(ring.enabled());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  int visited = 0;
  ring.Visit([&](const TraceRecord&) { ++visited; });
  EXPECT_EQ(visited, 0);
}

TEST(TraceRingTest, EventNamesCoverAllTypes) {
  for (int i = 0; i < kNumTraceEvents; ++i) {
    const char* name = TraceEventName(static_cast<TraceEvent>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// --- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 9);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 10);
  EXPECT_EQ(LatencyHistogram::BucketOf(~std::uint64_t{0}), 63);
  // A sample always lands strictly below its bucket's upper bound.
  for (std::uint64_t ns : {std::uint64_t{0}, std::uint64_t{1},
                           std::uint64_t{7}, std::uint64_t{4096},
                           std::uint64_t{50'000'000}}) {
    int b = LatencyHistogram::BucketOf(ns);
    EXPECT_LT(ns, LatencyHistogram::BucketHigh(b)) << ns;
  }
}

TEST(LatencyHistogramTest, RecordAndCounts) {
  LatencyHistogram h;
  h.Record(1);
  h.Record(10);
  h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 1021u);
  EXPECT_EQ(h.BucketCount(LatencyHistogram::BucketOf(1)), 1u);
  EXPECT_EQ(h.BucketCount(LatencyHistogram::BucketOf(10)), 2u);
  EXPECT_EQ(h.BucketCount(LatencyHistogram::BucketOf(1000)), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1021.0 / 4.0);
}

TEST(LatencyHistogramTest, PercentilesAgainstKnownInputs) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(50), 0u);  // empty
  // 100 samples of 10ns and one outlier of 1s.
  for (int i = 0; i < 100; ++i) {
    h.Record(10);
  }
  h.Record(1'000'000'000);
  // 10 lives in bucket 3 = [8, 16); p50 and p99 (ranks 51 and 100 of 101)
  // both land there, so the reported value is the bucket's upper bound.
  EXPECT_EQ(h.Percentile(50), 16u);
  EXPECT_EQ(h.Percentile(99), 16u);
  // p99.9 (rank 101) is the outlier: bucket 29 = [2^29, 2^30).
  EXPECT_EQ(h.Percentile(99.9), std::uint64_t{1} << 30);
  EXPECT_EQ(h.Percentile(100), std::uint64_t{1} << 30);
}

TEST(LatencyHistogramTest, ResetAndMerge) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(5);
  b.Record(500);
  b.Record(500);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Sum(), 1005u);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.Sum(), 0u);
  EXPECT_EQ(a.Percentile(99), 0u);
}

// --- AbortCauseTable / HotOrecTable -----------------------------------------

TEST(AbortAttributionTest, CauseTableTallies) {
  AbortCauseTable t;
  t.Bump(AbortCause::kLockCollision);
  t.Bump(AbortCause::kLockCollision);
  t.Bump(AbortCause::kExplicit);
  EXPECT_EQ(t.Get(AbortCause::kLockCollision), 2u);
  EXPECT_EQ(t.Get(AbortCause::kExplicit), 1u);
  EXPECT_EQ(t.Get(AbortCause::kHtmCapacity), 0u);
  t.Reset();
  EXPECT_EQ(t.Get(AbortCause::kLockCollision), 0u);
}

TEST(AbortAttributionTest, CauseNamesCoverAllCauses) {
  for (int i = 0; i < kNumAbortCauses; ++i) {
    const char* name = AbortCauseName(static_cast<AbortCause>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(AbortAttributionTest, HotOrecTableClaimsAndOverflows) {
  HotOrecTable t;
  t.Bump(7);
  t.Bump(7);
  t.Bump(0);  // index 0 must be representable (keys are stored +1)
  int visited = 0;
  std::uint64_t count7 = 0;
  std::uint64_t count0 = 0;
  t.Visit([&](std::size_t idx, std::uint64_t n) {
    ++visited;
    if (idx == 7) {
      count7 = n;
    }
    if (idx == 0) {
      count0 = n;
    }
  });
  EXPECT_EQ(visited, 2);
  EXPECT_EQ(count7, 2u);
  EXPECT_EQ(count0, 1u);
  EXPECT_EQ(t.Overflow(), 0u);
  // Fill every slot with distinct indices; the next new index overflows.
  for (std::size_t i = 100; i < 100 + HotOrecTable::kSlots; ++i) {
    t.Bump(i);
  }
  t.Bump(9999);
  EXPECT_GT(t.Overflow(), 0u);
  t.Reset();
  EXPECT_EQ(t.Overflow(), 0u);
  visited = 0;
  t.Visit([&](std::size_t, std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 0);
}

// --- Seeded abort attribution per backend -----------------------------------

TmConfig ObsConfig(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 8;
  return cfg;
}

class ObsBackendTest : public ::testing::TestWithParam<Backend> {};

// RestartNow is attributed as an explicit abort on every backend.
TEST_P(ObsBackendTest, ExplicitRestartAttributed) {
  Runtime rt(ObsConfig(GetParam()));
  std::uint64_t x = 0;
  bool restarted = false;
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.Store(x, std::uint64_t{1});
    if (!restarted) {
      restarted = true;
      tx.RestartNow();
    }
  });
  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  EXPECT_GE(Cause(s, AbortCause::kExplicit), 1u);
}

// Eager STM: thread A holds x's orec mid-transaction (encounter-time
// locking), so B's write collides and is attributed to the lock holder's
// orec. The handshake makes the collision deterministic: A won't commit
// until B has aborted at least once.
TEST(ObsSeededTest, EagerLockCollisionAttributed) {
  Runtime rt(ObsConfig(Backend::kEagerStm));
  std::uint64_t x = 0;
  std::atomic<bool> a_holding{false};
  std::atomic<bool> b_aborted{false};

  std::thread a([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(x, std::uint64_t{1});  // acquires x's orec in place
      // mo: release — [harness] publish state to other harness threads.
      a_holding.store(true, std::memory_order_release);
      // mo: acquire — [harness] observe worker-published state.
      while (!b_aborted.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  });
  std::thread b([&] {
    int attempts = 0;
    Atomically(rt.sys(), [&](Tx& tx) {
      if (++attempts == 1) {
        // mo: acquire — [harness] observe worker-published state.
        while (!a_holding.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      } else {
        // mo: release — [harness] publish state to other harness threads.
        b_aborted.store(true, std::memory_order_release);  // lets A commit and release the orec
      }
      tx.Store(x, std::uint64_t{2});
    });
  });
  a.join();
  b.join();

  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  EXPECT_GE(Cause(s, AbortCause::kLockCollision), 1u);
  EXPECT_FALSE(s.hot_orecs.empty());
  EXPECT_GE(s.hot_orecs[0].aborts, 1u);
}

// Lazy STM: A reads x and writes y; B commits a new version of x while A is
// parked mid-transaction. A's commit-time revalidation of x then fails and
// is attributed to x's orec.
//
// A waits for B's *write-back* (a raw relaxed peek at x), not for B's
// Atomically to return: B's post-commit quiescence fence blocks until A's
// doomed attempt aborts, so any signal sent after B's commit call returns
// would deadlock against it. The write-back lands before the fence.
TEST(ObsSeededTest, LazyCommitValidationAttributed) {
  Runtime rt(ObsConfig(Backend::kLazyStm));
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::atomic<bool> a_read{false};

  std::thread a([&] {
    int attempts = 0;
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t v = tx.Load(x);
      tx.Store(y, v + 1);
      if (++attempts == 1) {
        // mo: release — [harness] publish state to other harness threads.
        a_read.store(true, std::memory_order_release);
        // mo: relaxed — [harness] spin until the sibling thread's escape
        // write lands; only the value matters, no payload is acquired.
        while (std::atomic_ref<const std::uint64_t>(x).load(
                   std::memory_order_relaxed) != 41) {
          std::this_thread::yield();
        }
      }
    });
  });
  std::thread b([&] {
    // mo: acquire — [harness] observe worker-published state.
    while (!a_read.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, std::uint64_t{41}); });
  });
  a.join();
  b.join();

  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  EXPECT_GE(Cause(s, AbortCause::kCommitValidation) +
                Cause(s, AbortCause::kReadValidation),
            1u);
  EXPECT_FALSE(s.hot_orecs.empty());
  EXPECT_EQ(y, 42u);
}

// Simulated HTM: B writes a line A holds in its hardware write footprint —
// requester loses, attributed as an HTM conflict on that line's orec.
TEST(ObsSeededTest, HtmConflictAttributed) {
  Runtime rt(ObsConfig(Backend::kSimHtm));
  std::uint64_t x = 0;
  std::atomic<bool> a_holding{false};
  std::atomic<bool> b_aborted{false};

  std::thread a([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(x, std::uint64_t{1});  // locks x's line in the sim footprint
      // mo: release — [harness] publish state to other harness threads.
      a_holding.store(true, std::memory_order_release);
      // mo: acquire — [harness] observe worker-published state.
      while (!b_aborted.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  });
  std::thread b([&] {
    int attempts = 0;
    Atomically(rt.sys(), [&](Tx& tx) {
      if (++attempts == 1) {
        // mo: acquire — [harness] observe worker-published state.
        while (!a_holding.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      } else {
        // mo: release — [harness] publish state to other harness threads.
        b_aborted.store(true, std::memory_order_release);
      }
      tx.Store(x, std::uint64_t{2});
    });
  });
  a.join();
  b.join();

  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  EXPECT_GE(Cause(s, AbortCause::kHtmConflict), 1u);
  EXPECT_FALSE(s.hot_orecs.empty());
}

// Simulated HTM: a write set wider than htm_write_capacity_lines overflows
// the hardware buffer; the transaction still commits via the serial software
// fallback, and the overflow is attributed as a capacity abort.
TEST(ObsSeededTest, HtmCapacityAttributed) {
  TmConfig cfg = ObsConfig(Backend::kSimHtm);
  cfg.htm_write_capacity_lines = 4;
  Runtime rt(cfg);

  struct PaddedWord {
    alignas(64) std::uint64_t v = 0;
  };
  std::vector<PaddedWord> cells(16);
  Atomically(rt.sys(), [&](Tx& tx) {
    for (PaddedWord& c : cells) {
      tx.Store(c.v, std::uint64_t{1});
    }
  });
  for (const PaddedWord& c : cells) {
    EXPECT_EQ(c.v, 1u);
  }

  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  EXPECT_GE(Cause(s, AbortCause::kHtmCapacity), 1u);
  EXPECT_GE(s.stats.Get(Counter::kHtmFallbacks), 1u);
}

// --- Wait / wake latency -----------------------------------------------------

// A waiter parks on Retry; the signaler deliberately sleeps ~50ms after
// observing the park before writing. The recorded wait duration must cover
// at least that injected delay, and the wake-latency histogram (post →
// resume) must have captured the hand-off.
TEST_P(ObsBackendTest, WaitAndWakeLatencyRecorded) {
  Runtime rt(ObsConfig(GetParam()));
  std::uint64_t flag = 0;

  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });

  // Only start the injected delay once the waiter has actually gone to
  // sleep — kSleeps is bumped at the sleep site, after the wait-duration
  // clock starts, so from here on every elapsed nanosecond is covered.
  while (rt.AggregateStats().Get(Counter::kSleeps) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  constexpr auto kDelay = std::chrono::milliseconds(50);
  std::this_thread::sleep_for(kDelay);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();

  TmSystem::ObsSnapshot s = rt.sys().SnapshotObs();
  ASSERT_GE(s.wait_duration.Count(), 1u);
  // Percentile returns the bucket's upper bound, which is >= every sample;
  // all samples here are >= the injected 50ms delay.
  EXPECT_GE(s.wait_duration.Percentile(100), 50'000'000u);
  EXPECT_GE(s.wake_latency.Count(), 1u);
  EXPECT_GT(s.wake_latency.Percentile(100), 0u);
  // The deschedule restart is attributed, not lumped into "explicit". The
  // STM backends restart once to turn on retry logging (kRetrySetup); sim-HTM
  // reaches the software deschedule path via an explicit hardware abort
  // instead, which doubles as the logging restart.
  if (GetParam() == Backend::kSimHtm) {
    EXPECT_GE(Cause(s, AbortCause::kHtmExplicit), 1u);
  } else {
    EXPECT_GE(Cause(s, AbortCause::kRetrySetup), 1u);
  }
}

// --- DumpTrace ---------------------------------------------------------------

TEST_P(ObsBackendTest, DumpTraceWritesParsableDocument) {
  TmConfig cfg = ObsConfig(GetParam());
  cfg.tracing = true;
  cfg.trace_ring_capacity = 256;
  Runtime rt(cfg);

  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(x, tx.Load(x) + 1); });
  }

  std::string path = ::testing::TempDir() + "obs_trace_" +
                     std::string(BackendName(GetParam())) + ".json";
  ASSERT_TRUE(rt.sys().DumpTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string doc = buf.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace_drops\""), std::string::npos);
#if TCS_TRACING
  EXPECT_NE(doc.find("\"tracing_compiled\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"tx_commit\""), std::string::npos);
  EXPECT_NE(doc.find("\"tx_begin\""), std::string::npos);
#else
  EXPECT_NE(doc.find("\"tracing_compiled\":false"), std::string::npos);
#endif
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ObsBackendTest,
                         ::testing::Values(Backend::kEagerStm,
                                           Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string n = BackendName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace tcs
