// Cross-component stress: chained buffers, barrier+queue mixes, and
// deschedule-heavy schedules sustained long enough to surface rare interleavings
// (still bounded to stay CI-friendly on one core).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/sync/bounded_buffer.h"
#include "src/sync/phase_barrier.h"
#include "src/sync/work_queue.h"
#include "tests/matrix.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

class StressTest : public ::testing::TestWithParam<Backend> {
 protected:
  StressTest() : rt_(MatrixConfig(GetParam(), 64)) {}
  Runtime rt_;
};

TEST_P(StressTest, ChainedBuffersRelayEverything) {
  // Three tiny buffers in a chain with relay threads; every stage can fill or
  // drain, so sleeps/wakes happen at every hop.
  constexpr std::uint64_t kItems = 3000;
  BoundedBuffer b1(&rt_, Mechanism::kRetry, 2);
  BoundedBuffer b2(&rt_, Mechanism::kAwait, 2);
  BoundedBuffer b3(&rt_, Mechanism::kWaitPred, 2);

  std::thread relay1([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      b2.Produce(b1.Consume());
    }
  });
  std::thread relay2([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      b3.Produce(b2.Consume());
    }
  });
  std::thread source([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      b1.Produce(i);
    }
  });
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    sum += b3.Consume();
  }
  source.join();
  relay1.join();
  relay2.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST_P(StressTest, BarrierAndQueueInterleaved) {
  // Workers alternate between barriered phases and dynamic queue work — the
  // two synchronization styles sharing one waiter registry.
  constexpr int kWorkers = 3;
  constexpr int kRounds = 40;
  PhaseBarrier barrier(&rt_, Mechanism::kRetry, kWorkers);
  WorkQueue queue(&rt_, Mechanism::kAwait, 4);
  std::atomic<std::uint64_t> popped{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        barrier.ArriveAndWait();
        // One task per worker per round, dynamically claimed.
        auto t = queue.Pop();
        if (t.has_value()) {
          // mo: acq_rel — [harness] cross-thread counter/flag RMW.
          popped.fetch_add(1, std::memory_order_acq_rel);
        }
        barrier.ArriveAndWait();
      }
    });
  }
  std::thread feeder([&] {
    for (int r = 0; r < kRounds; ++r) {
      for (int w = 0; w < kWorkers; ++w) {
        queue.Push(static_cast<std::uint64_t>(r * kWorkers + w));
      }
    }
  });
  feeder.join();
  for (auto& w : workers) {
    w.join();
  }
  queue.Close();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(popped.load(std::memory_order_acquire), static_cast<std::uint64_t>(kWorkers) * kRounds);
}

TEST_P(StressTest, RandomSleepWakeChurn) {
  // Waiters randomly pick conditions on a small array; a writer mutates random
  // cells. Progress (no lost wakeups, no deadlock) is the assertion.
  constexpr int kWaiters = 4;
  constexpr int kRoundsPerWaiter = 120;
  constexpr int kCells = 4;
  std::vector<std::uint64_t> cells(kCells, 0);
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};

  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      SplitMix64 rng(static_cast<std::uint64_t>(w) * 31 + 7);
      for (int r = 0; r < kRoundsPerWaiter; ++r) {
        int cell = static_cast<int>(rng.NextBounded(kCells));
        std::uint64_t snapshot = Atomically(
            rt_.sys(), [&](Tx& tx) { return tx.Load(cells[cell]); });
        // Wait for that cell to move past the snapshot.
        Atomically(rt_.sys(), [&](Tx& tx) {
          if (tx.Load(cells[cell]) <= snapshot) {
            if (rng.NextBounded(2) == 0) {
              tx.Retry();
            } else {
              tx.Await(cells[cell]);
            }
          }
        });
      }
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      completed.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  std::thread writer([&] {
    SplitMix64 rng(99);
    // mo: acquire — [harness] observe worker-published state.
    while (completed.load(std::memory_order_acquire) < kWaiters) {
      int cell = static_cast<int>(rng.NextBounded(kCells));
      Atomically(rt_.sys(), [&](Tx& tx) {
        tx.Store(cells[cell], tx.Load(cells[cell]) + 1);
      });
    }
    // mo: release — [harness] publish state to other harness threads.
    stop.store(true, std::memory_order_release);
  });
  for (auto& w : waiters) {
    w.join();
  }
  writer.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(completed.load(std::memory_order_acquire), kWaiters);
}

TEST_P(StressTest, ProducersConsumersWithMixedMechanisms) {
  // The same buffer driven by threads using different mechanisms via the
  // transactional building blocks — all wait styles against one data structure.
  BoundedBuffer buf(&rt_, Mechanism::kRetry, 4);
  constexpr std::uint64_t kItems = 2000;
  std::atomic<std::uint64_t> consumed_sum{0};

  auto consume_with = [&](Mechanism m, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t v = Atomically(rt_.sys(), [&](Tx& tx) -> std::uint64_t {
        if (buf.Empty(tx)) {
          switch (m) {
            case Mechanism::kAwait:
              tx.Await(buf.count_ref());
            case Mechanism::kWaitPred: {
              WaitArgs args;
              args.v[0] = reinterpret_cast<TmWord>(&buf);
              args.n = 1;
              tx.WaitPred(&BoundedBuffer::NotEmptyPred, args);
            }
            default:
              tx.Retry();
          }
        }
        return buf.Get(tx);
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      consumed_sum.fetch_add(v, std::memory_order_acq_rel);
    }
  };

  std::thread c1([&] { consume_with(Mechanism::kRetry, kItems / 2); });
  std::thread c2([&] { consume_with(Mechanism::kAwait, kItems / 4); });
  std::thread c3([&] { consume_with(Mechanism::kWaitPred, kItems / 4); });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    buf.Produce(i);
  }
  c1.join();
  c2.join();
  c3.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(consumed_sum.load(std::memory_order_acquire), kItems * (kItems - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StressTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace tcs
