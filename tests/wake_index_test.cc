// Tests for the sharded wakeup index (src/condsync/wake_index.h): unit-level
// shard bookkeeping (parameterized over shard counts 1..1024 — the shard set
// is a multi-word bitmap, not one word), targeted-wake correctness across all
// three backends at 64 and 1024 shards, no lost wakeups with many disjoint
// waiters, leak-freedom under concurrent register/deregister/timeout churn,
// the empty-waitset global fallback, waitset pruning, and the OrElse
// partial-rollback orec release. ManyWaitersChurn doubles as the TSan run of
// the many-waiters ablation (CI runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"
#include "src/tm/orec_table.h"

// mo-edge: [harness] (minimal: release/acquire) — test/bench harness
// coordination: flags and counters published by worker threads and
// observed by the test body or sibling threads (often additionally
// ordered by thread join). acquire/release is a uniform upper bound
// chosen over per-site minimality; none of these sites needs seq_cst
// totality.

namespace tcs {
namespace {

TmConfig ConfigFor(Backend b, bool targeted = true, int shards = 0) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 96;
  cfg.targeted_wakeup = targeted;
  if (shards > 0) {
    cfg.wake_index_shards = shards;
  }
  return cfg;
}

void AwaitCounter(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

// Cache-line padding keeps each cell in its own orec on every backend,
// including the simulated HTM's line-granular table.
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

std::string BackendTestName(Backend b) {
  switch (b) {
    case Backend::kEagerStm:
      return "EagerStm";
    case Backend::kLazyStm:
      return "LazyStm";
    case Backend::kSimHtm:
      return "SimHtm";
  }
  return "Unknown";
}

// --- unit tests over the bare index ---

TEST(WakeIndexUnitTest, EmptyIndexYieldsNoCandidates) {
  WakeIndex idx(64, 64);
  Orec o;
  const Orec* orecs[] = {&o};
  int visits = 0;
  idx.ForEachCandidate(orecs, 1, [&](int) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, IndexedWaiterIsCandidateOnlyForItsShards) {
  WakeIndex idx(128, 64);
  // Find two orecs in different shards.
  std::vector<Orec> orecs(256);
  const Orec* a = &orecs[0];
  const Orec* b = nullptr;
  for (std::size_t i = 1; i < orecs.size(); ++i) {
    if (idx.ShardOf(&orecs[i]) != idx.ShardOf(a)) {
      b = &orecs[i];
      break;
    }
  }
  ASSERT_NE(b, nullptr) << "256 orecs all hashed to one of 64 shards";

  const Orec* reg[] = {a};
  idx.AddIndexed(7, reg, 1);
  EXPECT_TRUE(idx.HasEntries(7));
  EXPECT_FALSE(idx.IsGlobal(7));
  EXPECT_EQ(idx.ShardSetPopulation(7), 1);
  EXPECT_TRUE(idx.InShardSet(7, idx.ShardOf(a)));

  std::vector<int> seen;
  const Orec* writes_a[] = {a};
  idx.ForEachCandidate(writes_a, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{7}));

  seen.clear();
  const Orec* writes_b[] = {b};
  idx.ForEachCandidate(writes_b, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_TRUE(seen.empty()) << "disjoint shard produced a candidate";

  idx.Remove(7);
  EXPECT_FALSE(idx.HasEntries(7));
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, GlobalWaiterIsAlwaysACandidate) {
  WakeIndex idx(64, 64);
  Orec o;
  idx.AddGlobal(3);
  EXPECT_TRUE(idx.IsGlobal(3));
  const Orec* writes[] = {&o};
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{3}));
  idx.Remove(3);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, DuplicateOrecsRegisterShardOnce) {
  WakeIndex idx(64, 64);
  Orec o;
  const Orec* reg[] = {&o, &o, &o};
  idx.AddIndexed(1, reg, 3);
  EXPECT_EQ(idx.ShardSetPopulation(1), 1);
  EXPECT_EQ(idx.ShardPopulation(idx.ShardOf(&o)), 1);
  idx.Remove(1);
  EXPECT_TRUE(idx.Empty());
}

// Documents the duplicate-emission hazard the WakeWaiters seen-bitmap defends
// against: the global pass masks against the *current* shard words, so a tid
// that deregisters its indexed entry and re-registers globally between the
// shard pass emitting it and the global pass sampling the mask is emitted
// twice. Simulated deterministically by performing the re-registration inside
// the visitor callback — exactly the interleaving a racing waiter produces.
TEST(WakeIndexUnitTest, GlobalPassMayReEmitARacinglyReRegisteredTid) {
  WakeIndex idx(64, 64);
  Orec o;
  const Orec* reg[] = {&o};
  idx.AddIndexed(5, reg, 1);
  std::vector<int> seen;
  const Orec* writes[] = {&o};
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    if (seen.empty()) {
      // Racing waiter: timeout-deregister, then re-park with an arbitrary
      // predicate (global list) before the visitor's global pass runs.
      idx.Remove(tid);
      idx.AddGlobal(tid);
    }
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{5, 5}))
      << "if this stops re-emitting, the index now dedups internally and "
         "WakeWaiters' seen bitmap is redundant";
  idx.Remove(5);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, SingleShardDegradesToGlobalScan) {
  WakeIndex idx(64, 1);
  Orec a;
  Orec b;
  const Orec* reg[] = {&a};
  idx.AddIndexed(2, reg, 1);
  const Orec* writes[] = {&b};  // different orec, same (only) shard
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{2}));
}

// --- shard-count sweep over the bare index (the >64-shard bitmap rework) ---

class WakeIndexShardCountTest : public ::testing::TestWithParam<int> {};

TEST_P(WakeIndexShardCountTest, ShardBookkeepingCoversEveryRegisteredOrec) {
  const int shards = GetParam();
  WakeIndex idx(128, shards);
  EXPECT_EQ(idx.shard_count(), shards);
  EXPECT_EQ(idx.shard_words(), (shards + 63) / 64);
  std::vector<Orec> orecs(64);
  std::vector<const Orec*> reg;
  for (const Orec& o : orecs) {
    reg.push_back(&o);
  }
  idx.AddIndexed(70, reg.data(), reg.size());  // tid in the second mask word
  EXPECT_TRUE(idx.HasEntries(70));
  EXPECT_FALSE(idx.IsGlobal(70));
  int pop = idx.ShardSetPopulation(70);
  EXPECT_GE(pop, 1);
  EXPECT_LE(pop, std::min<int>(static_cast<int>(reg.size()), shards));
  for (const Orec* o : reg) {
    EXPECT_TRUE(idx.InShardSet(70, idx.ShardOf(o)));
    std::vector<int> seen;
    const Orec* writes[] = {o};
    idx.ForEachCandidate(writes, 1, [&](int tid) {
      seen.push_back(tid);
      return true;
    });
    EXPECT_EQ(seen, (std::vector<int>{70}))
        << "a registered orec's shard lost its waiter";
  }
  idx.Remove(70);
  EXPECT_FALSE(idx.HasEntries(70));
  EXPECT_EQ(idx.ShardSetPopulation(70), 0);
  EXPECT_TRUE(idx.Empty());
}

TEST_P(WakeIndexShardCountTest, TargetedLookupsStaySelectiveAndConservative) {
  const int shards = GetParam();
  constexpr int kWaiters = 96;
  WakeIndex idx(128, shards);
  std::vector<Orec> orecs(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    const Orec* reg[] = {&orecs[t]};
    idx.AddIndexed(t, reg, 1);
  }
  long total_candidates = 0;
  for (int t = 0; t < kWaiters; ++t) {
    const Orec* writes[] = {&orecs[t]};
    bool saw_owner = false;
    idx.ForEachCandidate(writes, 1, [&](int tid) {
      ++total_candidates;
      saw_owner |= (tid == t);
      return true;
    });
    EXPECT_TRUE(saw_owner) << "conservativeness violated: waiter " << t
                           << " missing for its own orec";
  }
  if (shards == 1) {
    // One shard degenerates to the global scan: every lookup sees everyone.
    EXPECT_EQ(total_candidates, static_cast<long>(kWaiters) * kWaiters);
  }
  if (shards >= 1024) {
    // At 1024+ shards, aliasing among 96 disjoint waiters is nearly gone:
    // expected candidates per lookup is 1 + 95/shards ≈ 1.09.
    EXPECT_LE(static_cast<double>(total_candidates) / kWaiters, 1.5);
  }
  for (int t = 0; t < kWaiters; ++t) {
    idx.Remove(t);
  }
  EXPECT_TRUE(idx.Empty()) << "leak after bulk removal at " << shards
                           << " shards";
}

TEST_P(WakeIndexShardCountTest, RemoveIsIdempotentAndExact) {
  const int shards = GetParam();
  WakeIndex idx(192, shards);
  std::vector<Orec> orecs(128);
  std::vector<const Orec*> reg;
  for (const Orec& o : orecs) {
    reg.push_back(&o);
  }
  for (int tid : {0, 63, 64, 100}) {  // spans both presence-mask words
    idx.AddIndexed(tid, reg.data(), reg.size());
  }
  idx.AddGlobal(101);
  idx.Remove(64);
  idx.Remove(64);  // second removal is a no-op
  EXPECT_FALSE(idx.HasEntries(64));
  for (int tid : {0, 63, 100}) {
    EXPECT_TRUE(idx.HasEntries(tid)) << "Remove(64) clobbered tid " << tid;
  }
  EXPECT_TRUE(idx.HasEntries(101));
  for (int tid : {0, 63, 100, 101}) {
    idx.Remove(tid);
    idx.Remove(tid);
  }
  EXPECT_TRUE(idx.Empty());
}

TEST_P(WakeIndexShardCountTest, EmptyOrecListFallsBackToGlobal) {
  // The headline registration bug: an empty address list used to store an
  // empty shard set, unreachable by any writer's shard union. It must land on
  // the global fallback list instead.
  WakeIndex idx(64, GetParam());
  idx.AddIndexed(5, nullptr, 0);
  EXPECT_TRUE(idx.HasEntries(5));
  EXPECT_TRUE(idx.IsGlobal(5));
  EXPECT_EQ(idx.ShardSetPopulation(5), 0);
  Orec o;
  const Orec* writes[] = {&o};
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{5}))
      << "empty-waitset waiter is not reachable by a writer";
  idx.Remove(5);
  EXPECT_TRUE(idx.Empty());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, WakeIndexShardCountTest,
                         ::testing::Values(1, 64, 256, 1024),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

// --- behavioral tests through the runtime, at 64 and 1024 shards ---

using BackendShards = std::tuple<Backend, int>;

class WakeIndexBackendTest : public ::testing::TestWithParam<BackendShards> {
 protected:
  Backend backend() const { return std::get<0>(GetParam()); }
  int shards() const { return std::get<1>(GetParam()); }
  TmConfig Config(bool targeted = true) const {
    return ConfigFor(backend(), targeted, shards());
  }
};

// A committing writer's wake work must scale with the waiters its write set
// could satisfy, not with the number of registered waiters: the same workload
// under the global scan pays ~waiters × commits checks, under the index ~1 per
// commit (plus rare shard collisions).
TEST_P(WakeIndexBackendTest, TargetedWakeSkipsIrrelevantWaiters) {
  constexpr int kWaiters = 16;
  constexpr std::uint64_t kCommits = 200;
  std::uint64_t checks[2] = {0, 0};
  for (bool targeted : {false, true}) {
    Runtime rt(Config(targeted));
    auto cells = std::make_unique<PaddedCell[]>(kWaiters);
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&, w] {
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(cells[w].v) == 0) {
            tx.Retry();
          }
        });
      });
    }
    AwaitCounter(rt, Counter::kSleeps, kWaiters);
    rt.ResetStats();
    // The hot producer touches cell 0 with silent stores: every commit is a
    // writer commit, no waiter is ever satisfied, and under targeting only
    // cell 0's shard is ever checked.
    for (std::uint64_t i = 0; i < kCommits; ++i) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[0].v, std::uint64_t{0}); });
    }
    checks[targeted ? 1 : 0] = rt.AggregateStats().Get(Counter::kWakeChecks);
    EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 0u);
    // Release everyone.
    for (int w = 0; w < kWaiters; ++w) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
    }
    for (auto& t : waiters) {
      t.join();
    }
  }
  EXPECT_EQ(checks[0], kWaiters * kCommits) << "global scan checks everyone";
  // ≥2x is the acceptance floor; with 16 disjoint waiters the expected factor
  // is ~16 minus shard collisions (which shrink as the shard count grows).
  EXPECT_LE(checks[1] * 2, checks[0])
      << "targeted wakeup did not reduce wake-check work";
}

// Writing each cell in turn must wake exactly its waiter — shard targeting
// must never lose a wakeup (the test hangs on a lost one; ctest's timeout
// turns that into a failure).
TEST_P(WakeIndexBackendTest, EveryDisjointWaiterWakesOnItsOwnWrite) {
  constexpr int kWaiters = 24;
  Runtime rt(Config());
  auto cells = std::make_unique<PaddedCell[]>(kWaiters);
  std::vector<std::thread> waiters;
  std::atomic<int> woken{0};
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[w].v) == 0) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  AwaitCounter(rt, Counter::kSleeps, kWaiters);
  for (int w = 0; w < kWaiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(cells[w].v, static_cast<std::uint64_t>(w) + 1);
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(woken.load(std::memory_order_acquire), kWaiters);
}

// WaitPred has no address list, so it must take the global-fallback path and
// still be woken by any writer that satisfies it.
bool CellAtLeastPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(cell->word()) >= args.v[1];
}

TEST_P(WakeIndexBackendTest, WaitPredFallsBackToGlobalList) {
  Runtime rt(Config());
  TVar<std::uint64_t> cell(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) < 2) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.v[1] = 2;
        args.n = 2;
        tx.WaitPred(&CellAtLeastPred, args);
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kGlobalDeschedules), 1u);
  EXPECT_EQ(rt.sys().wake_index().GlobalPopulation(), 1);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// Retry/Await waiters must land in the index, not on the fallback list.
TEST_P(WakeIndexBackendTest, RetryWaitersAreIndexed) {
  Runtime rt(Config());
  TVar<std::uint64_t> cell(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kIndexedDeschedules), 1u);
  EXPECT_EQ(rt.sys().wake_index().GlobalPopulation(), 0);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// Concurrent register/deregister/timeout churn: short timed waits racing
// writer commits. Whatever interleaving occurs, every thread terminates and
// neither the registry nor any index shard leaks an entry. This is also the
// TSan run of the many-waiters ablation shape (disjoint cells, hot writer).
TEST_P(WakeIndexBackendTest, ManyWaitersChurnLeavesNoEntries) {
  constexpr int kThreads = 12;
  constexpr int kRoundsPerThread = 40;
  Runtime rt(Config());
  auto cells = std::make_unique<PaddedCell[]>(kThreads);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      // Bump a rotating cell so some waits are satisfied and some time out.
      int target = static_cast<int>(i % kThreads);
      Atomically(rt.sys(), [&](Tx& tx) {
        tx.Store(cells[target].v, tx.Load(cells[target].v) + 1);
      });
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> waiters;
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t last = 0;
      for (int r = 0; r < kRoundsPerThread; ++r) {
        // Race a tiny deadline against the writer: exercises wakeup, timeout,
        // and the timeout-vs-wake semaphore drain.
        auto timeout = std::chrono::microseconds(50 + (r % 7) * 100);
        last = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[t].v);
          if (cur == last) {
            if (tx.RetryFor(timeout) == WaitResult::kTimedOut) {
              return cur;
            }
          }
          return cur;
        });
      }
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty())
      << "an index entry leaked through the churn";
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsByShards, WakeIndexBackendTest,
    ::testing::Combine(::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                         Backend::kSimHtm),
                       ::testing::Values(64, 1024)),
    [](const ::testing::TestParamInfo<BackendShards>& info) {
      return BackendTestName(std::get<0>(info.param)) + "_Shards" +
             std::to_string(std::get<1>(info.param));
    });

// --- empty-waitset registration (the wake-path registration bugfix) ---

class EmptyWaitsetTest : public ::testing::TestWithParam<Backend> {};

// A Retry whose logging pass read nothing transactionally publishes an empty
// waitset. Pre-fix, DescheduleImpl indexed it with an empty shard set — no
// writer shard union ever covered it, so it slept until timeout (or forever).
// It must register on the global fallback list, count as a global deschedule,
// and be woken by the next writer commit.
TEST_P(EmptyWaitsetTest, EmptyWaitsetWaiterIsWokenByAnyWriterCommit) {
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> unrelated(0);
  std::atomic<bool> go{false};
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      // `go` is a plain atomic (an escape read), so the retry waitset stays
      // empty; the generous deadline only bounds the pre-fix hang.
      // mo: acquire — [harness] observe the main thread's release of `go`.
      if (!go.load(std::memory_order_acquire)) {
        if (tx.RetryFor(std::chrono::seconds(5)) == WaitResult::kTimedOut) {
          // mo: release — [harness] publish state to other harness threads.
          timed_out.store(true, std::memory_order_release);
        }
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kGlobalDeschedules), 1u)
      << "empty waitset must register as a global deschedule";
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kIndexedDeschedules), 0u);
  EXPECT_EQ(rt.sys().wake_index().GlobalPopulation(), 1);
  // mo: release — [harness] publish `go` before the wake-triggering commit.
  go.store(true, std::memory_order_release);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(unrelated, std::uint64_t{1}); });
  waiter.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_FALSE(timed_out.load(std::memory_order_acquire))
      << "empty-waitset waiter was not wakeable by a writer commit";
  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kWakeups), 1u);
  // The conservative wake is vacuous — no evidence the waiter was satisfied —
  // and must be tallied separately so precision metrics can subtract it.
  EXPECT_GE(s.Get(Counter::kVacuousWakeups), 1u);
  EXPECT_GE(s.Get(Counter::kWakeups), s.Get(Counter::kVacuousWakeups));
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// With no writer at all, the empty-waitset timed wait must still expire
// cleanly and deregister everything.
TEST_P(EmptyWaitsetTest, EmptyWaitsetTimedWaitTimesOutCleanly) {
  Runtime rt(ConfigFor(GetParam()));
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      // mo: relaxed — [harness] same-thread re-read; the flag is only ever
      // written by this thread below.
      if (!timed_out.load(std::memory_order_relaxed)) {
        if (tx.RetryFor(std::chrono::milliseconds(30)) ==
            WaitResult::kTimedOut) {
          // mo: release — [harness] publish state to other harness threads.
          timed_out.store(true, std::memory_order_release);
        }
      }
    });
  });
  waiter.join();
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_TRUE(timed_out.load(std::memory_order_acquire));
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWaitTimeouts), 1u);
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// The waitset-entries counter must reflect the *published* waitset: a
// pure-predicate wait publishes no address list, so it contributes zero even
// when the descriptor's retry waitset holds stale entries from an earlier
// Retry in the same transaction (the logging flag survives restarts, so the
// re-execution after the Retry wakeup re-logs its reads).
TEST_P(EmptyWaitsetTest, WaitPredDoesNotInflateWaitsetEntriesCounter) {
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> cell(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      std::uint64_t v = tx.Load(cell);
      if (v == 0) {
        tx.Retry();  // first wait: findChanges on {cell} — one real entry
      }
      if (v == 1) {
        // Woken by cell=1, now wait through a predicate. The re-logged retry
        // waitset ({cell}, stale for this wait) must not be counted.
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.v[1] = 2;
        args.n = 2;
        tx.WaitPred(&CellAtLeastPred, args);
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWaitsetEntries), 1u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  AwaitCounter(rt, Counter::kSleeps, 2);
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWaitsetEntries), 1u)
      << "a stale retry waitset was counted for a pure-predicate wait";
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  waiter.join();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EmptyWaitsetTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return BackendTestName(info.param);
                         });

// --- wake_single shard-locality preference ---

TEST(WakeIndexUnitTest, CandidatesVisitIndexedBeforeGlobal) {
  // The candidate order is the wake_single policy: shard-indexed waiters (whose
  // waitsets name addresses the write set covers) come before global-fallback
  // waiters, regardless of tid order.
  WakeIndex idx(64, 64);
  Orec o;
  idx.AddGlobal(2);  // lower tid, but only on the fallback list
  const Orec* reg[] = {&o};
  idx.AddIndexed(9, reg, 1);
  const Orec* writes[] = {&o};
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{9, 2}))
      << "indexed candidate must be offered before the global one";
  idx.Remove(2);
  idx.Remove(9);
  EXPECT_TRUE(idx.Empty());
}

bool AlwaysReadCellPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(cell->word()) != 0;
}

class WakeSingleLocalityTest : public ::testing::TestWithParam<int> {};

TEST_P(WakeSingleLocalityTest, PrefersShardLocalWaiterOverGlobalFallback) {
  // Two waiters, both satisfied by the same write: a WaitPred waiter on the
  // global fallback list (registered first, so it holds the lower tid and
  // would win a tid-ordered scan) and a Retry waiter indexed under the
  // written cell's shard. With wake_single, the committing writer must prefer
  // the shard-local candidate: the indexed waiter wakes, the global one stays
  // asleep until a later commit. Runs at 64 and 1024 shards — the ordering
  // must hold across the multi-word shard-set representation.
  TmConfig cfg = ConfigFor(Backend::kEagerStm, /*targeted=*/true, GetParam());
  cfg.wake_single = true;
  Runtime rt(cfg);
  TVar<std::uint64_t> cell(0);
  std::atomic<bool> pred_woke{false};
  std::atomic<bool> indexed_woke{false};

  std::thread pred_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.n = 1;
        tx.WaitPred(&AlwaysReadCellPred, args);
      }
    });
    // mo: release — [harness] publish state to other harness threads.
    pred_woke.store(true, std::memory_order_release);
  });
  AwaitCounter(rt, Counter::kGlobalDeschedules, 1);
  std::thread indexed_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        tx.Retry();
      }
    });
    // mo: release — [harness] publish state to other harness threads.
    indexed_woke.store(true, std::memory_order_release);
  });
  AwaitCounter(rt, Counter::kSleeps, 2);

  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  while (!indexed_woke.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  indexed_waiter.join();
  // Give a mis-ordered wakeup time to surface before asserting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_TRUE(indexed_woke.load(std::memory_order_acquire));
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_FALSE(pred_woke.load(std::memory_order_acquire))
      << "wake_single woke the global-fallback waiter over the shard-local one";
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 1u);

  // A second commit releases the remaining (global) waiter.
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  pred_waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, WakeSingleLocalityTest,
                         ::testing::Values(64, 1024),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

TEST(WakeSingleEmptyWaitsetTest, VacuousWakeDoesNotStealTheSingleWakeup) {
  // An empty-waitset waiter is woken conservatively on any writer commit, but
  // that vacuous wake is no evidence anyone was satisfied — under wake_single
  // it must not absorb the single-wakeup budget, or a genuinely satisfied
  // waiter later on the global list starves behind a waiter that just
  // re-parks without ever committing.
  TmConfig cfg = ConfigFor(Backend::kEagerStm);
  cfg.wake_single = true;
  Runtime rt(cfg);
  TVar<std::uint64_t> cell(0);
  std::atomic<bool> go{false};
  std::atomic<bool> pred_done{false};
  // The empty-waitset waiter registers first (lower tid → visited first on
  // the global list).
  std::thread empty_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      // mo: acquire — [harness] observe the main thread's release of `go`.
      if (!go.load(std::memory_order_acquire)) {
        (void)tx.RetryFor(std::chrono::seconds(10));
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  std::thread pred_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) < 1) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.v[1] = 1;
        args.n = 2;
        tx.WaitPred(&CellAtLeastPred, args);
      }
    });
    // mo: release — [harness] publish state to other harness threads.
    pred_done.store(true, std::memory_order_release);
  });
  AwaitCounter(rt, Counter::kSleeps, 2);
  // One writer commit both vacuously wakes the empty-waitset waiter and
  // satisfies the predicate; the single-wakeup budget must go to the
  // satisfied waiter.
  // mo: release — [harness] publish `go` before the wake-triggering commit.
  go.store(true, std::memory_order_release);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  bool ok = false;
  // mo: acquire — [harness] observe worker-published state.
  for (int i = 0; i < 2000 && !(ok = pred_done.load(std::memory_order_acquire)); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ok)
      << "the vacuous wake absorbed the single wakeup; the satisfied waiter "
         "was never checked";
  if (!ok) {
    // Unstick the starved waiter so the test tears down.
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  }
  pred_waiter.join();
  empty_waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// --- batched wake transactions (TmConfig::wake_batch_size) ---

// The batched wake path must be invisible to correctness: claims are the same
// transactional asleep 1→0 transitions, posts still follow the (now shared)
// commit. These suites force multi-candidate batches and batch boundaries and
// assert no wakeup is lost and none is delivered twice.

using BackendWakeSingle = std::tuple<Backend, bool>;

class WakeBatchingTest : public ::testing::TestWithParam<BackendWakeSingle> {
 protected:
  Backend backend() const { return std::get<0>(GetParam()); }
  bool wake_single() const { return std::get<1>(GetParam()); }
  TmConfig Config(int batch, bool targeted = true) const {
    TmConfig cfg = ConfigFor(backend(), targeted);
    cfg.wake_batch_size = batch;
    cfg.wake_single = wake_single();
    // These suites exercise the batched wake-transaction path specifically;
    // the CAS fast path would claim most candidates before any batch forms,
    // and adaptive sizing would perturb the exact batch-count accounting.
    cfg.cas_claim_fast_path = false;
    cfg.adaptive_wake_batch = false;
    return cfg;
  }
};

// Churn: waiters register, time out, and re-park while writers commit — with
// batch size 3 the candidate list is cut mid-batch constantly. A shared hub
// cell keeps every commit's candidate set large (all waiters read it), so
// batches really carry multiple claims. After the churn, a deterministic
// untimed phase parks every waiter and releases each with its own write: a
// lost wakeup hangs here (ctest's timeout fails the test), and the index and
// registry must end empty.
TEST_P(WakeBatchingTest, StressChurnMidBatchLosesNothing) {
  constexpr int kThreads = 12;
  constexpr int kRoundsPerThread = 30;
  Runtime rt(Config(/*batch=*/3));
  PaddedCell hub;
  auto cells = std::make_unique<PaddedCell[]>(kThreads);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    // mo: acquire — [harness] observe worker-published state.
    while (!stop.load(std::memory_order_acquire)) {
      if (i % 3 == 0) {
        // Hub bump: every parked waiter is a candidate (multi-claim batches).
        Atomically(rt.sys(),
                   [&](Tx& tx) { tx.Store(hub.v, tx.Load(hub.v) + 1); });
      } else {
        int target = static_cast<int>(i) % kThreads;
        Atomically(rt.sys(), [&](Tx& tx) {
          tx.Store(cells[target].v, tx.Load(cells[target].v) + 1);
        });
      }
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> waiters;
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t last_hub = 0;
      std::uint64_t last_own = 0;
      for (int r = 0; r < kRoundsPerThread; ++r) {
        auto timeout = std::chrono::microseconds(50 + (r % 7) * 100);
        auto pair = Atomically(
            rt.sys(), [&](Tx& tx) -> std::pair<std::uint64_t, std::uint64_t> {
              std::uint64_t h = tx.Load(hub.v);
              std::uint64_t own = tx.Load(cells[t].v);
              if (h == last_hub && own == last_own) {
                if (tx.RetryFor(timeout) == WaitResult::kTimedOut) {
                  return {h, own};
                }
              }
              return {h, own};
            });
        last_hub = pair.first;
        last_own = pair.second;
      }
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: release — [harness] publish state to other harness threads.
  stop.store(true, std::memory_order_release);
  writer.join();

  // Deterministic finale: everyone parks untimed on their own cell, then each
  // cell is written once. A lost (or misdirected) wakeup hangs the join.
  waiters.clear();
  std::atomic<int> woken{0};
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t seen = cells[t].v.UnsafeRead();
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[t].v) == seen) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  while (rt.sys().waiters().RegisteredCount() < kThreads) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (int t = 0; t < kThreads; ++t) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(cells[t].v, tx.Load(cells[t].v) + 1);
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  // mo: acquire — [harness] observe worker-published state.
  EXPECT_EQ(woken.load(std::memory_order_acquire), kThreads);
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty())
      << "an index entry leaked through the batched churn";
  TxStats s = rt.AggregateStats();
  EXPECT_GE(s.Get(Counter::kWakeBatches), 1u);
  EXPECT_EQ(s.Get(Counter::kWakeChecksBatched), s.Get(Counter::kWakeChecks))
      << "every wake check now runs inside a batched wake transaction";
}

// No double-posts. K waiters park on ONE cell; a single writer commit
// satisfies all of them, so the claims span several batches (batch size 4,
// K = 10). Each waiter then re-parks waiting for the next value. If any claim
// had been posted twice (e.g. a batch abort replaying its posts), the stale
// token would satisfy that waiter's second sleep instantly, it would re-check
// its still-unsatisfied predicate, and kFalseWakeups would tick. With
// wake_single the budget stops at one waiter per commit instead, so the
// writer keeps committing until everyone advanced — double-posts would still
// surface as false wakeups.
TEST_P(WakeBatchingTest, MultiClaimBatchesNeverDoublePost) {
  constexpr int kWaiters = 10;
  Runtime rt(Config(/*batch=*/4));
  PaddedCell cell;
  std::atomic<int> round_done{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      for (std::uint64_t target = 1; target <= 2; ++target) {
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(cell.v) < target) {
            tx.Retry();
          }
        });
        // mo: acq_rel — [harness] cross-thread counter/flag RMW.
        round_done.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  AwaitCounter(rt, Counter::kSleeps, kWaiters);
  // Round 1: one value change satisfies all K. Under wake_single only one
  // waiter wakes per commit, so repeat silent-value commits until all K moved
  // on (each re-commit re-offers the remaining sleepers).
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  for (int spins = 0; round_done.load(std::memory_order_acquire) < kWaiters && spins < 20000; ++spins) {
    if (wake_single()) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // mo: acquire — [harness] observe worker-published state.
  ASSERT_EQ(round_done.load(std::memory_order_acquire), kWaiters) << "round-1 wakeup lost";
  // Everyone re-parks for value 2; a stale double-post token would wake a
  // waiter instantly into a false wakeup here.
  AwaitCounter(rt, Counter::kSleeps, 2 * kWaiters);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kFalseWakeups), 0u)
      << "a batched claim was posted more than once";
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{2}); });
  // mo: acquire — [harness] observe worker-published state.
  for (int spins = 0; round_done.load(std::memory_order_acquire) < 2 * kWaiters && spins < 20000;
       ++spins) {
    if (wake_single()) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{2}); });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // mo: acquire — [harness] observe worker-published state.
  ASSERT_EQ(round_done.load(std::memory_order_acquire), 2 * kWaiters) << "round-2 wakeup lost";
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kFalseWakeups), 0u);
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsByWakeSingle, WakeBatchingTest,
    ::testing::Combine(::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                         Backend::kSimHtm),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<BackendWakeSingle>& info) {
      return BackendTestName(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_WakeSingle" : "_WakeAll");
    });

// Batching's accounting: with targeting off, a commit's candidate set is all
// N parked waiters, so batch size B must cut the internal wake transactions
// to ceil(N/B) per commit while the check count stays N per commit.
TEST(WakeBatchCountersTest, BatchesAreCeilCandidatesOverBatchSize) {
  constexpr int kWaiters = 16;
  constexpr std::uint64_t kCommits = 50;
  for (int batch : {1, 8}) {
    TmConfig cfg = ConfigFor(Backend::kEagerStm, /*targeted=*/false);
    cfg.wake_batch_size = batch;
    // Exact ceil(N/B) accounting only holds on the pure batched path: the CAS
    // fast path resolves unchanged-predicate candidates without any wake
    // transaction, and adaptive sizing may shrink B under abort pressure.
    cfg.cas_claim_fast_path = false;
    cfg.adaptive_wake_batch = false;
    Runtime rt(cfg);
    auto cells = std::make_unique<PaddedCell[]>(kWaiters);
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&, w] {
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(cells[w].v) == 0) {
            tx.Retry();
          }
        });
      });
    }
    AwaitCounter(rt, Counter::kSleeps, kWaiters);
    rt.ResetStats();
    for (std::uint64_t i = 0; i < kCommits; ++i) {
      // Silent stores: writer commits that satisfy nobody, so all 16 stay
      // parked and every commit's candidate set is exactly the 16 waiters.
      Atomically(rt.sys(),
                 [&](Tx& tx) { tx.Store(cells[0].v, std::uint64_t{0}); });
    }
    TxStats s = rt.AggregateStats();
    const std::uint64_t expected_batches =
        kCommits * ((kWaiters + batch - 1) / batch);
    EXPECT_EQ(s.Get(Counter::kWakeChecks), kCommits * kWaiters);
    EXPECT_EQ(s.Get(Counter::kWakeChecksBatched), kCommits * kWaiters);
    EXPECT_EQ(s.Get(Counter::kWakeBatches), expected_batches)
        << "batch=" << batch;
    for (int w = 0; w < kWaiters; ++w) {
      Atomically(rt.sys(),
                 [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
    }
    for (auto& t : waiters) {
      t.join();
    }
  }
}

// wake_single must stop at the first non-vacuous satisfied waiter *across*
// batch boundaries too: with 10 satisfied candidates and batch size 2, one
// commit may post exactly one wakeup.
TEST(WakeBatchCountersTest, WakeSingleStopsAcrossBatches) {
  constexpr int kWaiters = 10;
  TmConfig cfg = ConfigFor(Backend::kEagerStm);
  cfg.wake_single = true;
  cfg.wake_batch_size = 2;
  // Cross-batch stop behavior is only observable on the batched path.
  cfg.cas_claim_fast_path = false;
  Runtime rt(cfg);
  PaddedCell cell;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cell.v) == 0) {
          tx.Retry();
        }
      });
      // mo: acq_rel — [harness] cross-thread counter/flag RMW.
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  AwaitCounter(rt, Counter::kSleeps, kWaiters);
  rt.ResetStats();
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
  // mo: acquire — [harness] observe worker-published state.
  while (woken.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 1u)
      << "wake_single leaked extra wakeups across batch boundaries";
  // The woken waiter committed; its own post-commit wake pass (and ours)
  // releases the rest eventually — drive it with further commits.
  // mo: acquire — [harness] observe worker-published state.
  while (woken.load(std::memory_order_acquire) < kWaiters) {
    Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell.v, std::uint64_t{1}); });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// --- waitset pruning ---

class WaitsetPruneTest : public ::testing::TestWithParam<Backend> {};

TEST_P(WaitsetPruneTest, OrElseUnionWaitsetDropsDuplicates) {
  // Both branches read `shared`, so the union waitset holds two entries for
  // it; pruning must publish (and index) it once — and the wakeup must still
  // arrive through the deduplicated entry.
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> shared(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.OrElse(
          [&](Tx& t) {
            if (t.Load(shared) == 0) {
              t.Retry();
            }
          },
          [&](Tx& t) {
            if (t.Load(shared) == 0) {
              t.Retry();
            }
          });
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWaitsetPruned), 1u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(shared, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWakeups), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WaitsetPruneTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return BackendTestName(info.param);
                         });

// --- OrElse partial-rollback orec release ---

TEST(OrElseOrecReleaseTest, EagerReleasesBlindWrittenOrecs) {
  Runtime rt(ConfigFor(Backend::kEagerStm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> other(0);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});  // blind write, then abandon
          t.Retry();
        },
        [&](Tx& t) {
          // The released orec must be usable by this very transaction again:
          // read (the timestamp extension keeps our snapshot valid past the
          // release bump) and re-write.
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(cell, std::uint64_t{6});
          t.Store(other, std::uint64_t{1});
        });
  });
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 6u);
  EXPECT_EQ(other.UnsafeRead(), 1u);
}

TEST(OrElseOrecReleaseTest, EagerReleaseUnblocksConcurrentWriter) {
  // While the surviving branch runs, another thread must be able to commit to
  // the location the abandoned branch blind-wrote. Without the release it
  // would spin on the still-held orec until the OrElse transaction finished.
  Runtime rt(ConfigFor(Backend::kEagerStm));
  TVar<std::uint64_t> contested(0);
  TVar<std::uint64_t> gate(0);
  std::atomic<bool> sidecar_done{false};
  std::thread sidecar;
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(contested, std::uint64_t{99});
          t.Retry();
        },
        [&](Tx& t) {
          if (!sidecar.joinable()) {
            // Escape action (runs at most a handful of times on restart):
            // start a writer targeting the released orec and wait for it.
            sidecar = std::thread([&] {
              // mo: acquire — [harness] observe worker-published state.
              for (int i = 0; i < 10000 && !sidecar_done.load(std::memory_order_acquire); ++i) {
                bool won = Atomically(rt.sys(), [&](Tx& tx2) -> bool {
                  if (tx2.Load(contested) == 0) {
                    tx2.Store(contested, std::uint64_t{1});
                    return true;
                  }
                  return false;
                });
                if (won) {
                  break;
                }
              }
              // mo: release — [harness] publish state to other harness threads.
              sidecar_done.store(true, std::memory_order_release);
            });
          }
          // Wait outside the contested orec until the sidecar committed.
          // mo: acquire — [harness] observe worker-published state.
          if (t.Load(gate) == 0 && !sidecar_done.load(std::memory_order_acquire)) {
            if (t.RetryFor(std::chrono::milliseconds(2)) ==
                WaitResult::kTimedOut) {
              t.RestartNow();
            }
          }
        });
  });
  sidecar.join();
  EXPECT_EQ(contested.UnsafeRead(), 1u)
      << "sidecar writer never got through the released orec";
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
}

TEST(OrElseOrecReleaseTest, SimHtmReleasesBranchLines) {
  Runtime rt(ConfigFor(Backend::kSimHtm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> other(0);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});
          t.Retry();
        },
        [&](Tx& t) {
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(other, std::uint64_t{1});
        });
  });
  // Hardware-mode writes are buffered, so the branch's lines release at their
  // exact pre-acquisition version.
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 5u);
  EXPECT_EQ(other.UnsafeRead(), 1u);
}

}  // namespace
}  // namespace tcs
