// Tests for the sharded wakeup index (src/condsync/wake_index.h): unit-level
// shard bookkeeping, targeted-wake correctness across all three backends, no
// lost wakeups with many disjoint waiters, leak-freedom under concurrent
// register/deregister/timeout churn, waitset pruning, and the OrElse
// partial-rollback orec release. ManyWaitersChurn doubles as the TSan run of
// the many-waiters ablation (CI runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"
#include "src/tm/orec_table.h"

namespace tcs {
namespace {

TmConfig ConfigFor(Backend b, bool targeted = true) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 12;
  cfg.max_threads = 96;
  cfg.targeted_wakeup = targeted;
  return cfg;
}

void AwaitCounter(Runtime& rt, Counter c, std::uint64_t target) {
  for (int i = 0; i < 100000; ++i) {
    if (rt.AggregateStats().Get(c) >= target) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "counter " << CounterName(c) << " never reached " << target;
}

// Cache-line padding keeps each cell in its own orec on every backend,
// including the simulated HTM's line-granular table.
struct PaddedCell {
  alignas(64) TVar<std::uint64_t> v;
};

// --- unit tests over the bare index ---

TEST(WakeIndexUnitTest, EmptyIndexYieldsNoCandidates) {
  WakeIndex idx(64, 64);
  Orec o;
  const Orec* orecs[] = {&o};
  int visits = 0;
  idx.ForEachCandidate(orecs, 1, [&](int) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, IndexedWaiterIsCandidateOnlyForItsShards) {
  WakeIndex idx(128, 64);
  // Find two orecs in different shards.
  std::vector<Orec> orecs(256);
  const Orec* a = &orecs[0];
  const Orec* b = nullptr;
  for (std::size_t i = 1; i < orecs.size(); ++i) {
    if (idx.ShardOf(&orecs[i]) != idx.ShardOf(a)) {
      b = &orecs[i];
      break;
    }
  }
  ASSERT_NE(b, nullptr) << "256 orecs all hashed to one of 64 shards";

  const Orec* reg[] = {a};
  idx.AddIndexed(7, reg, 1);
  EXPECT_TRUE(idx.HasEntries(7));
  EXPECT_FALSE(idx.IsGlobal(7));
  EXPECT_EQ(__builtin_popcountll(idx.ShardSetOf(7)), 1);

  std::vector<int> seen;
  const Orec* writes_a[] = {a};
  idx.ForEachCandidate(writes_a, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{7}));

  seen.clear();
  const Orec* writes_b[] = {b};
  idx.ForEachCandidate(writes_b, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_TRUE(seen.empty()) << "disjoint shard produced a candidate";

  idx.Remove(7);
  EXPECT_FALSE(idx.HasEntries(7));
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, GlobalWaiterIsAlwaysACandidate) {
  WakeIndex idx(64, 64);
  Orec o;
  idx.AddGlobal(3);
  EXPECT_TRUE(idx.IsGlobal(3));
  const Orec* writes[] = {&o};
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{3}));
  idx.Remove(3);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, DuplicateOrecsRegisterShardOnce) {
  WakeIndex idx(64, 64);
  Orec o;
  const Orec* reg[] = {&o, &o, &o};
  idx.AddIndexed(1, reg, 3);
  EXPECT_EQ(__builtin_popcountll(idx.ShardSetOf(1)), 1);
  EXPECT_EQ(idx.ShardPopulation(idx.ShardOf(&o)), 1);
  idx.Remove(1);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, RemoveIsIdempotentAndExact) {
  WakeIndex idx(128, 16);
  std::vector<Orec> orecs(32);
  std::vector<const Orec*> reg;
  for (const Orec& o : orecs) {
    reg.push_back(&o);
  }
  idx.AddIndexed(64, reg.data(), reg.size());
  idx.AddGlobal(65);
  idx.Remove(64);
  idx.Remove(64);  // second removal is a no-op
  EXPECT_FALSE(idx.HasEntries(64));
  EXPECT_TRUE(idx.HasEntries(65));
  idx.Remove(65);
  EXPECT_TRUE(idx.Empty());
}

TEST(WakeIndexUnitTest, SingleShardDegradesToGlobalScan) {
  WakeIndex idx(64, 1);
  Orec a;
  Orec b;
  const Orec* reg[] = {&a};
  idx.AddIndexed(2, reg, 1);
  const Orec* writes[] = {&b};  // different orec, same (only) shard
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{2}));
}

// --- behavioral tests through the runtime ---

class WakeIndexBackendTest : public ::testing::TestWithParam<Backend> {};

// A committing writer's wake work must scale with the waiters its write set
// could satisfy, not with the number of registered waiters: the same workload
// under the global scan pays ~waiters × commits checks, under the index ~1 per
// commit (plus rare shard collisions).
TEST_P(WakeIndexBackendTest, TargetedWakeSkipsIrrelevantWaiters) {
  constexpr int kWaiters = 16;
  constexpr std::uint64_t kCommits = 200;
  std::uint64_t checks[2] = {0, 0};
  for (bool targeted : {false, true}) {
    Runtime rt(ConfigFor(GetParam(), targeted));
    auto cells = std::make_unique<PaddedCell[]>(kWaiters);
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&, w] {
        Atomically(rt.sys(), [&](Tx& tx) {
          if (tx.Load(cells[w].v) == 0) {
            tx.Retry();
          }
        });
      });
    }
    AwaitCounter(rt, Counter::kSleeps, kWaiters);
    rt.ResetStats();
    // The hot producer touches cell 0 with silent stores: every commit is a
    // writer commit, no waiter is ever satisfied, and under targeting only
    // cell 0's shard is ever checked.
    for (std::uint64_t i = 0; i < kCommits; ++i) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[0].v, std::uint64_t{0}); });
    }
    checks[targeted ? 1 : 0] = rt.AggregateStats().Get(Counter::kWakeChecks);
    EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 0u);
    // Release everyone.
    for (int w = 0; w < kWaiters; ++w) {
      Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cells[w].v, std::uint64_t{1}); });
    }
    for (auto& t : waiters) {
      t.join();
    }
  }
  EXPECT_EQ(checks[0], kWaiters * kCommits) << "global scan checks everyone";
  // ≥2x is the acceptance floor; with 16 disjoint waiters the expected factor
  // is ~16 minus shard collisions.
  EXPECT_LE(checks[1] * 2, checks[0])
      << "targeted wakeup did not reduce wake-check work";
}

// Writing each cell in turn must wake exactly its waiter — shard targeting
// must never lose a wakeup (the test hangs on a lost one; ctest's timeout
// turns that into a failure).
TEST_P(WakeIndexBackendTest, EveryDisjointWaiterWakesOnItsOwnWrite) {
  constexpr int kWaiters = 24;
  Runtime rt(ConfigFor(GetParam()));
  auto cells = std::make_unique<PaddedCell[]>(kWaiters);
  std::vector<std::thread> waiters;
  std::atomic<int> woken{0};
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&, w] {
      Atomically(rt.sys(), [&](Tx& tx) {
        if (tx.Load(cells[w].v) == 0) {
          tx.Retry();
        }
      });
      woken.fetch_add(1);
    });
  }
  AwaitCounter(rt, Counter::kSleeps, kWaiters);
  for (int w = 0; w < kWaiters; ++w) {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.Store(cells[w].v, static_cast<std::uint64_t>(w) + 1);
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(woken.load(), kWaiters);
}

// WaitPred has no address list, so it must take the global-fallback path and
// still be woken by any writer that satisfies it.
bool CellAtLeastPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(cell->word()) >= args.v[1];
}

TEST_P(WakeIndexBackendTest, WaitPredFallsBackToGlobalList) {
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> cell(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) < 2) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.v[1] = 2;
        args.n = 2;
        tx.WaitPred(&CellAtLeastPred, args);
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kGlobalDeschedules), 1u);
  EXPECT_EQ(rt.sys().wake_index().GlobalPopulation(), 1);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// Retry/Await waiters must land in the index, not on the fallback list.
TEST_P(WakeIndexBackendTest, RetryWaitersAreIndexed) {
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> cell(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        tx.Retry();
      }
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kIndexedDeschedules), 1u);
  EXPECT_EQ(rt.sys().wake_index().GlobalPopulation(), 0);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// Concurrent register/deregister/timeout churn: short timed waits racing
// writer commits. Whatever interleaving occurs, every thread terminates and
// neither the registry nor any index shard leaks an entry. This is also the
// TSan run of the many-waiters ablation shape (disjoint cells, hot writer).
TEST_P(WakeIndexBackendTest, ManyWaitersChurnLeavesNoEntries) {
  constexpr int kThreads = 12;
  constexpr int kRoundsPerThread = 40;
  Runtime rt(ConfigFor(GetParam()));
  auto cells = std::make_unique<PaddedCell[]>(kThreads);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load()) {
      // Bump a rotating cell so some waits are satisfied and some time out.
      int target = static_cast<int>(i % kThreads);
      Atomically(rt.sys(), [&](Tx& tx) {
        tx.Store(cells[target].v, tx.Load(cells[target].v) + 1);
      });
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> waiters;
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&, t] {
      std::uint64_t last = 0;
      for (int r = 0; r < kRoundsPerThread; ++r) {
        // Race a tiny deadline against the writer: exercises wakeup, timeout,
        // and the timeout-vs-wake semaphore drain.
        auto timeout = std::chrono::microseconds(50 + (r % 7) * 100);
        last = Atomically(rt.sys(), [&](Tx& tx) -> std::uint64_t {
          std::uint64_t cur = tx.Load(cells[t].v);
          if (cur == last) {
            if (tx.RetryFor(timeout) == WaitResult::kTimedOut) {
              return cur;
            }
          }
          return cur;
        });
      }
    });
  }
  for (auto& t : waiters) {
    t.join();
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(rt.sys().waiters().RegisteredCount(), 0);
  EXPECT_TRUE(rt.sys().wake_index().Empty())
      << "an index entry leaked through the churn";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WakeIndexBackendTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// --- wake_single shard-locality preference ---

TEST(WakeIndexUnitTest, CandidatesVisitIndexedBeforeGlobal) {
  // The candidate order is the wake_single policy: shard-indexed waiters (whose
  // waitsets name addresses the write set covers) come before global-fallback
  // waiters, regardless of tid order.
  WakeIndex idx(64, 64);
  Orec o;
  idx.AddGlobal(2);  // lower tid, but only on the fallback list
  const Orec* reg[] = {&o};
  idx.AddIndexed(9, reg, 1);
  const Orec* writes[] = {&o};
  std::vector<int> seen;
  idx.ForEachCandidate(writes, 1, [&](int tid) {
    seen.push_back(tid);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{9, 2}))
      << "indexed candidate must be offered before the global one";
  idx.Remove(2);
  idx.Remove(9);
  EXPECT_TRUE(idx.Empty());
}

bool AlwaysReadCellPred(TmSystem& sys, const WaitArgs& args) {
  const auto* cell = reinterpret_cast<const TVar<std::uint64_t>*>(args.v[0]);
  return sys.Read(cell->word()) != 0;
}

TEST(WakeSingleLocalityTest, PrefersShardLocalWaiterOverGlobalFallback) {
  // Two waiters, both satisfied by the same write: a WaitPred waiter on the
  // global fallback list (registered first, so it holds the lower tid and
  // would win a tid-ordered scan) and a Retry waiter indexed under the
  // written cell's shard. With wake_single, the committing writer must prefer
  // the shard-local candidate: the indexed waiter wakes, the global one stays
  // asleep until a later commit.
  TmConfig cfg = ConfigFor(Backend::kEagerStm);
  cfg.wake_single = true;
  Runtime rt(cfg);
  TVar<std::uint64_t> cell(0);
  std::atomic<bool> pred_woke{false};
  std::atomic<bool> indexed_woke{false};

  std::thread pred_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(&cell);
        args.n = 1;
        tx.WaitPred(&AlwaysReadCellPred, args);
      }
    });
    pred_woke.store(true);
  });
  AwaitCounter(rt, Counter::kGlobalDeschedules, 1);
  std::thread indexed_waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(cell) == 0) {
        tx.Retry();
      }
    });
    indexed_woke.store(true);
  });
  AwaitCounter(rt, Counter::kSleeps, 2);

  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{1}); });
  while (!indexed_woke.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  indexed_waiter.join();
  // Give a mis-ordered wakeup time to surface before asserting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(indexed_woke.load());
  EXPECT_FALSE(pred_woke.load())
      << "wake_single woke the global-fallback waiter over the shard-local one";
  EXPECT_EQ(rt.AggregateStats().Get(Counter::kWakeups), 1u);

  // A second commit releases the remaining (global) waiter.
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(cell, std::uint64_t{2}); });
  pred_waiter.join();
  EXPECT_TRUE(rt.sys().wake_index().Empty());
}

// --- waitset pruning ---

class WaitsetPruneTest : public ::testing::TestWithParam<Backend> {};

TEST_P(WaitsetPruneTest, OrElseUnionWaitsetDropsDuplicates) {
  // Both branches read `shared`, so the union waitset holds two entries for
  // it; pruning must publish (and index) it once — and the wakeup must still
  // arrive through the deduplicated entry.
  Runtime rt(ConfigFor(GetParam()));
  TVar<std::uint64_t> shared(0);
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      tx.OrElse(
          [&](Tx& t) {
            if (t.Load(shared) == 0) {
              t.Retry();
            }
          },
          [&](Tx& t) {
            if (t.Load(shared) == 0) {
              t.Retry();
            }
          });
    });
  });
  AwaitCounter(rt, Counter::kSleeps, 1);
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWaitsetPruned), 1u);
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(shared, std::uint64_t{1}); });
  waiter.join();
  EXPECT_GE(rt.AggregateStats().Get(Counter::kWakeups), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WaitsetPruneTest,
                         ::testing::Values(Backend::kEagerStm, Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "EagerStm";
                             case Backend::kLazyStm:
                               return "LazyStm";
                             case Backend::kSimHtm:
                               return "SimHtm";
                           }
                           return "Unknown";
                         });

// --- OrElse partial-rollback orec release ---

TEST(OrElseOrecReleaseTest, EagerReleasesBlindWrittenOrecs) {
  Runtime rt(ConfigFor(Backend::kEagerStm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> other(0);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});  // blind write, then abandon
          t.Retry();
        },
        [&](Tx& t) {
          // The released orec must be usable by this very transaction again:
          // read (the timestamp extension keeps our snapshot valid past the
          // release bump) and re-write.
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(cell, std::uint64_t{6});
          t.Store(other, std::uint64_t{1});
        });
  });
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 6u);
  EXPECT_EQ(other.UnsafeRead(), 1u);
}

TEST(OrElseOrecReleaseTest, EagerReleaseUnblocksConcurrentWriter) {
  // While the surviving branch runs, another thread must be able to commit to
  // the location the abandoned branch blind-wrote. Without the release it
  // would spin on the still-held orec until the OrElse transaction finished.
  Runtime rt(ConfigFor(Backend::kEagerStm));
  TVar<std::uint64_t> contested(0);
  TVar<std::uint64_t> gate(0);
  std::atomic<bool> sidecar_done{false};
  std::thread sidecar;
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(contested, std::uint64_t{99});
          t.Retry();
        },
        [&](Tx& t) {
          if (!sidecar.joinable()) {
            // Escape action (runs at most a handful of times on restart):
            // start a writer targeting the released orec and wait for it.
            sidecar = std::thread([&] {
              for (int i = 0; i < 10000 && !sidecar_done.load(); ++i) {
                bool won = Atomically(rt.sys(), [&](Tx& tx2) -> bool {
                  if (tx2.Load(contested) == 0) {
                    tx2.Store(contested, std::uint64_t{1});
                    return true;
                  }
                  return false;
                });
                if (won) {
                  break;
                }
              }
              sidecar_done.store(true);
            });
          }
          // Wait outside the contested orec until the sidecar committed.
          if (t.Load(gate) == 0 && !sidecar_done.load()) {
            if (t.RetryFor(std::chrono::milliseconds(2)) ==
                WaitResult::kTimedOut) {
              t.RestartNow();
            }
          }
        });
  });
  sidecar.join();
  EXPECT_EQ(contested.UnsafeRead(), 1u)
      << "sidecar writer never got through the released orec";
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
}

TEST(OrElseOrecReleaseTest, SimHtmReleasesBranchLines) {
  Runtime rt(ConfigFor(Backend::kSimHtm));
  TVar<std::uint64_t> cell(5);
  TVar<std::uint64_t> other(0);
  Atomically(rt.sys(), [&](Tx& tx) {
    tx.OrElse(
        [&](Tx& t) {
          t.Store(cell, std::uint64_t{77});
          t.Retry();
        },
        [&](Tx& t) {
          EXPECT_EQ(t.Load(cell), 5u);
          t.Store(other, std::uint64_t{1});
        });
  });
  // Hardware-mode writes are buffered, so the branch's lines release at their
  // exact pre-acquisition version.
  EXPECT_GE(rt.AggregateStats().Get(Counter::kOrElseOrecReleases), 1u);
  EXPECT_EQ(cell.UnsafeRead(), 5u);
  EXPECT_EQ(other.UnsafeRead(), 1u);
}

}  // namespace
}  // namespace tcs
