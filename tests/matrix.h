// Shared helpers for tests parameterized over (backend × mechanism).
#ifndef TCS_TESTS_MATRIX_H_
#define TCS_TESTS_MATRIX_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/mechanism.h"
#include "src/tm/tm_config.h"

namespace tcs {

struct MatrixParam {
  Backend backend;
  Mechanism mech;
};

inline std::string MatrixParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string out = std::string(BackendName(info.param.backend)) + "_" +
                    MechanismName(info.param.mech);
  for (char& c : out) {
    if (c == '-') {
      c = '_';
    }
  }
  return out;
}

// Every valid (backend, mechanism) combination; Retry-Orig is STM-only (§2.1).
inline std::vector<MatrixParam> AllMatrixCombos() {
  std::vector<MatrixParam> out;
  for (Backend b : {Backend::kEagerStm, Backend::kLazyStm, Backend::kSimHtm}) {
    for (Mechanism m : kAllMechanisms) {
      if (m == Mechanism::kRetryOrig && b == Backend::kSimHtm) {
        continue;
      }
      out.push_back({b, m});
    }
  }
  return out;
}

inline TmConfig MatrixConfig(Backend b, int max_threads = 64) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 14;
  cfg.max_threads = max_threads;
  return cfg;
}

}  // namespace tcs

#endif  // TCS_TESTS_MATRIX_H_
