// Seeded-violation tests for the dynamic TM protocol checker: drive the hook
// API directly with sequences the real runtime must never produce and assert
// the corresponding protocol fires (and clean sequences stay silent). The
// checker class is always compiled; the TCS_PROTOCOL_CHECKS-gated section at
// the bottom additionally runs real transactions on every backend and asserts
// the instrumented runtime reports zero violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/transaction.h"
#include "src/core/tvar.h"
#include "src/tm/orec_table.h"
#include "src/tm/protocol_checker.h"

namespace tcs {
namespace {

// Collects violations instead of aborting, so seeded violations are assertable.
struct Recorder {
  std::vector<std::string> protocols;

  static void Handler(void* ctx, const char* protocol, const char* detail) {
    (void)detail;
    static_cast<Recorder*>(ctx)->protocols.emplace_back(protocol);
  }

  int Count(const std::string& protocol) const {
    return static_cast<int>(
        std::count(protocols.begin(), protocols.end(), protocol));
  }
};

class ProtocolCheckerTest : public ::testing::Test {
 protected:
  static constexpr int kMaxThreads = 8;

  ProtocolCheckerTest() : orecs_(4, 3), checker_(orecs_, kMaxThreads) {
    checker_.SetFailureHandler(&Recorder::Handler, &rec_);
  }

  Orec* orec() { return &orecs_.For(reinterpret_cast<void*>(0x1000)); }

  OrecTable orecs_;
  Recorder rec_;
  ProtocolChecker checker_;
};

// --- orec lock/release protocol ---

TEST_F(ProtocolCheckerTest, CleanCommitAndAbortSequencesAreSilent) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 5, ProtocolChecker::ReleaseKind::kCommit);
  checker_.OnOrecAcquire(o, 1, 5);
  checker_.OnOrecRelease(o, 1, 6, ProtocolChecker::ReleaseKind::kAbortBump);
  checker_.OnOrecAcquire(o, 2, 6);
  checker_.OnOrecRelease(o, 2, 6, ProtocolChecker::ReleaseKind::kAbortExact);
  EXPECT_TRUE(rec_.protocols.empty());
  EXPECT_EQ(checker_.violations(), 0u);
}

TEST_F(ProtocolCheckerTest, CommitReleaseMustExceedPreAcquisitionVersion) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 3, ProtocolChecker::ReleaseKind::kCommit);
  checker_.OnOrecAcquire(o, 0, 3);
  // Re-publishing the pre-acquisition version as a "commit" is torn state.
  checker_.OnOrecRelease(o, 0, 3, ProtocolChecker::ReleaseKind::kCommit);
  EXPECT_EQ(rec_.Count("orec-version"), 1);
}

TEST_F(ProtocolCheckerTest, VersionRegressionFires) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 5, ProtocolChecker::ReleaseKind::kCommit);
  checker_.OnOrecAcquire(o, 1, 5);
  checker_.OnOrecRelease(o, 1, 4, ProtocolChecker::ReleaseKind::kCommit);
  EXPECT_GE(rec_.Count("orec-version"), 1);
}

TEST_F(ProtocolCheckerTest, AbortBumpMustBeExactlyPrevPlusOne) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 2, ProtocolChecker::ReleaseKind::kAbortBump);
  EXPECT_EQ(rec_.Count("orec-version"), 1);
}

TEST_F(ProtocolCheckerTest, AbortExactMustRestorePrev) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 1, ProtocolChecker::ReleaseKind::kAbortExact);
  EXPECT_EQ(rec_.Count("orec-version"), 1);
}

TEST_F(ProtocolCheckerTest, NonOwnerReleaseFires) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 1, 5, ProtocolChecker::ReleaseKind::kCommit);
  EXPECT_EQ(rec_.Count("orec-lock"), 1);
}

TEST_F(ProtocolCheckerTest, DoubleAcquireFires) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecAcquire(o, 1, 0);
  EXPECT_EQ(rec_.Count("orec-lock"), 1);
}

TEST_F(ProtocolCheckerTest, AcquireAtStaleVersionFires) {
  Orec* o = orec();
  checker_.OnOrecAcquire(o, 0, 0);
  checker_.OnOrecRelease(o, 0, 5, ProtocolChecker::ReleaseKind::kCommit);
  // Claiming the CAS saw version 3 contradicts the shadow (last release: 5) —
  // either the release was unhooked or the orec word was torn.
  checker_.OnOrecAcquire(o, 1, 3);
  EXPECT_EQ(rec_.Count("orec-version"), 1);
}

// --- global-clock monotonicity ---

TEST_F(ProtocolCheckerTest, ClockRegressionFiresPerThread) {
  checker_.OnClockObserved(0, 10);
  checker_.OnClockObserved(1, 5);  // other thread: independent history, fine
  EXPECT_TRUE(rec_.protocols.empty());
  checker_.OnClockObserved(0, 9);
  EXPECT_EQ(rec_.Count("clock"), 1);
}

TEST_F(ProtocolCheckerTest, BackwardsTimestampExtensionFires) {
  checker_.OnStartAdvanced(0, 10, 12);
  EXPECT_TRUE(rec_.protocols.empty());
  // Fires once for the backwards move and once more when the regressed value
  // is fed through the per-thread clock history.
  checker_.OnStartAdvanced(0, 12, 7);
  EXPECT_GE(rec_.Count("clock"), 1);
}

TEST_F(ProtocolCheckerTest, OutOfRangeTidIsReportedNotCrashed) {
  checker_.OnClockObserved(kMaxThreads + 5, 1);
  EXPECT_EQ(rec_.Count("clock"), 1);
}

// --- WakeIndex registration balance ---

TEST_F(ProtocolCheckerTest, BalancedWakeRegistrationIsSilent) {
  checker_.OnWakeRegister(0, /*indexed=*/true);
  checker_.OnWakeDeregister(0);
  checker_.OnWakeRegister(0, /*indexed=*/false);
  checker_.OnWakeDeregister(0);
  EXPECT_TRUE(rec_.protocols.empty());
}

TEST_F(ProtocolCheckerTest, DoubleRegisterFires) {
  checker_.OnWakeRegister(0, true);
  checker_.OnWakeRegister(0, false);
  EXPECT_EQ(rec_.Count("wake-index"), 1);
}

TEST_F(ProtocolCheckerTest, UnbalancedRemoveFires) {
  checker_.OnWakeDeregister(3);
  EXPECT_EQ(rec_.Count("wake-index"), 1);
}

TEST_F(ProtocolCheckerTest, CrossThreadRemoveViolatesOwnerContract) {
  checker_.OnWakeRegister(0, true);
  std::thread other([&] { checker_.OnWakeDeregister(0); });
  other.join();
  EXPECT_EQ(rec_.Count("wake-index"), 1);
}

// --- WaiterRegistry presence balance ---

TEST_F(ProtocolCheckerTest, PresenceImbalanceFires) {
  checker_.OnPresenceMark(0);
  checker_.OnPresenceMark(0);
  EXPECT_EQ(rec_.Count("presence"), 1);
  checker_.OnPresenceUnmark(0);
  checker_.OnPresenceUnmark(0);
  EXPECT_EQ(rec_.Count("presence"), 2);
}

// --- wake claim/post pairing ---

TEST_F(ProtocolCheckerTest, ClaimThenPostIsSilent) {
  checker_.OnWakeClaimCommitted(2);
  checker_.OnWakePost(2);
  checker_.OnWakeClaimCommitted(2);
  checker_.OnWakePost(2);
  EXPECT_TRUE(rec_.protocols.empty());
}

TEST_F(ProtocolCheckerTest, PostWithoutClaimIsADoublePost) {
  checker_.OnWakeClaimCommitted(2);
  checker_.OnWakePost(2);
  checker_.OnWakePost(2);
  EXPECT_EQ(rec_.Count("wake-claim"), 1);
}

TEST_F(ProtocolCheckerTest, DoubleClaimBeforePostFires) {
  checker_.OnWakeClaimCommitted(2);
  checker_.OnWakeClaimCommitted(2);
  EXPECT_EQ(rec_.Count("wake-claim"), 1);
}

TEST_F(ProtocolCheckerTest, ViolationCounterTracksFailures) {
  checker_.OnWakeDeregister(0);
  checker_.OnPresenceUnmark(0);
  EXPECT_EQ(checker_.violations(), 2u);
}

#if TCS_PROTOCOL_CHECKS
// Integration: with the runtime compiled with hooks, real transactional loads
// (commits, aborts, Retry sleeps/wakeups, OrElse) must produce ZERO protocol
// violations on every backend. The default failure handler would abort the
// process, so simply finishing is already the assertion; the counter check
// documents it.

TmConfig CheckedConfig(Backend b) {
  TmConfig cfg;
  cfg.backend = b;
  cfg.orec_table_log2 = 10;
  cfg.max_threads = 16;
  return cfg;
}

class ProtocolCheckedRuntimeTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ProtocolCheckedRuntimeTest, RealWorkloadProducesNoViolations) {
  Runtime rt(CheckedConfig(GetParam()));
  TVar<std::uint64_t> counter{0};
  TVar<std::uint64_t> flag{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        Atomically(rt.sys(), [&](Tx& tx) {
          tx.Store(counter, tx.Load(counter) + 1);
        });
      }
    });
  }
  // A waiter that sleeps through the wake path while writers churn.
  std::thread waiter([&] {
    Atomically(rt.sys(), [&](Tx& tx) {
      if (tx.Load(flag) == 0) {
        tx.Retry();
      }
    });
  });
  for (auto& th : threads) {
    th.join();
  }
  Atomically(rt.sys(), [&](Tx& tx) { tx.Store(flag, std::uint64_t{1}); });
  waiter.join();

  EXPECT_EQ(rt.sys().ProtocolViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ProtocolCheckedRuntimeTest,
                         ::testing::Values(Backend::kEagerStm,
                                           Backend::kLazyStm,
                                           Backend::kSimHtm),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kEagerStm:
                               return "Eager";
                             case Backend::kLazyStm:
                               return "Lazy";
                             default:
                               return "SimHtm";
                           }
                         });
#endif  // TCS_PROTOCOL_CHECKS

}  // namespace
}  // namespace tcs
