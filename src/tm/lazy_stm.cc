// lint:hot-path — per-access TM fast path: TCS_DCHECK must not appear inside
// loops here (tools/lint_tm_discipline.py); use TCS_CHECK on slow paths.
#include "src/tm/lazy_stm.h"

namespace tcs {

LazyStm::LazyStm(const TmConfig& config) : TmSystem(config) {}

void LazyStm::BeginTx(TxDesc& d) {
  d.start = clock_.Load();
  TCS_PROTO(proto_->OnClockObserved(d.tid, d.start));
  quiesce_.SetActive(d.tid, d.start);
}

TmWord LazyStm::ReadWord(TxDesc& d, const TmWord* addr) {
  // Read-own-writes from the redo log.
  TmWord v;
  if (d.redo.Lookup(addr, &v)) {
    return v;
  }
  Orec& o = orecs_.For(addr);
  for (;;) {
    // mo: acquire — pairs with the committer's release store [orec-publish];
    // seeing an unlocked version makes the written-back data visible.
    std::uint64_t o1 = o.word.load(std::memory_order_acquire);
    if (Orec::IsLocked(o1)) {
      // Locks are held only during a concurrent commit's write-back window.
      AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, &o);
    }
    v = LoadWordAcquire(addr);
    // mo: acquire — re-check leg of the sample/read/re-check snapshot; pairs
    // with [orec-publish] so an o1==o2 match proves no release intervened.
    std::uint64_t o2 = o.word.load(std::memory_order_acquire);
    if (o1 == o2 && Orec::Version(o1) <= d.start) {
      d.reads.push_back(&o);
      return v;
    }
    // Too-new but stable: the shared extension path can salvage the read by
    // revalidating the read set and advancing `start`, exactly as in eager STM
    // (buffered writes need no special handling — the redo log is private).
    if (o1 != o2 || !cfg_.timestamp_extension ||
        !TryExtendTimestamp(d, ExtendSite::kValidation)) {
      AbortCurrent(d, Counter::kAborts, AbortCause::kReadValidation, &o);
    }
    // Extended: retake the whole sample rather than re-checking the stale o1,
    // which could accept a value overwritten during the extension itself.
  }
}

void LazyStm::WriteWord(TxDesc& d, TmWord* addr, TmWord val) {
  d.redo.Put(addr, val);
}

bool LazyStm::CommitTx(TxDesc& d) {
  if (d.redo.Empty()) {
    d.reads.clear();
    quiesce_.SetInactive(d.tid);
    return false;
  }
  // Acquire an orec for every written location. Distinct addresses can share an
  // orec; a lock we already hold is skipped.
  d.redo.ForEachAddr([&](TmWord* addr) {
    Orec& o = orecs_.For(addr);
    for (;;) {
      // mo: acquire — pairs with [orec-publish]; the CAS below must key on a
      // version published by a completed release.
      std::uint64_t w = o.word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w)) {
        if (Orec::Owner(w) == d.tid) {
          return;
        }
        AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, &o);
      }
      if (Orec::Version(w) > d.start) {
        // The location was committed past our start, but the buffered write
        // doesn't care about its old value — only the read set must stay
        // valid. Attempt the shared extension instead of aborting outright
        // (the ROADMAP's lazy commit-time follow-up), then re-sample the
        // orec under the extended start.
        if (!cfg_.timestamp_extension ||
            !TryExtendTimestamp(d, ExtendSite::kCommitValidation)) {
          AbortCurrent(d, Counter::kAborts, AbortCause::kCommitValidation,
                       &o);
        }
        continue;
      }
      // mo: acq_rel — the acquire leg pairs with the previous owner's release
      // store [orec-publish]; the release leg publishes the locked word other
      // threads' acquire samples key on.
      if (o.word.compare_exchange_strong(w, Orec::MakeLocked(d.tid),
                                         std::memory_order_acq_rel)) {
        TCS_PROTO(proto_->OnOrecAcquire(&o, d.tid, Orec::Version(w)));
        d.locks.push_back({&o, Orec::Version(w)});
        return;
      }
      // CAS lost a race; re-sample (a now-locked or too-new orec is handled
      // above on the next pass).
    }
  });
  std::uint64_t end = clock_.Increment();
  TCS_PROTO(proto_->OnClockObserved(d.tid, end));
  if (end != d.start + 1) {
    for (Orec* o : d.reads) {
      // mo: acquire — pairs with [orec-publish]; an unlocked version ≤ start
      // proves the covered data is still the data this transaction read.
      std::uint64_t w = o->word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w)) {
        if (Orec::Owner(w) == d.tid) {
          continue;
        }
        // Locked by a concurrent commit or abort — possibly transient. One
        // shared extension attempt revalidates the *entire* read set against
        // the current clock (so on success the remaining entries need no
        // further checks) and salvages the case where that lock has already
        // been released at an old version by the time it re-samples.
        if (!cfg_.timestamp_extension ||
            !TryExtendTimestamp(d, ExtendSite::kCommitValidation)) {
          AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, o);
        }
        break;
      }
      if (Orec::Version(w) > d.start) {
        // Unlocked and too new: genuinely overwritten since we read it. An
        // extension would re-check this very orec and fail (versions are
        // monotonic), so abort outright rather than pay a doomed rescan.
        AbortCurrent(d, Counter::kAborts, AbortCause::kCommitValidation, o);
      }
    }
  }
  SnapshotCommitOrecsIfNeeded(d);
  d.redo.WriteBack();
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, end,
                                    ProtocolChecker::ReleaseKind::kCommit));
    // mo: release — [orec-publish]: orders the redo write-back before the
    // unlocked version a reader's acquire sample pairs with.
    l.orec->word.store(Orec::MakeVersion(end), std::memory_order_release);
  }
  quiesce_.SetInactive(d.tid);
  if (cfg_.privatization_safety) {
    d.stats.Bump(Counter::kQuiesceCalls);
    quiesce_.WaitForReadersBefore(end, d.tid);
  }
  return true;
}

void LazyStm::Rollback(TxDesc& d) {
  // No in-place writes to undo. Locks exist only if a commit attempt failed
  // mid-acquisition; restoring the exact previous version is safe because memory
  // was never modified.
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, l.prev_version,
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: memory under the lock was never modified,
    // but the unlock itself must still pair with concurrent acquire samples.
    l.orec->word.store(Orec::MakeVersion(l.prev_version), std::memory_order_release);
  }
  d.locks.clear();
  d.reads.clear();
  d.redo.Clear();
  d.undo.Clear();
  quiesce_.SetInactive(d.tid);
}

// OrElse partial rollback: buffered writes never touched memory, so dropping
// the branch's redo entries (and un-overwriting shared ones) is the whole job.
void LazyStm::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  // Always-on: OrElse partial rollback is rare, and a populated undo log or
  // lock list here means a branch wrote in place — dropping redo entries
  // would then silently corrupt user data.
  TCS_CHECK(d.undo.Empty());
  TCS_CHECK(d.locks.empty());  // lazy STM locks only inside CommitTx
  d.redo.RollbackTo(sp.redo);
}

TmWord LazyStm::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  // A read satisfied from the redo log returned a speculative value; the waitset
  // must instead hold the (untouched) memory value, which is what the location
  // will show once this transaction is rolled back.
  TmWord dummy;
  if (d.redo.Lookup(addr, &dummy)) {
    return LoadWordRelaxed(addr);
  }
  return observed;
}

}  // namespace tcs
