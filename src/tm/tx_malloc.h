// Transactional allocation bookkeeping (Appendix A).
//
// malloc() inside a transaction is undone if the transaction aborts; free() is
// deferred until commit. Deschedule adds a third state: allocations of a transaction
// that is going to sleep cannot be reclaimed until after wakeup, because the
// published waitset (or WaitPred argument record) may point into them — the
// "Captured Memory" caveat of §2.2.4.
#ifndef TCS_TM_TX_MALLOC_H_
#define TCS_TM_TX_MALLOC_H_

#include <cstddef>
#include <vector>

namespace tcs {

class TxMallocLog {
 public:
  // Allocates and records so the allocation can be undone on abort.
  void* Alloc(std::size_t bytes);

  // Defers the free until commit.
  void Free(void* ptr);

  // Commit: perform deferred frees, forget allocations.
  void OnCommit();

  // Abort: undo allocations, forget deferred frees.
  void OnAbort();

  // Deschedule: keep this attempt's allocations alive until after wakeup.
  void DeferForDeschedule();

  // OrElse partial rollback: releases allocations made after the savepoint
  // (the discarded branch's) and forgets its deferred frees.
  void RollbackTo(std::size_t alloc_mark, std::size_t free_mark);

  // After wakeup: reclaim the allocations kept alive across the sleep.
  void ReclaimDeferred();

  std::size_t AllocCount() const { return mallocs_.size(); }
  std::size_t FreeCount() const { return frees_.size(); }
  std::size_t DeferredCount() const { return deferred_.size(); }

 private:
  std::vector<void*> mallocs_;
  std::vector<void*> frees_;
  std::vector<void*> deferred_;
};

}  // namespace tcs

#endif  // TCS_TM_TX_MALLOC_H_
