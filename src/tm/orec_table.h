// Ownership records (orecs): the per-address-range versioned locks that the STM
// backends use for conflict detection (Appendix A, Algorithm 8).
//
// An orec packs either an unlocked version number or a lock owner into one 64-bit
// word so that "all fields of a Lock object" can be read atomically, as the paper's
// pseudocode assumes:
//
//   unlocked: (version << 1) | 0
//   locked:   (owner_tid << 1) | 1
//
// The pre-acquisition version travels in the owner's lock list, so releasing for
// abort can restore `prev_version + 1` (Algorithm 11, line 4).
//
// The table's mapping granularity is configurable: the STM backends hash at word
// granularity (shift 3); the simulated HTM reuses the same structure at cache-line
// granularity (shift 6), which is how real best-effort HTM detects conflicts.
#ifndef TCS_TM_OREC_TABLE_H_
#define TCS_TM_OREC_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace tcs {

struct Orec {
  std::atomic<std::uint64_t> word{0};

  static bool IsLocked(std::uint64_t w) { return (w & 1) != 0; }
  static std::uint64_t Version(std::uint64_t w) { return w >> 1; }
  static int Owner(std::uint64_t w) { return static_cast<int>(w >> 1); }
  static std::uint64_t MakeVersion(std::uint64_t version) { return version << 1; }
  static std::uint64_t MakeLocked(int owner_tid) {
    return (static_cast<std::uint64_t>(owner_tid) << 1) | 1;
  }
};

class OrecTable {
 public:
  OrecTable(std::size_t size_log2, std::size_t granularity_log2);

  OrecTable(const OrecTable&) = delete;
  OrecTable& operator=(const OrecTable&) = delete;

  // Maps an address to its ownership record. Distinct addresses may hash to the
  // same orec (false conflicts), which every algorithm here tolerates.
  Orec& For(const void* addr) {
    auto a = reinterpret_cast<std::uintptr_t>(addr);
    std::size_t idx = ((a >> gran_) ^ (a >> (gran_ + 10))) & mask_;
    return orecs_[idx];
  }

  std::size_t size() const { return mask_ + 1; }
  std::size_t granularity_bytes() const { return std::size_t{1} << gran_; }

  // Index of an orec within this table (the protocol checker's shadow-array
  // mapping). `o` must point into the table.
  std::size_t IndexOf(const Orec* o) const {
    return static_cast<std::size_t>(o - orecs_.get());
  }

 private:
  std::unique_ptr<Orec[]> orecs_;
  std::size_t mask_;
  std::size_t gran_;
};

}  // namespace tcs

#endif  // TCS_TM_OREC_TABLE_H_
