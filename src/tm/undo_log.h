// Undo log for eager (in-place-update) transactions (Appendix A).
//
// Also used by the simulated HTM's serial-irrevocable software mode, which needs
// rollback capability so that Deschedule can undo a transaction's effects before
// putting the thread to sleep.
#ifndef TCS_TM_UNDO_LOG_H_
#define TCS_TM_UNDO_LOG_H_

#include <cstddef>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class UndoLog {
 public:
  struct Entry {
    TmWord* addr;
    TmWord val;
  };

  void Append(TmWord* addr, TmWord old_val) { entries_.push_back({addr, old_val}); }

  // Restores logged values in reverse order (Algorithm 11, line 1).
  void UndoAll();

  // Partial rollback for OrElse savepoints: restores (in reverse) and discards
  // every entry appended after the log held `mark` entries. Entries at or below
  // the mark — and the write locks covering them — are untouched.
  void UndoTo(std::size_t mark);

  // Pre-transaction value of `addr`, i.e. the value logged by the *first* write to
  // it. Used by Retry's waitset population (Algorithm 5): a read-after-write must
  // log the value the location will hold after rollback, never the speculative
  // value, or every later writer commit would wake the thread spuriously (§2.2.6).
  bool FindOriginal(const TmWord* addr, TmWord* out) const;

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace tcs

#endif  // TCS_TM_UNDO_LOG_H_
