// Internal control-flow signal for transaction restart.
//
// A conflict abort, an explicit Restart, a Retry/Await/WaitPred deschedule, and a
// TMCondVar wait all end the current attempt and transfer control back to the
// Atomically() loop, which re-invokes the transaction body. The throw happens only
// after the backend has fully rolled the attempt back, so stack unwinding runs user
// destructors against a memory state "as if the transaction never ran".
#ifndef TCS_TM_TX_EXCEPTIONS_H_
#define TCS_TM_TX_EXCEPTIONS_H_

namespace tcs {

struct TxRestart {};

// Control-flow signal for the OrElse combinator: a Retry() raised inside an
// OrElse branch that still has an alternative throws this instead of
// descheduling. The enclosing OrElse frame catches it, rolls the branch's
// speculative writes back to its savepoint, and runs the alternative. It never
// escapes Atomically(): a Retry with no remaining alternative goes through the
// normal TmSystem::Retry() deschedule path instead.
struct TxRetrySignal {};

}  // namespace tcs

#endif  // TCS_TM_TX_EXCEPTIONS_H_
