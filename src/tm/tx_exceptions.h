// Internal control-flow signal for transaction restart.
//
// A conflict abort, an explicit Restart, a Retry/Await/WaitPred deschedule, and a
// TMCondVar wait all end the current attempt and transfer control back to the
// Atomically() loop, which re-invokes the transaction body. The throw happens only
// after the backend has fully rolled the attempt back, so stack unwinding runs user
// destructors against a memory state "as if the transaction never ran".
#ifndef TCS_TM_TX_EXCEPTIONS_H_
#define TCS_TM_TX_EXCEPTIONS_H_

namespace tcs {

struct TxRestart {};

}  // namespace tcs

#endif  // TCS_TM_TX_EXCEPTIONS_H_
