#include "src/tm/wait_set.h"

namespace tcs {

bool WaitSet::ContainsAddr(const TmWord* addr) const {
  for (const Entry& e : entries_) {
    if (e.addr == addr) {
      return true;
    }
  }
  return false;
}

}  // namespace tcs
