#include "src/tm/wait_set.h"

#include <unordered_set>

namespace tcs {

bool WaitSet::ContainsAddr(const TmWord* addr) const {
  for (const Entry& e : entries_) {
    if (e.addr == addr) {
      return true;
    }
  }
  return false;
}

std::size_t WaitSet::Prune() {
  if (entries_.size() < 2) {
    return 0;
  }
  std::unordered_set<const TmWord*> seen;
  seen.reserve(entries_.size());
  std::size_t keep = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (seen.insert(entries_[i].addr).second) {
      entries_[keep++] = entries_[i];
    }
  }
  std::size_t removed = entries_.size() - keep;
  entries_.resize(keep);
  return removed;
}

}  // namespace tcs
