// Redo log (buffered write set) for lazy STM and the simulated HTM.
//
// Supports O(1) expected read-own-writes lookup via a small open-addressing index
// over the insertion-ordered entry list. Write-back preserves program order.
#ifndef TCS_TM_REDO_LOG_H_
#define TCS_TM_REDO_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class RedoLog {
 public:
  RedoLog();

  // Records (or overwrites) the speculative value for `addr`.
  void Put(TmWord* addr, TmWord val);

  // True if this transaction wrote `addr`; returns the speculative value.
  bool Lookup(const TmWord* addr, TmWord* out) const;

  // Publishes all buffered writes to memory (commit time, locks held).
  void WriteBack();

  template <typename Fn>
  void ForEachAddr(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.addr);
    }
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  void Clear();

 private:
  struct Entry {
    TmWord* addr;
    TmWord val;
  };

  std::size_t IndexSlot(const TmWord* addr) const;
  void Reindex();

  std::vector<Entry> entries_;
  // Open-addressing table of entry indices + 1 (0 = empty).
  std::vector<std::uint32_t> index_;
  std::size_t index_mask_;
};

}  // namespace tcs

#endif  // TCS_TM_REDO_LOG_H_
