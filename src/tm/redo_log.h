// Redo log (buffered write set) for lazy STM and the simulated HTM.
//
// Supports O(1) expected read-own-writes lookup via a small open-addressing index
// over the insertion-ordered entry list. Write-back preserves program order.
#ifndef TCS_TM_REDO_LOG_H_
#define TCS_TM_REDO_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class RedoLog {
 public:
  // Savepoint for OrElse partial rollback: remembers how many entries (and how
  // many journaled overwrites) existed when an OrElse branch began.
  struct Savepoint {
    std::size_t entries;
    std::size_t journal;
  };

  RedoLog();

  // Records (or overwrites) the speculative value for `addr`.
  void Put(TmWord* addr, TmWord val);

  // Called when a savepoint is taken: from here until Clear(), overwrites of
  // existing entries are journaled so RollbackTo can restore them. Attempts
  // that never take a savepoint (no OrElse) pay nothing on Put.
  Savepoint Mark() {
    journal_enabled_ = true;
    return {entries_.size(), journal_.size()};
  }

  // Reverts the log to the state captured by `sp`: overwrites of pre-savepoint
  // entries are restored from the journal (newest first), entries appended
  // after the mark are dropped, and the lookup index is rebuilt.
  void RollbackTo(const Savepoint& sp);

  // True if this transaction wrote `addr`; returns the speculative value.
  bool Lookup(const TmWord* addr, TmWord* out) const;

  // Publishes all buffered writes to memory (commit time, locks held).
  void WriteBack();

  template <typename Fn>
  void ForEachAddr(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.addr);
    }
  }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  void Clear();

 private:
  struct Entry {
    TmWord* addr;
    TmWord val;
  };

  // One journaled overwrite: entry `idx` held `prev_val` before a later Put
  // replaced it. Replayed in reverse by RollbackTo.
  struct Overwrite {
    std::uint32_t idx;
    TmWord prev_val;
  };

  std::size_t IndexSlot(const TmWord* addr) const;
  void Reindex();

  std::vector<Entry> entries_;
  std::vector<Overwrite> journal_;
  bool journal_enabled_ = false;
  // Open-addressing table of entry indices + 1 (0 = empty).
  std::vector<std::uint32_t> index_;
  std::size_t index_mask_;
};

}  // namespace tcs

#endif  // TCS_TM_REDO_LOG_H_
