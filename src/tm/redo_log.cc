#include "src/tm/redo_log.h"

#include "src/common/assert.h"

namespace tcs {
namespace {

constexpr std::size_t kInitialIndexSize = 64;  // power of two

std::size_t HashAddr(const TmWord* addr) {
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  a ^= a >> 33;
  a *= 0xFF51AFD7ED558CCDULL;
  a ^= a >> 29;
  return static_cast<std::size_t>(a);
}

}  // namespace

RedoLog::RedoLog() : index_(kInitialIndexSize, 0), index_mask_(kInitialIndexSize - 1) {}

std::size_t RedoLog::IndexSlot(const TmWord* addr) const {
  std::size_t slot = HashAddr(addr) & index_mask_;
  for (;;) {
    std::uint32_t v = index_[slot];
    if (v == 0 || entries_[v - 1].addr == addr) {
      return slot;
    }
    slot = (slot + 1) & index_mask_;
  }
}

void RedoLog::Reindex() {
  std::fill(index_.begin(), index_.end(), 0);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::size_t slot = IndexSlot(entries_[i].addr);
    index_[slot] = static_cast<std::uint32_t>(i + 1);
  }
}

void RedoLog::Put(TmWord* addr, TmWord val) {
  std::size_t slot = IndexSlot(addr);
  if (index_[slot] != 0) {
    Entry& e = entries_[index_[slot] - 1];
    if (journal_enabled_) {
      // Journal the replaced value so an OrElse savepoint rollback can
      // restore it. Disabled (the common case) until a savepoint is taken.
      journal_.push_back({index_[slot] - 1, e.val});
    }
    e.val = val;
    return;
  }
  entries_.push_back({addr, val});
  index_[slot] = static_cast<std::uint32_t>(entries_.size());
  // Grow the index before the load factor degrades probing.
  if (entries_.size() * 2 > index_.size()) {
    index_.assign(index_.size() * 2, 0);
    index_mask_ = index_.size() - 1;
    Reindex();
  }
}

bool RedoLog::Lookup(const TmWord* addr, TmWord* out) const {
  std::size_t slot = IndexSlot(addr);
  if (index_[slot] == 0) {
    return false;
  }
  *out = entries_[index_[slot] - 1].val;
  return true;
}

void RedoLog::WriteBack() {
  for (const Entry& e : entries_) {
    StoreWordRelease(e.addr, e.val);
  }
}

void RedoLog::RollbackTo(const Savepoint& sp) {
  while (journal_.size() > sp.journal) {
    const Overwrite& o = journal_.back();
    if (o.idx < sp.entries) {
      entries_[o.idx].val = o.prev_val;
    }
    // Overwrites of entries above the mark vanish with their entry.
    journal_.pop_back();
  }
  if (entries_.size() > sp.entries) {
    entries_.resize(sp.entries);
    Reindex();
  }
}

void RedoLog::Clear() {
  entries_.clear();
  journal_.clear();
  journal_enabled_ = false;
  if (index_.size() > kInitialIndexSize * 8) {
    index_.assign(kInitialIndexSize, 0);
    index_mask_ = kInitialIndexSize - 1;
  } else {
    std::fill(index_.begin(), index_.end(), 0);
  }
}

}  // namespace tcs
