// The waitset: ⟨address, value⟩ pairs describing the precise memory state a
// descheduled transaction observed (§2.2.3).
//
// Value-based (rather than orec-based) waitsets are what make the paper's wakeup
// mechanism HTM-compatible and immune to false wakeups from silent stores: a
// writer decides whether to wake a thread purely by re-reading addresses and
// comparing values, with no access to TM metadata.
#ifndef TCS_TM_WAIT_SET_H_
#define TCS_TM_WAIT_SET_H_

#include <cstddef>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class WaitSet {
 public:
  struct Entry {
    const TmWord* addr;
    TmWord val;
  };

  void Append(const TmWord* addr, TmWord val) { entries_.push_back({addr, val}); }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  bool ContainsAddr(const TmWord* addr) const;

  // Drops entries whose address already appears earlier in the set, returning
  // how many were removed. Duplicates arise when retry logging re-reads an
  // address — most commonly an OrElse whose branches both read it, leaving the
  // union waitset with one entry per branch. Opacity guarantees every read of
  // an address within one attempt logged the same pre-transaction value, so
  // dropping the later copies changes neither findChanges' verdict nor the set
  // of orecs the waiter registers under — it only shrinks what every
  // subsequent wake check re-reads.
  std::size_t Prune();

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace tcs

#endif  // TCS_TM_WAIT_SET_H_
