// The waitset: ⟨address, value⟩ pairs describing the precise memory state a
// descheduled transaction observed (§2.2.3).
//
// Value-based (rather than orec-based) waitsets are what make the paper's wakeup
// mechanism HTM-compatible and immune to false wakeups from silent stores: a
// writer decides whether to wake a thread purely by re-reading addresses and
// comparing values, with no access to TM metadata.
#ifndef TCS_TM_WAIT_SET_H_
#define TCS_TM_WAIT_SET_H_

#include <cstddef>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class WaitSet {
 public:
  struct Entry {
    const TmWord* addr;
    TmWord val;
  };

  void Append(const TmWord* addr, TmWord val) { entries_.push_back({addr, val}); }

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  bool ContainsAddr(const TmWord* addr) const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace tcs

#endif  // TCS_TM_WAIT_SET_H_
