// Simulated best-effort hardware transactional memory.
//
// The container running this reproduction has no (guaranteed) Intel TSX, so this
// backend emulates the *interface contract* of best-effort HTM plus GCC's "htm"
// runtime, which is all the paper's mechanism design depends on:
//
//  * conflict detection at 64-byte cache-line granularity, requester-loses on
//    encountering another transaction's line;
//  * capacity aborts beyond configurable read/write line budgets;
//  * explicit aborts carrying an 8-bit code (Intel XABORT);
//  * no escape actions inside a hardware transaction — a transaction cannot
//    publish a waitset or sleep without first aborting (§2.2.2);
//  * progress rule: after `htm_max_attempts` hardware aborts the transaction
//    re-executes in a serial-irrevocable software mode under a global lock, which
//    *does* permit escape actions — this is where Retry/Await/WaitPred run
//    (§2.4.1: "we suspend concurrency so that the transaction can run in a
//    software mode that allows for escape actions").
//
// Mechanically it is a TL2-style scheme at cache-line granularity with eager line
// locking: hardware reads validate ⟨line unlocked/owned, version ≤ start⟩, writes
// acquire the line and buffer the data, commit validates and writes back. Serial
// mode takes a global token that every hardware transaction subscribes to (reads
// on every access, exactly like GCC's serial-mode word), runs with direct writes
// plus an undo log, and drains in-flight hardware commits before proceeding.
#ifndef TCS_TM_SIM_HTM_H_
#define TCS_TM_SIM_HTM_H_

#include <array>
#include <atomic>
#include <memory>

#include "src/common/cache_line.h"
#include "src/common/spin_lock.h"
#include "src/tm/tm_system.h"

namespace tcs {

// Explicit-abort codes (the 8-bit XABORT immediate). Values 1..255 are available;
// the condition-synchronization layer reserves one for "re-execute in software
// mode"; with the pred-table extension (§2.2.6) the remaining values index
// registered WaitPred predicates.
inline constexpr std::uint8_t kHtmAbortCondSync = 0xFF;

class SimHtm final : public TmSystem {
 public:
  explicit SimHtm(const TmConfig& config);

  // §2.2.6 extension: register a ⟨predicate, arguments⟩ combination so a hardware
  // transaction can request descheduling via its 8-bit abort code, with no
  // software-mode re-execution ("if the total set of reschedule function/
  // parameter combinations is less than 255"). Returns the table index
  // (1..254), or 0 if the table is full. Requires config htm_pred_table.
  std::uint8_t RegisterPred(WaitPredFn fn, const WaitArgs& args);

  bool InSerialMode() { return Desc().htm_serial; }

 protected:
  void BeginTx(TxDesc& d) override;
  bool CommitTx(TxDesc& d) override;
  TmWord ReadWord(TxDesc& d, const TmWord* addr) override;
  void WriteWord(TxDesc& d, TmWord* addr, TmWord val) override;
  void Rollback(TxDesc& d) override;
  void PartialRollback(TxDesc& d, const TxSavepoint& sp) override;
  TmWord PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) override;
  void PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) override;
  bool NeedsSoftwareForCondSync(TxDesc& d) override;
  [[noreturn]] void SwitchToSoftwareMode(TxDesc& d, bool enable_retry_logging) override;
  void MaybeHwPredTableDeschedule(TxDesc& d, WaitPredFn fn,
                                  const WaitArgs& args) override;
  // CAS wake-claim fast path: serial-irrevocable software mode writes with no
  // orecs, so a non-transactional claimer must join the committing_[] /
  // serial-token Dekker handshake (same shape as CommitTx's hardware commit
  // window). Returns false — caller falls back to the wake transaction — when
  // a serial section is active or pending.
  bool EnterWakeClaimRegion(TxDesc& d) override;
  void ExitWakeClaimRegion(TxDesc& d) override;

 private:
  friend class TmSystem;

  void EnterSerial(TxDesc& d);
  void ExitSerial(TxDesc& d);
  bool SerialInterference(const TxDesc& d) const {
    // mo: seq_cst (both loads) — [serial-token] Dekker: totally ordered against
    // EnterSerial's token/seq stores and this thread's committing_ flag store,
    // so a serial section cannot slip between the flag store and this check.
    // seq_cst-required: Dekker read leg — with acquire loads, this check and
    // the serial entrant's drain loop could both read pre-store values and a
    // serial section would run concurrently with a hardware commit.
    return serial_owner_.load(std::memory_order_seq_cst) != -1 ||
           serial_seq_.load(std::memory_order_seq_cst) != d.htm_serial_seq0;
  }
  [[noreturn]] void HwAbort(TxDesc& d, Counter reason, AbortCause cause,
                            const Orec* conflict = nullptr);

  // Serial-irrevocable mode token. Hardware transactions subscribe by checking it
  // on every access; `serial_seq_` catches transactions that were entirely passive
  // across a serial section.
  std::atomic<int> serial_owner_{-1};
  std::atomic<std::uint64_t> serial_seq_{0};
  SpinLock serial_entry_lock_;

  // Per-thread "hardware commit in progress" flags; serial entry drains them.
  struct alignas(kCacheLineBytes) CommitFlag {
    std::atomic<int> v{0};
  };
  std::unique_ptr<CommitFlag[]> committing_;

  // Pred-table extension state.
  struct PredEntry {
    WaitPredFn fn = nullptr;
    WaitArgs args;
  };
  std::uint8_t LookupPred(WaitPredFn fn, const WaitArgs& args);

  SpinLock pred_table_lock_;
  std::array<PredEntry, 256> pred_table_{};
  std::atomic<int> pred_table_size_{0};
};

}  // namespace tcs

#endif  // TCS_TM_SIM_HTM_H_
