#include "src/tm/tm_system.h"

#include <atomic>

#include "src/common/cpu.h"
#include "src/condsync/retry_orig.h"
#include "src/condsync/tm_condvar.h"
#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/tm/eager_stm.h"
#include "src/tm/lazy_stm.h"
#include "src/tm/sim_htm.h"

#include <mutex>
#include <unordered_map>

namespace tcs {
namespace {

std::atomic<std::uint64_t> g_system_uid{1};

// Registry of live TM domains, keyed by uid. Thread-exit cleanup consults it so a
// descriptor slot is recycled only if its domain still exists.
std::mutex& LiveSystemsMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::uint64_t, TmSystem*>& LiveSystems() {
  static auto* m = new std::unordered_map<std::uint64_t, TmSystem*>();
  return *m;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kEagerStm:
      return "eager-stm";
    case Backend::kLazyStm:
      return "lazy-stm";
    case Backend::kSimHtm:
      return "sim-htm";
  }
  return "unknown";
}

std::unique_ptr<TmSystem> TmSystem::Create(const TmConfig& config) {
  switch (config.backend) {
    case Backend::kEagerStm:
      return std::make_unique<EagerStm>(config);
    case Backend::kLazyStm:
      return std::make_unique<LazyStm>(config);
    case Backend::kSimHtm:
      return std::make_unique<SimHtm>(config);
  }
  TCS_CHECK_MSG(false, "unknown backend");
  return nullptr;
}

TmSystem::TmSystem(const TmConfig& config)
    : cfg_(config),
      orecs_(config.orec_table_log2,
             config.backend == Backend::kSimHtm ? 6 : 3),
      quiesce_(config.max_threads),
      uid_(g_system_uid.fetch_add(1, std::memory_order_relaxed)) {
  descs_.resize(static_cast<std::size_t>(cfg_.max_threads));
  waiters_ = std::make_unique<WaiterRegistry>(cfg_.max_threads);
  retry_orig_ = std::make_unique<RetryOrigRegistry>(cfg_.max_threads);
  wake_index_ =
      std::make_unique<WakeIndex>(cfg_.max_threads, cfg_.wake_index_shards);
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  LiveSystems().emplace(uid_, this);
}

TmSystem::~TmSystem() {
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  LiveSystems().erase(uid_);
}

void TmSystem::ReleaseTid(TxDesc* d) {
  SpinLockGuard g(registration_lock_);
  TCS_CHECK_MSG(d->nesting == 0, "thread exited inside a transaction");
  free_tids_.push_back(d->tid);
}

void TmSystem::ReleaseTidIfAlive(std::uint64_t uid, TxDesc* d) {
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  auto it = LiveSystems().find(uid);
  if (it != LiveSystems().end()) {
    it->second->ReleaseTid(d);
  }
}

TxDesc& TmSystem::RegisterThread() {
  SpinLockGuard g(registration_lock_);
  if (!free_tids_.empty()) {
    int tid = free_tids_.back();
    free_tids_.pop_back();
    TxDesc& d = *descs_[static_cast<std::size_t>(tid)];
    // Drain any stale semaphore post left by a racing waker after the previous
    // owner of this slot had already woken.
    while (d.sem.TryWait()) {
    }
    return d;
  }
  TCS_CHECK_MSG(next_tid_ < cfg_.max_threads, "too many threads for this TM domain");
  int tid = next_tid_++;
  descs_[tid] = std::make_unique<TxDesc>(tid, uid_ * 0x9E3779B9ULL + tid);
  return *descs_[tid];
}

TxDesc& TmSystem::Desc() {
  struct Entry {
    std::uint64_t uid;
    const TmSystem* sys;
    TxDesc* desc;
  };
  // The cache destructor returns each slot to its (still-live) domain when the
  // thread exits, so benchmarks that spawn threads per trial never run out.
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        ReleaseTidIfAlive(e.uid, e.desc);
      }
    }
  };
  thread_local Cache tls;
  for (const Entry& e : tls.entries) {
    if (e.sys == this && e.uid == uid_) {
      return *e.desc;
    }
  }
  TxDesc& d = RegisterThread();
  tls.entries.push_back({uid_, this, &d});
  return d;
}

Semaphore& TmSystem::SemOf(int tid) {
  TCS_DCHECK(tid >= 0 && tid < next_tid_);
  return descs_[static_cast<std::size_t>(tid)]->sem;
}

void TmSystem::Begin() {
  TxDesc& d = Desc();
  if (d.nesting++ > 0) {
    return;  // flat (subsumption) nesting, Appendix A
  }
  if (d.retry_logging && !d.internal) {
    // Each attempt rebuilds the waitset so it describes exactly what this
    // execution observed (Algorithm 5's lazily-reset waitset). Internal
    // transactions (registration, wake checks) must leave the published
    // waitset untouched.
    d.waitset.Clear();
  }
  d.skip_backoff = false;
  if (!d.internal) {
    // A restart unwinds past any OrElse frames without running their handlers;
    // the fresh attempt starts with no alternatives armed. The timed-wait
    // deadline deliberately survives restarts (see TxDesc).
    d.orelse_alts = 0;
  }
  BeginTx(d);
}

void TmSystem::Commit() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Commit outside transaction");
  if (--d.nesting > 0) {
    return;
  }
  bool writer = CommitTx(d);  // throws TxRestart (after rollback) if validation fails
  d.stats.Bump(writer ? Counter::kCommits : Counter::kReadOnlyCommits);
  d.mem.OnCommit();
  bool internal = d.internal;
  std::vector<const Orec*> commit_orecs;
  std::vector<DeferredCvSignal> signals;
  if (!internal) {
    commit_orecs.swap(d.commit_orecs);
    signals.swap(d.deferred_signals);
    ResetDescAfterTx(d);
  } else {
    // Internal transactions clear only their access sets; the enclosing
    // deschedule's published waitset and retry flags must survive.
    ClearAccessSets(d);
  }
  if (!internal) {
    // Deferred TMCondVar signals take effect now that the transaction is durable.
    for (const DeferredCvSignal& s : signals) {
      if (s.broadcast) {
        s.cv->BroadcastNow(*this);
      } else {
        s.cv->SignalNow(*this);
      }
    }
    if (writer) {
      // Order this writer's published state against the waiter-presence peeks
      // below (see WaiterRegistry's header for the full argument).
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!commit_orecs.empty() && retry_orig_->HasWaiters()) {
        retry_orig_->OnWriterCommit(commit_orecs);
      }
      if (waiters_->HasWaiters()) {
        WakeWaiters(commit_orecs);
      }
    }
  }
}

void TmSystem::ClearAccessSets(TxDesc& d) {
  d.reads.clear();
  d.read_words.clear();
  d.locks.clear();
  d.undo.Clear();
  d.redo.Clear();
}

void TmSystem::ResetDescAfterTx(TxDesc& d) {
  ClearAccessSets(d);
  d.waitset.Clear();
  d.retry_logging = false;
  d.orelse_alts = 0;
  d.has_deadline = false;
  d.htm_software_next = false;
  d.htm_attempts = 0;
  d.htm_abort_code = 0;
  d.woke_from_sleep = false;
  d.skip_backoff = false;
  d.commit_orecs.clear();
  d.deferred_signals.clear();
  d.backoff.Reset();
}

void TmSystem::AbortCurrent(TxDesc& d, Counter reason) {
  Rollback(d);
  d.mem.OnAbort();
  // Signals deferred by this attempt die with it; a re-execution re-defers.
  d.deferred_signals.clear();
  d.stats.Bump(reason);
  d.nesting = 0;
  throw TxRestart{};
}

void TmSystem::AbortSelf(Counter reason) { AbortCurrent(Desc(), reason); }

void TmSystem::RollbackForDeschedule(TxDesc& d) {
  Rollback(d);
  // Allocations stay alive until after wakeup: the published waitset (or the
  // WaitPred argument record) may point into captured memory (§2.2.4).
  d.mem.DeferForDeschedule();
  d.deferred_signals.clear();
  d.nesting = 0;
}

TmWord TmSystem::Read(const TmWord* addr) {
  TxDesc& d = Desc();
  TCS_DCHECK(d.nesting > 0);
  TmWord v = ReadWord(d, addr);
  if (d.retry_logging && !d.internal) {
    d.waitset.Append(addr, PreTxValue(d, addr, v));
  }
  return v;
}

void TmSystem::Write(TmWord* addr, TmWord val) {
  TxDesc& d = Desc();
  TCS_DCHECK(d.nesting > 0);
  WriteWord(d, addr, val);
}

void* TmSystem::TxAlloc(std::size_t bytes) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TxAlloc outside transaction");
  return d.mem.Alloc(bytes);
}

void TmSystem::TxFree(void* p) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TxFree outside transaction");
  d.mem.Free(p);
}

TmWord TmSystem::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  (void)d;
  (void)addr;
  return observed;
}

void TmSystem::PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) {
  // Default for buffered-write backends: drop the speculative writes, then re-read
  // the addresses through the instrumented path so each value is consistent with
  // the transaction's start time (aborting otherwise, per Algorithm 6).
  d.redo.Clear();
  d.waitset.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    TmWord v = ReadWord(d, addrs[i]);
    d.waitset.Append(addrs[i], v);
  }
}

bool TmSystem::NeedsSoftwareForCondSync(TxDesc& d) {
  (void)d;
  return false;
}

void TmSystem::SwitchToSoftwareMode(TxDesc& d, bool enable_retry_logging) {
  (void)enable_retry_logging;
  TCS_CHECK_MSG(false, "SwitchToSoftwareMode on a software backend");
  AbortCurrent(d, Counter::kAborts);  // unreachable
}

void TmSystem::SnapshotCommitOrecsIfNeeded(TxDesc& d) {
  if (d.internal) {
    return;
  }
  if (!retry_orig_->HasWaiters() &&
      !(cfg_.targeted_wakeup && waiters_->HasWaiters())) {
    return;
  }
  d.commit_orecs.clear();
  d.commit_orecs.reserve(d.locks.size());
  for (const LockedOrec& l : d.locks) {
    d.commit_orecs.push_back(l.orec);
  }
}

void TmSystem::SnapshotCommitOrecsFromUndoIfNeeded(TxDesc& d) {
  // Serial-irrevocable commits hold no orecs; their write set is the undo log.
  // Retry-Orig never runs on the HTM backend, so only the wake index needs the
  // snapshot here.
  if (d.internal || !(cfg_.targeted_wakeup && waiters_->HasWaiters())) {
    return;
  }
  d.commit_orecs.clear();
  d.commit_orecs.reserve(d.undo.Size());
  for (const UndoLog::Entry& e : d.undo.entries()) {
    d.commit_orecs.push_back(&orecs_.For(e.addr));
  }
}

void TmSystem::Retry() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Retry outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/true);
  }
  if (!d.retry_logging) {
    // First encounter (Algorithm 5): restart so the re-execution logs an
    // ⟨addr, value⟩ pair on every read, making the waitset expressible.
    d.retry_logging = true;
    d.skip_backoff = true;
    AbortCurrent(d, Counter::kRetryRestarts);
  }
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  Deschedule(&FindChangesPred, args);
}

bool TmSystem::DeadlineExpired(TxDesc& d, std::chrono::nanoseconds timeout) {
  auto now = std::chrono::steady_clock::now();
  if (!d.has_deadline) {
    // First timed-wait call of this transaction: arm the shared deadline. It
    // survives restarts (logging restart, conflict aborts, false wakeups) so
    // the bound covers total elapsed time.
    d.has_deadline = true;
    auto max_tp = std::chrono::steady_clock::time_point::max();
    d.deadline = (timeout > max_tp - now) ? max_tp : now + timeout;
    return false;
  }
  if (now >= d.deadline) {
    d.has_deadline = false;
    d.stats.Bump(Counter::kWaitTimeouts);
    return true;
  }
  return false;
}

WaitResult TmSystem::RetryFor(std::chrono::nanoseconds timeout) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RetryFor outside transaction");
  if (timeout >= kNoTimeout) {
    Retry();
  }
  if (DeadlineExpired(d, timeout)) {
    return WaitResult::kTimedOut;
  }
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/true);
  }
  if (!d.retry_logging) {
    d.retry_logging = true;
    d.skip_backoff = true;
    AbortCurrent(d, Counter::kRetryRestarts);
  }
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  DescheduleImpl(&FindChangesPred, args, /*timed=*/true);
}

WaitResult TmSystem::AwaitFor(const TmWord* const* addrs, std::size_t n,
                              std::chrono::nanoseconds timeout) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "AwaitFor outside transaction");
  if (timeout >= kNoTimeout) {
    Await(addrs, n);
  }
  if (DeadlineExpired(d, timeout)) {
    return WaitResult::kTimedOut;
  }
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  PrepareAwait(d, addrs, n);
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  DescheduleImpl(&FindChangesPred, args, /*timed=*/true);
}

WaitResult TmSystem::WaitPredFor(WaitPredFn fn, const WaitArgs& args,
                                 std::chrono::nanoseconds timeout) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "WaitPredFor outside transaction");
  if (timeout >= kNoTimeout) {
    WaitPred(fn, args);
  }
  if (DeadlineExpired(d, timeout)) {
    return WaitResult::kTimedOut;
  }
  if (NeedsSoftwareForCondSync(d)) {
    // No pred-table fast path here: the 8-bit abort code cannot carry a
    // deadline, so timed predicate waits always take the software-mode route.
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  DescheduleImpl(fn, args, /*timed=*/true);
}

TxSavepoint TmSystem::TakeSavepoint() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "savepoint outside transaction");
  return {d.undo.Size(), d.redo.Mark(), d.locks.size(), d.mem.AllocCount(),
          d.mem.FreeCount()};
}

void TmSystem::RollbackToSavepoint(const TxSavepoint& sp) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "savepoint rollback outside transaction");
  d.stats.Bump(Counter::kPartialRollbacks);
  PartialRollback(d, sp);
  d.mem.RollbackTo(sp.alloc_count, sp.free_count);
}

void TmSystem::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  d.undo.UndoTo(sp.undo_size);
  d.redo.RollbackTo(sp.redo);
}

void TmSystem::EnterOrElse() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "OrElse outside transaction");
  ++d.orelse_alts;
}

void TmSystem::ExitOrElse() {
  TxDesc& d = Desc();
  if (d.orelse_alts > 0) {
    --d.orelse_alts;
  }
}

void TmSystem::Await(const TmWord* const* addrs, std::size_t n) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Await outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  PrepareAwait(d, addrs, n);
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  Deschedule(&FindChangesPred, args);
}

void TmSystem::WaitPred(WaitPredFn fn, const WaitArgs& args) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "WaitPred outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    MaybeHwPredTableDeschedule(d, fn, args);  // fast path; descheds if it applies
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  Deschedule(fn, args);
}

void TmSystem::MaybeHwPredTableDeschedule(TxDesc& d, WaitPredFn fn,
                                          const WaitArgs& args) {
  (void)d;
  (void)fn;
  (void)args;
}

void TmSystem::RetryOrig() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RetryOrig outside transaction");
  TCS_CHECK_MSG(backend() != Backend::kSimHtm,
                "Retry-Orig requires STM metadata and cannot run on HTM (§2.1)");
  std::uint64_t start = d.start;
  std::vector<const Orec*> read_orecs(d.reads.begin(), d.reads.end());
  std::vector<RetryOrigRegistry::ReleasedOrec> released;
  released.reserve(d.locks.size());
  for (const LockedOrec& l : d.locks) {
    released.push_back({l.orec, Orec::MakeVersion(l.prev_version + 1)});
  }
  Rollback(d);
  d.mem.OnAbort();
  d.deferred_signals.clear();
  d.nesting = 0;
  retry_orig_->WaitForOverlap(d, std::move(read_orecs), start, released);
  d.skip_backoff = true;
  throw TxRestart{};
}

void TmSystem::RestartNow() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RestartNow outside transaction");
  d.skip_backoff = true;
  // "Aborts and immediately restarts". The yield must come *after* the rollback:
  // parking this thread while it still holds eagerly-acquired orecs would starve
  // the very thread that could establish the precondition.
  Rollback(d);
  d.mem.OnAbort();
  d.deferred_signals.clear();
  d.stats.Bump(Counter::kExplicitRestarts);
  d.nesting = 0;
  CpuYield();
  throw TxRestart{};
}

void TmSystem::CommitInFlight() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "CommitInFlight outside transaction");
  // Flatten any nesting: the entire in-flight transaction commits here. This is
  // precisely how condvar waits "break atomicity" (§1.2).
  d.nesting = 1;
  Commit();
}

void TmSystem::DeferSignal(const DeferredCvSignal& sig) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "DeferSignal outside transaction");
  d.deferred_signals.push_back(sig);
}

void TmSystem::OnRestart() {
  TxDesc& d = Desc();
  if (!d.skip_backoff) {
    d.backoff.Pause();
  }
  d.skip_backoff = false;
}

TxStats TmSystem::AggregateStats() const {
  SpinLockGuard g(registration_lock_);
  TxStats total;
  for (const auto& d : descs_) {
    if (d != nullptr) {
      total.MergeFrom(d->stats);
    }
  }
  return total;
}

void TmSystem::ResetStats() {
  SpinLockGuard g(registration_lock_);
  for (const auto& d : descs_) {
    if (d != nullptr) {
      d->stats.Reset();
    }
  }
}

}  // namespace tcs
