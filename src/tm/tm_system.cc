// lint:hot-path — per-access TM fast path: TCS_DCHECK must not appear inside
// loops here (tools/lint_tm_discipline.py); use TCS_CHECK on slow paths.
#include "src/tm/tm_system.h"

#include <algorithm>
#include <atomic>

#include "src/common/cpu.h"
#include "src/common/json_writer.h"
#include "src/obs/trace.h"
#include "src/obs/trace_dump.h"
#include "src/condsync/retry_orig.h"
#include "src/condsync/tm_condvar.h"
#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/tm/eager_stm.h"
#include "src/tm/lazy_stm.h"
#include "src/tm/sim_htm.h"

#include <mutex>
#include <unordered_map>

namespace tcs {
namespace {

std::atomic<std::uint64_t> g_system_uid{1};

// Registry of live TM domains, keyed by uid. Thread-exit cleanup consults it so a
// descriptor slot is recycled only if its domain still exists.
std::mutex& LiveSystemsMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::uint64_t, TmSystem*>& LiveSystems() {
  static auto* m = new std::unordered_map<std::uint64_t, TmSystem*>();
  return *m;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kEagerStm:
      return "eager-stm";
    case Backend::kLazyStm:
      return "lazy-stm";
    case Backend::kSimHtm:
      return "sim-htm";
  }
  return "unknown";
}

std::unique_ptr<TmSystem> TmSystem::Create(const TmConfig& config) {
  switch (config.backend) {
    case Backend::kEagerStm:
      return std::make_unique<EagerStm>(config);
    case Backend::kLazyStm:
      return std::make_unique<LazyStm>(config);
    case Backend::kSimHtm:
      return std::make_unique<SimHtm>(config);
  }
  TCS_CHECK_MSG(false, "unknown backend");
  return nullptr;
}

TmSystem::TmSystem(const TmConfig& config)
    : cfg_(config),
      orecs_(config.orec_table_log2,
             config.backend == Backend::kSimHtm ? 6 : 3),
      quiesce_(config.max_threads),
      // mo: relaxed — uid allocation only needs uniqueness (atomicity), not
      // ordering; no other data is published through this counter.
      uid_(g_system_uid.fetch_add(1, std::memory_order_relaxed)),
      lot_(static_cast<ParkingLot::Backend>(config.park_backend)) {
  descs_.resize(static_cast<std::size_t>(cfg_.max_threads));
  waiters_ = std::make_unique<WaiterRegistry>(cfg_.max_threads);
  retry_orig_ = std::make_unique<RetryOrigRegistry>(cfg_.max_threads, &lot_);
  wake_index_ =
      std::make_unique<WakeIndex>(cfg_.max_threads, cfg_.wake_index_shards);
  if (cfg_.timer_wheel) {
    wheel_ = std::make_unique<TimerWheel>(
        &lot_, static_cast<std::uint64_t>(cfg_.timer_wheel_tick_us) * 1000);
  }
#if TCS_PROTOCOL_CHECKS
  proto_ = std::make_unique<ProtocolChecker>(orecs_, cfg_.max_threads);
  // Standalone WakeIndex/WaiterRegistry instances (unit tests) stay unchecked;
  // only the domain-owned structures participate in the balance protocols.
  wake_index_->AttachProtocolChecker(proto_.get());
  waiters_->AttachProtocolChecker(proto_.get());
#endif
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  LiveSystems().emplace(uid_, this);
}

TmSystem::~TmSystem() {
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  LiveSystems().erase(uid_);
}

void TmSystem::ReleaseTid(TxDesc* d) {
  SpinLockGuard g(registration_lock_);
  TCS_CHECK_MSG(d->nesting == 0, "thread exited inside a transaction");
  free_tids_.push_back(d->tid);
}

void TmSystem::ReleaseTidIfAlive(std::uint64_t uid, TxDesc* d) {
  std::lock_guard<std::mutex> g(LiveSystemsMutex());
  auto it = LiveSystems().find(uid);
  if (it != LiveSystems().end()) {
    it->second->ReleaseTid(d);
  }
}

TxDesc& TmSystem::RegisterThread() {
  SpinLockGuard g(registration_lock_);
  if (!free_tids_.empty()) {
    int tid = free_tids_.back();
    free_tids_.pop_back();
    TxDesc& d = *descs_[static_cast<std::size_t>(tid)];
    // Clear any stale wake/timeout token left by a racing waker (or a late
    // wheel fire) after the previous owner of this slot had already woken.
    lot_.Reset(d.park);
    return d;
  }
  TCS_CHECK_MSG(next_tid_ < cfg_.max_threads, "too many threads for this TM domain");
  int tid = next_tid_++;
  descs_[tid] = std::make_unique<TxDesc>(tid, uid_ * 0x9E3779B9ULL + tid);
#if TCS_TRACING
  if (cfg_.tracing) {
    // The registering thread is the ring's single writer; Init here (before
    // the thread's first transaction) keeps that discipline.
    descs_[tid]->obs.ring.Init(cfg_.trace_ring_capacity);
  }
#endif
  return *descs_[tid];
}

TxDesc& TmSystem::Desc() {
  struct Entry {
    std::uint64_t uid;
    const TmSystem* sys;
    TxDesc* desc;
  };
  // The cache destructor returns each slot to its (still-live) domain when the
  // thread exits, so benchmarks that spawn threads per trial never run out.
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        ReleaseTidIfAlive(e.uid, e.desc);
      }
    }
  };
  thread_local Cache tls;
  for (const Entry& e : tls.entries) {
    if (e.sys == this && e.uid == uid_) {
      return *e.desc;
    }
  }
  TxDesc& d = RegisterThread();
  tls.entries.push_back({uid_, this, &d});
  return d;
}

ParkSpot& TmSystem::SpotOf(int tid) {
  // Always-on: an out-of-range tid here dereferences a null descriptor slot,
  // and this runs only on the condvar signal slow path. Bounds come from the
  // immutable config rather than next_tid_ (which a concurrent registration
  // may be growing); any tid that can legitimately reach here was published
  // after its registration, so its slot is visibly non-null.
  TCS_CHECK(tid >= 0 && tid < cfg_.max_threads);
  TxDesc* d = descs_[static_cast<std::size_t>(tid)].get();
  TCS_CHECK_MSG(d != nullptr, "SpotOf for a never-registered tid");
  return d->park;
}

std::uint64_t TmSystem::ProtocolViolations() const {
#if TCS_PROTOCOL_CHECKS
  return proto_->violations();
#else
  return 0;
#endif
}

ProtocolChecker* TmSystem::protocol_checker() {
#if TCS_PROTOCOL_CHECKS
  return proto_.get();
#else
  return nullptr;
#endif
}

void TmSystem::Begin() {
  TxDesc& d = Desc();
  if (d.nesting++ > 0) {
    return;  // flat (subsumption) nesting, Appendix A
  }
  if (d.retry_logging && !d.internal) {
    // Each attempt rebuilds the waitset so it describes exactly what this
    // execution observed (Algorithm 5's lazily-reset waitset). Internal
    // transactions (registration, wake checks) must leave the published
    // waitset untouched.
    d.waitset.Clear();
  }
  d.skip_backoff = false;
  if (!d.internal) {
    // A restart unwinds past any OrElse frames without running their handlers;
    // the fresh attempt starts with no alternatives armed. Armed timed-wait
    // deadlines deliberately survive restarts (see TxDesc); only the attempt's
    // occurrence bookkeeping resets.
    d.orelse_alts = 0;
    d.wait_keys_this_attempt.clear();
    if (cfg_.latency_metrics) {
      // Each attempt resets the clock: commit latency measures the attempt
      // that succeeded. first_abort_ns (set in AbortCurrent) spans restarts
      // and feeds abort_to_commit.
      d.obs.tx_begin_ns = ObsNowNs();
    }
    TCS_TRACE_EVENT(d, TraceEvent::kTxBegin, 0);
  }
  BeginTx(d);
}

void TmSystem::Commit() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Commit outside transaction");
  if (--d.nesting > 0) {
    return;
  }
  bool writer = CommitTx(d);  // throws TxRestart (after rollback) if validation fails
  d.stats.Bump(writer ? Counter::kCommits : Counter::kReadOnlyCommits);
  d.mem.OnCommit();
  bool internal = d.internal;
  std::vector<const Orec*> commit_orecs;
  std::vector<DeferredCvSignal> signals;
  if (!internal) {
    TCS_TRACE_EVENT(d, TraceEvent::kTxCommit, 0);
    if (cfg_.latency_metrics && d.obs.tx_begin_ns != 0) {
      std::uint64_t now = ObsNowNs();
      d.obs.commit_latency.Record(now - d.obs.tx_begin_ns);
      if (d.obs.first_abort_ns != 0 && now >= d.obs.first_abort_ns) {
        // First abort → eventual commit, parked time included: the price the
        // caller actually paid for contention and waiting.
        d.obs.abort_to_commit.Record(now - d.obs.first_abort_ns);
      }
    }
    commit_orecs.swap(d.commit_orecs);
    signals.swap(d.deferred_signals);
    ResetDescAfterTx(d);
  } else {
    // Internal transactions clear only their access sets; the enclosing
    // deschedule's published waitset and retry flags must survive.
    ClearAccessSets(d);
  }
  if (!internal) {
    // Deferred TMCondVar signals take effect now that the transaction is durable.
    for (const DeferredCvSignal& s : signals) {
      if (s.broadcast) {
        s.cv->BroadcastNow(*this);
      } else {
        s.cv->SignalNow(*this);
      }
    }
    if (writer) {
      // Order this writer's published state against the waiter-presence peeks
      // below.
      // mo: seq_cst fence — [retry-dekker] writer leg: W(orecs)/R(count_)
      // against the waiter's W(count_)/R(orecs) in WaitForOverlap.
      // seq_cst-required: store-buffering exclusion needs the fence total
      // order ([atomics.fences]); acquire/release cannot forbid both sides
      // reading pre-update values. (The WaiterRegistry/WakeIndex peeks need no
      // fence — [wake-publish] rides the [clock-chain] release sequence — but
      // RetryOrig registration performs no clock RMW, hence this Dekker.)
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (retry_orig_->HasWaiters()) {
        // This post-fence peek is the sound [retry-dekker] R-leg. The peek
        // inside SnapshotCommitOrecsIfNeeded ran BEFORE the fence and only
        // decides whether the write-orec set gets copied; if it missed a
        // racing registration, commit_orecs is empty and the write set is
        // gone (the descriptor was reset above). Waking every sleeper then
        // is the conservative repair: each revalidates under the waiting
        // lock and re-sleeps, so the race costs a spurious wakeup, never a
        // lost one.
        if (!commit_orecs.empty()) {
          retry_orig_->OnWriterCommit(commit_orecs);
        } else {
          retry_orig_->WakeAllSleepers();
        }
      }
      if (waiters_->HasWaiters()) {
        WakeWaiters(commit_orecs);
      }
    }
  }
}

void TmSystem::ClearAccessSets(TxDesc& d) {
  d.reads.clear();
  d.locks.clear();
  d.undo.Clear();
  d.redo.Clear();
}

void TmSystem::ResetDescAfterTx(TxDesc& d) {
  ClearAccessSets(d);
  d.waitset.Clear();
  d.retry_logging = false;
  d.orelse_alts = 0;
  d.deadlines.clear();
  d.wait_keys_this_attempt.clear();
  d.htm_software_next = false;
  d.htm_attempts = 0;
  d.htm_abort_code = 0;
  d.woke_from_sleep = false;
  d.skip_backoff = false;
  d.commit_orecs.clear();
  d.deferred_signals.clear();
  d.backoff.Reset();
  d.obs.tx_begin_ns = 0;
  d.obs.first_abort_ns = 0;
}

void TmSystem::AbortCurrent(TxDesc& d, Counter reason, AbortCause cause,
                            const Orec* conflict) {
  Rollback(d);
  d.mem.OnAbort();
  // Signals deferred by this attempt die with it; a re-execution re-defers.
  d.deferred_signals.clear();
  d.stats.Bump(reason);
  d.obs.causes.Bump(cause);
  if (conflict != nullptr) {
    d.obs.hot_orecs.Bump(orecs_.IndexOf(conflict));
  }
  if (cfg_.latency_metrics && !d.internal && d.obs.first_abort_ns == 0) {
    d.obs.first_abort_ns = ObsNowNs();
  }
  if (!d.internal) {
    TCS_TRACE_EVENT(d, TraceEvent::kTxAbort, static_cast<std::uint64_t>(cause));
  }
  d.nesting = 0;
  throw TxRestart{};
}

void TmSystem::AbortSelf(Counter reason) { AbortCurrent(Desc(), reason); }

void TmSystem::RollbackForDeschedule(TxDesc& d) {
  Rollback(d);
  // Allocations stay alive until after wakeup: the published waitset (or the
  // WaitPred argument record) may point into captured memory (§2.2.4).
  d.mem.DeferForDeschedule();
  d.deferred_signals.clear();
  d.nesting = 0;
}

TmWord TmSystem::Read(const TmWord* addr) {
  TxDesc& d = Desc();
  TCS_DCHECK(d.nesting > 0);
  TmWord v = ReadWord(d, addr);
  if (d.retry_logging && !d.internal) {
    d.waitset.Append(addr, PreTxValue(d, addr, v));
  }
  return v;
}

void TmSystem::Write(TmWord* addr, TmWord val) {
  TxDesc& d = Desc();
  TCS_DCHECK(d.nesting > 0);
  WriteWord(d, addr, val);
}

void* TmSystem::TxAlloc(std::size_t bytes) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TxAlloc outside transaction");
  return d.mem.Alloc(bytes);
}

void TmSystem::TxFree(void* p) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TxFree outside transaction");
  d.mem.Free(p);
}

TmWord TmSystem::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  (void)d;
  (void)addr;
  return observed;
}

void TmSystem::PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) {
  // Default for buffered-write backends: drop the speculative writes, then re-read
  // the addresses through the instrumented path so each value is consistent with
  // the transaction's start time (aborting otherwise, per Algorithm 6).
  d.redo.Clear();
  d.waitset.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    TmWord v = ReadWord(d, addrs[i]);
    d.waitset.Append(addrs[i], v);
  }
}

bool TmSystem::NeedsSoftwareForCondSync(TxDesc& d) {
  (void)d;
  return false;
}

bool TmSystem::EnterWakeClaimRegion(TxDesc& d) {
  // STM backends: every committed write respects orecs, so holding the slot's
  // covering orec is already enough — no extra handshake needed.
  (void)d;
  return true;
}

void TmSystem::ExitWakeClaimRegion(TxDesc& d) { (void)d; }

void TmSystem::SwitchToSoftwareMode(TxDesc& d, bool enable_retry_logging) {
  (void)enable_retry_logging;
  TCS_CHECK_MSG(false, "SwitchToSoftwareMode on a software backend");
  AbortCurrent(d, Counter::kAborts);  // unreachable
}

void TmSystem::SnapshotCommitOrecsIfNeeded(TxDesc& d) {
  if (d.internal) {
    return;
  }
  // Both peeks run BEFORE the commit-side [retry-dekker] seq_cst fence in
  // Commit(), so either may miss a registration racing this commit
  // (store-buffering); they are heuristics that only avoid the copy, never
  // correctness gates. Commit() re-peeks after the fence: a missed RetryOrig
  // waiter is woken conservatively (WakeAllSleepers), and a missed WakeIndex
  // waiter is covered by WakeWaiters' empty-snapshot global scan.
  if (!retry_orig_->HasWaiters() &&
      !(cfg_.targeted_wakeup && waiters_->HasWaiters())) {
    return;
  }
  d.commit_orecs.clear();
  d.commit_orecs.reserve(d.locks.size());
  for (const LockedOrec& l : d.locks) {
    d.commit_orecs.push_back(l.orec);
  }
}

void TmSystem::SnapshotCommitOrecsFromUndoIfNeeded(TxDesc& d) {
  // Serial-irrevocable commits hold no orecs; their write set is the undo log.
  // Retry-Orig never runs on the HTM backend, so only the wake index needs the
  // snapshot here.
  if (d.internal || !(cfg_.targeted_wakeup && waiters_->HasWaiters())) {
    return;
  }
  d.commit_orecs.clear();
  d.commit_orecs.reserve(d.undo.Size());
  for (const UndoLog::Entry& e : d.undo.entries()) {
    d.commit_orecs.push_back(&orecs_.For(e.addr));
  }
}

bool TmSystem::TryExtendTimestamp(TxDesc& d, ExtendSite site,
                                  const ReleasedOrecWord* released,
                                  std::size_t released_n) {
  switch (site) {
    case ExtendSite::kValidation:
      d.stats.Bump(Counter::kExtendOnValidation);
      break;
    case ExtendSite::kOrecRelease:
      d.stats.Bump(Counter::kExtendOnOrecRelease);
      break;
    case ExtendSite::kCommitValidation:
      d.stats.Bump(Counter::kExtendOnCommitValidation);
      break;
    case ExtendSite::kEncounterAcquisition:
      d.stats.Bump(Counter::kExtendOnEncounterAcquisition);
      break;
  }
  // Sample the clock *before* revalidating: a commit that lands between the
  // sample and the checks makes some read orec too new and the extension
  // fails, never the reverse.
  std::uint64_t now = clock_.Load();
  TCS_PROTO(proto_->OnClockObserved(d.tid, now));
  for (Orec* o : d.reads) {
    // mo: acquire — pairs with [orec-publish]; an unlocked version ≤ now
    // proves the covered data still matches what this transaction read.
    std::uint64_t w = o->word.load(std::memory_order_acquire);
    if (Orec::IsLocked(w)) {
      // An orec we read and later locked ourselves still covers consistent data.
      if (Orec::Owner(w) == d.tid) {
        continue;
      }
      return false;
    }
    // Unlocked at or below start: unchanged since this transaction read it,
    // because committed versions always exceed any concurrently sampled start.
    if (Orec::Version(w) <= d.start) {
      continue;
    }
    bool own_release = false;
    for (std::size_t j = 0; j < released_n; ++j) {
      if (released[j].orec == o && released[j].word == w) {
        own_release = true;
        break;
      }
    }
    if (!own_release) {
      return false;
    }
  }
  TCS_PROTO(proto_->OnStartAdvanced(d.tid, d.start, now));
  d.start = now;
  quiesce_.SetActive(d.tid, now);
  d.stats.Bump(Counter::kTimestampExtensions);
  TCS_TRACE_EVENT(d, TraceEvent::kTimestampExtension, now);
  return true;
}

void TmSystem::OnOrElseFallback() {
  TxDesc& d = Desc();
  d.stats.Bump(Counter::kOrElseFallbacks);
  TCS_TRACE_EVENT(d, TraceEvent::kOrElseFallback, 0);
}

void TmSystem::Retry() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Retry outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/true);
  }
  if (!d.retry_logging) {
    // First encounter (Algorithm 5): restart so the re-execution logs an
    // ⟨addr, value⟩ pair on every read, making the waitset expressible.
    d.retry_logging = true;
    d.skip_backoff = true;
    AbortCurrent(d, Counter::kRetryRestarts, AbortCause::kRetrySetup);
  }
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  Deschedule(&FindChangesPred, args);
}

namespace {

// splitmix64-style mixer: folds a wait key with its occurrence ordinal so two
// logical waits never share a deadline slot by accident.
std::uint64_t MixWaitKey(std::uint64_t key, std::uint64_t occurrence) {
  std::uint64_t z = key + 0x9E3779B97F4A7C15ULL * (occurrence + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

bool TmSystem::DeadlineExpired(TxDesc& d, std::chrono::nanoseconds timeout,
                               std::uint64_t wait_key) {
  std::uint64_t occurrence = 0;
  for (std::uint64_t k : d.wait_keys_this_attempt) {
    if (k == wait_key) {
      ++occurrence;
    }
  }
  d.wait_keys_this_attempt.push_back(wait_key);
  const std::uint64_t key = MixWaitKey(wait_key, occurrence);
  auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < d.deadlines.size(); ++i) {
    if (d.deadlines[i].key != key) {
      continue;
    }
    // This call armed its deadline on an earlier restart of the transaction
    // (logging restart, conflict abort, false wakeup): the bound covers the
    // call's total elapsed wait, not one sleep. The slot is kept on expiry —
    // if the attempt delivering kTimedOut aborts on a conflict, the replay
    // finds the expired slot and re-delivers instead of re-arming a fresh
    // budget (a loop that waits again after a timeout is a new occurrence,
    // so it still gets its own slot). Commit clears everything.
    if (now >= d.deadlines[i].at) {
      d.stats.Bump(Counter::kWaitTimeouts);
      return true;
    }
    d.active_deadline = d.deadlines[i].at;
    return false;
  }
  // First time this call is reached: arm its own deadline.
  auto max_tp = std::chrono::steady_clock::time_point::max();
  auto at = (timeout > max_tp - now) ? max_tp : now + timeout;
  d.deadlines.push_back({key, at});
  d.active_deadline = at;
  return false;
}

WaitResult TmSystem::RetryFor(std::chrono::nanoseconds timeout,
                              std::uint64_t wait_key) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RetryFor outside transaction");
  if (timeout >= kNoTimeout) {
    Retry();
  }
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/true);
  }
  if (!d.retry_logging) {
    // First encounter: restart to build the waitset; the deadline arms on the
    // logging pass, once the addresses identifying this wait are known.
    d.retry_logging = true;
    d.skip_backoff = true;
    AbortCurrent(d, Counter::kRetryRestarts, AbortCause::kRetrySetup);
  }
  // Fold the waitset's addresses into the call-site key: a false-wakeup replay
  // of the same wait re-reads the same locations (deterministic body, so the
  // armed deadline is found again), while a *different* wait funneled through
  // the same call site — two queue pops through one adapter line — reads a
  // different set and gets its own budget.
  for (const WaitSet::Entry& e : d.waitset.entries()) {
    wait_key = MixWaitKey(wait_key, reinterpret_cast<std::uintptr_t>(e.addr));
  }
  if (DeadlineExpired(d, timeout, wait_key)) {
    return WaitResult::kTimedOut;
  }
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  DescheduleImpl(&FindChangesPred, args, /*timed=*/true);
}

WaitResult TmSystem::AwaitFor(const TmWord* const* addrs, std::size_t n,
                              std::chrono::nanoseconds timeout) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "AwaitFor outside transaction");
  if (timeout >= kNoTimeout) {
    Await(addrs, n);
  }
  // The awaited address set identifies the call: the same AwaitFor re-reached
  // across restarts finds its armed deadline, while a different wait (other
  // addresses) gets its own.
  std::uint64_t wait_key = 0x5DEECE66DULL;
  for (std::size_t i = 0; i < n; ++i) {
    wait_key = MixWaitKey(wait_key, reinterpret_cast<std::uintptr_t>(addrs[i]));
  }
  if (DeadlineExpired(d, timeout, wait_key)) {
    return WaitResult::kTimedOut;
  }
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  PrepareAwait(d, addrs, n);
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  DescheduleImpl(&FindChangesPred, args, /*timed=*/true);
}

WaitResult TmSystem::WaitPredFor(WaitPredFn fn, const WaitArgs& args,
                                 std::chrono::nanoseconds timeout,
                                 std::uint64_t wait_key) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "WaitPredFor outside transaction");
  if (timeout >= kNoTimeout) {
    WaitPred(fn, args);
  }
  // The predicate and its marshaled arguments identify the wait (two
  // sequential waits through one adapter call site differ in args).
  wait_key = MixWaitKey(wait_key, reinterpret_cast<std::uintptr_t>(fn));
  for (std::uint32_t i = 0; i < args.n; ++i) {
    wait_key = MixWaitKey(wait_key, args.v[i]);
  }
  if (DeadlineExpired(d, timeout, wait_key)) {
    return WaitResult::kTimedOut;
  }
  if (NeedsSoftwareForCondSync(d)) {
    // No pred-table fast path here: the 8-bit abort code cannot carry a
    // deadline, so timed predicate waits always take the software-mode route.
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  DescheduleImpl(fn, args, /*timed=*/true);
}

TxSavepoint TmSystem::TakeSavepoint() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "savepoint outside transaction");
  return {d.undo.Size(), d.redo.Mark(), d.locks.size(), d.mem.AllocCount(),
          d.mem.FreeCount()};
}

void TmSystem::RollbackToSavepoint(const TxSavepoint& sp) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "savepoint rollback outside transaction");
  d.stats.Bump(Counter::kPartialRollbacks);
  PartialRollback(d, sp);
  d.mem.RollbackTo(sp.alloc_count, sp.free_count);
}

void TmSystem::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  d.undo.UndoTo(sp.undo_size);
  d.redo.RollbackTo(sp.redo);
}

void TmSystem::EnterOrElse() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "OrElse outside transaction");
  ++d.orelse_alts;
}

void TmSystem::ExitOrElse() {
  TxDesc& d = Desc();
  if (d.orelse_alts > 0) {
    --d.orelse_alts;
  }
}

void TmSystem::Await(const TmWord* const* addrs, std::size_t n) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "Await outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  PrepareAwait(d, addrs, n);
  WaitArgs args;
  args.v[0] = reinterpret_cast<TmWord>(&d.waitset);
  args.n = 1;
  Deschedule(&FindChangesPred, args);
}

void TmSystem::WaitPred(WaitPredFn fn, const WaitArgs& args) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "WaitPred outside transaction");
  if (NeedsSoftwareForCondSync(d)) {
    MaybeHwPredTableDeschedule(d, fn, args);  // fast path; descheds if it applies
    SwitchToSoftwareMode(d, /*enable_retry_logging=*/false);
  }
  Deschedule(fn, args);
}

void TmSystem::MaybeHwPredTableDeschedule(TxDesc& d, WaitPredFn fn,
                                          const WaitArgs& args) {
  (void)d;
  (void)fn;
  (void)args;
}

void TmSystem::RetryOrig() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RetryOrig outside transaction");
  TCS_CHECK_MSG(backend() != Backend::kSimHtm,
                "Retry-Orig requires STM metadata and cannot run on HTM (§2.1)");
  std::uint64_t start = d.start;
  std::vector<const Orec*> read_orecs(d.reads.begin(), d.reads.end());
  std::vector<RetryOrigRegistry::ReleasedOrec> released;
  released.reserve(d.locks.size());
  for (const LockedOrec& l : d.locks) {
    released.push_back({l.orec, Orec::MakeVersion(l.prev_version + 1)});
  }
  Rollback(d);
  d.mem.OnAbort();
  d.deferred_signals.clear();
  d.nesting = 0;
  d.obs.causes.Bump(AbortCause::kRetrySetup);
  retry_orig_->WaitForOverlap(d, std::move(read_orecs), start, released);
  d.skip_backoff = true;
  throw TxRestart{};
}

void TmSystem::RestartNow() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "RestartNow outside transaction");
  d.skip_backoff = true;
  // "Aborts and immediately restarts". The yield must come *after* the rollback:
  // parking this thread while it still holds eagerly-acquired orecs would starve
  // the very thread that could establish the precondition.
  Rollback(d);
  d.mem.OnAbort();
  d.deferred_signals.clear();
  d.stats.Bump(Counter::kExplicitRestarts);
  d.obs.causes.Bump(AbortCause::kExplicit);
  d.nesting = 0;
  CpuYield();
  throw TxRestart{};
}

void TmSystem::CommitInFlight() {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "CommitInFlight outside transaction");
  // Flatten any nesting: the entire in-flight transaction commits here. This is
  // precisely how condvar waits "break atomicity" (§1.2).
  d.nesting = 1;
  Commit();
}

void TmSystem::DeferSignal(const DeferredCvSignal& sig) {
  TxDesc& d = Desc();
  TCS_CHECK_MSG(d.nesting > 0, "DeferSignal outside transaction");
  d.deferred_signals.push_back(sig);
}

void TmSystem::OnRestart() {
  TxDesc& d = Desc();
  if (!d.skip_backoff) {
    d.backoff.Pause();
  }
  d.skip_backoff = false;
}

TxStats TmSystem::AggregateStats() const {
  SpinLockGuard g(registration_lock_);
  TxStats total;
  for (const auto& d : descs_) {
    if (d != nullptr) {
      total.MergeFrom(d->stats);
    }
  }
  return total;
}

void TmSystem::ResetStats() {
  SpinLockGuard g(registration_lock_);
  for (const auto& d : descs_) {
    if (d != nullptr) {
      d->stats.Reset();
      // Trial reset covers the derived metrics too; TraceRings deliberately
      // survive (cumulative flight recorder, single-writer — see ThreadObs).
      d->obs.ResetMetrics();
    }
  }
}

TmSystem::ObsSnapshot TmSystem::SnapshotObs(std::size_t top_n_orecs) const {
  SpinLockGuard g(registration_lock_);
  ObsSnapshot snap;
  // Hot-orec tallies are merged across threads by orec index before ranking.
  std::vector<std::pair<std::size_t, std::uint64_t>> orec_counts;
  for (const auto& d : descs_) {
    if (d == nullptr) {
      continue;
    }
    snap.stats.MergeFrom(d->stats);
    for (int i = 0; i < kNumAbortCauses; ++i) {
      snap.abort_causes[i] += d->obs.causes.Get(static_cast<AbortCause>(i));
    }
    // mo: relaxed — the EWMA is a monitoring tally (owner-writer, like
    // `stats`); staleness is fine, atomicity avoids a torn read.
    std::uint64_t ewma = std::atomic_ref<const std::uint64_t>(
                             d->wake_abort_ewma_permille)
                             .load(std::memory_order_relaxed);
    snap.wake_abort_ewma_permille =
        std::max(snap.wake_abort_ewma_permille, ewma);
    snap.commit_latency.MergeFrom(d->obs.commit_latency);
    snap.abort_to_commit.MergeFrom(d->obs.abort_to_commit);
    snap.wait_duration.MergeFrom(d->obs.wait_duration);
    snap.wake_latency.MergeFrom(d->obs.wake_latency);
    snap.hot_orec_overflow += d->obs.hot_orecs.Overflow();
    d->obs.hot_orecs.Visit([&](std::size_t idx, std::uint64_t count) {
      for (auto& [i, c] : orec_counts) {
        if (i == idx) {
          c += count;
          return;
        }
      }
      orec_counts.emplace_back(idx, count);
    });
  }
  std::sort(orec_counts.begin(), orec_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (orec_counts.size() > top_n_orecs) {
    orec_counts.resize(top_n_orecs);
  }
  snap.hot_orecs.reserve(orec_counts.size());
  for (const auto& [idx, count] : orec_counts) {
    snap.hot_orecs.push_back({idx, count});
  }
  snap.condsync_registry_bytes = waiters_->FootprintBytes();
  snap.condsync_wake_index_bytes = wake_index_->FootprintBytes();
  snap.registry_segments = waiters_->AllocatedSegments();
  snap.wake_index_segments = wake_index_->AllocatedSegments();
  snap.registered_waiters = waiters_->RegisteredCount();
  if (wheel_ != nullptr) {
    snap.wheel_enabled = true;
    snap.wheel = wheel_->SnapshotStats();
  }
  return snap;
}

namespace {

void EmitHistogram(JsonWriter& w, const char* name,
                   const LatencyHistogram& h) {
  w.Key(name).BeginObject();
  w.Key("count").U64(h.Count());
  w.Key("mean_ns").Double(h.Mean());
  w.Key("p50_ns").U64(h.Percentile(50));
  w.Key("p99_ns").U64(h.Percentile(99));
  w.Key("p999_ns").U64(h.Percentile(99.9));
  w.EndObject();
}

}  // namespace

void TmSystem::SnapshotMetrics(JsonWriter& w, std::size_t top_n_orecs) const {
  ObsSnapshot snap = SnapshotObs(top_n_orecs);
  w.BeginObject();
  w.Key("backend").String(BackendName(cfg_.backend));
  w.Key("counters").BeginObject();
  for (int i = 0; i < kNumCounters; ++i) {
    auto c = static_cast<Counter>(i);
    w.Key(std::string(CounterName(c))).U64(snap.stats.Get(c));
  }
  w.EndObject();
  w.Key("abort_causes").BeginObject();
  for (int i = 0; i < kNumAbortCauses; ++i) {
    w.Key(AbortCauseName(static_cast<AbortCause>(i)))
        .U64(snap.abort_causes[i]);
  }
  w.EndObject();
  w.Key("hot_orecs").BeginArray();
  for (const ObsSnapshot::HotOrec& h : snap.hot_orecs) {
    w.BeginObject();
    w.Key("orec_index").U64(h.orec_index);
    w.Key("aborts").U64(h.aborts);
    w.EndObject();
  }
  w.EndArray();
  w.Key("hot_orec_overflow").U64(snap.hot_orec_overflow);
  w.Key("wake_abort_ewma_permille").U64(snap.wake_abort_ewma_permille);
  w.Key("latency_ns").BeginObject();
  EmitHistogram(w, "commit", snap.commit_latency);
  EmitHistogram(w, "abort_to_commit", snap.abort_to_commit);
  EmitHistogram(w, "wait_duration", snap.wait_duration);
  EmitHistogram(w, "wake_latency", snap.wake_latency);
  w.EndObject();
  w.Key("condsync").BeginObject();
  w.Key("registry_bytes").U64(snap.condsync_registry_bytes);
  w.Key("wake_index_bytes").U64(snap.condsync_wake_index_bytes);
  w.Key("registry_segments").U64(static_cast<std::uint64_t>(snap.registry_segments));
  w.Key("wake_index_segments")
      .U64(static_cast<std::uint64_t>(snap.wake_index_segments));
  w.Key("registered_waiters")
      .U64(static_cast<std::uint64_t>(snap.registered_waiters));
  w.EndObject();
  w.Key("timer_wheel").BeginObject();
  w.Key("enabled").Bool(snap.wheel_enabled);
  w.Key("ticks").U64(snap.wheel.ticks);
  w.Key("scheduled").U64(snap.wheel.scheduled);
  w.Key("fired").U64(snap.wheel.fired);
  w.Key("stale").U64(snap.wheel.stale);
  w.Key("cascades").U64(snap.wheel.cascades);
  w.Key("max_lag_ns").U64(snap.wheel.max_lag_ns);
  w.EndObject();
  w.EndObject();
}

bool TmSystem::DumpTrace(const std::string& path) const {
  std::vector<ThreadTrace> threads;
  {
    SpinLockGuard g(registration_lock_);
    threads.reserve(descs_.size());
    for (const auto& d : descs_) {
      if (d != nullptr) {
        threads.push_back({d->tid, &d->obs.ring});
      }
    }
  }
#if TCS_TRACING
  constexpr bool kCompiled = true;
#else
  constexpr bool kCompiled = false;
#endif
  return WriteChromeTrace(path, threads, kCompiled);
}

}  // namespace tcs
