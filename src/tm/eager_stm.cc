// lint:hot-path — per-access TM fast path: TCS_DCHECK must not appear inside
// loops here (tools/lint_tm_discipline.py); use TCS_CHECK on slow paths.
#include "src/tm/eager_stm.h"

namespace tcs {

EagerStm::EagerStm(const TmConfig& config) : TmSystem(config) {}

void EagerStm::BeginTx(TxDesc& d) {
  d.start = clock_.Load();
  TCS_PROTO(proto_->OnClockObserved(d.tid, d.start));
  quiesce_.SetActive(d.tid, d.start);
}

// Algorithm 10, TxRead: atomically sample the orec, read the location, and re-check
// the orec; accept only locations that are unlocked and no newer than this
// transaction's start (or locked by this transaction).
TmWord EagerStm::ReadWord(TxDesc& d, const TmWord* addr) {
  Orec& o = orecs_.For(addr);
  for (;;) {
    // mo: acquire — pairs with the committer's release store [orec-publish];
    // seeing an unlocked version makes the data that commit wrote visible.
    std::uint64_t o1 = o.word.load(std::memory_order_acquire);
    TmWord val = LoadWordAcquire(addr);
    if (Orec::IsLocked(o1)) {
      if (Orec::Owner(o1) == d.tid) {
        return val;
      }
      AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, &o);
    }
    // mo: acquire — re-check leg of the sample/read/re-check snapshot; pairs
    // with [orec-publish] so an o1==o2 match proves no release intervened.
    std::uint64_t o2 = o.word.load(std::memory_order_acquire);
    if (o1 == o2 && Orec::Version(o1) <= d.start) {
      d.reads.push_back(&o);
      return val;
    }
    if (o1 != o2 || !cfg_.timestamp_extension ||
        !TryExtendTimestamp(d, ExtendSite::kValidation)) {
      AbortCurrent(d, Counter::kAborts, AbortCause::kReadValidation, &o);
    }
    // Extended: retake the whole sample. Re-checking the pre-extension o1
    // against the new start would accept a value a writer overwrote between
    // the o2 check and the extension's clock sample — a non-serializable mix.
  }
}

// Algorithm 10, TxWrite: acquire the covering lock (unless already held), log the
// old value, and update in place.
void EagerStm::WriteWord(TxDesc& d, TmWord* addr, TmWord val) {
  Orec& o = orecs_.For(addr);
  for (;;) {
    // mo: acquire — pairs with [orec-publish]; orders the undo-log snapshot of
    // the old value after the commit that published it.
    std::uint64_t w = o.word.load(std::memory_order_acquire);
    if (Orec::IsLocked(w)) {
      if (Orec::Owner(w) != d.tid) {
        AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, &o);
      }
      // A single lock can cover multiple locations, so the undo entry is
      // required even when the lock is already held (Algorithm 10's note).
      d.undo.Append(addr, LoadWordRelaxed(addr));
      StoreWordRelease(addr, val);
      return;
    }
    if (Orec::Version(w) > d.start) {
      // The location was committed past our start, but the write doesn't
      // depend on its old value (the undo entry is a rollback artifact, not a
      // read) — only the read set must stay valid. Attempt the shared
      // extension before aborting, exactly as lazy's commit-time acquisition
      // does, then re-sample the orec under the extended start.
      if (!cfg_.timestamp_extension ||
          !TryExtendTimestamp(d, ExtendSite::kEncounterAcquisition)) {
        AbortCurrent(d, Counter::kAborts, AbortCause::kEncounterAcquisition,
                     &o);
      }
      continue;
    }
    // mo: acq_rel — the acquire leg pairs with the previous owner's release
    // store [orec-publish] (their data writes become visible); the release leg
    // publishes the locked word other threads' acquire samples key on.
    if (o.word.compare_exchange_strong(w, Orec::MakeLocked(d.tid),
                                       std::memory_order_acq_rel)) {
      TCS_PROTO(proto_->OnOrecAcquire(&o, d.tid, Orec::Version(w)));
      d.locks.push_back({&o, Orec::Version(w)});
      d.undo.Append(addr, LoadWordRelaxed(addr));
      StoreWordRelease(addr, val);
      return;
    }
    // CAS lost a race; re-sample (a now-locked or too-new orec is handled
    // above on the next pass).
  }
}

// Algorithm 9, TxCommit.
bool EagerStm::CommitTx(TxDesc& d) {
  if (d.locks.empty()) {
    // Read-only: every read was consistent when performed; nothing to publish.
    d.reads.clear();
    quiesce_.SetInactive(d.tid);
    return false;
  }
  std::uint64_t end = clock_.Increment();
  TCS_PROTO(proto_->OnClockObserved(d.tid, end));
  if (end != d.start + 1) {
    // Some other writer committed since we began: validate the read set.
    for (Orec* o : d.reads) {
      // mo: acquire — pairs with [orec-publish]; an unlocked version ≤ start
      // proves the covered data is still the data this transaction read.
      std::uint64_t w = o->word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w)) {
        if (Orec::Owner(w) != d.tid) {
          AbortCurrent(d, Counter::kAborts, AbortCause::kLockCollision, o);
        }
      } else if (Orec::Version(w) > d.start) {
        AbortCurrent(d, Counter::kAborts, AbortCause::kCommitValidation, o);
      }
    }
  }
  SnapshotCommitOrecsIfNeeded(d);
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, end,
                                    ProtocolChecker::ReleaseKind::kCommit));
    // mo: release — [orec-publish]: orders this transaction's in-place data
    // writes before the unlocked version a reader's acquire sample pairs with.
    l.orec->word.store(Orec::MakeVersion(end), std::memory_order_release);
  }
  quiesce_.SetInactive(d.tid);
  if (cfg_.privatization_safety) {
    d.stats.Bump(Counter::kQuiesceCalls);
    quiesce_.WaitForReadersBefore(end, d.tid);
  }
  return true;
}

// Algorithm 11, TxAbort: undo writes in reverse, release locks with a bumped
// version so a concurrent TxRead's double-check cannot accept a speculative value,
// and blindly advance the clock so the bumped versions are legal.
void EagerStm::Rollback(TxDesc& d) {
  d.undo.UndoAll();
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, l.prev_version + 1,
                                    ProtocolChecker::ReleaseKind::kAbortBump));
    // mo: release — [orec-publish]: orders the undo restores before the
    // bumped unlocked version a reader's acquire sample pairs with.
    l.orec->word.store(Orec::MakeVersion(l.prev_version + 1),
                       std::memory_order_release);
  }
  if (!d.locks.empty()) {
    [[maybe_unused]] std::uint64_t bumped = clock_.Increment();
    TCS_PROTO(proto_->OnClockObserved(d.tid, bumped));
  }
  d.undo.Clear();
  d.locks.clear();
  d.reads.clear();
  d.redo.Clear();
  quiesce_.SetInactive(d.tid);
}

// OrElse partial rollback: restore the branch's in-place writes from the undo
// log, newest first, then release the orecs the branch acquired so concurrent
// transactions are not blocked on locks guarding writes that no longer exist.
//
// Release protocol (mirrors Algorithm 11's abort release): every location an
// above-mark lock covers was first written by the branch — a pre-branch write
// to the same orec would have acquired it below the mark — so after UndoTo the
// memory under it holds pre-transaction values, and the lock is released at
// prev_version + 1 (the bump keeps a concurrent TxRead's double-check from
// having accepted a speculative value mid-branch; the clock advance makes the
// bumped versions legal, exactly as in Rollback).
//
// The bumped versions can exceed this transaction's own start time, which
// would make its later reads — and commit-time validation of earlier reads —
// of those very locations abort it (and re-running the branch re-releases,
// livelocking). So the release is paired with the shared timestamp extension:
// advance d.start to the post-release clock after revalidating every read
// orec, tolerating the words this rollback itself just published (we held the
// lock in between, and the value beneath has been restored, so nobody else can
// have touched those locations). Anything else is foreign interference, and
// the transaction conservatively aborts — no worse than the conflict it was
// already heading for.
void EagerStm::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  // Always-on: OrElse partial rollback is rare (never per-access), and undoing
  // with a stale savepoint silently corrupts user data.
  TCS_CHECK(d.redo.Empty());
  d.undo.UndoTo(sp.undo_size);
  TCS_CHECK(sp.locks_size <= d.locks.size());
  if (sp.locks_size == d.locks.size()) {
    return;
  }
  std::vector<ReleasedOrecWord> released;
  released.reserve(d.locks.size() - sp.locks_size);
  for (std::size_t i = sp.locks_size; i < d.locks.size(); ++i) {
    const LockedOrec& l = d.locks[i];
    std::uint64_t w = Orec::MakeVersion(l.prev_version + 1);
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, l.prev_version + 1,
                                    ProtocolChecker::ReleaseKind::kAbortBump));
    // mo: release — [orec-publish]: orders the branch's undo restores before
    // the bumped unlocked version a reader's acquire sample pairs with.
    l.orec->word.store(w, std::memory_order_release);
    released.push_back({l.orec, w});
  }
  d.locks.resize(sp.locks_size);
  d.stats.Bump(Counter::kOrElseOrecReleases, released.size());
  [[maybe_unused]] std::uint64_t bumped = clock_.Increment();
  TCS_PROTO(proto_->OnClockObserved(d.tid, bumped));
  if (!TryExtendTimestamp(d, ExtendSite::kOrecRelease, released.data(),
                          released.size())) {
    AbortCurrent(d, Counter::kAborts, AbortCause::kOrElseAbandon);
  }
}

TmWord EagerStm::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  // Reads of locations this transaction wrote must log the value memory will hold
  // after rollback (Algorithm 5's consultation of `undos`); logging the speculative
  // value would make every later writer commit look like a change (§2.2.6).
  TmWord original;
  if (d.undo.FindOriginal(addr, &original)) {
    return original;
  }
  return observed;
}

// Algorithm 6: undo the writes *while still holding the write locks*, then re-read
// the given addresses through the instrumented path. Locations this transaction
// wrote read back their pre-transaction values; others validate against `start`.
void EagerStm::PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) {
  d.undo.UndoAll();
  d.undo.Clear();
  d.waitset.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    TmWord v = ReadWord(d, addrs[i]);
    d.waitset.Append(addrs[i], v);
  }
}

}  // namespace tcs
