#include "src/tm/eager_stm.h"

namespace tcs {

EagerStm::EagerStm(const TmConfig& config) : TmSystem(config) {}

void EagerStm::BeginTx(TxDesc& d) {
  d.start = clock_.Load();
  quiesce_.SetActive(d.tid, d.start);
}

// Algorithm 10, TxRead: atomically sample the orec, read the location, and re-check
// the orec; accept only locations that are unlocked and no newer than this
// transaction's start (or locked by this transaction).
TmWord EagerStm::ReadWord(TxDesc& d, const TmWord* addr) {
  Orec& o = orecs_.For(addr);
  std::uint64_t o1 = o.word.load(std::memory_order_acquire);
  TmWord val = LoadWordAcquire(addr);
  if (Orec::IsLocked(o1)) {
    if (Orec::Owner(o1) == d.tid) {
      return val;
    }
    AbortCurrent(d, Counter::kAborts);
  }
  std::uint64_t o2 = o.word.load(std::memory_order_acquire);
  if (o1 == o2 && Orec::Version(o1) <= d.start) {
    d.reads.push_back(&o);
    if (cfg_.timestamp_extension) {
      d.read_words.push_back(o1);
    }
    return val;
  }
  if (o1 == o2 && !Orec::IsLocked(o1) && cfg_.timestamp_extension &&
      TryExtendTimestamp(d) && Orec::Version(o1) <= d.start) {
    d.reads.push_back(&o);
    d.read_words.push_back(o1);
    return val;
  }
  AbortCurrent(d, Counter::kAborts);
}

bool EagerStm::TryExtendTimestamp(TxDesc& d) {
  std::uint64_t now = clock_.Load();
  for (std::size_t i = 0; i < d.reads.size(); ++i) {
    std::uint64_t w = d.reads[i]->word.load(std::memory_order_acquire);
    if (w == d.read_words[i]) {
      continue;
    }
    // An orec we read and later locked ourselves still covers consistent data.
    if (Orec::IsLocked(w) && Orec::Owner(w) == d.tid) {
      continue;
    }
    return false;
  }
  d.start = now;
  quiesce_.SetActive(d.tid, now);
  d.stats.Bump(Counter::kTimestampExtensions);
  return true;
}

// Algorithm 10, TxWrite: acquire the covering lock (unless already held), log the
// old value, and update in place.
void EagerStm::WriteWord(TxDesc& d, TmWord* addr, TmWord val) {
  Orec& o = orecs_.For(addr);
  std::uint64_t w = o.word.load(std::memory_order_acquire);
  if (Orec::IsLocked(w)) {
    if (Orec::Owner(w) != d.tid) {
      AbortCurrent(d, Counter::kAborts);
    }
    // A single lock can cover multiple locations, so the undo entry is required
    // even when the lock is already held (Algorithm 10's note).
    d.undo.Append(addr, LoadWordRelaxed(addr));
    StoreWordRelease(addr, val);
    return;
  }
  if (Orec::Version(w) <= d.start &&
      o.word.compare_exchange_strong(w, Orec::MakeLocked(d.tid),
                                     std::memory_order_acq_rel)) {
    d.locks.push_back({&o, Orec::Version(w)});
    d.undo.Append(addr, LoadWordRelaxed(addr));
    StoreWordRelease(addr, val);
    return;
  }
  AbortCurrent(d, Counter::kAborts);
}

// Algorithm 9, TxCommit.
bool EagerStm::CommitTx(TxDesc& d) {
  if (d.locks.empty()) {
    // Read-only: every read was consistent when performed; nothing to publish.
    d.reads.clear();
    d.read_words.clear();
    quiesce_.SetInactive(d.tid);
    return false;
  }
  std::uint64_t end = clock_.Increment();
  if (end != d.start + 1) {
    // Some other writer committed since we began: validate the read set.
    for (Orec* o : d.reads) {
      std::uint64_t w = o->word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w)) {
        if (Orec::Owner(w) != d.tid) {
          AbortCurrent(d, Counter::kAborts);
        }
      } else if (Orec::Version(w) > d.start) {
        AbortCurrent(d, Counter::kAborts);
      }
    }
  }
  SnapshotCommitOrecsIfNeeded(d);
  for (const LockedOrec& l : d.locks) {
    l.orec->word.store(Orec::MakeVersion(end), std::memory_order_release);
  }
  quiesce_.SetInactive(d.tid);
  if (cfg_.privatization_safety) {
    d.stats.Bump(Counter::kQuiesceCalls);
    quiesce_.WaitForReadersBefore(end, d.tid);
  }
  return true;
}

// Algorithm 11, TxAbort: undo writes in reverse, release locks with a bumped
// version so a concurrent TxRead's double-check cannot accept a speculative value,
// and blindly advance the clock so the bumped versions are legal.
void EagerStm::Rollback(TxDesc& d) {
  d.undo.UndoAll();
  for (const LockedOrec& l : d.locks) {
    l.orec->word.store(Orec::MakeVersion(l.prev_version + 1),
                       std::memory_order_release);
  }
  if (!d.locks.empty()) {
    clock_.Increment();
  }
  d.undo.Clear();
  d.locks.clear();
  d.reads.clear();
  d.read_words.clear();
  d.redo.Clear();
  quiesce_.SetInactive(d.tid);
}

// OrElse partial rollback: restore the branch's in-place writes from the undo
// log, newest first. Orecs the branch locked stay locked — releasing them would
// need a version bump that could abort our own still-valid reads, and holding a
// lock for an undone write is merely pessimistic, never incorrect (commit will
// publish a new version for an unchanged location, like any undone write).
void EagerStm::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  TCS_DCHECK(d.redo.Empty());
  d.undo.UndoTo(sp.undo_size);
}

TmWord EagerStm::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  // Reads of locations this transaction wrote must log the value memory will hold
  // after rollback (Algorithm 5's consultation of `undos`); logging the speculative
  // value would make every later writer commit look like a change (§2.2.6).
  TmWord original;
  if (d.undo.FindOriginal(addr, &original)) {
    return original;
  }
  return observed;
}

// Algorithm 6: undo the writes *while still holding the write locks*, then re-read
// the given addresses through the instrumented path. Locations this transaction
// wrote read back their pre-transaction values; others validate against `start`.
void EagerStm::PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) {
  d.undo.UndoAll();
  d.undo.Clear();
  d.waitset.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    TmWord v = ReadWord(d, addrs[i]);
    d.waitset.Append(addrs[i], v);
  }
}

}  // namespace tcs
