// The TM operates at machine-word granularity, like TinySTM / TL2 / GCC's libitm.
// All transactional data accesses go through std::atomic_ref so that racy-by-design
// STM reads (read data, then re-check the ownership record) have defined behavior.
#ifndef TCS_TM_WORD_H_
#define TCS_TM_WORD_H_

#include <atomic>
#include <cstdint>

namespace tcs {

using TmWord = std::uintptr_t;
static_assert(sizeof(TmWord) == 8, "tcsync assumes a 64-bit platform");

// mo: acquire — the data leg of the sample/read/re-check snapshot; combined
// with the orec re-check it pairs with a committer's [orec-publish] release.
inline TmWord LoadWordAcquire(const TmWord* addr) {
  return std::atomic_ref<TmWord>(*const_cast<TmWord*>(addr))
      .load(std::memory_order_acquire);
}

// mo: relaxed — reads of data this transaction owns (undo snapshot under a
// held orec) or values revalidated later through the orec protocol.
inline TmWord LoadWordRelaxed(const TmWord* addr) {
  return std::atomic_ref<TmWord>(*const_cast<TmWord*>(addr))
      .load(std::memory_order_relaxed);
}

// mo: release — transactional data store; ordered before the owning orec's
// release store [orec-publish], which is what readers actually synchronize on.
inline void StoreWordRelease(TmWord* addr, TmWord val) {
  std::atomic_ref<TmWord>(*addr).store(val, std::memory_order_release);
}

}  // namespace tcs

#endif  // TCS_TM_WORD_H_
