// The TM operates at machine-word granularity, like TinySTM / TL2 / GCC's libitm.
// All transactional data accesses go through std::atomic_ref so that racy-by-design
// STM reads (read data, then re-check the ownership record) have defined behavior.
#ifndef TCS_TM_WORD_H_
#define TCS_TM_WORD_H_

#include <atomic>
#include <cstdint>

namespace tcs {

using TmWord = std::uintptr_t;
static_assert(sizeof(TmWord) == 8, "tcsync assumes a 64-bit platform");

inline TmWord LoadWordAcquire(const TmWord* addr) {
  return std::atomic_ref<TmWord>(*const_cast<TmWord*>(addr))
      .load(std::memory_order_acquire);
}

inline TmWord LoadWordRelaxed(const TmWord* addr) {
  return std::atomic_ref<TmWord>(*const_cast<TmWord*>(addr))
      .load(std::memory_order_relaxed);
}

inline void StoreWordRelease(TmWord* addr, TmWord val) {
  std::atomic_ref<TmWord>(*addr).store(val, std::memory_order_release);
}

}  // namespace tcs

#endif  // TCS_TM_WORD_H_
