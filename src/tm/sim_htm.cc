// lint:hot-path — per-access TM fast path: TCS_DCHECK must not appear inside
// loops here (tools/lint_tm_discipline.py); use TCS_CHECK on slow paths.
#include "src/tm/sim_htm.h"

#include "src/common/cpu.h"
#include "src/obs/trace.h"

namespace tcs {

namespace {

bool SameArgs(const WaitArgs& a, const WaitArgs& b) {
  if (a.n != b.n) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.n; ++i) {
    if (a.v[i] != b.v[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

SimHtm::SimHtm(const TmConfig& config) : TmSystem(config) {
  committing_ = std::make_unique<CommitFlag[]>(
      static_cast<std::size_t>(config.max_threads));
}

std::uint8_t SimHtm::RegisterPred(WaitPredFn fn, const WaitArgs& args) {
  SpinLockGuard g(pred_table_lock_);
  // Index 0 means "unregistered"; kHtmAbortCondSync is reserved.
  for (int i = 1; i < static_cast<int>(kHtmAbortCondSync); ++i) {
    PredEntry& e = pred_table_[static_cast<std::size_t>(i)];
    if (e.fn == fn && SameArgs(e.args, args)) {
      return static_cast<std::uint8_t>(i);
    }
    if (e.fn == nullptr) {
      e.fn = fn;
      e.args = args;
      // mo: release — publishes the entry just written above; pairs with the
      // acquire load in LookupPred so a looked-up index reads initialized data.
      pred_table_size_.fetch_add(1, std::memory_order_release);
      return static_cast<std::uint8_t>(i);
    }
  }
  return 0;
}

std::uint8_t SimHtm::LookupPred(WaitPredFn fn, const WaitArgs& args) {
  // mo: acquire — pairs with the release fetch_add in RegisterPred; entries
  // below `n` are fully initialized.
  int n = pred_table_size_.load(std::memory_order_acquire);
  for (int i = 1; i <= n && i < static_cast<int>(kHtmAbortCondSync); ++i) {
    const PredEntry& e = pred_table_[static_cast<std::size_t>(i)];
    if (e.fn == fn && SameArgs(e.args, args)) {
      return static_cast<std::uint8_t>(i);
    }
  }
  return 0;
}

void SimHtm::MaybeHwPredTableDeschedule(TxDesc& d, WaitPredFn fn,
                                        const WaitArgs& args) {
  if (!cfg_.htm_pred_table || d.htm_serial) {
    return;
  }
  std::uint8_t code = LookupPred(fn, args);
  if (code == 0) {
    return;  // unregistered combination: take the software-mode path
  }
  // The hardware transaction aborts with `code`; the (simulated) abort handler
  // recovers ⟨fn, args⟩ from the table and descheds directly — no serial
  // re-execution of the transaction body (§2.2.6).
  d.htm_abort_code = code;
  d.stats.Bump(Counter::kHtmExplicitAborts);
  d.stats.Bump(Counter::kHtmPredTableFastPath);
  d.obs.causes.Bump(AbortCause::kHtmExplicit);
  Rollback(d);
  d.nesting = 0;
  Deschedule(pred_table_[code].fn, pred_table_[code].args);
}

void SimHtm::EnterSerial(TxDesc& d) {
  serial_entry_lock_.Lock();
  // mo: seq_cst — [serial-token] Dekker: the token store must be totally
  // ordered against every committer's flag store/re-check in CommitTx.
  // seq_cst-required: Dekker write leg — W(token)/R(flags) vs the committer's
  // W(flag)/R(token); a release store would let both sides miss each other.
  serial_owner_.store(d.tid, std::memory_order_seq_cst);
  // mo: seq_cst — [serial-token]: same total order as the token store, so a
  // passive hardware transaction's seq re-check catches a full serial section.
  // seq_cst-required: must sit in the token store's total order; otherwise a
  // full enter/exit serial section could hide between a transaction's token
  // poll and its seq baseline.
  serial_seq_.fetch_add(1, std::memory_order_seq_cst);
  // Drain hardware commits that began before the token was visible.
  for (int t = 0; t < cfg_.max_threads; ++t) {
    // mo: seq_cst — [serial-token] Dekker: either the committer's flag store
    // is ordered before our token store (we wait here), or it is after and the
    // committer's re-check sees the token and aborts.
    // seq_cst-required: Dekker read leg of the drain; an acquire load could
    // miss a flag whose store is unordered with our token store.
    while (committing_[t].v.load(std::memory_order_seq_cst) != 0) {
      CpuRelax();
    }
  }
  d.htm_serial = true;
  d.stats.Bump(Counter::kHtmFallbacks);
  TCS_TRACE_EVENT(d, TraceEvent::kHtmFallback, 0);
}

void SimHtm::ExitSerial(TxDesc& d) {
  d.htm_serial = false;
  // mo: seq_cst — [serial-token]: release the token in the same total order
  // hardware transactions poll it in (BeginTx / SerialInterference).
  // seq_cst-required: the token word anchors the Dekker; keeping every access
  // in the single total order is what the exclusion argument quantifies over.
  serial_owner_.store(-1, std::memory_order_seq_cst);
  serial_entry_lock_.Unlock();
}

void SimHtm::BeginTx(TxDesc& d) {
  if (d.htm_software_next || d.htm_attempts >= cfg_.htm_max_attempts) {
    // GCC progress rule: after repeated hardware aborts (or an explicit request
    // from the condition-synchronization layer), suspend concurrency and run
    // serially-irrevocably in software.
    EnterSerial(d);
    d.start = clock_.Load();
    TCS_PROTO(proto_->OnClockObserved(d.tid, d.start));
    quiesce_.SetActive(d.tid, d.start);
    return;
  }
  d.htm_serial = false;
  // A hardware transaction cannot start while a serial transaction runs.
  // mo: seq_cst — [serial-token]: poll the token in the same total order
  // EnterSerial/ExitSerial store it in.
  // seq_cst-required: Dekker read leg — the poll must not be reorderable
  // around the seq baseline load below.
  while (serial_owner_.load(std::memory_order_seq_cst) != -1) {
    CpuYield();
  }
  // mo: seq_cst — [serial-token]: baseline for SerialInterference's seq
  // re-check; ordered after the token poll above so a serial section between
  // the two is caught by either.
  // seq_cst-required: the baseline must sit between the token poll and later
  // re-checks in the single total order; acquire would allow a stale baseline
  // that masks a completed serial section.
  d.htm_serial_seq0 = serial_seq_.load(std::memory_order_seq_cst);
  d.start = clock_.Load();
  TCS_PROTO(proto_->OnClockObserved(d.tid, d.start));
  quiesce_.SetActive(d.tid, d.start);
}

void SimHtm::HwAbort(TxDesc& d, Counter reason, AbortCause cause,
                     const Orec* conflict) {
  d.htm_attempts++;
  if (reason == Counter::kHtmCapacityAborts) {
    // A capacity overflow will recur; go straight to the software fallback.
    d.htm_attempts = cfg_.htm_max_attempts;
  }
  AbortCurrent(d, reason, cause, conflict);
}

TmWord SimHtm::ReadWord(TxDesc& d, const TmWord* addr) {
  if (d.htm_serial) {
    // Serial-irrevocable software mode: direct access, no concurrency.
    return LoadWordAcquire(addr);
  }
  if (SerialInterference(d)) {
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict);
  }
  TmWord v;
  if (d.redo.Lookup(addr, &v)) {
    return v;
  }
  Orec& line = orecs_.For(addr);
  // mo: acquire — pairs with the committer's release store [orec-publish];
  // seeing an unlocked line version makes the written-back data visible.
  std::uint64_t w1 = line.word.load(std::memory_order_acquire);
  if (Orec::IsLocked(w1)) {
    if (Orec::Owner(w1) == d.tid) {
      // Line owned by us but this word not in the redo log: memory is clean.
      return LoadWordAcquire(addr);
    }
    // Requester loses: encountering another transaction's line aborts us, the
    // eager behavior that makes HTM abort on read-write conflicts lazy STM
    // tolerates (§2.4.1).
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict, &line);
  }
  v = LoadWordAcquire(addr);
  // mo: acquire — re-check leg of the sample/read/re-check snapshot; pairs
  // with [orec-publish] so a w1==w2 match proves no release intervened.
  std::uint64_t w2 = line.word.load(std::memory_order_acquire);
  if (w1 != w2 || Orec::Version(w1) > d.start) {
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict, &line);
  }
  if (d.reads.empty() || d.reads.back() != &line) {
    d.reads.push_back(&line);
    if (d.reads.size() > cfg_.htm_read_capacity_lines) {
      HwAbort(d, Counter::kHtmCapacityAborts, AbortCause::kHtmCapacity);
    }
  }
  return v;
}

void SimHtm::WriteWord(TxDesc& d, TmWord* addr, TmWord val) {
  if (d.htm_serial) {
    d.undo.Append(addr, LoadWordRelaxed(addr));
    StoreWordRelease(addr, val);
    return;
  }
  if (SerialInterference(d)) {
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict);
  }
  Orec& line = orecs_.For(addr);
  // mo: acquire — pairs with [orec-publish]; the CAS below must key on a line
  // version published by a completed release.
  std::uint64_t w = line.word.load(std::memory_order_acquire);
  if (Orec::IsLocked(w)) {
    if (Orec::Owner(w) != d.tid) {
      HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict, &line);
    }
  } else if (Orec::Version(w) > d.start ||
             // mo: acq_rel — the acquire leg pairs with the previous owner's
             // release store [orec-publish]; the release leg publishes the
             // locked word other threads' acquire samples key on.
             !line.word.compare_exchange_strong(w, Orec::MakeLocked(d.tid),
                                                std::memory_order_acq_rel)) {
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict, &line);
  } else {
    TCS_PROTO(proto_->OnOrecAcquire(&line, d.tid, Orec::Version(w)));
    d.locks.push_back({&line, Orec::Version(w)});
    if (d.locks.size() > cfg_.htm_write_capacity_lines) {
      HwAbort(d, Counter::kHtmCapacityAborts, AbortCause::kHtmCapacity);
    }
  }
  d.redo.Put(addr, val);
}

bool SimHtm::CommitTx(TxDesc& d) {
  if (d.htm_serial) {
    bool writer = !d.undo.Empty();
    // Serial mode holds no orecs; the targeted wake pass derives the write
    // set's lines from the undo log before it is discarded.
    SnapshotCommitOrecsFromUndoIfNeeded(d);
    d.undo.Clear();
    d.reads.clear();
    quiesce_.SetInactive(d.tid);
    ExitSerial(d);
    return writer;
  }
  if (d.redo.Empty()) {
    d.reads.clear();
    quiesce_.SetInactive(d.tid);
    return false;
  }
  // Announce the commit so serial entry drains us, then re-check the token
  // (Dekker-style: either we see the token and abort, or serial entry sees our
  // flag and waits).
  // mo: seq_cst — [serial-token] Dekker: the flag store must be totally
  // ordered against EnterSerial's token store and drain loop.
  // seq_cst-required: Dekker write leg — W(flag)/R(token) vs the entrant's
  // W(token)/R(flags); release would let both sides miss each other.
  committing_[d.tid].v.store(1, std::memory_order_seq_cst);
  if (SerialInterference(d)) {
    HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict);
  }
  std::uint64_t end = clock_.Increment();
  TCS_PROTO(proto_->OnClockObserved(d.tid, end));
  if (end != d.start + 1) {
    for (Orec* line : d.reads) {
      // mo: acquire — pairs with [orec-publish]; an unlocked version ≤ start
      // proves the covered lines still hold the data this transaction read.
      std::uint64_t w = line->word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w)) {
        if (Orec::Owner(w) != d.tid) {
          HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict,
                  line);
        }
      } else if (Orec::Version(w) > d.start) {
        HwAbort(d, Counter::kHtmConflictAborts, AbortCause::kHtmConflict,
                line);
      }
    }
  }
  SnapshotCommitOrecsIfNeeded(d);
  d.redo.WriteBack();
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, end,
                                    ProtocolChecker::ReleaseKind::kCommit));
    // mo: release — [orec-publish]: orders the redo write-back before the
    // unlocked version a reader's acquire sample pairs with.
    l.orec->word.store(Orec::MakeVersion(end), std::memory_order_release);
  }
  // mo: seq_cst — [serial-token] Dekker: clearing the flag in the same total
  // order EnterSerial's drain loop polls it in.
  // seq_cst-required: the drain loop's exit decision quantifies over the
  // single total order of flag accesses.
  committing_[d.tid].v.store(0, std::memory_order_seq_cst);
  quiesce_.SetInactive(d.tid);
  if (cfg_.privatization_safety) {
    // Real HTM commits are atomic and privatization-safe by construction; the
    // emulated write-back is not, so reuse the STM quiescence fence.
    d.stats.Bump(Counter::kQuiesceCalls);
    quiesce_.WaitForReadersBefore(end, d.tid);
  }
  return true;
}

void SimHtm::Rollback(TxDesc& d) {
  if (d.htm_serial) {
    d.undo.UndoAll();
    d.undo.Clear();
    d.reads.clear();
    d.redo.Clear();
    d.locks.clear();
    quiesce_.SetInactive(d.tid);
    ExitSerial(d);
    return;
  }
  // Buffered writes never reached memory; restore exact line versions.
  for (const LockedOrec& l : d.locks) {
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, l.prev_version,
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: memory under the line was never modified,
    // but the unlock itself must still pair with concurrent acquire samples.
    l.orec->word.store(Orec::MakeVersion(l.prev_version), std::memory_order_release);
  }
  // mo: seq_cst — [serial-token] Dekker: clearing the flag in the same total
  // order EnterSerial's drain loop polls it in.
  // seq_cst-required: the drain loop's exit decision quantifies over the
  // single total order of flag accesses.
  committing_[d.tid].v.store(0, std::memory_order_seq_cst);
  d.locks.clear();
  d.reads.clear();
  d.redo.Clear();
  d.undo.Clear();
  quiesce_.SetInactive(d.tid);
}

// OrElse partial rollback. In hardware mode writes are buffered (redo log,
// like lazy STM); in serial-irrevocable software mode they are in place with
// undo logging (like eager STM). Buffered mode releases the lines the branch
// acquired at their exact pre-acquisition version: memory was never touched,
// so no version bump is needed (the same reasoning as Rollback's restore), a
// re-acquisition by the surviving branch validates exactly as the first one
// did, and this transaction's own reads of those lines stay valid.
void SimHtm::PartialRollback(TxDesc& d, const TxSavepoint& sp) {
  if (d.htm_serial) {
    d.undo.UndoTo(sp.undo_size);
    return;
  }
  d.redo.RollbackTo(sp.redo);
  // Always-on: OrElse partial rollback is rare, and a stale savepoint here
  // would release (and corrupt) lines the surviving branch still owns.
  TCS_CHECK(sp.locks_size <= d.locks.size());
  std::size_t released = d.locks.size() - sp.locks_size;
  for (std::size_t i = sp.locks_size; i < d.locks.size(); ++i) {
    const LockedOrec& l = d.locks[i];
    TCS_PROTO(proto_->OnOrecRelease(l.orec, d.tid, l.prev_version,
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: buffered writes never reached memory; the
    // unlock still pairs with concurrent acquire samples.
    l.orec->word.store(Orec::MakeVersion(l.prev_version),
                       std::memory_order_release);
  }
  d.locks.resize(sp.locks_size);
  if (released > 0) {
    d.stats.Bump(Counter::kOrElseOrecReleases, released);
    if (cfg_.timestamp_extension) {
      // Unlike eager's prev+1 bump, the exact-version release leaves the
      // transaction consistent as-is, so the shared extension is opportunistic
      // here: on success the surviving branch tolerates more foreign commits
      // before aborting; on failure `start` is untouched and commit-time
      // validation still decides.
      TryExtendTimestamp(d, ExtendSite::kOrecRelease);
    }
  }
}

TmWord SimHtm::PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) {
  // Waitset logging only happens in serial software mode (hardware transactions
  // cannot publish waitsets), where updates are in place with undo logging.
  TmWord original;
  if (d.undo.FindOriginal(addr, &original)) {
    return original;
  }
  return observed;
}

void SimHtm::PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) {
  TCS_CHECK_MSG(d.htm_serial, "Await in hardware mode must switch to software first");
  d.undo.UndoAll();
  d.undo.Clear();
  d.waitset.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    TmWord v = LoadWordAcquire(addrs[i]);
    d.waitset.Append(addrs[i], v);
  }
}

bool SimHtm::NeedsSoftwareForCondSync(TxDesc& d) { return !d.htm_serial; }

bool SimHtm::EnterWakeClaimRegion(TxDesc& d) {
  // A CAS wake claim locks the slot's covering orec and writes the slot word
  // directly — safe against hardware transactions (they respect orecs) but
  // not against a serial-irrevocable writer, which bypasses orecs entirely.
  // Join the same Dekker handshake a hardware commit uses: announce, then
  // re-check the token. Either the serial entrant sees our flag and drains
  // us, or we see its token/seq and bail to the wake transaction (whose
  // Begin participates in serial entry properly).
  // (SerialInterference's seq re-check is NOT used here: its baseline seq
  // sample belongs to the last transaction, and a serial section that fully
  // completed before this region began is harmless — its writes are settled.)
  // mo: seq_cst — [serial-token] Dekker: the flag store must be totally
  // ordered against EnterSerial's token store and drain loop.
  // seq_cst-required: Dekker write leg — W(flag)/R(token) vs the entrant's
  // W(token)/R(flags); release would let both sides miss each other.
  committing_[d.tid].v.store(1, std::memory_order_seq_cst);
  // mo: seq_cst — [serial-token] Dekker: either our flag store precedes the
  // serial entrant's token store (its drain loop waits on us), or the token
  // store precedes this load (we see it and bail).
  // seq_cst-required: Dekker read leg — the re-check after the flag store is
  // the half that makes the exclusion total; acquire could read a stale -1.
  if (serial_owner_.load(std::memory_order_seq_cst) != -1) {
    // mo: seq_cst — [serial-token] Dekker: clearing the flag in the same
    // total order EnterSerial's drain loop polls it in.
    // seq_cst-required: the drain loop's exit decision quantifies over the
    // single total order of flag accesses.
    committing_[d.tid].v.store(0, std::memory_order_seq_cst);
    return false;
  }
  return true;
}

void SimHtm::ExitWakeClaimRegion(TxDesc& d) {
  // mo: seq_cst — [serial-token] Dekker: clearing the flag in the same total
  // order EnterSerial's drain loop polls it in.
  // seq_cst-required: the drain loop's exit decision quantifies over the
  // single total order of flag accesses.
  committing_[d.tid].v.store(0, std::memory_order_seq_cst);
}

void SimHtm::SwitchToSoftwareMode(TxDesc& d, bool enable_retry_logging) {
  // The hardware transaction aborts with the condition-synchronization code and
  // the dispatcher re-executes it serially, where escape actions are legal.
  d.htm_abort_code = kHtmAbortCondSync;
  d.htm_software_next = true;
  if (enable_retry_logging) {
    d.retry_logging = true;
  }
  d.skip_backoff = true;
  AbortCurrent(d, Counter::kHtmExplicitAborts, AbortCause::kHtmExplicit);
}

}  // namespace tcs
