// Dynamic TM protocol checker: shadow-state verification of the runtime's core
// correctness protocols, compile-gated behind TCS_PROTOCOL_CHECKS.
//
// TSan finds data races; TCS_CHECK finds locally-visible broken invariants.
// Neither can see a *protocol* violation — a sequence of individually-racy-free
// steps that breaks a cross-thread contract, like an orec released at the wrong
// version (torn transactional state: a concurrent reader's double-check may
// accept a speculative value) or a wake-path semaphore posted twice or before
// its claiming transaction committed (a double or lost wakeup). The checker
// maintains shadow state beside the real structures and verifies, at every hook
// point, that the observed transition is one the protocol allows:
//
//  * Orec lock/release discipline — an orec is acquired only from the unlocked
//    state, released only by its shadow owner, its version never decreases, and
//    each release kind lands exactly where its contract says: commits publish a
//    version strictly above the pre-acquisition version, abort releases restore
//    exactly `prev` (lazy STM, sim-HTM buffered mode: memory was never touched)
//    or exactly `prev + 1` (eager STM rollback and OrElse partial rollback: the
//    bump invalidates concurrent double-checks; see eager_stm.cc).
//  * Global-clock monotonicity — every clock value a thread observes (begin
//    sample, commit increment, rollback bump, extension re-sample) is
//    non-decreasing per thread, and a timestamp extension only moves a
//    transaction's start forward. Read-read coherence on the single clock word
//    guarantees per-thread monotonicity for ANY memory order, so this check
//    stays sound under the planned memory-order diet (ROADMAP) and instead
//    catches torn clock state, accidental resets, and shadow/desc divergence.
//  * WakeIndex registration balance — each tid's Add (indexed or global) and
//    Remove alternate strictly, and Remove runs on the thread that performed
//    the Add (the owner-thread-only contract wake_index.h documents; violating
//    it makes the owner-side bookkeeping a data race).
//  * WaiterRegistry presence-bit balance — MarkRegistered/UnmarkRegistered
//    alternate strictly per tid.
//  * Wake claim/post pairing — a waiter slot claimed by a committed wake batch
//    (the transactional asleep 1→0 transition in deschedule.cc) is posted
//    exactly once, and a wake-path post never happens without a committed
//    claim. A violation here IS a double or lost wakeup.
//  * Segment publication balance — each 256-tid segment control block of the
//    segmented WaiterRegistry / WakeIndex is published at most once (the
//    [seg-publish] CAS admits one winner; a double report means a lost CAS
//    racer leaked its block into the directory or a directory entry was
//    overwritten).
//
// The checker is passive shadow state: it never synchronizes the checked code
// (its shadow writes ride the happens-before edges the real protocol already
// provides) and it is compiled out entirely — hooks and all — unless the CMake
// option TCS_PROTOCOL_CHECKS is ON. The class itself is always built so tests
// can drive hook sequences directly and assert that seeded violations fire.
#ifndef TCS_TM_PROTOCOL_CHECKER_H_
#define TCS_TM_PROTOCOL_CHECKER_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace tcs {

struct Orec;
class OrecTable;

// Wraps each protocol hook call site. Compiles to nothing (arguments are not
// evaluated, named entities need not exist) unless TCS_PROTOCOL_CHECKS is on,
// so hooks cost zero in production builds.
#if TCS_PROTOCOL_CHECKS
#define TCS_PROTO(...) \
  do {                 \
    __VA_ARGS__;       \
  } while (0)
#else
#define TCS_PROTO(...) \
  do {                 \
  } while (0)
#endif

class ProtocolChecker {
 public:
  // How an orec's lock is being released, which decides the version contract.
  enum class ReleaseKind : int {
    kCommit,      // publish the commit timestamp: strictly above pre-acquisition
    kAbortBump,   // eager rollback / OrElse release: exactly prev + 1
    kAbortExact,  // lazy / sim-HTM buffered rollback: exactly prev
  };

  // `orecs` provides the pointer→index mapping for the orec shadow array;
  // `max_threads` sizes the per-tid shadow slots. The checker holds a reference
  // to the table (same lifetime as the owning TmSystem, or the test fixture).
  ProtocolChecker(const OrecTable& orecs, int max_threads);

  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  // --- failure plumbing ---
  // Every violation bumps violations() and invokes the failure handler. The
  // default handler prints the protocol and detail and aborts (a violated
  // protocol means the run's results are meaningless); tests install a
  // counting handler so seeded violations can be asserted without dying.
  using FailureHandler = void (*)(void* ctx, const char* protocol,
                                  const char* detail);
  void SetFailureHandler(FailureHandler handler, void* ctx);
  std::uint64_t violations() const {
    // mo: relaxed — violations_ is a monotone counter; readers (test
    // assertions after joining worker threads) are ordered by thread join.
    return violations_.load(std::memory_order_relaxed);
  }

  // --- orec lock/release protocol ---
  // Called by the acquiring thread immediately AFTER its successful CAS to the
  // locked word (it owns the orec, so shadow writes cannot race another
  // acquirer), with the pre-acquisition version the CAS observed.
  void OnOrecAcquire(const Orec* o, int tid, std::uint64_t prev_version);
  // Called by the owner immediately BEFORE the release store (the word is
  // still locked, so no concurrent acquirer can reach its own hook yet), with
  // the version about to be published.
  void OnOrecRelease(const Orec* o, int tid, std::uint64_t new_version,
                     ReleaseKind kind);

  // --- global-clock monotonicity ---
  // Called with every clock value a thread obtains (Load or Increment result).
  void OnClockObserved(int tid, std::uint64_t value);
  // Called when TryExtendTimestamp advances a transaction's start time.
  void OnStartAdvanced(int tid, std::uint64_t old_start,
                       std::uint64_t new_start);

  // --- WakeIndex registration balance (owner-thread-only contract) ---
  void OnWakeRegister(int tid, bool indexed);
  void OnWakeDeregister(int tid);

  // --- WaiterRegistry presence-bit balance ---
  void OnPresenceMark(int tid);
  void OnPresenceUnmark(int tid);

  // --- batched wake claim/post pairing (deschedule.cc) ---
  // Called once per claim after the claiming wake transaction COMMITS (claims
  // of an aborted batch die with it and must not be reported).
  void OnWakeClaimCommitted(int waiter_tid);
  // Called once per claim made by the lock-free CAS fast path, after the
  // claiming orec has been released (the CAS claim has no enclosing wake
  // transaction — the orec release IS its commit point). Same pairing
  // contract as OnWakeClaimCommitted: exactly one post must follow.
  void OnWakeClaimCas(int waiter_tid);
  // Called by the waker immediately before posting the claimed waiter's wake
  // token (ParkingLot::Post).
  void OnWakePost(int waiter_tid);

  // --- segment publication balance (segmented registry / wake index) ---
  // Which segmented structure published a segment control block.
  enum class SegmentKind : int {
    kWaiterRegistry = 0,
    kWakeIndex = 1,
  };
  // Called by the thread whose directory CAS won, immediately after the CAS.
  // Each (kind, index) pair may be published at most once per structure
  // lifetime.
  void OnSegmentPublished(SegmentKind kind, int index);

 private:
  struct OrecShadow {
    // mo: relaxed — all three fields are written only by the thread that holds
    // the orec's lock, and read by the next acquirer; the orec word's own
    // acquire-CAS/release-store pair [orec-publish] carries the edge.
    std::atomic<int> owner{-1};
    std::atomic<std::uint64_t> prev_at_acquire{0};
    std::atomic<std::uint64_t> version{0};
  };

  struct TidShadow {
    // mo: relaxed — single-writer (the owning thread); cross-thread visibility
    // on tid-slot recycling is ordered by the descriptor registration lock.
    std::atomic<std::uint64_t> last_clock{0};
    std::atomic<std::uint64_t> wake_owner{0};  // hashed thread id, 0 = none
    std::atomic<int> wake_state{0};            // 0 none, 1 indexed, 2 global
    std::atomic<int> presence{0};
    // mo: relaxed RMW — claim (waker) and post (same waker, after commit) are
    // same-thread; a different waker can only claim after the waiter consumed
    // the post and re-registered, a chain ordered by the [park-handoff] token
    // edge itself.
    std::atomic<int> pending_posts{0};
  };

  void Fail(const char* protocol, const char* fmt, ...);
  OrecShadow& ShadowOf(const Orec* o);
  TidShadow& TidOf(int tid, const char* protocol);

  const OrecTable& orecs_;
  const int max_threads_;
  const int segment_shadow_words_;
  std::unique_ptr<OrecShadow[]> orec_shadow_;
  std::unique_ptr<TidShadow[]> tid_shadow_;
  // One published-bit per (kind, segment index); set via relaxed RMW (the
  // publishing CAS already serializes publication attempts).
  std::unique_ptr<std::atomic<std::uint64_t>[]> segment_shadow_[2];

  std::atomic<std::uint64_t> violations_{0};
  FailureHandler handler_;
  void* handler_ctx_ = nullptr;
};

}  // namespace tcs

#endif  // TCS_TM_PROTOCOL_CHECKER_H_
