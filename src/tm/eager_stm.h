// Eager word-based STM: in-place updates with undo logging, per-location versioned
// locks, and a global commit clock — the design of Appendix A (Algorithms 8-11),
// which models TinySTM / GCC's default "ml-wt" runtime.
//
// Eager semantics matter to the condition-synchronization layer in two ways:
//  * rolled-back memory must look "as if the transaction never ran" before a
//    descheduled thread publishes its waitset (Figure 2.1, time 1), and
//  * Await must undo writes *while still holding write locks* so the re-read
//    values are consistent (Algorithm 6's subtlety).
#ifndef TCS_TM_EAGER_STM_H_
#define TCS_TM_EAGER_STM_H_

#include "src/tm/tm_system.h"

namespace tcs {

class EagerStm final : public TmSystem {
 public:
  explicit EagerStm(const TmConfig& config);

 protected:
  void BeginTx(TxDesc& d) override;
  bool CommitTx(TxDesc& d) override;
  TmWord ReadWord(TxDesc& d, const TmWord* addr) override;
  void WriteWord(TxDesc& d, TmWord* addr, TmWord val) override;
  void Rollback(TxDesc& d) override;
  void PartialRollback(TxDesc& d, const TxSavepoint& sp) override;
  TmWord PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) override;
  void PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n) override;
};

}  // namespace tcs

#endif  // TCS_TM_EAGER_STM_H_
