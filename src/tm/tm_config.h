// Configuration for a TM domain (one tcs::Runtime instance).
#ifndef TCS_TM_TM_CONFIG_H_
#define TCS_TM_TM_CONFIG_H_

#include <cstddef>

namespace tcs {

// The three transaction-execution configurations evaluated in the paper (§2.4):
// eager STM ("ml-wt"/TinySTM-like), lazy STM (TL2-like), and best-effort HTM
// (simulated; see DESIGN.md "Substitutions").
enum class Backend : int {
  kEagerStm = 0,
  kLazyStm = 1,
  kSimHtm = 2,
};

const char* BackendName(Backend b);

struct TmConfig {
  Backend backend = Backend::kEagerStm;

  // log2 of the ownership-record table size (entries).
  std::size_t orec_table_log2 = 18;

  // Maximum number of threads that may ever register with this domain.
  // Registration past it fails loudly (TCS_CHECK in RegisterThread). The
  // capacity tier makes a large ceiling cheap: waiter-side structures
  // (WaiterRegistry, WakeIndex, QuiesceTable) allocate 256-thread segments
  // on first touch, so an unused ceiling costs a few directory words per
  // 256 tids, not slabs.
  int max_threads = 65536;

  // ---- Capacity-tier knobs ----
  // ParkingLot backend (ParkingLot::Backend numbering): 0 auto (futex on
  // Linux, else the mutex+condvar pool), 1 futex, 2 pool. The pool fallback
  // is also the portable reference implementation for tests.
  int park_backend = 0;
  // Route timed waits (RetryFor/AwaitFor/WaitPredFor deadlines) through the
  // shared hierarchical TimerWheel: N concurrent timed waits cost one ticker
  // thread and O(1) per tick instead of N independent kernel timeouts. Off,
  // each timed wait parks with its own deadline (ablation baseline; also the
  // pre-capacity-tier behavior).
  bool timer_wheel = true;
  // TimerWheel level-0 tick in microseconds: the granularity (and worst-case
  // added latency) of wheel-serviced timeouts. Timed waits never fire early;
  // they fire up to one tick late plus ticker scheduling lag.
  int timer_wheel_tick_us = 1000;

  // Run commit-time quiescence so privatization is safe (Appendix A).
  bool privatization_safety = true;

  // Eager/lazy STM: on a too-new read, try to extend the transaction's
  // timestamp by revalidating the read set instead of aborting (Appendix A
  // names this as the standard fix for its "overly conservative" abort; Riegel
  // et al. [22]). All extension callers — read validation, OrElse orec release,
  // sim-HTM buffered release — share one TmSystem::TryExtendTimestamp path;
  // eager's OrElse release extends unconditionally (its release bumps versions
  // past `start`, so the extension is correctness-relevant there).
  bool timestamp_extension = false;

  // ---- Simulated HTM knobs ----
  // Hardware attempts before falling back to serial-irrevocable software mode.
  // The paper's GCC runtime "suspends concurrency after a transaction aborts
  // twice, so that it may execute to completion".
  int htm_max_attempts = 2;
  // Best-effort capacity limits, in 64-byte cache lines (i7-class L1 budgets).
  std::size_t htm_read_capacity_lines = 4096;
  std::size_t htm_write_capacity_lines = 512;
  // §2.2.6 extension: use the 8-bit explicit-abort code as an index into a table
  // of registered WaitPred predicates so a hardware transaction can deschedule
  // without re-executing in software mode.
  bool htm_pred_table = false;

  // ---- Condition-synchronization knobs (ablations) ----
  // Wake at most one satisfied waiter per writer commit instead of all of them
  // (our mechanisms "essentially broadcast", §2.4.1; this knob quantifies that).
  bool wake_single = false;

  // Candidates per internal wake transaction in wakeWaiters. The paper's
  // Algorithm 4 re-checks each candidate in its own transaction; every check
  // then pays a full tx setup/commit (clock RMW included) on the committing
  // writer's critical path. Batching amortizes that: up to `wake_batch_size`
  // candidates are predicate-checked and claimed inside ONE wake transaction,
  // with all claimed semaphores posted strictly after it commits (see
  // deschedule.cc for why the no-lost-wakeup argument survives batching).
  // 1 reverts to the paper's per-candidate transactions (ablation baseline).
  // With adaptive_wake_batch on, this is the CAP on the effective batch size;
  // the actual batch scales with the candidate count and shrinks when the
  // recent wake-tx abort rate (EWMA in TxDesc) is high.
  int wake_batch_size = 8;

  // Lock-free CAS claim fast path: an uncontended waiter slot's asleep 1->0
  // transition is claimed by locking the slot's covering orec with a single
  // compare_exchange (plus a predicate-snapshot validation) instead of running
  // a full internal wake transaction. Contended / mid-registration slots fall
  // back to the batched wake transaction. Off reproduces PR 5's all-batched
  // behavior (ablation baseline).
  bool cas_claim_fast_path = true;

  // Scale the effective wake batch per commit: min(wake_batch_size,
  // candidate count), halved (or quartered) while the wake-tx abort-rate EWMA
  // is high so contended wake batches shrink toward the paper's per-candidate
  // baseline instead of repeatedly aborting large batches. Off uses the fixed
  // wake_batch_size (ablation baseline).
  bool adaptive_wake_batch = true;

  // Sharded wakeup index (src/condsync/wake_index.h): committing writers
  // wake-check only the waiters registered under shards their write-set orecs
  // cover, plus arbitrary-predicate waiters on the global fallback list.
  // Disabled, every writer commit re-checks every registered waiter (the
  // paper's original global scan — kept as the ablation baseline).
  bool targeted_wakeup = true;
  // Shard count for the wakeup index; power of two in [1, 4096]
  // (WakeIndex::kMaxShards). More shards mean fewer unrelated waiters
  // aliasing into the shards a hot writer touches — at 64 shards and 64
  // disjoint waiters a commit pays ~3 wake checks, at 1024 it pays ~1 — for
  // ~64 bytes of bitmap per shard.
  int wake_index_shards = 1024;

  // ---- Observability (src/obs/) ----
  // Record lifecycle events into per-thread TraceRings. Only effective in
  // builds with the TCS_TRACING CMake option ON (otherwise the hooks are
  // compiled out entirely); checked at thread registration, so flip it
  // before the worker threads first touch the domain.
  bool tracing = false;
  // TraceRing capacity in records per thread (each record is 24 bytes).
  // On overflow the oldest record is overwritten and kTraceDrops bumped.
  std::size_t trace_ring_capacity = std::size_t{1} << 14;
  // Record commit/abort-to-commit/wait/wake latency histograms. Cheap (two
  // steady_clock reads per committed transaction) but not free; benchmarks
  // chasing peak throughput can turn it off.
  bool latency_metrics = true;
};

}  // namespace tcs

#endif  // TCS_TM_TM_CONFIG_H_
