// Global logical clock counting writer commits (Appendix A; the TL2 technique).
//
// The increment is an acq_rel RMW: the chain of fetch_adds on the single clock word
// orders writer commits, which the condition-synchronization layer relies on when a
// committing writer decides (with plain atomic peeks) whether any waiter slots can
// be skipped. See WaiterRegistry for the argument.
#ifndef TCS_TM_VERSION_CLOCK_H_
#define TCS_TM_VERSION_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cache_line.h"

namespace tcs {

class alignas(kCacheLineBytes) VersionClock {
 public:
  // mo: acquire — [clock-chain]: pairs with the fetch_add chain below; a
  // transaction beginning at start S happens-after every commit with end ≤ S.
  std::uint64_t Load() const { return time_.load(std::memory_order_acquire); }

  // Returns the new (post-increment) time.
  // mo: seq_cst — [clock-chain] release/acquire leg, and the committer's
  // W-side of [quiesce-dekker].
  // seq_cst-required: the commit's increment must be totally ordered against
  // readers' SetActive stores so the quiescence scan and the reader's clock
  // sample cannot both miss each other (store-buffering shape); acq_rel on
  // this RMW would allow start < end with the scan seeing an inactive slot.
  std::uint64_t Increment() {
    return time_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

 private:
  std::atomic<std::uint64_t> time_{0};
};

}  // namespace tcs

#endif  // TCS_TM_VERSION_CLOCK_H_
