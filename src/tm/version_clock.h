// Global logical clock counting writer commits (Appendix A; the TL2 technique).
//
// The increment is an acq_rel RMW: the chain of fetch_adds on the single clock word
// orders writer commits, which the condition-synchronization layer relies on when a
// committing writer decides (with plain atomic peeks) whether any waiter slots can
// be skipped. See WaiterRegistry for the argument.
#ifndef TCS_TM_VERSION_CLOCK_H_
#define TCS_TM_VERSION_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cache_line.h"

namespace tcs {

class alignas(kCacheLineBytes) VersionClock {
 public:
  std::uint64_t Load() const { return time_.load(std::memory_order_acquire); }

  // Returns the new (post-increment) time.
  std::uint64_t Increment() {
    return time_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

 private:
  std::atomic<std::uint64_t> time_{0};
};

}  // namespace tcs

#endif  // TCS_TM_VERSION_CLOCK_H_
