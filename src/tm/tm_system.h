// TmSystem: one transactional-memory domain — a backend (eager STM, lazy STM, or
// simulated HTM) plus the condition-synchronization machinery layered on it.
//
// The class exposes the raw word-granularity hooks (Begin/Commit/Read/Write) that
// the Atomically() loop in core/transaction.h drives, and the paper's four
// condition-synchronization entry points:
//
//   Retry()    — Algorithm 5: wait until anything the attempt read changes.
//   Await()    — Algorithm 6: wait until one of the given addresses changes.
//   WaitPred() — Algorithm 7: wait until a user predicate holds.
//   Deschedule — Algorithm 4: the abstract mechanism the other three reduce to.
//
// plus the evaluation's baselines: RetryOrig() (Algorithm 1) and RestartNow().
#ifndef TCS_TM_TM_SYSTEM_H_
#define TCS_TM_TM_SYSTEM_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "src/common/assert.h"
#include "src/common/parking_lot.h"
#include "src/common/spin_lock.h"
#include "src/common/stats.h"
#include "src/common/timer_wheel.h"
#include "src/obs/abort_attribution.h"
#include "src/obs/latency_histogram.h"
#include "src/tm/orec_table.h"
#include "src/tm/protocol_checker.h"
#include "src/tm/quiesce.h"
#include "src/tm/tm_config.h"
#include "src/tm/tx_desc.h"
#include "src/tm/tx_exceptions.h"
#include "src/tm/version_clock.h"
#include "src/tm/word.h"

namespace tcs {

class WaiterRegistry;
class RetryOrigRegistry;
class WakeIndex;

// Outcome of a bounded wait (RetryFor/AwaitFor/WaitPredFor). A satisfied wait
// never *returns* — wakeup restarts the transaction body, which re-reads state
// and takes its normal path — so user code only ever observes kTimedOut from
// these calls; kSatisfied exists for adapters that translate the protocol into
// a plain boolean result.
enum class WaitResult : int {
  kSatisfied = 0,
  kTimedOut = 1,
};

// Timeout sentinel: a timed wait given kNoTimeout degrades to exactly its
// untimed counterpart (RetryFor(kNoTimeout) == Retry()).
inline constexpr std::chrono::nanoseconds kNoTimeout =
    std::chrono::nanoseconds::max();

class TmSystem {
 public:
  static std::unique_ptr<TmSystem> Create(const TmConfig& config);

  virtual ~TmSystem();

  TmSystem(const TmSystem&) = delete;
  TmSystem& operator=(const TmSystem&) = delete;

  const TmConfig& config() const { return cfg_; }
  Backend backend() const { return cfg_.backend; }

  // Returns the calling thread's descriptor, registering the thread on first use.
  TxDesc& Desc();

  // --- transaction lifecycle (drive through Atomically(), not directly) ---
  void Begin();
  void Commit();
  bool InTx() { return Desc().nesting > 0; }

  // Rolls the current attempt back and transfers control to the restart loop.
  [[noreturn]] void AbortSelf(Counter reason);

  // --- transactional data access (word granularity) ---
  TmWord Read(const TmWord* addr);
  void Write(TmWord* addr, TmWord val);

  // --- transactional allocation (Appendix A) ---
  void* TxAlloc(std::size_t bytes);
  void TxFree(void* p);

  // --- condition synchronization ---
  [[noreturn]] void Retry();
  [[noreturn]] void Await(const TmWord* const* addrs, std::size_t n);
  [[noreturn]] void WaitPred(WaitPredFn fn, const WaitArgs& args);
  [[noreturn]] void Deschedule(WaitPredFn fn, const WaitArgs& args);
  [[noreturn]] void RetryOrig();
  [[noreturn]] void RestartNow();

  // --- bounded (timed) condition synchronization ---
  // Like Retry/Await/WaitPred, but the wait is bounded by `timeout` of total
  // elapsed time (accumulated across the transaction's restarts). On expiry the
  // transaction restarts once more and the call returns kTimedOut from that
  // fresh attempt, leaving the attempt live and committable so the body can
  // take an alternative action atomically. These never return kSatisfied: a
  // wakeup restarts the body instead. The waiter's registry slot is always
  // deregistered before kTimedOut is delivered (no leaked waitset entries).
  // `wait_key` identifies the *call* (Tx passes the call site; AwaitFor derives
  // a key from the address list), so each timed wait arms its own deadline
  // instead of sharing one transaction-wide budget — see TxDesc::deadlines.
  WaitResult RetryFor(std::chrono::nanoseconds timeout, std::uint64_t wait_key = 0);
  WaitResult AwaitFor(const TmWord* const* addrs, std::size_t n,
                      std::chrono::nanoseconds timeout);
  WaitResult WaitPredFor(WaitPredFn fn, const WaitArgs& args,
                         std::chrono::nanoseconds timeout,
                         std::uint64_t wait_key = 0);

  // --- OrElse support (driven by Tx::OrElse in core/transaction.h) ---
  // Captures the attempt's speculative-write extent so an OrElse branch can be
  // partially rolled back if it retries.
  TxSavepoint TakeSavepoint();
  // Undoes everything the attempt did after `sp` was taken: in-place writes are
  // restored from the undo log, buffered writes dropped from the redo log, and
  // the branch's transactional allocations freed. Reads, acquired orecs, and
  // retry-waitset entries survive (see TxSavepoint's comment).
  void RollbackToSavepoint(const TxSavepoint& sp);
  // OrElse alternative bookkeeping: Retry() raises TxRetrySignal while >0.
  void EnterOrElse();
  void ExitOrElse();
  bool OrElseAltPending() { return Desc().orelse_alts > 0; }
  void OnOrElseFallback();

  // TMCondVar support: commits the in-flight transaction at a wait point (this is
  // the atomicity break of transactional condition variables) and queues `sig` to
  // run after commit.
  void CommitInFlight();
  void DeferSignal(const DeferredCvSignal& sig);

  // Runs `fn` as a complete runtime-internal transaction (registration
  // transactions, wake checks, condvar queue operations). Internal transactions
  // never trigger post-commit hooks, which keeps wakeWaiters from recursing.
  template <typename F>
  void RunInternalTx(F&& fn) {
    TxDesc& d = Desc();
    TCS_CHECK(d.nesting == 0);
    d.internal = true;
    // Internal transactions are independent of the surrounding user transaction's
    // hardware-retry budget and software-mode request; restore both afterwards.
    int saved_attempts = d.htm_attempts;
    bool saved_software = d.htm_software_next;
    d.htm_attempts = 0;
    d.htm_software_next = false;
    for (;;) {
      Begin();
      try {
        fn();
        Commit();
        break;
      } catch (const TxRestart&) {
        d.backoff.Pause();
      }
    }
    d.htm_attempts = saved_attempts;
    d.htm_software_next = saved_software;
    d.internal = false;
  }

  // Called by the restart loop between attempts.
  void OnRestart();

  // Post-commit pass that wakes satisfied waiters (Algorithm 4's wakeWaiters).
  // `write_orecs` is the committing writer's write-set orec snapshot: with
  // targeted wakeup it selects the wake-index shards to visit; when it is
  // empty (or targeting is disabled) the pass degrades to the paper's global
  // scan over every registered waiter. Candidates are wake-checked in batched
  // internal transactions of up to TmConfig::wake_batch_size, with claimed
  // semaphores posted strictly after each batch commits (see deschedule.cc
  // for the batched claim/post protocol).
  void WakeWaiters(const std::vector<const Orec*>& write_orecs);

  WaiterRegistry& waiters() { return *waiters_; }
  RetryOrigRegistry& retry_orig() { return *retry_orig_; }
  WakeIndex& wake_index() { return *wake_index_; }

  // The domain's parking lot: every waiter parks on its descriptor's ParkSpot
  // through this lot (futex-backed on Linux; see src/common/parking_lot.h).
  ParkingLot& parking() { return lot_; }
  // Parking spot of a registered thread (used by TMCondVar signalers and the
  // wake paths in deschedule.cc).
  ParkSpot& SpotOf(int tid);
  // Posts `tid`'s wake token (ParkingLot::Post on its spot).
  void PostParked(int tid) { lot_.Post(SpotOf(tid)); }

  // --- dynamic protocol checker (TCS_PROTOCOL_CHECKS builds) ---
  // Violations detected so far on this domain; always 0 when the checker is
  // compiled out (and on any clean run — see src/tm/protocol_checker.h).
  std::uint64_t ProtocolViolations() const;
  // The domain's checker, or nullptr when compiled out. Tests use it to
  // install a counting failure handler instead of the aborting default.
  ProtocolChecker* protocol_checker();

  // --- statistics ---
  TxStats AggregateStats() const;
  void ResetStats();

  // --- observability (src/obs/) ---
  // Merged view of the per-thread obs tables: abort causes, the four latency
  // histograms, and the hot-orec contention leaderboard (top N by abort
  // count, descending).
  struct ObsSnapshot {
    TxStats stats;
    std::array<std::uint64_t, kNumAbortCauses> abort_causes{};
    LatencyHistogram commit_latency;
    LatencyHistogram abort_to_commit;
    LatencyHistogram wait_duration;
    LatencyHistogram wake_latency;
    struct HotOrec {
      std::size_t orec_index;
      std::uint64_t aborts;
    };
    std::vector<HotOrec> hot_orecs;
    std::uint64_t hot_orec_overflow = 0;
    // Highest per-thread wake-transaction abort-rate EWMA (permille) — the
    // signal adaptive_wake_batch steers on (see TxDesc).
    std::uint64_t wake_abort_ewma_permille = 0;
    // --- capacity tier (segmented condsync structures + timer wheel) ---
    // Heap footprint of the waiter registry / wake index (directory plus every
    // allocated segment), and how many 256-tid segments each has materialized.
    std::uint64_t condsync_registry_bytes = 0;
    std::uint64_t condsync_wake_index_bytes = 0;
    int registry_segments = 0;
    int wake_index_segments = 0;
    // Currently registered (published) waiters.
    int registered_waiters = 0;
    // Timer-wheel counters (all zero when the wheel is disabled).
    bool wheel_enabled = false;
    TimerWheel::Stats wheel;
  };
  ObsSnapshot SnapshotObs(std::size_t top_n_orecs = 16) const;
  // Appends the snapshot as one JSON object (backend, counters, abort-cause
  // table, hot orecs, p50/p99/p999/mean per latency metric) to `w`, which
  // must be positioned where a value is expected.
  void SnapshotMetrics(class JsonWriter& w, std::size_t top_n_orecs = 16) const;
  // Writes every thread's TraceRing as Chrome trace-event JSON (Perfetto-
  // loadable). Compiled in all builds — without the TCS_TRACING option the
  // document is valid but empty, with "tracing_compiled": false so tools can
  // tell the difference. Quiesce the traced threads first (see trace_ring.h).
  bool DumpTrace(const std::string& path) const;

 protected:
  explicit TmSystem(const TmConfig& config);

  // Backend hooks. CommitTx returns true iff the transaction performed writes;
  // on validation failure it must roll back and throw TxRestart (via AbortCurrent).
  virtual void BeginTx(TxDesc& d) = 0;
  virtual bool CommitTx(TxDesc& d) = 0;
  virtual TmWord ReadWord(TxDesc& d, const TmWord* addr) = 0;
  virtual void WriteWord(TxDesc& d, TmWord* addr, TmWord val) = 0;
  // Undo writes, release locks, clear access sets; must leave the waitset intact.
  virtual void Rollback(TxDesc& d) = 0;

  // Partial rollback to an OrElse savepoint. The default handles both log
  // styles (undo entries above the mark restored in place, redo entries above
  // the mark dropped); backends refine it to assert their invariants.
  virtual void PartialRollback(TxDesc& d, const TxSavepoint& sp);

  // Value `addr` will hold after this transaction rolls back. Backends with
  // in-place updates consult the undo log (Algorithm 5's read of `undos`).
  virtual TmWord PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed);

  // Backend-specific part of Await (Algorithm 6): undo writes so memory shows
  // pre-transaction state, then re-read `addrs` through ReadWord into the waitset.
  virtual void PrepareAwait(TxDesc& d, const TmWord* const* addrs, std::size_t n);

  // Simulated HTM: true while executing as a hardware transaction, which cannot
  // publish a waitset or sleep (no escape actions, §2.2.2); condition
  // synchronization must abort and re-execute in software mode.
  virtual bool NeedsSoftwareForCondSync(TxDesc& d);

  // --- CAS claim fast path (non-transactional wake claiming) ---
  // The fast path in WakeWaiters claims a waiter slot by CAS-locking its
  // covering orec outside any transaction. That is sound for the STM backends
  // (all their commits respect orecs), but the simulated HTM's
  // serial-irrevocable software mode writes with NO orecs, protected only by
  // the Dekker handshake between committing_[] flags and the serial token.
  // EnterWakeClaimRegion makes the claimer a participant in that handshake
  // (or returns false: fall back to the wake transaction, which already
  // participates via Begin/Commit); ExitWakeClaimRegion leaves it. The
  // default (STM backends) is trivially true / no-op.
  virtual bool EnterWakeClaimRegion(TxDesc& d);
  virtual void ExitWakeClaimRegion(TxDesc& d);

  // §2.2.6 pred-table extension: if the (predicate, arguments) combination is
  // registered, a hardware transaction can deschedule through its 8-bit abort
  // code with no software-mode re-execution. Either descheds (never returns) or
  // returns to let the caller take the software-mode path. Default: no-op.
  virtual void MaybeHwPredTableDeschedule(TxDesc& d, WaitPredFn fn,
                                          const WaitArgs& args);
  // Aborts the hardware transaction and arranges a software-mode re-execution.
  [[noreturn]] virtual void SwitchToSoftwareMode(TxDesc& d, bool enable_retry_logging);

  // Shared abort path: rollback + allocation cleanup + restart exception.
  // `cause` attributes the abort for the per-thread cause table; `conflict`
  // (when the aborting site knows it) names the orec the transaction lost
  // on, feeding the hot-orec contention table.
  [[noreturn]] void AbortCurrent(TxDesc& d, Counter reason,
                                 AbortCause cause = AbortCause::kExplicit,
                                 const Orec* conflict = nullptr);

  // --- unified timestamp extension (Riegel et al. [22]) ---
  // Where an extension attempt originates, for the per-site stats counters:
  // a too-new read (kValidation), an OrElse branch's orec release
  // (kOrecRelease), lazy STM's commit-time validation — write-orec
  // acquisition and read-set revalidation alike (kCommitValidation) — or
  // eager STM's encounter-time write-orec acquisition on a too-new orec
  // (kEncounterAcquisition: the blind in-place write doesn't depend on the
  // location's old value, so intact reads make the acquisition salvageable,
  // mirroring lazy's commit-time case).
  enum class ExtendSite {
    kValidation,
    kOrecRelease,
    kCommitValidation,
    kEncounterAcquisition,
  };
  // An orec this transaction itself just released, with the word it published;
  // revalidation treats a read orec holding exactly that word as unchanged
  // (the value beneath was restored before the release, and we held the lock
  // in between, so nobody else can have touched it).
  struct ReleasedOrecWord {
    const Orec* orec;
    std::uint64_t word;
  };
  // The one extension path shared by every caller: eager/lazy read validation
  // failure, eager OrElse orec release (which must tolerate its own release
  // bumps), and the simulated HTM's buffered-mode branch-line release.
  // Revalidates the read set against the current clock — an unlocked read orec
  // at or below `start` is unchanged since it was read, because committed
  // versions always exceed any concurrently sampled start — and on success
  // advances d.start (and the quiesce entry) to the sampled clock. Returns
  // false (leaving d.start untouched) if any read orec shows foreign
  // interference.
  bool TryExtendTimestamp(TxDesc& d, ExtendSite site,
                          const ReleasedOrecWord* released = nullptr,
                          std::size_t released_n = 0);

  // Deschedule's rollback: like an abort, but allocations are kept alive until
  // after wakeup because the published waitset may point into them (§2.2.4).
  void RollbackForDeschedule(TxDesc& d);

  // Snapshots the write-set orecs into d.commit_orecs when a post-commit
  // consumer needs them: Retry-Orig's intersection (Algorithm 1) or the
  // targeted wake index. Called by backends at commit time while d.locks is
  // still populated; the serial variant derives orecs from the undo log for
  // the simulated HTM's lock-free serial-irrevocable mode.
  void SnapshotCommitOrecsIfNeeded(TxDesc& d);
  void SnapshotCommitOrecsFromUndoIfNeeded(TxDesc& d);

  TmConfig cfg_;
  OrecTable orecs_;
  VersionClock clock_;
  QuiesceTable quiesce_;
#if TCS_PROTOCOL_CHECKS
  // Shadow-state verifier for the orec/clock/wake protocols; every hook call
  // site below and in the backends is wrapped in TCS_PROTO so this member (and
  // all hook costs) vanish when the CMake option is off.
  std::unique_ptr<ProtocolChecker> proto_;
#endif

 private:
  // Outcome of one lock-free fast-path claim attempt (deschedule.cc):
  // kClaimed posted the waiter, kSkipped decided no wake is due (slot gone or
  // predicate unchanged — final, like the batch path's skip), kFallback could
  // not decide non-transactionally (orec contention, mid-registration slot,
  // serial-mode writer, arbitrary predicate) and defers to the wake batch.
  enum class CasClaimResult { kClaimed, kSkipped, kFallback };
  CasClaimResult TryCasWakeClaim(TxDesc& d, int waiter_tid);
  // Shared body of Deschedule and the timed waits: publish, double-check, and
  // sleep — bounded by d's deadline when `timed` is set. A timeout deregisters
  // the slot (draining any racing wakeup post) and restarts the transaction;
  // the re-executed body's *For call then observes the expired deadline.
  [[noreturn]] void DescheduleImpl(WaitPredFn fn, const WaitArgs& args, bool timed);
  // Arms/checks the per-call deadline slot for the timed wait identified by
  // `wait_key` (plus its occurrence ordinal this attempt). Returns true if that
  // call's deadline has expired (slot erased, kWaitTimeouts bumped): the caller
  // must return WaitResult::kTimedOut. Otherwise d.active_deadline holds the
  // call's deadline for the sleep below.
  bool DeadlineExpired(TxDesc& d, std::chrono::nanoseconds timeout,
                       std::uint64_t wait_key);
  void ClearAccessSets(TxDesc& d);
  void ResetDescAfterTx(TxDesc& d);
  TxDesc& RegisterThread();
  // Returns a descriptor slot when its thread exits, so that short-lived threads
  // do not exhaust max_threads. Called from thread-local cache destructors via
  // the global live-system registry.
  void ReleaseTid(TxDesc* d);
  static void ReleaseTidIfAlive(std::uint64_t uid, TxDesc* d);

  const std::uint64_t uid_;
  // Guards descriptor registration; also taken (mutable) by the stats readers
  // so monitoring scans don't race slot creation.
  mutable SpinLock registration_lock_;
  std::vector<std::unique_ptr<TxDesc>> descs_;
  std::vector<int> free_tids_;
  int next_tid_ = 0;

  std::unique_ptr<WaiterRegistry> waiters_;
  std::unique_ptr<RetryOrigRegistry> retry_orig_;
  std::unique_ptr<WakeIndex> wake_index_;

  // Pooled parking for every waiter in the domain. Declared before the wheel
  // (and after descs_) so destruction runs wheel → lot → descriptors: the
  // ticker thread stops while the spots it posts into are still alive.
  ParkingLot lot_;
  // Hierarchical timer wheel for timed waits; null when cfg_.timer_wheel is
  // off (timed waits then park with an absolute deadline, one timer per
  // sleeper, exactly the pre-capacity-tier behavior).
  std::unique_ptr<TimerWheel> wheel_;
};

// The wait predicate implementing Retry and Await wakeups: true iff any ⟨addr,val⟩
// pair in the published waitset no longer matches memory (Algorithm 5's
// findChanges). args.v[0] holds the WaitSet pointer.
bool FindChangesPred(TmSystem& sys, const WaitArgs& args);

}  // namespace tcs

#endif  // TCS_TM_TM_SYSTEM_H_
