// Per-thread transaction descriptor (the paper's "Tx object", Algorithm 8, plus the
// condition-synchronization fields of Algorithms 4 and 5).
//
// One descriptor holds the state for every backend — undo log (eager STM and the
// simulated HTM's serial mode), redo log (lazy STM and simulated-HTM buffering),
// orec read/lock sets — because a TM domain runs exactly one backend and the unused
// logs cost nothing.
#ifndef TCS_TM_TX_DESC_H_
#define TCS_TM_TX_DESC_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/parking_lot.h"
#include "src/common/stats.h"
#include "src/obs/thread_obs.h"
#include "src/tm/orec_table.h"
#include "src/tm/redo_log.h"
#include "src/tm/tx_malloc.h"
#include "src/tm/undo_log.h"
#include "src/tm/wait_set.h"
#include "src/tm/word.h"

namespace tcs {

class TmSystem;
class TmCondVar;

// Marshaled arguments for a wait predicate (Algorithm 7). A fixed inline record:
// WaitPred "cannot construct an object to store these arguments, since the writes
// might be undone during Deschedule", so the library copies up to four words.
struct WaitArgs {
  std::array<TmWord, 4> v{};
  std::uint32_t n = 0;
};

// A wait predicate, evaluated transactionally — by the waiter inside its
// registration transaction (the Deschedule double-check) and by writers inside
// wakeWaiters. It must be read-only and must access shared state only through
// TmSystem::Read.
using WaitPredFn = bool (*)(TmSystem&, const WaitArgs&);

// An orec acquired by the running transaction, with its pre-acquisition version so
// releaseForAbort can restore `prev_version + 1` (Algorithm 11).
struct LockedOrec {
  Orec* orec;
  std::uint64_t prev_version;
};

// Deferred TMCondVar signal: signals issued inside a transaction take effect only
// when (and if) that transaction commits.
struct DeferredCvSignal {
  TmCondVar* cv;
  bool broadcast;
};

// Marks the state of the running attempt when an OrElse branch begins, so the
// branch's speculative effects — and only those — can be rolled back if it
// retries. Reads (and the orecs locked for writes) made by the abandoned branch
// deliberately stay: the decision to take the alternative depended on what the
// branch observed, so serializability still has to validate them, and the
// retry waitset keeps the branch's entries so a deschedule after both branches
// fail waits on the union of their read sets.
struct TxSavepoint {
  std::size_t undo_size;
  RedoLog::Savepoint redo;
  // Orecs locked after this mark were first acquired by the branch; backends
  // that can release them safely on partial rollback do so (eager restores
  // prev_version + 1 for orecs outside the read set; the simulated HTM's
  // buffered mode restores the exact pre-acquisition version).
  std::size_t locks_size;
  std::size_t alloc_count;
  std::size_t free_count;
};

struct TxDesc {
  TxDesc(int tid_in, std::uint64_t backoff_seed)
      : tid(tid_in), backoff(backoff_seed) {}

  TxDesc(const TxDesc&) = delete;
  TxDesc& operator=(const TxDesc&) = delete;

  // --- identity ---
  const int tid;

  // --- lifecycle ---
  std::uint32_t nesting = 0;
  bool internal = false;  // runtime-internal transaction: skip post-commit hooks
  std::uint64_t start = 0;

  // --- STM state (Appendix A) ---
  std::vector<Orec*> reads;
  std::vector<LockedOrec> locks;
  UndoLog undo;
  RedoLog redo;
  TxMallocLog mem;

  // --- condition synchronization (Algorithms 4-7) ---
  WaitSet waitset;
  bool retry_logging = false;  // the paper's is_retry: log ⟨addr,value⟩ on every read
  ParkSpot park;               // per-thread parking place (ParkingLot tokens)
  bool woke_from_sleep = false;

  // --- OrElse / timed-wait state ---
  // Number of OrElse alternatives the current attempt still has available; a
  // Retry() while this is non-zero throws TxRetrySignal to the innermost OrElse
  // frame instead of descheduling.
  std::uint32_t orelse_alts = 0;
  // Timed-wait deadlines, one per *call*: each RetryFor/AwaitFor/WaitPredFor
  // call arms its own deadline the first time it is reached and keeps it across
  // the transaction's restarts (logging restart, conflict aborts, false
  // wakeups), so a call's timeout bounds that wait's total elapsed time — while
  // a later, different wait in the same transaction starts its own clock.
  // (Previously one deadline was shared by every timed wait of the transaction,
  // so a second sequential wait inherited whatever budget the first had left.)
  // Calls are identified by a caller-supplied key — the call site, or the
  // awaited address set — combined with the occurrence ordinal within the
  // attempt, so one call site re-reached across restarts finds its armed
  // deadline, and a loop reusing a call site still gets one deadline per
  // logical wait. Expired slots are kept until commit so a conflict-abort
  // replay of the delivering attempt re-observes the expiry rather than
  // re-arming a fresh budget.
  struct ArmedDeadline {
    std::uint64_t key;
    std::chrono::steady_clock::time_point at;
  };
  std::vector<ArmedDeadline> deadlines;
  std::vector<std::uint64_t> wait_keys_this_attempt;
  // Deadline of the timed wait currently heading to sleep (set by the
  // DeadlineExpired check that precedes DescheduleImpl on the same call path).
  std::chrono::steady_clock::time_point active_deadline{};
  std::vector<DeferredCvSignal> deferred_signals;
  // Writer-side snapshot of acquired orecs, taken just before lock release when
  // Retry-Orig waiters exist (Algorithm 1's TxCommit intersection needs it).
  std::vector<const Orec*> commit_orecs;

  // --- wakeWaiters scratch (writer side, reused commit to commit) ---
  // The write set's wake-index shard-set bitmap (shard_words() words), built
  // once per wake pass into this cached buffer instead of a per-call stack
  // array sized for the maximum shard count.
  std::vector<std::uint64_t> wake_shard_scratch;
  // Candidate tids collected from the index (or the registry scan) before the
  // batched wake transactions run over them.
  std::vector<int> wake_candidates;
  // Slots the current wake batch tentatively claimed (asleep 1→0 inside the
  // batch transaction); rebuilt from scratch on every re-execution of the
  // batch, posted only after it commits.
  struct WakeClaim {
    int tid;
    bool vacuous;  // conservative empty-waitset wake, not a satisfied one
  };
  std::vector<WakeClaim> wake_claims;
  // Candidates the CAS fast path could not claim this pass; they re-enter the
  // batched wake-transaction path (rebuilt each pass, like wake_candidates).
  std::vector<int> wake_fallback;
  // Per-tid seen bitmap (one bit per possible waiter tid) used to drop
  // duplicate candidates: a waiter that deregisters and re-registers globally
  // between the shard pass and the global pass of ForEachCandidateIn can be
  // emitted twice (see wake_index.h). Zeroed lazily per wake pass; sized to
  // the registry's populated tid bound, growing on demand for segments
  // published mid-pass.
  std::vector<std::uint64_t> wake_seen_scratch;
  // Repair-stable copy of the registry's segment summary (summary_words()
  // words), taken once per wake pass and used as the wake index's segment
  // iteration mask (WakeIndex::ForEachCandidateInSegments).
  std::vector<std::uint64_t> wake_seg_scratch;
  // Wake-transaction abort rate, EWMA in permille (0..1000), alpha = 1/8:
  // updated by the owning writer after each wake pass from (batch lambda
  // executions - committed batches). adaptive_wake_batch shrinks the
  // effective batch while this is high. Read by monitors through a relaxed
  // atomic_ref (same contract as `stats`).
  std::uint64_t wake_abort_ewma_permille = 0;

  // --- simulated HTM state ---
  bool htm_serial = false;         // currently executing in serial-irrevocable mode
  bool htm_software_next = false;  // next attempt must run in serial software mode
  int htm_attempts = 0;            // hardware aborts since last success
  std::uint64_t htm_serial_seq0 = 0;
  std::uint8_t htm_abort_code = 0;

  // --- restart-loop support ---
  Backoff backoff;
  bool skip_backoff = false;

  TxStats stats;

  // Observability: abort attribution, latency histograms, trace ring
  // (src/obs/thread_obs.h). Same concurrency contract as `stats`.
  ThreadObs obs;
};

}  // namespace tcs

#endif  // TCS_TM_TX_DESC_H_
