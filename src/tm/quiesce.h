// Commit-time quiescence for privatization safety (Appendix A, TxCommit line 20).
//
// After a writer commit at time `end`, the committer waits until no other thread is
// still executing a transaction that began before `end`. Such a straggler might
// otherwise read memory the committer just privatized and is about to reclaim or
// access non-transactionally. This matches the "privatization-safe variant of
// TinySTM" ("ml-wt") the paper benchmarks.
//
// Capacity tier: slots live in lazily allocated 256-thread segments behind an
// atomic directory ([seg-publish]), so a 64Ki-thread ceiling costs a few
// directory words, not a 4MB slab, and the commit-path scan walks only the
// segments threads actually touched. A null directory entry is safe to skip:
// a thread's segment publication (release CAS) is sequenced before its first
// SetActive, and SetActive's seq_cst store orders all program-order-earlier
// stores before itself — so any committer whose [quiesce-dekker] anchor
// obliges it to observe the straggler's slot also observes the segment
// pointer, and a committer that reads null is one the straggler's clock
// sample is ordered after (start ≥ end).
#ifndef TCS_TM_QUIESCE_H_
#define TCS_TM_QUIESCE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/cache_line.h"
#include "src/condsync/segment.h"

namespace tcs {

class QuiesceTable {
 public:
  explicit QuiesceTable(int max_threads);
  ~QuiesceTable();

  QuiesceTable(const QuiesceTable&) = delete;
  QuiesceTable& operator=(const QuiesceTable&) = delete;

  // Publishes that `tid` is running a transaction that began at `start`.
  // mo: seq_cst — [quiesce-dekker] reader leg: W(slot)/R(clock) against the
  // committer's W(clock)/R(slot).
  // seq_cst-required: store-buffering exclusion — either the quiescence scan
  // sees this slot active (and waits for it), or this thread's clock sample
  // is ordered after the commit's increment and start ≥ end; release on the
  // store would let both sides read stale values and privatized memory be
  // reused under a still-running reader.
  void SetActive(int tid, std::uint64_t start) {
    SlotOf(tid).start.store(start, std::memory_order_seq_cst);
  }

  // mo: release — pairs with WaitForReadersBefore's acquire load: the
  // transaction's last transactional read is ordered before the committer
  // proceeds to reuse privatized memory.
  void SetInactive(int tid) {
    SlotOf(tid).start.store(kInactive, std::memory_order_release);
  }

  // Blocks until every thread other than `self` either is inactive or is running a
  // transaction that started at or after `time`.
  void WaitForReadersBefore(std::uint64_t time, int self) const;

  int max_threads() const { return max_threads_; }

 private:
  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};

  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> start{kInactive};
  };
  struct Segment {
    Slot slots[kCondSyncSegmentSize];
  };

  // The slot for `tid`, allocating its segment on first touch.
  Slot& SlotOf(int tid) {
    return EnsureSegment(tid >> kCondSyncSegmentShift)
        .slots[tid & (kCondSyncSegmentSize - 1)];
  }
  Segment& EnsureSegment(int si);

  std::unique_ptr<std::atomic<Segment*>[]> segments_;
  int num_segments_;
  int max_threads_;
};

}  // namespace tcs

#endif  // TCS_TM_QUIESCE_H_
