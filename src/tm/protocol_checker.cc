#include "src/tm/protocol_checker.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "src/common/assert.h"
#include "src/condsync/segment.h"
#include "src/tm/orec_table.h"

namespace tcs {

namespace {

// Hashed identity of the calling OS thread, never 0 (0 means "no owner").
std::uint64_t ThisThreadKey() {
  std::uint64_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h | 1;
}

void DefaultFailureHandler(void* ctx, const char* protocol, const char* detail) {
  (void)ctx;
  std::fprintf(stderr, "TCS protocol violation [%s]: %s\n", protocol, detail);
  std::abort();
}

}  // namespace

ProtocolChecker::ProtocolChecker(const OrecTable& orecs, int max_threads)
    : orecs_(orecs),
      max_threads_(max_threads),
      segment_shadow_words_(((max_threads + kCondSyncSegmentSize - 1) >>
                             kCondSyncSegmentShift) /
                                64 +
                            1),
      handler_(&DefaultFailureHandler) {
  TCS_CHECK(max_threads > 0);
  orec_shadow_ = std::make_unique<OrecShadow[]>(orecs.size());
  tid_shadow_ =
      std::make_unique<TidShadow[]>(static_cast<std::size_t>(max_threads));
  for (auto& shadow : segment_shadow_) {
    shadow = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(segment_shadow_words_));
    for (int w = 0; w < segment_shadow_words_; ++w) {
      // mo: relaxed — single-threaded construction; the checker is attached
      // before worker threads start.
      shadow[w].store(0, std::memory_order_relaxed);
    }
  }
}

void ProtocolChecker::SetFailureHandler(FailureHandler handler, void* ctx) {
  handler_ = handler != nullptr ? handler : &DefaultFailureHandler;
  handler_ctx_ = ctx;
}

void ProtocolChecker::Fail(const char* protocol, const char* fmt, ...) {
  char detail[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(detail, sizeof(detail), fmt, ap);
  va_end(ap);
  // mo: relaxed — monotone counter; see violations().
  violations_.fetch_add(1, std::memory_order_relaxed);
  handler_(handler_ctx_, protocol, detail);
}

ProtocolChecker::OrecShadow& ProtocolChecker::ShadowOf(const Orec* o) {
  std::size_t idx = orecs_.IndexOf(o);
  TCS_CHECK_MSG(idx < orecs_.size(), "orec pointer outside the checked table");
  return orec_shadow_[idx];
}

ProtocolChecker::TidShadow& ProtocolChecker::TidOf(int tid,
                                                   const char* protocol) {
  if (tid < 0 || tid >= max_threads_) {
    Fail(protocol, "tid %d outside [0, %d)", tid, max_threads_);
    return tid_shadow_[0];
  }
  return tid_shadow_[tid];
}

// --- orec lock/release protocol ---

void ProtocolChecker::OnOrecAcquire(const Orec* o, int tid,
                                    std::uint64_t prev_version) {
  OrecShadow& s = ShadowOf(o);
  // mo: relaxed — the acquirer's CAS on the real orec word [orec-publish]
  // already ordered this load after the previous owner's shadow writes.
  int prev_owner = s.owner.load(std::memory_order_relaxed);
  if (prev_owner != -1) {
    Fail("orec-lock",
         "tid %d acquired orec %zu already shadow-locked by tid %d", tid,
         orecs_.IndexOf(o), prev_owner);
  }
  // mo: relaxed — ordered by the same [orec-publish] edge as `owner` above.
  std::uint64_t shadow_version = s.version.load(std::memory_order_relaxed);
  if (prev_version != shadow_version) {
    Fail("orec-version",
         "tid %d acquired orec %zu at version %llu but the last release "
         "published %llu (torn or unhooked release)",
         tid, orecs_.IndexOf(o),
         static_cast<unsigned long long>(prev_version),
         static_cast<unsigned long long>(shadow_version));
  }
  // mo: relaxed — we hold the orec's lock; the eventual release store on the
  // real word [orec-publish] publishes this to the next acquirer.
  s.owner.store(tid, std::memory_order_relaxed);
  // mo: relaxed — published by [orec-publish], as above.
  s.prev_at_acquire.store(prev_version, std::memory_order_relaxed);
}

void ProtocolChecker::OnOrecRelease(const Orec* o, int tid,
                                    std::uint64_t new_version,
                                    ReleaseKind kind) {
  OrecShadow& s = ShadowOf(o);
  // mo: relaxed — own write (the owner wrote it at acquire), or ordered by
  // [orec-publish] if ownership is being violated (which is what we report).
  int owner = s.owner.load(std::memory_order_relaxed);
  if (owner != tid) {
    Fail("orec-lock", "tid %d released orec %zu owned by tid %d", tid,
         orecs_.IndexOf(o), owner);
  }
  // mo: relaxed — written by this thread at acquire; own write, no ordering.
  std::uint64_t prev = s.prev_at_acquire.load(std::memory_order_relaxed);
  // mo: relaxed — written by the previous owner before its release store;
  // [orec-publish] carries the edge.
  std::uint64_t last = s.version.load(std::memory_order_relaxed);
  if (new_version < last) {
    Fail("orec-version",
         "tid %d released orec %zu at version %llu < last published %llu "
         "(version regression)",
         tid, orecs_.IndexOf(o), static_cast<unsigned long long>(new_version),
         static_cast<unsigned long long>(last));
  }
  switch (kind) {
    case ReleaseKind::kCommit:
      // Commit publishes the global-clock increment result, which strictly
      // exceeds every version published before the increment — in particular
      // the pre-acquisition version.
      if (new_version <= prev) {
        Fail("orec-version",
             "tid %d commit-released orec %zu at %llu, not above "
             "pre-acquisition version %llu",
             tid, orecs_.IndexOf(o),
             static_cast<unsigned long long>(new_version),
             static_cast<unsigned long long>(prev));
      }
      break;
    case ReleaseKind::kAbortBump:
      if (new_version != prev + 1) {
        Fail("orec-version",
             "tid %d bump-released orec %zu at %llu, contract requires "
             "prev+1 = %llu",
             tid, orecs_.IndexOf(o),
             static_cast<unsigned long long>(new_version),
             static_cast<unsigned long long>(prev + 1));
      }
      break;
    case ReleaseKind::kAbortExact:
      if (new_version != prev) {
        Fail("orec-version",
             "tid %d exact-released orec %zu at %llu, contract requires "
             "prev = %llu",
             tid, orecs_.IndexOf(o),
             static_cast<unsigned long long>(new_version),
             static_cast<unsigned long long>(prev));
      }
      break;
  }
  // mo: relaxed — still holding the lock; the release store on the real orec
  // word [orec-publish] publishes this to the next acquirer.
  s.version.store(new_version, std::memory_order_relaxed);
  // mo: relaxed — published by [orec-publish], as above.
  s.owner.store(-1, std::memory_order_relaxed);
}

// --- global-clock monotonicity ---

void ProtocolChecker::OnClockObserved(int tid, std::uint64_t value) {
  TidShadow& t = TidOf(tid, "clock");
  // mo: relaxed — single-writer per tid slot; slot recycling across threads
  // is ordered by the runtime's descriptor registration lock.
  std::uint64_t last = t.last_clock.load(std::memory_order_relaxed);
  if (value < last) {
    Fail("clock",
         "tid %d observed clock %llu after %llu (coherence requires each "
         "thread's clock observations to be non-decreasing)",
         tid, static_cast<unsigned long long>(value),
         static_cast<unsigned long long>(last));
  }
  // mo: relaxed — same single-writer argument as the load above.
  t.last_clock.store(value, std::memory_order_relaxed);
}

void ProtocolChecker::OnStartAdvanced(int tid, std::uint64_t old_start,
                                      std::uint64_t new_start) {
  if (new_start < old_start) {
    Fail("clock",
         "tid %d timestamp extension moved start backwards: %llu -> %llu", tid,
         static_cast<unsigned long long>(old_start),
         static_cast<unsigned long long>(new_start));
  }
  OnClockObserved(tid, new_start);
}

// --- WakeIndex registration balance ---

void ProtocolChecker::OnWakeRegister(int tid, bool indexed) {
  TidShadow& t = TidOf(tid, "wake-index");
  // mo: relaxed — Add/Remove are owner-thread-only (the very contract this
  // hook checks); slot recycling is ordered by descriptor registration.
  int prev = t.wake_state.load(std::memory_order_relaxed);
  if (prev != 0) {
    Fail("wake-index",
         "tid %d re-registered (%s) while still registered (%s) — Add without "
         "intervening Remove",
         tid, indexed ? "indexed" : "global", prev == 1 ? "indexed" : "global");
  }
  // mo: relaxed — same owner-thread-only argument as the load above.
  t.wake_state.store(indexed ? 1 : 2, std::memory_order_relaxed);
  // mo: relaxed — owner-thread-only, as above.
  t.wake_owner.store(ThisThreadKey(), std::memory_order_relaxed);
}

void ProtocolChecker::OnWakeDeregister(int tid) {
  TidShadow& t = TidOf(tid, "wake-index");
  // mo: relaxed — owner-thread-only, as in OnWakeRegister.
  int prev = t.wake_state.load(std::memory_order_relaxed);
  if (prev == 0) {
    Fail("wake-index",
         "tid %d Remove with no registered entries (unbalanced Remove)", tid);
    return;
  }
  // mo: relaxed — owner-thread-only, as in OnWakeRegister.
  std::uint64_t owner = t.wake_owner.load(std::memory_order_relaxed);
  if (owner != ThisThreadKey()) {
    Fail("wake-index",
         "tid %d Remove from a thread other than the one that added "
         "(owner-thread-only contract)",
         tid);
  }
  // mo: relaxed — owner-thread-only, as in OnWakeRegister.
  t.wake_state.store(0, std::memory_order_relaxed);
  // mo: relaxed — owner-thread-only, as in OnWakeRegister.
  t.wake_owner.store(0, std::memory_order_relaxed);
}

// --- WaiterRegistry presence-bit balance ---

void ProtocolChecker::OnPresenceMark(int tid) {
  TidShadow& t = TidOf(tid, "presence");
  // mo: relaxed RMW — atomicity only; Mark/Unmark are owner-thread-only, so
  // the exchange just makes a (buggy) concurrent double-mark deterministic.
  if (t.presence.exchange(1, std::memory_order_relaxed) != 0) {
    Fail("presence", "tid %d MarkRegistered while already marked", tid);
  }
}

void ProtocolChecker::OnPresenceUnmark(int tid) {
  TidShadow& t = TidOf(tid, "presence");
  // mo: relaxed RMW — same argument as OnPresenceMark.
  if (t.presence.exchange(0, std::memory_order_relaxed) != 1) {
    Fail("presence", "tid %d UnmarkRegistered while not marked", tid);
  }
}

// --- batched wake claim/post pairing ---

void ProtocolChecker::OnWakeClaimCommitted(int waiter_tid) {
  TidShadow& t = TidOf(waiter_tid, "wake-claim");
  // mo: relaxed RMW — claim and post are same-thread (the waker); a different
  // waker can only claim after the waiter consumed the post and re-registered,
  // a chain ordered by the wake token [park-handoff] and the registration
  // transaction.
  int pending = t.pending_posts.fetch_add(1, std::memory_order_relaxed);
  if (pending != 0) {
    Fail("wake-claim",
         "waiter tid %d claimed by a committed batch while %d post(s) already "
         "pending (a waiter cannot be claimed twice before being posted)",
         waiter_tid, pending);
  }
}

void ProtocolChecker::OnWakeClaimCas(int waiter_tid) {
  TidShadow& t = TidOf(waiter_tid, "wake-claim");
  // mo: relaxed RMW — same claim/post chain argument as OnWakeClaimCommitted:
  // the CAS claim and its post are same-thread (the waker), and any later
  // claim of this waiter is ordered behind the post by [park-handoff] plus
  // the waiter's re-registration.
  int pending = t.pending_posts.fetch_add(1, std::memory_order_relaxed);
  if (pending != 0) {
    Fail("wake-claim",
         "waiter tid %d CAS-claimed while %d post(s) already pending (a "
         "waiter cannot be claimed twice before being posted)",
         waiter_tid, pending);
  }
}

void ProtocolChecker::OnWakePost(int waiter_tid) {
  TidShadow& t = TidOf(waiter_tid, "wake-claim");
  // mo: relaxed RMW — same claim/post chain argument as OnWakeClaimCommitted.
  int pending = t.pending_posts.fetch_sub(1, std::memory_order_relaxed);
  if (pending != 1) {
    // mo: relaxed — reset after reporting so one violation is not re-reported
    // on every later post.
    t.pending_posts.store(0, std::memory_order_relaxed);
    Fail("wake-claim",
         "wake-path post to waiter tid %d with %d pending claim(s) — %s",
         waiter_tid, pending,
         pending <= 0 ? "post without a committed claim (double post)"
                      : "claim/post imbalance");
  }
}

// --- segment publication balance ---

void ProtocolChecker::OnSegmentPublished(SegmentKind kind, int index) {
  const char* name =
      kind == SegmentKind::kWaiterRegistry ? "waiter-registry" : "wake-index";
  const int max_segments =
      (max_threads_ + kCondSyncSegmentSize - 1) >> kCondSyncSegmentShift;
  if (index < 0 || index >= max_segments) {
    Fail("segment-publish", "%s published segment %d outside [0, %d)", name,
         index, max_segments);
    return;
  }
  auto& shadow = segment_shadow_[static_cast<int>(kind)];
  const std::uint64_t bit = std::uint64_t{1} << (index % 64);
  // mo: relaxed RMW — atomicity only: publication attempts are already
  // serialized by the directory's [seg-publish] CAS (exactly one winner per
  // entry calls this hook); the exchange just makes a buggy double-publish
  // deterministic.
  std::uint64_t prev =
      shadow[index / 64].fetch_or(bit, std::memory_order_relaxed);
  if ((prev & bit) != 0) {
    Fail("segment-publish",
         "%s published segment %d twice (directory entry overwritten or a "
         "losing CAS racer reported publication)",
         name, index);
  }
}

}  // namespace tcs
