#include "src/tm/orec_table.h"

#include "src/common/assert.h"

namespace tcs {

OrecTable::OrecTable(std::size_t size_log2, std::size_t granularity_log2)
    : gran_(granularity_log2) {
  TCS_CHECK(size_log2 >= 4 && size_log2 <= 28);
  TCS_CHECK(granularity_log2 >= 3 && granularity_log2 <= 12);
  std::size_t n = std::size_t{1} << size_log2;
  orecs_ = std::make_unique<Orec[]>(n);
  mask_ = n - 1;
}

}  // namespace tcs
