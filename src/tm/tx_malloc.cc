#include "src/tm/tx_malloc.h"

#include <cstdlib>

#include "src/common/assert.h"

namespace tcs {

void* TxMallocLog::Alloc(std::size_t bytes) {
  void* p = std::malloc(bytes);
  TCS_CHECK_MSG(p != nullptr, "transactional malloc failed");
  mallocs_.push_back(p);
  return p;
}

void TxMallocLog::Free(void* ptr) {
  if (ptr != nullptr) {
    frees_.push_back(ptr);
  }
}

void TxMallocLog::OnCommit() {
  for (void* p : frees_) {
    std::free(p);
  }
  frees_.clear();
  mallocs_.clear();
}

void TxMallocLog::OnAbort() {
  for (void* p : mallocs_) {
    std::free(p);
  }
  mallocs_.clear();
  frees_.clear();
}

void TxMallocLog::RollbackTo(std::size_t alloc_mark, std::size_t free_mark) {
  while (mallocs_.size() > alloc_mark) {
    std::free(mallocs_.back());
    mallocs_.pop_back();
  }
  if (frees_.size() > free_mark) {
    frees_.resize(free_mark);
  }
}

void TxMallocLog::DeferForDeschedule() {
  for (void* p : mallocs_) {
    deferred_.push_back(p);
  }
  mallocs_.clear();
  frees_.clear();
}

void TxMallocLog::ReclaimDeferred() {
  for (void* p : deferred_) {
    std::free(p);
  }
  deferred_.clear();
}

}  // namespace tcs
