#include "src/tm/undo_log.h"

namespace tcs {

void UndoLog::UndoAll() {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    StoreWordRelease(it->addr, it->val);
  }
}

bool UndoLog::FindOriginal(const TmWord* addr, TmWord* out) const {
  for (const Entry& e : entries_) {
    if (e.addr == addr) {
      *out = e.val;
      return true;
    }
  }
  return false;
}

}  // namespace tcs
