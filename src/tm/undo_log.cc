#include "src/tm/undo_log.h"

namespace tcs {

void UndoLog::UndoAll() {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    StoreWordRelease(it->addr, it->val);
  }
}

void UndoLog::UndoTo(std::size_t mark) {
  while (entries_.size() > mark) {
    const Entry& e = entries_.back();
    StoreWordRelease(e.addr, e.val);
    entries_.pop_back();
  }
}

bool UndoLog::FindOriginal(const TmWord* addr, TmWord* out) const {
  for (const Entry& e : entries_) {
    if (e.addr == addr) {
      *out = e.val;
      return true;
    }
  }
  return false;
}

}  // namespace tcs
