#include "src/tm/quiesce.h"

#include "src/common/assert.h"
#include "src/common/cpu.h"

namespace tcs {

QuiesceTable::QuiesceTable(int max_threads) : max_threads_(max_threads) {
  TCS_CHECK(max_threads > 0);
  num_segments_ =
      (max_threads + kCondSyncSegmentSize - 1) >> kCondSyncSegmentShift;
  segments_ = std::make_unique<std::atomic<Segment*>[]>(
      static_cast<std::size_t>(num_segments_));
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — single-threaded construction; the table is published to
    // worker threads by the owning runtime's thread-start edge.
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
}

QuiesceTable::~QuiesceTable() {
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — destruction is single-threaded; every reader and
    // committer is quiescent.
    delete segments_[i].load(std::memory_order_relaxed);
  }
}

QuiesceTable::Segment& QuiesceTable::EnsureSegment(int si) {
  // mo: acquire — [seg-publish]: pairs with the release directory CAS below;
  // a non-null pointer implies a fully initialized (all-kInactive) block.
  Segment* seg = segments_[si].load(std::memory_order_acquire);
  if (seg != nullptr) {
    return *seg;
  }
  auto fresh = std::make_unique<Segment>();  // Slots default to kInactive.
  Segment* expected = nullptr;
  // mo: acq_rel — [seg-publish]: success releases the initialized block to
  // every acquire directory load (and is sequenced before the owner's first
  // seq_cst SetActive, which is what lets the commit-path scan skip null
  // entries — see the header); failure acquires the winning racer's
  // publication so the adopted block is fully visible.
  if (segments_[si].compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel)) {
    return *fresh.release();
  }
  // Lost the publication race: drop our block, adopt the winner's.
  return *expected;
}

void QuiesceTable::WaitForReadersBefore(std::uint64_t time, int self) const {
  for (int si = 0; si < num_segments_; ++si) {
    // mo: acquire — [seg-publish]: pairs with the allocator's release CAS. A
    // null entry is skipped soundly: segment publication is sequenced before
    // the owning threads' seq_cst SetActive stores, so a straggler this scan
    // is obliged to wait for ([quiesce-dekker]) has its segment visible here.
    Segment* seg = segments_[si].load(std::memory_order_acquire);
    if (seg == nullptr) {
      continue;
    }
    const int base = si * kCondSyncSegmentSize;
    for (int r = 0; r < kCondSyncSegmentSize; ++r) {
      if (base + r == self) {
        continue;
      }
      int spins = 0;
      // mo: acquire — pairs with SetInactive's release store (and SetActive's
      // seq_cst store): once a straggler advances past `time`, its prior
      // transactional reads happen-before this committer's return.
      while (seg->slots[r].start.load(std::memory_order_acquire) < time) {
        if (++spins < 64) {
          CpuRelax();
        } else {
          CpuYield();
          spins = 0;
        }
      }
    }
  }
}

}  // namespace tcs
