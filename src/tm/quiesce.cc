#include "src/tm/quiesce.h"

#include "src/common/assert.h"
#include "src/common/cpu.h"

namespace tcs {

QuiesceTable::QuiesceTable(int max_threads) : max_threads_(max_threads) {
  TCS_CHECK(max_threads > 0);
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(max_threads));
}

void QuiesceTable::WaitForReadersBefore(std::uint64_t time, int self) const {
  for (int t = 0; t < max_threads_; ++t) {
    if (t == self) {
      continue;
    }
    int spins = 0;
    // mo: acquire — pairs with SetInactive's release store (and SetActive's
    // seq_cst store): once a straggler advances past `time`, its prior
    // transactional reads happen-before this committer's return.
    while (slots_[t].start.load(std::memory_order_acquire) < time) {
      if (++spins < 64) {
        CpuRelax();
      } else {
        CpuYield();
        spins = 0;
      }
    }
  }
}

}  // namespace tcs
