// Lazy word-based STM: buffered writes (redo log) with commit-time lock
// acquisition, validation, and write-back — a privatization-safe TL2-like design,
// the paper's "Lazy STM" configuration (§2.4).
//
// For the condition-synchronization layer, laziness means memory always shows
// pre-transaction state while a transaction runs, so Await needs no undo step and
// Retry's waitset can log raw memory values directly.
#ifndef TCS_TM_LAZY_STM_H_
#define TCS_TM_LAZY_STM_H_

#include "src/tm/tm_system.h"

namespace tcs {

class LazyStm final : public TmSystem {
 public:
  explicit LazyStm(const TmConfig& config);

 protected:
  void BeginTx(TxDesc& d) override;
  bool CommitTx(TxDesc& d) override;
  TmWord ReadWord(TxDesc& d, const TmWord* addr) override;
  void WriteWord(TxDesc& d, TmWord* addr, TmWord val) override;
  void Rollback(TxDesc& d) override;
  void PartialRollback(TxDesc& d, const TxSavepoint& sp) override;
  TmWord PreTxValue(TxDesc& d, const TmWord* addr, TmWord observed) override;
};

}  // namespace tcs

#endif  // TCS_TM_LAZY_STM_H_
