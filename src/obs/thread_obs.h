// Per-thread observability state, embedded in TxDesc. Bundles the abort
// attribution tables, the four latency histograms, the trace ring, and the
// scratch timestamps the hooks in tm_system.cc / deschedule.cc thread
// through a transaction's lifetime.
//
// Everything here follows the TxStats concurrency contract: the owning
// thread writes, monitors merge on scan, harnesses reset between trials
// while workers are parked. The TraceRing member is always present (it is
// a handful of pointers when un-Init()ed); only the recording hooks and the
// Init call are compile-gated behind TCS_TRACING.
#ifndef TCS_OBS_THREAD_OBS_H_
#define TCS_OBS_THREAD_OBS_H_

#include <chrono>
#include <cstdint>

#include "src/obs/abort_attribution.h"
#include "src/obs/latency_histogram.h"
#include "src/obs/trace_ring.h"

namespace tcs {

// Steady-clock nanoseconds — the one timebase for all obs timestamps, so
// per-thread trace streams and cross-thread latency spans (wake post →
// resume) are comparable.
inline std::uint64_t ObsNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadObs {
  AbortCauseTable causes;
  HotOrecTable hot_orecs;

  // Final-attempt begin → commit (the latency a caller observes for the
  // attempt that succeeded; restarts reset the clock).
  LatencyHistogram commit_latency;
  // First abort of a transaction → its eventual successful commit. Includes
  // any parked time in between — deliberately, since that is the price the
  // caller paid for contention/waiting.
  LatencyHistogram abort_to_commit;
  // Deschedule sleep → semaphore acquired (how long waits actually last).
  LatencyHistogram wait_duration;
  // Waker's semaphore post → waiter resume (wake-path hand-off cost).
  LatencyHistogram wake_latency;

  TraceRing ring;

  // Scratch, owner-thread only (reset by ResetDescAfterTx):
  std::uint64_t tx_begin_ns = 0;    // begin of the current attempt
  std::uint64_t first_abort_ns = 0; // first abort of the current transaction

  void ResetMetrics() {
    causes.Reset();
    hot_orecs.Reset();
    commit_latency.Reset();
    abort_to_commit.Reset();
    wait_duration.Reset();
    wake_latency.Reset();
    // The ring is a cumulative flight recorder — deliberately NOT cleared
    // here: ResetStats runs concurrently with owner threads, and the ring
    // is single-writer.
  }
};

}  // namespace tcs

#endif  // TCS_OBS_THREAD_OBS_H_
