#include "src/obs/trace_dump.h"

#include <cstdint>

#include "src/common/json_writer.h"
#include "src/obs/abort_attribution.h"

namespace tcs {

namespace {

constexpr int kTracePid = 1;  // single-process runtime; one pid lane

double ToMicros(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void EmitInstant(JsonWriter& w, int tid, const TraceRecord& r) {
  w.BeginObject();
  w.Key("name").String(TraceEventName(r.type));
  w.Key("ph").String("i");
  w.Key("ts").Double(ToMicros(r.ts_ns));
  w.Key("pid").Int(kTracePid);
  w.Key("tid").Int(tid);
  w.Key("s").String("t");  // thread-scoped instant
  w.Key("args").BeginObject();
  switch (r.type) {
    case TraceEvent::kTxAbort:
      w.Key("cause").String(AbortCauseName(static_cast<AbortCause>(r.arg)));
      break;
    case TraceEvent::kWakeBatch:
      w.Key("claims").U64(r.arg);
      break;
    case TraceEvent::kHtmFallback:
    case TraceEvent::kTimestampExtension:
    case TraceEvent::kOrElseFallback:
    case TraceEvent::kTxBegin:
    case TraceEvent::kTxCommit:
    case TraceEvent::kDeschedule:
    case TraceEvent::kSleep:
    case TraceEvent::kWakeup:
    default:
      w.Key("arg").U64(r.arg);
      break;
  }
  w.EndObject();
  w.EndObject();
}

void EmitSpan(JsonWriter& w, int tid, const char* name, std::uint64_t begin_ns,
              std::uint64_t end_ns) {
  if (end_ns < begin_ns) {
    return;  // ring wrapped mid-pair; drop the malformed span
  }
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("ph").String("X");
  w.Key("ts").Double(ToMicros(begin_ns));
  w.Key("dur").Double(ToMicros(end_ns - begin_ns));
  w.Key("pid").Int(kTracePid);
  w.Key("tid").Int(tid);
  w.EndObject();
}

}  // namespace

bool WriteChromeTrace(const std::string& path,
                      const std::vector<ThreadTrace>& threads,
                      bool tracing_compiled) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();

  std::uint64_t total_drops = 0;
  std::uint64_t total_events = 0;
  for (const ThreadTrace& t : threads) {
    if (t.ring == nullptr) {
      continue;
    }
    total_drops += t.ring->dropped();
    total_events += t.ring->size();

    // Thread name metadata so Perfetto labels the lanes.
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(kTracePid);
    w.Key("tid").Int(t.tid);
    w.Key("args").BeginObject();
    w.Key("name").String("tm-thread-" + std::to_string(t.tid));
    w.EndObject();
    w.EndObject();

    // Pass 1: every record as an instant, in ring (per-thread monotonic)
    // order. Pass 2 state threaded inline: open-begin / open-sleep pairing
    // for span synthesis.
    std::uint64_t open_begin_ns = 0;
    bool have_begin = false;
    std::uint64_t open_sleep_ns = 0;
    bool have_sleep = false;
    t.ring->Visit([&](const TraceRecord& r) {
      EmitInstant(w, t.tid, r);
      switch (r.type) {
        case TraceEvent::kTxBegin:
          open_begin_ns = r.ts_ns;
          have_begin = true;
          break;
        case TraceEvent::kTxCommit:
          if (have_begin) {
            EmitSpan(w, t.tid, "tx", open_begin_ns, r.ts_ns);
            have_begin = false;
          }
          break;
        case TraceEvent::kTxAbort:
          if (have_begin) {
            EmitSpan(w, t.tid, "tx_attempt", open_begin_ns, r.ts_ns);
            have_begin = false;
          }
          break;
        case TraceEvent::kSleep:
          open_sleep_ns = r.ts_ns;
          have_sleep = true;
          break;
        case TraceEvent::kWakeup:
          if (have_sleep) {
            EmitSpan(w, t.tid, "parked", open_sleep_ns, r.ts_ns);
            have_sleep = false;
          }
          break;
        default:
          break;
      }
    });
  }

  w.EndArray();
  w.Key("displayTimeUnit").String("ns");
  w.Key("tracing_compiled").Bool(tracing_compiled);
  w.Key("trace_events").U64(total_events);
  w.Key("trace_drops").U64(total_drops);
  w.EndObject();
  return w.WriteFile(path);
}

}  // namespace tcs
