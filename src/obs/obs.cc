// Name tables for the observability enums. Indexed arrays with
// static_asserts so adding an enumerator without a name is a compile error —
// the same desync guard stats.cc now uses for CounterName.
#include "src/obs/abort_attribution.h"
#include "src/obs/trace_ring.h"

#include <iterator>

namespace tcs {

namespace {

constexpr const char* kTraceEventNames[] = {
    "tx_begin",       "tx_commit", "tx_abort",     "deschedule",
    "sleep",          "wakeup",    "wake_batch",   "timestamp_extension",
    "htm_fallback",   "orelse_fallback",           "cas_wake_claim",
};
static_assert(std::size(kTraceEventNames) ==
                  static_cast<std::size_t>(TraceEvent::kNumEvents),
              "kTraceEventNames out of sync with TraceEvent");

constexpr const char* kAbortCauseNames[] = {
    "read_validation", "encounter_acquisition", "commit_validation",
    "lock_collision",  "htm_capacity",          "htm_conflict",
    "htm_explicit",    "orelse_abandon",        "retry_setup",
    "explicit",
};
static_assert(std::size(kAbortCauseNames) ==
                  static_cast<std::size_t>(AbortCause::kNumCauses),
              "kAbortCauseNames out of sync with AbortCause");

}  // namespace

const char* TraceEventName(TraceEvent ev) {
  auto i = static_cast<std::size_t>(ev);
  return i < std::size(kTraceEventNames) ? kTraceEventNames[i] : "unknown";
}

const char* AbortCauseName(AbortCause cause) {
  auto i = static_cast<std::size_t>(cause);
  return i < std::size(kAbortCauseNames) ? kAbortCauseNames[i] : "unknown";
}

}  // namespace tcs
