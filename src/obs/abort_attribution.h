// Abort attribution: *why* a transaction aborted and *which* orec it
// collided on — the second half of the observability layer.
//
// Every call into TmSystem::AbortCurrent / SimHtm::HwAbort now carries an
// AbortCause plus (when known) the conflicting orec. Per-thread tables tally
// causes and hot orecs with the same atomic_ref-relaxed discipline as
// TxStats: owning thread bumps, monitors merge on scan, harnesses reset
// between trials.
#ifndef TCS_OBS_ABORT_ATTRIBUTION_H_
#define TCS_OBS_ABORT_ATTRIBUTION_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace tcs {

// Keep in sync with kAbortCauseNames in obs.cc (static_assert pins count).
enum class AbortCause : std::uint8_t {
  kReadValidation = 0,     // eager/lazy read saw a too-new or changed orec
  kEncounterAcquisition,   // eager write-orec acquisition lost
  kCommitValidation,       // lazy commit-time validation/acquisition lost
  kLockCollision,          // orec held by another tx (any phase)
  kHtmCapacity,            // sim-HTM buffer overflow
  kHtmConflict,            // sim-HTM conflict footprint collision
  kHtmExplicit,            // explicit xabort (e.g. Retry inside hw mode)
  kOrElseAbandon,          // partial-rollback could not salvage the outer tx
  kRetrySetup,             // Retry/RetryFor descheduling restart
  kExplicit,               // user RestartNow / unclassified manual abort
  kNumCauses,
};

inline constexpr int kNumAbortCauses = static_cast<int>(AbortCause::kNumCauses);

const char* AbortCauseName(AbortCause cause);

// Per-thread cause tally, TxStats-style.
class AbortCauseTable {
 public:
  void Bump(AbortCause cause) {
    // mo: relaxed — tally only; abort ordering is established by the orec
    // and clock protocol, never by these counters.
    std::atomic_ref<std::uint64_t>(counts_[static_cast<int>(cause)])
        .fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t Get(AbortCause cause) const {
    // mo: relaxed — monitors tolerate stale tallies; tests read post-join.
    return std::atomic_ref<const std::uint64_t>(
               counts_[static_cast<int>(cause)])
        .load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& c : counts_) {
      // mo: relaxed — trial reset, same argument as TxStats::Reset.
      std::atomic_ref<std::uint64_t>(c).store(0, std::memory_order_relaxed);
    }
  }

  void MergeFrom(const AbortCauseTable& other) {
    for (int i = 0; i < kNumAbortCauses; ++i) {
      counts_[i] += other.Get(static_cast<AbortCause>(i));
    }
  }

 private:
  std::array<std::uint64_t, kNumAbortCauses> counts_{};
};

// Per-thread top-hot-orec tally: a small direct-mapped table of
// (orec index, abort count) pairs. First abort on a new orec claims a free
// slot; when the table is full further new orecs land in overflow_. Slots
// store index+1 so 0 means "free" without a separate occupancy word.
class HotOrecTable {
 public:
  static constexpr int kSlots = 32;

  void Bump(std::size_t orec_index) {
    std::uint64_t key = static_cast<std::uint64_t>(orec_index) + 1;
    for (int i = 0; i < kSlots; ++i) {
      // mo: relaxed — single-writer (owning thread) table; atomic_ref only
      // guards against torn reads from concurrent monitor scans.
      std::uint64_t cur = std::atomic_ref<std::uint64_t>(slots_[i].key).load(
          std::memory_order_relaxed);
      if (cur == 0) {
        // mo: relaxed — owner-thread store; merge scans tolerate seeing the
        // key before the first count bump (they read count 0, harmless).
        std::atomic_ref<std::uint64_t>(slots_[i].key).store(
            key, std::memory_order_relaxed);
        cur = key;
      }
      if (cur == key) {
        // mo: relaxed — tally only.
        std::atomic_ref<std::uint64_t>(slots_[i].count)
            .fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // mo: relaxed — tally only.
    std::atomic_ref<std::uint64_t>(overflow_).fetch_add(
        1, std::memory_order_relaxed);
  }

  // Visits occupied slots as (orec_index, count).
  template <typename Fn>
  void Visit(Fn&& fn) const {
    for (int i = 0; i < kSlots; ++i) {
      // mo: relaxed — monitor scan, stale tallies acceptable.
      std::uint64_t key = std::atomic_ref<const std::uint64_t>(slots_[i].key)
                              .load(std::memory_order_relaxed);
      if (key == 0) {
        continue;
      }
      // mo: relaxed — monitor scan, stale tallies acceptable.
      std::uint64_t count =
          std::atomic_ref<const std::uint64_t>(slots_[i].count)
              .load(std::memory_order_relaxed);
      fn(static_cast<std::size_t>(key - 1), count);
    }
  }

  std::uint64_t Overflow() const {
    // mo: relaxed — monitor scan.
    return std::atomic_ref<const std::uint64_t>(overflow_).load(
        std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& s : slots_) {
      // mo: relaxed — trial reset while workers are parked.
      std::atomic_ref<std::uint64_t>(s.count).store(0,
                                                    std::memory_order_relaxed);
      // mo: relaxed — trial reset; freeing the slot needs no ordering vs. the
      // count store above because no owner thread races a reset.
      std::atomic_ref<std::uint64_t>(s.key).store(0,
                                                  std::memory_order_relaxed);
    }
    // mo: relaxed — trial reset.
    std::atomic_ref<std::uint64_t>(overflow_).store(0,
                                                    std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  // orec index + 1; 0 = free
    std::uint64_t count = 0;
  };
  std::array<Slot, kSlots> slots_{};
  std::uint64_t overflow_ = 0;
};

}  // namespace tcs

#endif  // TCS_OBS_ABORT_ATTRIBUTION_H_
