// Per-thread fixed-capacity binary ring buffer of timestamped lifecycle
// events — the event-tracing half of the observability layer.
//
// Each TxDesc owns one TraceRing. Only the owning thread Records into it (the
// same single-writer discipline TxStats uses), so writes are plain stores.
// Dumps (TmSystem::DumpTrace) happen from a monitor thread; callers must
// quiesce the traced threads first (join them, or stop issuing transactions)
// — the dump is a post-mortem flight-recorder read, not a live stream.
//
// Capacity is fixed at Init() time; on overflow the ring overwrites the
// oldest record and Record() reports it so the caller can bump a drop
// counter. An un-Init()ed ring (tracing disabled at runtime) has
// enabled() == false and the hooks skip it.
#ifndef TCS_OBS_TRACE_RING_H_
#define TCS_OBS_TRACE_RING_H_

#include <cstdint>
#include <vector>

namespace tcs {

// Lifecycle event types. Names live in kTraceEventNames (obs.cc) — keep the
// two in sync; a static_assert there pins the count.
enum class TraceEvent : std::uint8_t {
  kTxBegin = 0,
  kTxCommit,
  kTxAbort,
  kDeschedule,
  kSleep,
  kWakeup,
  kWakeBatch,
  kTimestampExtension,
  kHtmFallback,
  kOrElseFallback,
  kCasWakeClaim,  // lock-free fast-path claim; arg = claimed waiter's tid
  kNumEvents,
};

inline constexpr int kNumTraceEvents = static_cast<int>(TraceEvent::kNumEvents);

const char* TraceEventName(TraceEvent ev);

struct TraceRecord {
  std::uint64_t ts_ns;  // steady-clock nanoseconds (ObsNowNs)
  std::uint64_t arg;    // event-specific: abort cause, orec index, batch size…
  TraceEvent type;
};

class TraceRing {
 public:
  // Allocates the buffer; a ring is inert (enabled() == false, Record is a
  // no-op) until Init is called. Called once, before the owning thread
  // records — from RegisterThread, which the owner itself runs.
  void Init(std::size_t capacity) {
    if (capacity == 0) {
      return;
    }
    buf_.resize(capacity);
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  bool enabled() const { return !buf_.empty(); }

  // Appends a record, overwriting the oldest on overflow. Returns true when
  // an old record was dropped. Owner-thread only.
  bool Record(TraceEvent type, std::uint64_t ts_ns, std::uint64_t arg = 0) {
    if (buf_.empty()) {
      return false;
    }
    buf_[head_] = TraceRecord{ts_ns, arg, type};
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) {
      ++size_;
      return false;
    }
    ++dropped_;
    return true;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  // Visits records oldest-first. Quiesced-owner only (see file comment).
  template <typename Fn>
  void Visit(Fn&& fn) const {
    if (size_ == 0) {
      return;
    }
    std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    for (std::size_t i = 0; i < size_; ++i) {
      fn(buf_[(start + i) % buf_.size()]);
    }
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tcs

#endif  // TCS_OBS_TRACE_RING_H_
