// Chrome trace-event JSON export for the per-thread TraceRings.
//
// The output loads directly into chrome://tracing or https://ui.perfetto.dev:
// every ring record becomes an instant ("ph":"i") event, and paired records
// (tx_begin→tx_commit/tx_abort, sleep→wakeup) additionally become complete
// ("ph":"X") span events so transaction attempts and parked intervals render
// as bars on the timeline. Timestamps are steady-clock microseconds (the
// trace-event `ts` unit); sub-microsecond precision survives as fractions.
//
// Callers must quiesce the traced threads before dumping (TraceRing is
// single-writer; see trace_ring.h).
#ifndef TCS_OBS_TRACE_DUMP_H_
#define TCS_OBS_TRACE_DUMP_H_

#include <string>
#include <vector>

#include "src/obs/trace_ring.h"

namespace tcs {

struct ThreadTrace {
  int tid = 0;
  const TraceRing* ring = nullptr;
};

// Writes the Chrome trace-event document to `path`. `tracing_compiled`
// reports whether the build had TCS_TRACING on — emitted as a top-level key
// so the CI schema check can tell "no events because hooks were compiled
// out" from "no events because nothing ran". Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<ThreadTrace>& threads,
                      bool tracing_compiled);

}  // namespace tcs

#endif  // TCS_OBS_TRACE_DUMP_H_
