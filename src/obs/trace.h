// TCS_TRACE_EVENT — the compile- and runtime-gated tracing hook.
//
// With the TCS_TRACING CMake option OFF (the default) the macro expands to
// nothing: zero code, zero branches, zero timestamp reads on any hot path.
// With TCS_TRACING=ON the hook still costs only a single predictable branch
// per site unless the ring was Init()ed (TmConfig::tracing = true at thread
// registration), in which case it takes a steady_clock read and a ring store.
//
// `d` is a TxDesc& (anything with `.obs` and `.stats`), `ev` a TraceEvent,
// `a` the event-specific argument.
#ifndef TCS_OBS_TRACE_H_
#define TCS_OBS_TRACE_H_

#include "src/obs/thread_obs.h"

#if TCS_TRACING

#include "src/common/stats.h"

#define TCS_TRACE_EVENT(d, ev, a)                                     \
  do {                                                                \
    if ((d).obs.ring.enabled()) {                                     \
      if ((d).obs.ring.Record((ev), ::tcs::ObsNowNs(),                \
                              static_cast<std::uint64_t>(a))) {       \
        (d).stats.Bump(::tcs::Counter::kTraceDrops);                  \
      }                                                               \
      (d).stats.Bump(::tcs::Counter::kTraceEvents);                   \
    }                                                                 \
  } while (0)

#else  // !TCS_TRACING

#define TCS_TRACE_EVENT(d, ev, a) ((void)0)

#endif  // TCS_TRACING

#endif  // TCS_OBS_TRACE_H_
