// Lock-free log2-bucket latency histogram for the runtime observability layer.
//
// One histogram per thread per metric (commit latency, abort-to-commit
// latency, wait duration, wake latency), embedded in TxDesc via ThreadObs.
// Like TxStats, the owning thread Bumps while monitors aggregate concurrently
// and harnesses Reset() between trials, so every access is a relaxed atomic —
// a histogram is never a synchronization point, only a tally.
//
// Buckets are powers of two: bucket i counts samples in [2^i, 2^(i+1)) ns
// (bucket 0 additionally absorbs 0). 64 buckets cover the full uint64 range,
// so nothing saturates. Percentiles are bucket-resolution: Percentile()
// returns the *upper bound* of the bucket containing the requested rank —
// deliberately pessimistic, so an SLO claim built on p99/p999 never
// understates the tail by more than the 2x bucket width.
#ifndef TCS_OBS_LATENCY_HISTOGRAM_H_
#define TCS_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace tcs {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  // Bucket index for a sample: floor(log2(ns)), with 0 and 1 both in bucket 0.
  static int BucketOf(std::uint64_t ns) {
    return ns <= 1 ? 0 : std::bit_width(ns) - 1;
  }
  // Inclusive lower / exclusive upper value bounds of bucket i.
  static std::uint64_t BucketLow(int i) { return std::uint64_t{1} << i; }
  static std::uint64_t BucketHigh(int i) {
    return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << i);
  }

  void Record(std::uint64_t ns) {
    // mo: relaxed — statistics need atomicity (vs. concurrent Reset/readers),
    // not ordering; no other data is published through a bucket count.
    std::atomic_ref<std::uint64_t>(counts_[BucketOf(ns)])
        .fetch_add(1, std::memory_order_relaxed);
    // mo: relaxed — same tally-only argument as the bucket count above.
    std::atomic_ref<std::uint64_t>(sum_).fetch_add(ns,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t BucketCount(int i) const {
    // mo: relaxed — monitors tolerate slightly stale tallies; test assertions
    // read after joining the worker threads.
    return std::atomic_ref<const std::uint64_t>(counts_[i]).load(
        std::memory_order_relaxed);
  }

  std::uint64_t Count() const {
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      total += BucketCount(i);
    }
    return total;
  }

  std::uint64_t Sum() const {
    // mo: relaxed — same tally-only argument as BucketCount.
    return std::atomic_ref<const std::uint64_t>(sum_).load(
        std::memory_order_relaxed);
  }

  double Mean() const {
    std::uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  // Upper bound (ns) of the bucket holding the p-th percentile sample
  // (p in [0, 100]), or 0 for an empty histogram. Ranks round up: p=50 of
  // {1, 1000} is the bucket of 1 (rank 1 of 2), p=99 of 100 equal samples is
  // their shared bucket.
  std::uint64_t Percentile(double p) const {
    std::uint64_t total = Count();
    if (total == 0) {
      return 0;
    }
    double want = (p / 100.0) * static_cast<double>(total);
    std::uint64_t rank = static_cast<std::uint64_t>(want);
    if (static_cast<double>(rank) < want) {
      ++rank;  // ceil
    }
    if (rank == 0) {
      rank = 1;
    }
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += BucketCount(i);
      if (cum >= rank) {
        return BucketHigh(i);
      }
    }
    return BucketHigh(kBuckets - 1);
  }

  void Reset() {
    // mo: relaxed — harnesses reset between trials while workers are parked;
    // Record's RMW keeps a racing sample from being silently undone.
    for (int i = 0; i < kBuckets; ++i) {
      std::atomic_ref<std::uint64_t>(counts_[i]).store(
          0, std::memory_order_relaxed);
    }
    // mo: relaxed — same argument as the bucket counts above.
    std::atomic_ref<std::uint64_t>(sum_).store(0, std::memory_order_relaxed);
  }

  void MergeFrom(const LatencyHistogram& other) {
    // mo: relaxed — aggregation tolerates in-flight samples; exact totals are
    // only asserted after joining.
    for (int i = 0; i < kBuckets; ++i) {
      counts_[i] += other.BucketCount(i);
    }
    sum_ += other.Sum();
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t sum_ = 0;
};

}  // namespace tcs

#endif  // TCS_OBS_LATENCY_HISTOGRAM_H_
