#include "src/condsync/tm_condvar.h"

#include <cstdlib>

#include "src/common/assert.h"
#include "src/tm/tm_system.h"

namespace tcs {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TmCondVar::TmCondVar(int capacity) {
  // RoundUpPow2 on a negative capacity would wrap through size_t and spin the
  // doubling loop to overflow; zero would build an unusable ring. Fail loudly.
  TCS_CHECK_MSG(capacity > 0, "TmCondVar capacity must be positive");
  cap_ = static_cast<TmWord>(RoundUpPow2(static_cast<std::size_t>(capacity)));
  // malloc, not new[]: growth frees the outgoing ring with TxFree (std::free),
  // so the initial ring must come from the same allocator.
  void* p = std::malloc(static_cast<std::size_t>(cap_) * sizeof(TmWord));
  TCS_CHECK_MSG(p != nullptr, "TmCondVar ring allocation failed");
  ring_ = reinterpret_cast<TmWord>(p);
}

TmCondVar::~TmCondVar() { std::free(reinterpret_cast<void*>(ring_)); }

void TmCondVar::Grow(TmSystem& sys, TmWord h, TmWord t, TmWord cap) {
  // Transactional doubling: allocate, copy the occupied range re-masked for
  // the new size, retarget pointer + capacity, and free the old buffer. All of
  // it commits or aborts with the enclosing transaction (TxAlloc is undone on
  // abort, TxFree deferred to commit), and the commit-time quiescence fence
  // keeps the freed ring alive until concurrent readers that could still hold
  // the old pointer are done.
  TmWord* old_ring = reinterpret_cast<TmWord*>(sys.Read(&ring_));
  TmWord new_cap = cap * 2;
  TmWord* new_ring = static_cast<TmWord*>(
      sys.TxAlloc(static_cast<std::size_t>(new_cap) * sizeof(TmWord)));
  for (TmWord i = h; i != t; ++i) {
    sys.Write(&new_ring[i & (new_cap - 1)],
              sys.Read(&old_ring[i & (cap - 1)]));
  }
  sys.Write(&ring_, reinterpret_cast<TmWord>(new_ring));
  sys.Write(&cap_, new_cap);
  sys.TxFree(old_ring);
}

void TmCondVar::Wait(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TmCondVar::Wait outside transaction");
  d.stats.Bump(Counter::kCondVarWaits);
  // Enqueue as part of the in-flight transaction: the predicate the caller just
  // tested and this enqueue commit atomically, so a signal from any writer that
  // serializes later cannot be lost.
  TmWord h = sys.Read(&head_);
  TmWord t = sys.Read(&tail_);
  TmWord cap = sys.Read(&cap_);
  bool grew = false;
  if (t - h == cap) {
    // Full ring: enqueueing through the mask would overwrite the oldest
    // parked waiter's tid, losing its wakeup forever. Grow instead.
    Grow(sys, h, t, cap);
    cap = sys.Read(&cap_);
    grew = true;
  }
  TmWord* ring = reinterpret_cast<TmWord*>(sys.Read(&ring_));
  sys.Write(&ring[t & (cap - 1)], static_cast<TmWord>(d.tid));
  sys.Write(&tail_, t + 1);
  // The atomicity break: whatever the transaction did before this wait becomes
  // visible now.
  sys.CommitInFlight();
  if (grew) {
    // Counted after the commit so aborted attempts don't inflate it.
    d.stats.Bump(Counter::kCondVarRingGrowths);
  }
  sys.parking().ConsumeToken(d.park);
  d.skip_backoff = true;
  d.woke_from_sleep = true;
  throw TxRestart{};
}

void TmCondVar::Signal(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  d.stats.Bump(Counter::kCondVarSignals);
  if (d.nesting > 0) {
    sys.DeferSignal({this, /*broadcast=*/false});
    return;
  }
  SignalNow(sys);
}

void TmCondVar::Broadcast(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  d.stats.Bump(Counter::kCondVarSignals);
  if (d.nesting > 0) {
    sys.DeferSignal({this, /*broadcast=*/true});
    return;
  }
  BroadcastNow(sys);
}

std::size_t TmCondVar::PopBatch(TmSystem& sys, std::size_t max,
                                std::vector<int>& out) {
  const std::size_t base = out.size();
  sys.RunInternalTx([&] {
    // Re-execution starts clean: pops tentatively made by an aborted attempt
    // were rolled back, so the output must be rebuilt from `base`.
    out.resize(base);
    TmWord h = sys.Read(&head_);
    TmWord t = sys.Read(&tail_);
    if (h == t) {
      return;
    }
    TmWord cap = sys.Read(&cap_);
    TmWord* ring = reinterpret_cast<TmWord*>(sys.Read(&ring_));
    while (h != t && out.size() - base < max) {
      out.push_back(static_cast<int>(sys.Read(&ring[h & (cap - 1)])));
      ++h;
    }
    sys.Write(&head_, h);
  });
  const std::size_t popped = out.size() - base;
  if (popped > 0) {
    sys.Desc().stats.Bump(Counter::kCondVarBatches);
  }
  return popped;
}

void TmCondVar::SignalNow(TmSystem& sys) {
  std::vector<int> tids;
  if (PopBatch(sys, 1, tids) > 0) {
    sys.PostParked(tids[0]);
  }
}

void TmCondVar::BroadcastNow(TmSystem& sys) {
  // Pop a batch per internal transaction instead of one tid per transaction:
  // a broadcast over N waiters costs ceil(N/B) commits instead of N. Posts
  // are escape actions and stay strictly after the pop that claimed them
  // committed; the ring state never depends on the posts, so interleaving
  // batches with posts is safe.
  const int cfg_batch = sys.config().wake_batch_size;
  const std::size_t batch = cfg_batch > 0 ? static_cast<std::size_t>(cfg_batch)
                                          : std::size_t{1};
  std::vector<int> tids;
  for (;;) {
    tids.clear();
    if (PopBatch(sys, batch, tids) == 0) {
      return;
    }
    for (int tid : tids) {
      sys.PostParked(tid);
    }
  }
}

}  // namespace tcs
