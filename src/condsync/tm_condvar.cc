#include "src/condsync/tm_condvar.h"

#include "src/common/assert.h"
#include "src/tm/tm_system.h"

namespace tcs {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TmCondVar::TmCondVar(int capacity) : cap_(RoundUpPow2(static_cast<std::size_t>(capacity) + 1)) {
  ring_ = std::make_unique<TmWord[]>(cap_);
}

void TmCondVar::Wait(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  TCS_CHECK_MSG(d.nesting > 0, "TmCondVar::Wait outside transaction");
  d.stats.Bump(Counter::kCondVarWaits);
  // Enqueue as part of the in-flight transaction: the predicate the caller just
  // tested and this enqueue commit atomically, so a signal from any writer that
  // serializes later cannot be lost.
  TmWord t = sys.Read(&tail_);
  sys.Write(&ring_[t & (cap_ - 1)], static_cast<TmWord>(d.tid));
  sys.Write(&tail_, t + 1);
  // The atomicity break: whatever the transaction did before this wait becomes
  // visible now.
  sys.CommitInFlight();
  d.sem.Wait();
  d.skip_backoff = true;
  d.woke_from_sleep = true;
  throw TxRestart{};
}

void TmCondVar::Signal(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  d.stats.Bump(Counter::kCondVarSignals);
  if (d.nesting > 0) {
    sys.DeferSignal({this, /*broadcast=*/false});
    return;
  }
  SignalNow(sys);
}

void TmCondVar::Broadcast(TmSystem& sys) {
  TxDesc& d = sys.Desc();
  d.stats.Bump(Counter::kCondVarSignals);
  if (d.nesting > 0) {
    sys.DeferSignal({this, /*broadcast=*/true});
    return;
  }
  BroadcastNow(sys);
}

int TmCondVar::PopOne(TmSystem& sys) {
  int tid = -1;
  sys.RunInternalTx([&] {
    tid = -1;
    TmWord h = sys.Read(&head_);
    TmWord t = sys.Read(&tail_);
    if (h == t) {
      return;
    }
    tid = static_cast<int>(sys.Read(&ring_[h & (cap_ - 1)]));
    sys.Write(&head_, h + 1);
  });
  return tid;
}

void TmCondVar::SignalNow(TmSystem& sys) {
  int tid = PopOne(sys);
  if (tid >= 0) {
    sys.SemOf(tid).Post();
  }
}

void TmCondVar::BroadcastNow(TmSystem& sys) {
  for (;;) {
    int tid = PopOne(sys);
    if (tid < 0) {
      return;
    }
    sys.SemOf(tid).Post();
  }
}

}  // namespace tcs
