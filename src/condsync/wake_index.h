// The wakeup index: a sharded orec→waiter map that lets a committing writer
// notify only the waiters whose published waitsets its write set could have
// changed, instead of re-running every registered waiter's predicate.
//
// Motivation. Deschedule's wakeWaiters (Algorithm 4) is a scan: every writer
// commit re-evaluates every registered waiter's waitfunc, so wakeup cost grows
// with *total* waiters. For the paper's four-thread experiments that is fine;
// at many-waiter scale it is exactly the concurrency cost the TM literature
// warns about. The index restores O(relevant): a descheduling waiter whose
// predicate is the value-based findChanges (Retry/Await — the waitset lists the
// precise addresses it depends on) registers under the *shard* of each orec
// covering a waitset address; a committing writer unions the shards of its
// commit-time write-set orecs and wake-checks only those candidates.
//
// Segmented layout (capacity tier). The tid dimension is segmented: instead of
// one flat bitmap slab sized to max_threads, the index is a directory of
// lazily allocated 256-tid segment control blocks (geometry in segment.h).
// Each segment owns its own shard→tid bitmap slab, global-fallback words, and
// owner-side bookkeeping; publication of a fresh segment is a release-CAS on
// the directory entry (the [seg-publish] edge). Capacity grows by appending
// segments — 10^6 waiters cost ~4k directory words up front, with bitmap
// slabs materializing only for tid ranges that actually wait. Writer scans
// iterate allocated segments; TmSystem::WakeWaiters narrows that further to
// segments whose WaiterRegistry summary bit is set (ForEachCandidateInSegments)
// so a full-capacity index costs a writer popcount(segment mask) segment
// visits, not a 4096-shard flat walk.
//
// Shard-set representation. A waiter's shard membership is a per-tid *bitmap*
// of `shard_words()` 64-bit words (owner-thread-only bookkeeping), so the
// shard count can range over any power of two in [1, kMaxShards] — large orec
// tables with hundreds of waiters want many more than 64 shards, or unrelated
// waiters alias into the same shard and every hot-path commit pays spurious
// wake checks. The writer side mirrors this with a fixed-capacity stack
// scratch bitmap, keeping both sides zero-allocation.
//
// Conservativeness argument (no lost wakeups). A findChanges waiter can only
// become satisfied when some written address changes a waitset entry's value;
// that address maps to an orec the writer locked at commit, so the writer's
// shard union covers the waiter's shard — address overlap ⊆ orec overlap
// (hashing) ⊆ shard overlap (coarser hashing). Waiters whose predicate is an
// arbitrary WaitPred function have no address list to index; they register on
// the global fallback list, which every writer always visits. A findChanges
// waiter with an *empty* waitset also lands on the global list: an empty
// address list yields an empty shard set, which no writer union could ever
// cover — the global list is the only conservative registration for it. Both
// sides are strictly conservative: a spurious candidate costs one rejected
// wake-check transaction, never a wrong wake (the check itself is still
// transactional).
//
// The argument is indifferent to how many candidates share one wake
// transaction: candidate *selection* (this index) only decides who gets
// checked, and batching several checks into one transaction
// (TmSystem::WakeWaiters) moves their serialization point, not their
// semantics — each claim is still the transactional asleep 1→0 transition
// with its post issued strictly after commit. deschedule.cc carries the full
// batched claim/post protocol and its abort/retry reasoning.
//
// Publication ordering mirrors the WaiterRegistry presence bitmap: a waiter
// inserts its index entries (release) *before* its registration transaction
// begins, and a writer reads shards (acquire) only after its commit's
// [clock-chain] RMW, so "registration serialized before my commit" implies
// "I see the entries" — see the [wake-publish] glossary entry below for the
// full release-sequence argument that let these drop from seq_cst. Segment
// publication composes with it: the waiter's directory CAS precedes its
// inserts, so a writer that would see the inserts sees the segment pointer
// first ([seg-publish]).
#ifndef TCS_CONDSYNC_WAKE_INDEX_H_
#define TCS_CONDSYNC_WAKE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/assert.h"
#include "src/common/cache_line.h"
#include "src/condsync/segment.h"
#include "src/tm/protocol_checker.h"

namespace tcs {

struct Orec;

// ---------------------------------------------------------------------------
// Appendix: the happens-before edge glossary for `// mo:` annotations.
//
// Every std::memory_order argument in this codebase carries a `// mo:` comment
// naming its pairing partner; the recurring cross-file edges are named here so
// the comments can reference them by label. Tooling reads this appendix:
// tools/lint_tm_discipline.py enforces the comments' presence, and
// tools/tm_analyze.py parses every annotation into a cross-file edge graph
// keyed by these tags and verifies each edge is well-formed.
//
// Annotation grammar (machine-checked, see tools/tm_lint_lib.py):
//
//   // mo: <order>[ fence] — <argument naming the happens-before partner>
//
// with <order> ∈ {relaxed, acquire, release, acq_rel, seq_cst}. The argument
// may reference edges as `[tag]`; a tag must be declared here or by a
// file-local `// mo-edge: [tag] (minimal: <spec>) — <description>` line.
//
// Every seq_cst site — including seq_cst fences — must additionally carry
//
//   seq_cst-required: <why acquire/release is insufficient>
//
// in its annotation block; tm_analyze's budget gate fails CI on any seq_cst
// site without one. A valid reason names a Dekker / store-buffering shape
// (two threads that each store one word then load the other's): acq/rel
// cannot exclude both loads missing both stores, only membership in the
// single total order S can. Anything weaker than that shape should be argued
// as release/acquire instead of justified.
//
// Each entry's `(minimal: <spec>)` marks the edge's intended minimal
// ordering, which tm_analyze verifies against the code's endpoints:
//   release/acquire  needs ≥1 release-side and ≥1 acquire-side endpoint;
//                    relaxed endpoints only ride the edge
//   seq_cst          a Dekker edge: at least two seq_cst anchors (ops or
//                    fences), each with a seq_cst-required justification;
//                    weaker endpoints ride the anchors
//   external         synchronization comes from a non-atomic primitive
//                    (semaphore, thread join, lock); no endpoint obligations
//   relaxed          endpoints need no ordering at all (atomicity only)
//
//  [orec-publish]  (minimal: release/acquire)
//                  The orec (or sim-HTM cache-line) word's release store of an
//                  unlocked version, paired with every acquire load/CAS that
//                  samples the word. A committer orders its data write-back
//                  before the store; a reader that acquires an unlocked
//                  version therefore sees the published data. The sample /
//                  read / re-check snapshot and all lock acquisitions key on
//                  this one edge.
//
//  [clock-chain]   (minimal: release/acquire)
//                  The global version clock's fetch_add chain (Increment) and
//                  acquire Load. Every committed writer's increment is an RMW
//                  on the one clock word, so the increments form a release
//                  sequence: an acquire operation that reads any link of the
//                  chain synchronizes with every earlier release link, and a
//                  transaction that begins at start S happens-after every
//                  commit with end ≤ S. This chain also orders the wake path:
//                  a waiter's registration transaction and a writer's commit
//                  are both clock RMWs, so one of them serializes first — the
//                  case split the no-lost-wakeup argument below rests on.
//                  (The Increment itself stays seq_cst for the committer leg
//                  of [quiesce-dekker]; the *edge* needs only acq_rel.)
//
//  [wake-publish]  (minimal: release/acquire)
//                  The bitmap operations in this file plus the WaiterRegistry
//                  presence bitmap and its segment-summary mask. A waiter
//                  inserts entries (release) before its registration
//                  transaction begins; that transaction writes slot words, so
//                  its commit performs a [clock-chain] RMW. A committing
//                  writer's own commit RMW reads the chain, so if the
//                  registration's RMW precedes the writer's in the clock's
//                  modification order, the writer's increment synchronizes
//                  with the registration's and the insert — sequenced before
//                  it — is visible to the writer's acquire scan (write-read
//                  coherence: a load ordered after the insert by
//                  happens-before cannot read an older bitmap word). If
//                  instead the writer's RMW serializes first, the
//                  registration's double-check runs against the writer's
//                  committed state and the waiter never sleeps on a satisfied
//                  predicate. Either way no wakeup is lost — seq_cst added
//                  nothing but a total order the argument never used.
//                  One backend path commits with NO clock RMW: sim-HTM
//                  serial-mode commits (SimHtm::CommitTx, d.htm_serial).
//                  There the post-commit scan is instead ordered by the
//                  seq_cst [serial-token] handshake: the serial entrant's
//                  drain loop reads the registration commit's seq_cst
//                  committing_ = 0 store, or — when the registrant starts
//                  while the writer is already serial — the registrant's
//                  BeginTx poll reads ExitSerial's token store and its
//                  double-check runs against the writer's committed state.
//                  Either leg orders waiter inserts and the writer's scan
//                  without the clock chain, so the release/acquire bitmap
//                  endpoints stay sufficient on this path too.
//                  The registry's summary mask adds one wrinkle: clearing a
//                  summary bit when a segment drains races a concurrent
//                  re-registration, so the clear runs under a seqlock-guarded
//                  repair (clear, rescan the segment mask, conditionally
//                  re-set) and readers retry odd/changed generations — see
//                  WaiterRegistry::HasWaiters for the interleaving argument.
//
//  [serial-token]  (minimal: seq_cst)
//                  sim-HTM's Dekker pair: each committer's per-thread
//                  `committing_` flag vs. the serial token/sequence words.
//                  All four accesses are seq_cst so either the serial entrant
//                  sees the flag (and drains) or the committer sees the token
//                  (and aborts) — the classic store-buffering case both
//                  being acquire/release would not exclude.
//
//  [retry-dekker]  (minimal: seq_cst)
//                  Retry-Orig's store-buffering handshake, fence-anchored:
//                  a retrying waiter raises `count_` (relaxed RMW), issues a
//                  seq_cst fence, then validates its read orecs; a committing
//                  writer releases its write orecs, issues its commit-side
//                  seq_cst fence (tm_system.cc), then peeks `count_`
//                  (relaxed). The two fences are ordered in S, so either the
//                  waiter's validation sees the writer's orec bump (and does
//                  not sleep) or the writer's peek sees the raised count (and
//                  scans the sleeper list). The count and peek themselves
//                  ride the fences at relaxed — the fences are the edge.
//                  The commit path's earlier count_ peek (inside
//                  SnapshotCommitOrecsIfNeeded) runs BEFORE the writer's
//                  fence and is outside this edge entirely: the SB outcome
//                  may hide a racing registration from it. It only gates
//                  copying the write-orec set; when the post-fence peek then
//                  finds waiters with no snapshot, Commit() falls back to
//                  RetryOrigRegistry::WakeAllSleepers (spurious wakeups, not
//                  lost ones).
//
//  [quiesce-dekker] (minimal: seq_cst)
//                  Privatization-safety Dekker between a raw snapshot reader
//                  and a committing writer: the reader publishes its quiesce
//                  slot (seq_cst store) then samples orec words; the
//                  committer locks/bumps its orecs, performs the seq_cst
//                  [clock-chain] Increment, then scans the quiesce slots.
//                  Either the reader's sample sees the locked/bumped orec
//                  (and falls back or aborts), or the committer's scan sees
//                  the published slot (and waits for the reader) — the
//                  store-buffering exclusion that gates memory reclamation.
//
//  [seg-publish]   (minimal: release/acquire)
//                  Lazy publication of 256-tid segment control blocks
//                  (WaiterRegistry, WakeIndex, QuiesceTable): the allocating
//                  thread zero-initializes the block, then installs its
//                  pointer with a release (acq_rel) directory CAS; every
//                  reader loads directory entries with acquire. The pairing
//                  guarantees a reader that sees the pointer sees a fully
//                  initialized block. A null entry is itself information —
//                  "no tid of this range ever registered" — so scans skip
//                  null segments without ordering. Losing CAS racers delete
//                  their unpublished block and adopt the winner's; the
//                  protocol checker's OnSegmentPublished hook asserts each
//                  index is published at most once per structure.
//
//  [park-handoff]  (minimal: release/acquire)
//                  ParkingLot wake-token delivery: a claiming waker posts the
//                  token with a release fetch_or (ParkingLot::Post) strictly
//                  after the claim transaction commits and the wake-post
//                  stamp is written; the spot's owner consumes it with an
//                  acquire RMW (ConsumeToken/ParkEither/ParkUntil). The pair
//                  makes the committed claim and the stamp visible to the
//                  woken waiter — the same contract the retired per-slot
//                  semaphore's internal post/wait pair used to provide. The
//                  futex/condvar machinery underneath only adds sleep/wake
//                  and carries no data ordering of its own.
//
//  [wheel-tick]    (minimal: release/acquire)
//                  TimerWheel timeout-token delivery: the ticker posts the
//                  timeout token with a release fetch_or
//                  (ParkingLot::PostTimeout) and the timed waiter consumes it
//                  with an acquire RMW (ParkEither). Stale and spurious fires
//                  are benign by construction: the epoch filter drops most,
//                  and a waiter woken with `now < deadline` re-arms and
//                  re-parks (deschedule.cc), so the edge only needs to carry
//                  the token itself, never timing data.
// ---------------------------------------------------------------------------

class WakeIndex {
 public:
  // Hard ceiling on the shard count. The writer-side scratch shard set is a
  // stack array sized for it (kMaxShards / 64 words = 512 bytes), which is
  // what keeps ForEachCandidate allocation-free at any configured count.
  static constexpr int kMaxShards = 4096;

  // `num_shards` must be a power of two in [1, kMaxShards].
  WakeIndex(int max_threads, int num_shards);
  ~WakeIndex();

  WakeIndex(const WakeIndex&) = delete;
  WakeIndex& operator=(const WakeIndex&) = delete;

  int shard_count() const { return num_shards_; }
  // Words per shard-set bitmap (= ceil(num_shards / 64)).
  int shard_words() const { return shard_words_; }

  // Optional dynamic protocol checker (TCS_PROTOCOL_CHECKS builds): the owning
  // TmSystem attaches its checker so Add*/Remove report registration-balance
  // transitions and segment publication stays add-once. Standalone instances
  // (unit tests) leave it unset.
  void AttachProtocolChecker(ProtocolChecker* checker) { checker_ = checker; }

  // Shard covering an orec. Stable for the index's lifetime, so the waiter and
  // writer sides always agree.
  int ShardOf(const Orec* o) const {
    if (shards_log2_ == 0) {
      return 0;
    }
    auto a = reinterpret_cast<std::uintptr_t>(o);
    return static_cast<int>((static_cast<std::uint64_t>(a >> 3) *
                             0x9E3779B97F4A7C15ULL) >>
                            (64 - shards_log2_));
  }

  // Waiter side. All three calls for a given tid are made by the owning thread
  // only, before its registration transaction (Add*) or after deregistering
  // (Remove); tid reuse across threads is ordered by descriptor recycling.

  // Registers tid under the shard of each given orec (duplicates collapse).
  // An empty orec list falls back to AddGlobal: an empty shard set would never
  // be covered by any writer's shard union, stranding the waiter until timeout
  // (or forever) — the caller should account it as a global deschedule.
  void AddIndexed(int tid, const Orec* const* orecs, std::size_t n) {
    if (n == 0) {
      AddGlobal(tid);
      return;
    }
    IndexSegment& seg = EnsureSegment(tid >> kCondSyncSegmentShift);
    const int rel = tid & (kCondSyncSegmentSize - 1);
    std::uint64_t* set = PerTidShards(seg, rel);
    for (int sw = 0; sw < shard_words_; ++sw) {
      set[sw] = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      int s = ShardOf(orecs[i]);
      set[s >> 6] |= std::uint64_t{1} << (s & 63);
    }
    const std::uint64_t bit = std::uint64_t{1} << (rel % 64);
    const int w = rel / 64;
    for (int sw = 0; sw < shard_words_; ++sw) {
      std::uint64_t word = set[sw];
      while (word != 0) {
        int s = sw * 64 + __builtin_ctzll(word);
        word &= word - 1;
        // mo: release — [wake-publish]: the insert precedes the registration
        // transaction's [clock-chain] RMW in program order; a writer whose
        // commit RMW serializes later therefore sees it (release-sequence
        // argument in the glossary). The release also pairs directly with
        // the scan's acquire when the scan reads-from this very insert.
        ShardWord(seg, s, w).fetch_or(bit, std::memory_order_release);
      }
    }
    TCS_PROTO(if (checker_ != nullptr) checker_->OnWakeRegister(tid, true));
  }

  // Registers tid on the global fallback list (predicate with no address list:
  // every committing writer must consider it).
  void AddGlobal(int tid) {
    IndexSegment& seg = EnsureSegment(tid >> kCondSyncSegmentShift);
    const int rel = tid & (kCondSyncSegmentSize - 1);
    seg.per_tid_global[rel] = 1;
    // mo: release — [wake-publish]: same release-sequence argument as the
    // shard insert in AddIndexed; the global list is scanned by every writer.
    seg.global[rel / 64].fetch_or(std::uint64_t{1} << (rel % 64),
                                  std::memory_order_release);
    TCS_PROTO(if (checker_ != nullptr) checker_->OnWakeRegister(tid, false));
  }

  // Clears every entry tid holds, indexed or global — exactly what the
  // bookkeeping says the owner added, nothing else. Idempotent, so the single
  // deregistration point covers wakeup, timeout, and the no-sleep double-check
  // path alike — a timed wait that expires leaves nothing behind.
  void Remove(int tid) {
    TCS_PROTO(if (checker_ != nullptr) checker_->OnWakeDeregister(tid));
    IndexSegment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    if (seg == nullptr) {
      return;  // Never registered: nothing to clear.
    }
    const int rel = tid & (kCondSyncSegmentSize - 1);
    std::uint64_t* set = PerTidShards(*seg, rel);
    const std::uint64_t clear = ~(std::uint64_t{1} << (rel % 64));
    const int w = rel / 64;
    for (int sw = 0; sw < shard_words_; ++sw) {
      std::uint64_t word = set[sw];
      set[sw] = 0;
      while (word != 0) {
        int s = sw * 64 + __builtin_ctzll(word);
        word &= word - 1;
        // mo: relaxed — [wake-publish] rider: per-word coherence already
        // keeps insert/clear RMWs on one bitmap word totally ordered, and a
        // scan that reads the pre-clear value only produces a spurious
        // candidate, which the transactional wake check rejects (asleep==0).
        ShardWord(*seg, s, w).fetch_and(clear, std::memory_order_relaxed);
      }
    }
    if (seg->per_tid_global[rel] != 0) {
      seg->per_tid_global[rel] = 0;
      // mo: relaxed — [wake-publish] rider: same spurious-candidate argument
      // as the shard clear above.
      seg->global[w].fetch_and(clear, std::memory_order_relaxed);
    }
  }

  // Writer side, two-phase: BuildShardSet folds a write set's orecs into a
  // caller-owned shard-set bitmap of shard_words() words, and
  // ForEachCandidateIn visits the candidates that bitmap covers. Splitting
  // the phases lets a committing writer build the set once into per-thread
  // scratch (reused commit to commit — no per-pass rebuild or re-zeroing of a
  // maximal stack array) and then drive any number of candidate passes over
  // it, which is what the batched wake path does.
  void BuildShardSet(const Orec* const* orecs, std::size_t n,
                     std::uint64_t* shard_set) const {
    for (int sw = 0; sw < shard_words_; ++sw) {
      shard_set[sw] = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      int s = ShardOf(orecs[i]);
      shard_set[s >> 6] |= std::uint64_t{1} << (s & 63);
    }
  }

  // Invokes fn(tid) once for every candidate of a prebuilt shard set — each
  // waiter registered under a covered shard, then each global-fallback
  // waiter. fn returns false to stop early. Shard-indexed candidates are
  // visited first: their waitsets name addresses the write set's orecs
  // actually cover, so under wake_single (which stops at the first wakeup)
  // the writer prefers a waiter it probably satisfied over an
  // arbitrary-predicate waiter it merely might have. Zero allocation; cost is
  // O(allocated segments × (1 + distinct shards touched)). Callers with a
  // registry summary in hand should prefer ForEachCandidateInSegments, which
  // walks only the populated segments.
  template <typename Fn>
  void ForEachCandidateIn(const std::uint64_t* shard_set, Fn&& fn) {
    ForEachCandidateInSegments(shard_set, nullptr, 0, std::forward<Fn>(fn));
  }

  // Masked variant: visits only segments whose bit is set in `seg_summary`
  // (seg_summary_words words; a WaiterRegistry::SnapshotSummary copy). Sound
  // because a waiter's index insert and its registry MarkRegistered both
  // precede its registration commit: any waiter a writer's commit serialized
  // after has its summary bit set in a stable snapshot, so an unset bit — or
  // a null index segment — proves no relevant waiter, never hides one.
  // Passing seg_summary == nullptr visits every allocated segment.
  template <typename Fn>
  void ForEachCandidateInSegments(const std::uint64_t* shard_set,
                                  const std::uint64_t* seg_summary,
                                  int seg_summary_words, Fn&& fn) {
    // Pass 1: shard-indexed candidates, ascending tid.
    for (int si = 0; si < num_segments_; ++si) {
      if (seg_summary != nullptr && !SummaryHas(seg_summary, seg_summary_words,
                                                si)) {
        continue;
      }
      // mo: acquire — [seg-publish]: pairs with the allocator's release
      // directory CAS; a non-null pointer implies a fully initialized block.
      IndexSegment* seg = segments_[si].load(std::memory_order_acquire);
      if (seg == nullptr) {
        continue;
      }
      for (int w = 0; w < kCondSyncSegmentWords; ++w) {
        std::uint64_t cand = 0;
        for (int sw = 0; sw < shard_words_; ++sw) {
          std::uint64_t ss = shard_set[sw];
          while (ss != 0) {
            int s = sw * 64 + __builtin_ctzll(ss);
            ss &= ss - 1;
            // mo: acquire — [wake-publish]: the writer-side scan, ordered
            // after its commit's [clock-chain] RMW; pairs with the waiter's
            // release insert in AddIndexed.
            cand |= ShardWord(*seg, s, w).load(std::memory_order_acquire);
          }
        }
        while (cand != 0) {
          int bit = __builtin_ctzll(cand);
          cand &= cand - 1;
          if (!fn(si * kCondSyncSegmentSize + w * 64 + bit)) {
            return;
          }
        }
      }
    }
    // Pass 2: global-fallback candidates, ascending tid.
    for (int si = 0; si < num_segments_; ++si) {
      if (seg_summary != nullptr && !SummaryHas(seg_summary, seg_summary_words,
                                                si)) {
        continue;
      }
      // mo: acquire — [seg-publish]: pairs with the allocator's release
      // directory CAS (see pass 1).
      IndexSegment* seg = segments_[si].load(std::memory_order_acquire);
      if (seg == nullptr) {
        continue;
      }
      for (int w = 0; w < kCondSyncSegmentWords; ++w) {
        // mo: acquire — [wake-publish]: pairs with the waiter's release
        // insert in AddGlobal, same clock-chain argument as the shard scan.
        std::uint64_t cand = seg->global[w].load(std::memory_order_acquire);
        // A tid registers either indexed or global, never both, so masking
        // out the shard union usually suppresses a racing re-registration
        // between the passes. It is best-effort, NOT a dedup guarantee: a tid
        // emitted by the shard pass that deregistered and re-registered
        // globally before this mask is sampled has already cleared its shard
        // bits, so the mask misses it and the global pass emits it a second
        // time. Callers that need distinct tids must dedup themselves
        // (WakeWaiters keeps a seen bitmap); claiming stays correct
        // regardless because a second claim attempt observes asleep == 0 and
        // skips.
        for (int sw = 0; sw < shard_words_; ++sw) {
          std::uint64_t ss = shard_set[sw];
          while (ss != 0) {
            int s = sw * 64 + __builtin_ctzll(ss);
            ss &= ss - 1;
            // mo: relaxed — [wake-publish] rider: best-effort de-dup mask of
            // the global pass (see the comment above); a stale word only lets
            // a duplicate candidate through, which callers dedup anyway.
            cand &= ~ShardWord(*seg, s, w).load(std::memory_order_relaxed);
          }
        }
        while (cand != 0) {
          int bit = __builtin_ctzll(cand);
          cand &= cand - 1;
          if (!fn(si * kCondSyncSegmentSize + w * 64 + bit)) {
            return;
          }
        }
      }
    }
  }

  // One-shot convenience: build the shard set into stack scratch and visit it.
  template <typename Fn>
  void ForEachCandidate(const Orec* const* orecs, std::size_t n, Fn&& fn) {
    std::uint64_t shard_set[kMaxShardWords];
    BuildShardSet(orecs, n, shard_set);
    ForEachCandidateIn(shard_set, std::forward<Fn>(fn));
  }

  // --- introspection (tests, leak checks, metrics) ---

  // True if tid holds any entry, indexed or global.
  bool HasEntries(int tid) const {
    const IndexSegment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    if (seg == nullptr) {
      return false;
    }
    const int rel = tid & (kCondSyncSegmentSize - 1);
    if (seg->per_tid_global[rel] != 0) {
      return true;
    }
    const std::uint64_t* set = PerTidShards(*seg, rel);
    for (int sw = 0; sw < shard_words_; ++sw) {
      if (set[sw] != 0) {
        return true;
      }
    }
    return false;
  }

  bool IsGlobal(int tid) const {
    const IndexSegment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    return seg != nullptr &&
           seg->per_tid_global[tid & (kCondSyncSegmentSize - 1)] != 0;
  }

  // Number of distinct shards tid registered under.
  int ShardSetPopulation(int tid) const {
    const IndexSegment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    if (seg == nullptr) {
      return 0;
    }
    const std::uint64_t* set =
        PerTidShards(*seg, tid & (kCondSyncSegmentSize - 1));
    int n = 0;
    for (int sw = 0; sw < shard_words_; ++sw) {
      n += __builtin_popcountll(set[sw]);
    }
    return n;
  }

  // True iff tid registered under shard s.
  bool InShardSet(int tid, int s) const {
    const IndexSegment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    if (seg == nullptr) {
      return false;
    }
    const std::uint64_t* set =
        PerTidShards(*seg, tid & (kCondSyncSegmentSize - 1));
    return (set[s >> 6] & (std::uint64_t{1} << (s & 63))) != 0;
  }

  // Conservative count of tids present in shard `s` / on the global list.
  // Precondition for an exact answer: the caller must externally order every
  // concurrent Add*/Remove before the call (join the waiter threads, or
  // otherwise sequence a barrier) — the loads are acquire, so a count taken
  // mid-run is stale-but-ordered at best, and nothing here enforces the
  // precondition. Tests and post-join leak checks satisfy it; do not assert
  // on these from in-flight threads.
  int ShardPopulation(int s) const;
  int GlobalPopulation() const;

  // True iff no shard and no global word holds any bit (leak detector). Same
  // precondition as the population accessors: only meaningful once every
  // waiter thread's final Remove has been ordered before this call (thread
  // join); a mid-run call may race registrations and flicker.
  bool Empty() const;

  // Bytes currently committed to this index: the directory plus every
  // allocated segment's slabs. Feeds the memory-per-waiter metric.
  std::size_t FootprintBytes() const;

  // Number of segments with an allocated control block.
  int AllocatedSegments() const;

 private:
  static constexpr int kMaxShardWords = kMaxShards / 64;

  // One 256-tid segment control block: a shard-major bitmap slab (shard s,
  // word w at bits[s * kCondSyncSegmentWords + w]), the segment's global-
  // fallback words, and owner-thread bookkeeping. Adjacent shards share cache
  // lines within a segment — benign, because cross-thread traffic on one
  // segment is already bounded to its 256 tids and the flat layout keeps the
  // slab ~8x smaller than per-shard line padding would.
  struct alignas(kCacheLineBytes) IndexSegment {
    std::unique_ptr<std::atomic<std::uint64_t>[]> bits;
    std::atomic<std::uint64_t> global[kCondSyncSegmentWords];
    // Owner-thread-only bookkeeping of what each tid registered (one
    // shard_words_-word bitmap per tid), so Remove can clear exactly those
    // entries without scanning all shards.
    std::unique_ptr<std::uint64_t[]> per_tid_shards;
    std::uint8_t per_tid_global[kCondSyncSegmentSize];
  };

  static bool SummaryHas(const std::uint64_t* summary, int words, int si) {
    int w = si >> 6;
    return w < words && (summary[w] & (std::uint64_t{1} << (si & 63))) != 0;
  }

  std::atomic<std::uint64_t>& ShardWord(IndexSegment& seg, int shard,
                                        int word) const {
    return seg.bits[static_cast<std::size_t>(shard) * kCondSyncSegmentWords +
                    word];
  }
  std::uint64_t* PerTidShards(IndexSegment& seg, int rel) const {
    return &seg.per_tid_shards[static_cast<std::size_t>(rel) * shard_words_];
  }
  const std::uint64_t* PerTidShards(const IndexSegment& seg, int rel) const {
    return &seg.per_tid_shards[static_cast<std::size_t>(rel) * shard_words_];
  }

  // Returns the segment's control block, allocating and publishing it on
  // first touch (waiter side). SegmentOf is the read-only variant: null means
  // no tid of that range ever registered.
  IndexSegment& EnsureSegment(int si);
  IndexSegment* SegmentOf(int si) const {
    // mo: acquire — [seg-publish]: pairs with the allocator's release
    // directory CAS; a non-null pointer implies a fully initialized block.
    return segments_[si].load(std::memory_order_acquire);
  }

  int capacity_;
  int num_segments_;
  int num_shards_;
  int shards_log2_;
  int shard_words_;
  // Directory of lazily allocated segments; entries are owned (deleted in the
  // destructor) and published at most once via release-CAS.
  std::unique_ptr<std::atomic<IndexSegment*>[]> segments_;
  ProtocolChecker* checker_ = nullptr;
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_WAKE_INDEX_H_
