// Shared segment geometry for the capacity tier's waiter-side structures.
//
// WaiterRegistry, WakeIndex, and QuiesceTable all grow by appending
// 256-thread segment control blocks instead of sizing flat slabs to
// max_threads up front. One shared shift keeps their tid→segment math in
// lockstep, which is what makes the registry's segment-summary bitmap a
// valid iteration mask for the wake index (see
// WakeIndex::ForEachCandidateInSegments).
#ifndef TCS_CONDSYNC_SEGMENT_H_
#define TCS_CONDSYNC_SEGMENT_H_

namespace tcs {

// 256 tids per segment: one segment's presence bitmap is exactly four
// 64-bit words (kCondSyncSegmentWords), and a segment's slot slab stays in
// the tens-of-KB range — cheap enough to allocate on first touch, large
// enough that 10^6 waiters need only ~4k directory entries.
inline constexpr int kCondSyncSegmentShift = 8;
inline constexpr int kCondSyncSegmentSize = 1 << kCondSyncSegmentShift;
inline constexpr int kCondSyncSegmentWords = kCondSyncSegmentSize / 64;

}  // namespace tcs

#endif  // TCS_CONDSYNC_SEGMENT_H_
