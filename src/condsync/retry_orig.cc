#include "src/condsync/retry_orig.h"

#include <unordered_set>

#include "src/common/assert.h"

namespace tcs {

RetryOrigRegistry::RetryOrigRegistry(int max_threads) {
  entries_.resize(static_cast<std::size_t>(max_threads));
}

void RetryOrigRegistry::WaitForOverlap(TxDesc& d,
                                       std::vector<const Orec*> read_orecs,
                                       std::uint64_t start,
                                       const std::vector<ReleasedOrec>& released) {
  Entry& e = entries_[static_cast<std::size_t>(d.tid)];
  // The count is raised before validation; a committing writer that reads zero is
  // thereby guaranteed to have released its orecs before our validation loads,
  // so validation will observe its commit (Dekker pairing with OnWriterCommit).
  // mo: seq_cst — Dekker: the count raise must be totally ordered against the
  // writer's HasWaiters-style count peek (via the commit fence in tm_system.cc).
  count_.fetch_add(1, std::memory_order_seq_cst);
  // mo: seq_cst fence — belt over the RMW above: orders the raise before the
  // validation loads below in the same total order the writer's fence uses.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  bool slept = false;
  {
    SpinLockGuard g(lock_);
    bool valid = true;
    for (const Orec* o : read_orecs) {
      // mo: seq_cst — Dekker validation leg: ordered after the count raise, so
      // either this load sees the writer's release or the writer's count peek
      // sees us and its OnWriterCommit posts our semaphore.
      std::uint64_t w = o->word.load(std::memory_order_seq_cst);
      if (!Orec::IsLocked(w) && Orec::Version(w) <= start) {
        continue;
      }
      // An orec this transaction itself wrote was bumped by our own rollback;
      // that does not constitute a change (see header).
      bool own_release = false;
      for (const ReleasedOrec& r : released) {
        if (r.orec == o && r.word_after_release == w) {
          own_release = true;
          break;
        }
      }
      if (!own_release) {
        valid = false;
        break;
      }
    }
    if (valid) {
      e.reads = std::move(read_orecs);
      e.sem = &d.sem;
      e.sleeping = true;
      slept = true;
    }
  }
  if (slept) {
    d.stats.Bump(Counter::kSleeps);
    d.sem.Wait();
    SpinLockGuard g(lock_);
    e.sleeping = false;
    e.reads.clear();
  }
  // mo: seq_cst — Dekker: lowering stays in the same total order as raising,
  // so a writer's peek never sees a stale zero while we still wait.
  count_.fetch_sub(1, std::memory_order_seq_cst);
  d.stats.Bump(Counter::kDeschedules);
}

void RetryOrigRegistry::OnWriterCommit(const std::vector<const Orec*>& write_orecs) {
  if (write_orecs.empty()) {
    return;
  }
  // Build the intersection probe once per commit.
  std::unordered_set<const Orec*> writes(write_orecs.begin(), write_orecs.end());
  SpinLockGuard g(lock_);
  for (Entry& e : entries_) {
    if (!e.sleeping) {
      continue;
    }
    for (const Orec* o : e.reads) {
      if (writes.count(o) != 0) {
        e.sleeping = false;
        e.sem->Post();
        break;
      }
    }
  }
}

}  // namespace tcs
