#include "src/condsync/retry_orig.h"

#include <unordered_set>

#include "src/common/assert.h"

namespace tcs {

RetryOrigRegistry::RetryOrigRegistry(int max_threads, ParkingLot* lot)
    : lot_(lot != nullptr ? lot : &ParkingLot::Default()),
      max_threads_(max_threads) {
  TCS_CHECK(max_threads > 0);
}

RetryOrigRegistry::Entry& RetryOrigRegistry::EntryOf(int tid) {
  TCS_CHECK(tid >= 0 && tid < max_threads_);
  if (static_cast<std::size_t>(tid) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(tid) + 1);
  }
  return entries_[static_cast<std::size_t>(tid)];
}

void RetryOrigRegistry::WaitForOverlap(TxDesc& d,
                                       std::vector<const Orec*> read_orecs,
                                       std::uint64_t start,
                                       const std::vector<ReleasedOrec>& released) {
  // The count is raised before validation; a committing writer that reads zero is
  // thereby guaranteed to have released its orecs before our validation loads,
  // so validation will observe its commit ([retry-dekker] pairing with the
  // commit path that calls HasWaiters/OnWriterCommit).
  // mo: relaxed — [retry-dekker] rider: the raise is anchored by the seq_cst
  // fence just below; the RMW itself only needs atomicity.
  count_.fetch_add(1, std::memory_order_relaxed);
  // mo: seq_cst fence — [retry-dekker] waiter leg.
  // seq_cst-required: store-buffering exclusion — W(count_)/R(orecs) here vs
  // the writer's W(orecs)/R(count_); acquire/release fences cannot forbid both
  // sides reading the pre-update values ([atomics.fences]).
  std::atomic_thread_fence(std::memory_order_seq_cst);

  bool slept = false;
  {
    SpinLockGuard g(lock_);
    bool valid = true;
    for (const Orec* o : read_orecs) {
      // mo: acquire — [orec-publish], and a [retry-dekker] rider: the waiter's
      // seq_cst fence above orders this load after the count raise, so either
      // it sees the writer's orec release or the writer's count peek sees us
      // and its OnWriterCommit posts our semaphore.
      std::uint64_t w = o->word.load(std::memory_order_acquire);
      if (!Orec::IsLocked(w) && Orec::Version(w) <= start) {
        continue;
      }
      // An orec this transaction itself wrote was bumped by our own rollback;
      // that does not constitute a change (see header).
      bool own_release = false;
      for (const ReleasedOrec& r : released) {
        if (r.orec == o && r.word_after_release == w) {
          own_release = true;
          break;
        }
      }
      if (!own_release) {
        valid = false;
        break;
      }
    }
    if (valid) {
      Entry& e = EntryOf(d.tid);
      e.reads = std::move(read_orecs);
      e.spot = &d.park;
      e.sleeping = true;
      slept = true;
    }
  }
  if (slept) {
    d.stats.Bump(Counter::kSleeps);
    lot_->ConsumeToken(d.park);
    SpinLockGuard g(lock_);
    // Re-fetch: another waiter's first registration may have grown entries_
    // while we slept, invalidating any reference held across the unlock.
    Entry& e = EntryOf(d.tid);
    e.sleeping = false;
    e.reads.clear();
  }
  // mo: relaxed — [retry-dekker] rider: per-word coherence keeps the lowering
  // after the raise; a writer that still sees the raised count merely takes
  // the scan slow path and finds no sleeping entry under the lock.
  count_.fetch_sub(1, std::memory_order_relaxed);
  d.stats.Bump(Counter::kDeschedules);
}

void RetryOrigRegistry::OnWriterCommit(const std::vector<const Orec*>& write_orecs) {
  if (write_orecs.empty()) {
    return;
  }
  // Build the intersection probe once per commit.
  std::unordered_set<const Orec*> writes(write_orecs.begin(), write_orecs.end());
  SpinLockGuard g(lock_);
  for (Entry& e : entries_) {
    if (!e.sleeping) {
      continue;
    }
    for (const Orec* o : e.reads) {
      if (writes.count(o) != 0) {
        e.sleeping = false;
        lot_->Post(*e.spot);
        break;
      }
    }
  }
}

void RetryOrigRegistry::WakeAllSleepers() {
  SpinLockGuard g(lock_);
  for (Entry& e : entries_) {
    if (e.sleeping) {
      e.sleeping = false;
      lot_->Post(*e.spot);
    }
  }
}

}  // namespace tcs
