// Retry-Orig: the original STM-coupled Retry mechanism (Algorithm 1), adapted from
// Harris et al.'s Haskell design. Used as the evaluation's baseline "Retry-Orig".
//
// A retrying transaction publishes the *ownership records* of its read set to a
// global waiting list (under the global waiting lock, exactly as Algorithm 1
// presents it); every subsequent writer commit intersects its write-orec set with
// each sleeper's read-orec set and signals on overlap. This is the mechanism the
// paper argues against: it is tied to STM metadata (so it is orec-granular and
// wakes on silent stores) and is incompatible with HTM, which exposes no write set.
//
// One refinement over the pseudocode: Algorithm 1 validates `reads` under the
// waiting lock with the transaction's start time, but an eager transaction that
// wrote some of the locations it read has just release-for-abort-bumped those
// orecs itself. Validation therefore accepts an orec whose current word equals the
// value this thread's own rollback stored ("released" below); any later writer
// commit moves the orec past that value, so the check stays conservative.
//
// Lost-wakeup exclusion is the [retry-dekker] store-buffering shape (glossary in
// wake_index.h). Waiter: raise count_ (relaxed RMW), seq_cst fence, validate the
// read orecs. Writer: release its orecs, seq_cst fence (commit path in
// tm_system.cc), peek count_. The two fences are the only seq_cst the protocol
// needs — [atomics.fences] forbids both sides missing each other, so either
// validation observes the commit (waiter restarts) or the peek observes the
// raised count (writer scans and posts). The count ops themselves are relaxed
// riders anchored by the fences.
//
// Only the writer's POST-fence peek participates in that exclusion. The commit
// path also peeks count_ earlier, inside SnapshotCommitOrecsIfNeeded, to decide
// whether copying the write-orec set is worth it — that peek runs before the
// fence, so the store-buffering outcome can make it miss a racing registration.
// Missing there is safe because it only skips the copy: when the post-fence
// peek then finds waiters with no snapshot to intersect, the commit path calls
// WakeAllSleepers() instead of OnWriterCommit() — every sleeper restarts,
// revalidates under the waiting lock, and re-sleeps if still valid, so the
// race costs a spurious wakeup, never a lost one.
#ifndef TCS_CONDSYNC_RETRY_ORIG_H_
#define TCS_CONDSYNC_RETRY_ORIG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/parking_lot.h"
#include "src/common/spin_lock.h"
#include "src/tm/orec_table.h"
#include "src/tm/tx_desc.h"

namespace tcs {

class RetryOrigRegistry {
 public:
  // `max_threads` only bounds tids; the per-tid entry table grows lazily under
  // the waiting lock, so a 64Ki-thread ceiling costs nothing up front. Sleepers
  // park on their descriptor's ParkSpot through `lot` (the owning domain's
  // ParkingLot; standalone/test instances fall back to the process default).
  explicit RetryOrigRegistry(int max_threads, ParkingLot* lot = nullptr);

  RetryOrigRegistry(const RetryOrigRegistry&) = delete;
  RetryOrigRegistry& operator=(const RetryOrigRegistry&) = delete;

  // Waiter-presence peek used by committing writers, at two sites with two
  // different strengths of guarantee (see the header comment): after the
  // commit-side seq_cst fence in tm_system.cc it is the sound [retry-dekker]
  // R-leg; before that fence (SnapshotCommitOrecsIfNeeded) it is only a
  // heuristic that may miss a racing registration, and the caller must treat
  // a miss as "skip an optimization", never "skip the wakeup".
  // mo: relaxed — [retry-dekker] rider: the gating peek is ordered by the
  // writer's commit-side seq_cst fence (tm_system.cc), which excludes the SB
  // outcome against the waiter's raise+fence in WaitForOverlap; the pre-fence
  // snapshot peek is heuristic-only (misses fall back to WakeAllSleepers).
  // The load itself only needs atomicity.
  bool HasWaiters() const { return count_.load(std::memory_order_relaxed) > 0; }

  // Algorithm 1, Retry lines 3-8: under the waiting lock, re-validate the read
  // orecs against `start` (honoring `released`, see above); if still valid,
  // publish the read set and park on d.park. Returns after wakeup, or
  // immediately when validation failed. The caller restarts either way.
  struct ReleasedOrec {
    const Orec* orec;
    std::uint64_t word_after_release;
  };
  void WaitForOverlap(TxDesc& d, std::vector<const Orec*> read_orecs,
                      std::uint64_t start, const std::vector<ReleasedOrec>& released);

  // Algorithm 1, TxCommit lines 10-15: wake every sleeper whose read-orec set
  // intersects this writer's write-orec set.
  void OnWriterCommit(const std::vector<const Orec*>& write_orecs);

  // Conservative fallback for a writer whose post-fence HasWaiters peek found
  // waiters but whose pre-fence snapshot heuristic skipped copying the write
  // set (tm_system.cc Commit): with no write-orec set left to intersect, wake
  // every sleeper. Spurious for non-overlapping sleepers, never wrong — each
  // woken waiter restarts, revalidates under the waiting lock, and re-sleeps
  // if its reads are still valid.
  void WakeAllSleepers();

 private:
  struct Entry {
    std::vector<const Orec*> reads;
    ParkSpot* spot = nullptr;
    bool sleeping = false;
  };

  // The entry for `tid`, growing the table if needed. Caller holds lock_; the
  // returned reference is invalidated by any later growth, so it must be
  // re-fetched after every lock reacquisition.
  Entry& EntryOf(int tid);

  ParkingLot* lot_;
  int max_threads_;
  SpinLock lock_;  // Algorithm 1's global `waiting` lock
  std::vector<Entry> entries_;  // grown lazily under lock_
  std::atomic<int> count_{0};
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_RETRY_ORIG_H_
