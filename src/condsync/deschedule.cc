// Deschedule (Algorithm 4) and wakeWaiters: the paper's abstract HTM-friendly
// condition-synchronization mechanism. Retry, Await, and WaitPred all reduce to
// Deschedule(f, p): roll back, double-check f(p) inside a registration
// transaction, publish ⟨f, p⟩, sleep, and on wakeup restart the whole transaction.
#include "src/condsync/waiter_registry.h"
#include "src/tm/tm_system.h"

namespace tcs {

bool FindChangesPred(TmSystem& sys, const WaitArgs& args) {
  const auto* ws = reinterpret_cast<const WaitSet*>(args.v[0]);
  for (const WaitSet::Entry& e : ws->entries()) {
    if (sys.Read(e.addr) != e.val) {
      return true;
    }
  }
  return false;
}

void TmSystem::Deschedule(WaitPredFn fn, const WaitArgs& args) {
  DescheduleImpl(fn, args, /*timed=*/false);
}

void TmSystem::DescheduleImpl(WaitPredFn fn, const WaitArgs& args, bool timed) {
  TxDesc& d = Desc();
  d.stats.Bump(Counter::kDeschedules);
  d.stats.Bump(Counter::kWaitsetEntries, d.waitset.Size());
  if (d.woke_from_sleep) {
    // We were woken, re-executed, and are about to sleep again: the wakeup did
    // not establish our precondition (a broadcast-style false wakeup, §2.4.1).
    d.stats.Bump(Counter::kFalseWakeups);
  }

  // Figure 2.1, time 1: undo all effects. Memory is now indistinguishable from
  // the transaction never having run; only the thread's published precondition
  // remains (allocations the waitset points into are kept alive until wakeup).
  RollbackForDeschedule(d);

  WaiterSlot& slot = waiters_->slot(d.tid);
  slot.Prepare(fn, args, &d.sem);
  // The presence bit must be visible before the registration transaction can
  // commit; committing writers order their peek against it through the clock.
  waiters_->MarkRegistered(d.tid);

  // The registration transaction: re-evaluate the precondition and, only if it
  // still fails, publish the slot. Expressing the condition as f(p) means no
  // TM-metadata validation is needed here — if a writer establishes the
  // precondition concurrently, either this transaction aborts and re-runs (and
  // then sees the new state), or it serializes first and the writer's
  // wakeWaiters sees the slot. Either way the wakeup cannot be lost.
  bool sleep = false;
  RunInternalTx([&] {
    if (fn(*this, args)) {
      sleep = false;
      return;
    }
    Write(&slot.active, 1);
    Write(&slot.asleep, 1);
    sleep = true;
  });

  if (sleep) {
    d.stats.Bump(Counter::kSleeps);
    bool acquired = true;
    if (timed) {
      TCS_DCHECK(d.has_deadline);
      acquired = d.sem.WaitUntil(d.deadline);
    } else {
      d.sem.Wait();
    }
    if (acquired) {
      // Figure 2.1, time 4 approach: deregister before restarting so no writer
      // wastes work on this slot ("on wakeup, prevent future notifications").
      RunInternalTx([&] { Write(&slot.active, 0); });
      d.woke_from_sleep = true;
    } else {
      // Timed out. Deregister, racing against a waker that may have already
      // claimed this slot (set asleep=0) and be about to post the semaphore.
      // The deregistration transaction serializes against the wake-check
      // transaction: if the waker won, we must drain its post so the stale
      // token cannot satisfy this thread's *next* sleep instantly.
      bool claimed_by_waker = false;
      RunInternalTx([&] {
        claimed_by_waker = (Read(&slot.asleep) == 0);
        Write(&slot.active, 0);
        Write(&slot.asleep, 0);
      });
      if (claimed_by_waker) {
        // The waker posts strictly after its transaction commits, and ours
        // serialized after it, so the post is already issued or imminent.
        d.sem.Wait();
      }
    }
  }
  waiters_->UnmarkRegistered(d.tid);

  d.mem.ReclaimDeferred();
  d.skip_backoff = true;
  throw TxRestart{};
}

void TmSystem::WakeWaiters() {
  TxDesc& d = Desc();
  bool stop = false;
  waiters_->ForEachRegistered([&](int tid, WaiterSlot& slot) {
    if (tid == d.tid || stop) {
      return !stop;
    }
    bool wake = false;
    RunInternalTx([&] {
      wake = false;
      if (Read(&slot.active) == 0 || Read(&slot.asleep) == 0) {
        return;
      }
      d.stats.Bump(Counter::kWakeChecks);
      if (slot.fn(*this, slot.args)) {
        Write(&slot.asleep, 0);
        wake = true;
      }
    });
    if (wake) {
      // The semaphore post is an escape action, so it happens strictly after the
      // wake-check transaction commits (Algorithm 4, line 9).
      slot.sem->Post();
      d.stats.Bump(Counter::kWakeups);
      if (cfg_.wake_single) {
        stop = true;
      }
    }
    return !stop;
  });
}

}  // namespace tcs
