// Deschedule (Algorithm 4) and wakeWaiters: the paper's abstract HTM-friendly
// condition-synchronization mechanism. Retry, Await, and WaitPred all reduce to
// Deschedule(f, p): roll back, double-check f(p) inside a registration
// transaction, publish ⟨f, p⟩, sleep, and on wakeup restart the whole transaction.
//
// Registration is dual. Every waiter sets its presence bit in the
// WaiterRegistry (the writer's "anyone waiting at all?" fast path). Waiters
// whose predicate is the value-based findChanges additionally index themselves
// in the sharded WakeIndex under the orec of each waitset address, so a
// committing writer wake-checks only the waiters its write set could have
// satisfied; arbitrary-predicate waiters land on the index's global fallback
// list, which every writer still visits. See wake_index.h for the
// no-lost-wakeup argument, and the comment on WakeWaiters below for why it
// survives batching the wake checks into shared wake transactions.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/condsync/waiter_registry.h"
#include "src/condsync/wake_index.h"
#include "src/obs/trace.h"
#include "src/tm/tm_system.h"

namespace tcs {

bool FindChangesPred(TmSystem& sys, const WaitArgs& args) {
  const auto* ws = reinterpret_cast<const WaitSet*>(args.v[0]);
  for (const WaitSet::Entry& e : ws->entries()) {
    if (sys.Read(e.addr) != e.val) {
      return true;
    }
  }
  return false;
}

void TmSystem::Deschedule(WaitPredFn fn, const WaitArgs& args) {
  DescheduleImpl(fn, args, /*timed=*/false);
}

void TmSystem::DescheduleImpl(WaitPredFn fn, const WaitArgs& args, bool timed) {
  TxDesc& d = Desc();
  // findChanges waiters carry their exact address list; prune the duplicates
  // retry logging can accumulate (an OrElse whose branches both read an
  // address publishes the union waitset with one entry per branch) so each
  // address is published — and indexed — once.
  WaitSet* ws = nullptr;
  if (fn == &FindChangesPred) {
    ws = reinterpret_cast<WaitSet*>(args.v[0]);
    std::size_t pruned = ws->Prune();
    if (pruned > 0) {
      d.stats.Bump(Counter::kWaitsetPruned, pruned);
    }
  }
  d.stats.Bump(Counter::kDeschedules);
  TCS_TRACE_EVENT(d, TraceEvent::kDeschedule, 0);
  if (ws != nullptr && !ws->Empty()) {
    // Count only the waitset this deschedule actually publishes: pure-predicate
    // waits (Await/WaitPred through a non-findChanges fn) publish no address
    // list, and d.waitset may hold stale entries from a prior restart — bench
    // precision metrics divide by this counter, so it must not overcount.
    d.stats.Bump(Counter::kWaitsetEntries, ws->Size());
  }
  if (d.woke_from_sleep) {
    // We were woken, re-executed, and are about to sleep again: the wakeup did
    // not establish our precondition (a broadcast-style false wakeup, §2.4.1).
    d.stats.Bump(Counter::kFalseWakeups);
  }

  // Figure 2.1, time 1: undo all effects. Memory is now indistinguishable from
  // the transaction never having run; only the thread's published precondition
  // remains (allocations the waitset points into are kept alive until wakeup).
  RollbackForDeschedule(d);

  WaiterSlot& slot = waiters_->slot(d.tid);
  slot.Prepare(fn, args, &d.park);
  // Clear any stale wake-post stamp before this sleep's waker can write a new
  // one (the previous claimer's post — and therefore its stamp — was consumed
  // before this thread could re-deschedule).
  slot.StampWakePost(0);
  // Index entries and the presence bit must be visible before the registration
  // transaction can commit; committing writers order their peeks against both
  // through the clock.
  if (cfg_.targeted_wakeup && ws != nullptr && !ws->Empty()) {
    std::vector<const Orec*> read_orecs;
    read_orecs.reserve(ws->Size());
    for (const WaitSet::Entry& e : ws->entries()) {
      read_orecs.push_back(&orecs_.For(e.addr));
    }
    wake_index_->AddIndexed(d.tid, read_orecs.data(), read_orecs.size());
    d.stats.Bump(Counter::kIndexedDeschedules);
  } else {
    // WaitPred waiters have no address list; an *empty* findChanges waitset
    // (a Retry whose logging pass read nothing transactionally) has one that
    // no writer shard union could ever cover. Both register on the global
    // fallback list every writer visits.
    wake_index_->AddGlobal(d.tid);
    d.stats.Bump(Counter::kGlobalDeschedules);
  }
  waiters_->MarkRegistered(d.tid);
  TCS_PROTO(proto_->OnPresenceMark(d.tid));

  // The registration transaction: re-evaluate the precondition and, only if it
  // still fails, publish the slot. Expressing the condition as f(p) means no
  // TM-metadata validation is needed here — if a writer establishes the
  // precondition concurrently, either this transaction aborts and re-runs (and
  // then sees the new state), or it serializes first and the writer's
  // wakeWaiters sees the slot. Either way the wakeup cannot be lost.
  bool sleep = false;
  RunInternalTx([&] {
    if (fn(*this, args)) {
      sleep = false;
      return;
    }
    Write(&slot.active, 1);
    Write(&slot.asleep, 1);
    sleep = true;
  });

  if (sleep) {
    d.stats.Bump(Counter::kSleeps);
    TCS_TRACE_EVENT(d, TraceEvent::kSleep, 0);
    std::uint64_t sleep_start_ns = cfg_.latency_metrics ? ObsNowNs() : 0;
    bool acquired = true;
    if (timed) {
      // Deadline set by the DeadlineExpired check of the *For call that led
      // here. With the timer wheel, the sleep registers an epoch-stamped
      // timeout with the shared ticker and parks for either token; a stale
      // fire (a wheel post for an earlier epoch of this spot) wakes us with
      // the timeout token but no expired deadline, so we re-arm and re-park —
      // ArmTimed bumps the epoch, which retires the stale registration.
      if (wheel_ != nullptr) {
        for (;;) {
          std::uint64_t epoch = lot_.ArmTimed(d.park);
          wheel_->Schedule(&d.park, epoch, d.active_deadline);
          acquired = lot_.ParkEither(d.park);
          if (acquired || std::chrono::steady_clock::now() >= d.active_deadline) {
            break;
          }
        }
      } else {
        // Wheel disabled: one absolute-deadline timer per sleeper, the
        // pre-capacity-tier behavior.
        acquired = lot_.ParkUntil(d.park, d.active_deadline);
      }
    } else {
      lot_.ConsumeToken(d.park);
    }
    if (cfg_.latency_metrics) {
      std::uint64_t now = ObsNowNs();
      d.obs.wait_duration.Record(now - sleep_start_ns);
      if (acquired) {
        // The claiming waker stamped the post time just before Post; the
        // [park-handoff] edge ordered that stamp before this load (see
        // WaiterSlot).
        std::uint64_t posted = slot.LoadWakePost();
        if (posted != 0 && now >= posted) {
          d.obs.wake_latency.Record(now - posted);
        }
      }
    }
    // arg 1 marks a timeout expiry rather than a wakeup post.
    TCS_TRACE_EVENT(d, TraceEvent::kWakeup, acquired ? 0 : 1);
    if (acquired) {
      // Figure 2.1, time 4 approach: deregister before restarting so no writer
      // wastes work on this slot ("on wakeup, prevent future notifications").
      RunInternalTx([&] { Write(&slot.active, 0); });
      d.woke_from_sleep = true;
    } else {
      // Timed out. Deregister, racing against a waker that may have already
      // claimed this slot (set asleep=0) and be about to post the wake token.
      // The deregistration transaction serializes against the wake-check
      // transaction: if the waker won, we must drain its post so the stale
      // token cannot satisfy this thread's *next* sleep instantly.
      //
      // Why the drain can never hang, and never leaks a token — the ordering
      // argument, in full, because both the per-sleeper timer path and the
      // timer wheel inherit it unchanged (timeout delivery only changes how
      // `acquired == false` is produced above; the claim/post protocol below
      // is oblivious to it):
      //
      //   1. A waker posts the wake token strictly AFTER its claiming
      //      transaction (or CAS claim) commits the asleep 1→0 transition.
      //   2. Our deregistration transaction reads asleep transactionally, so
      //      it serializes against every claim. Exactly two interleavings
      //      exist:
      //        * Claim-first: we read asleep == 0. The claim is durable, so
      //          by (1) its post is already issued or imminent — ConsumeToken
      //          terminates (it parks at most until that post lands) and
      //          consumes the token, leaving the spot clean for the next
      //          sleep. No leak, no hang.
      //        * Dereg-first: we read asleep == 1 and commit active = 0,
      //          asleep = 0. Every later wake check (transactional or CAS)
      //          reads our committed zeros and skips; no post is ever issued
      //          for this sleep, so there is nothing to drain and
      //          claimed_by_waker correctly stays false.
      //   3. A racing wheel fire for THIS sleep's epoch can additionally set
      //      the timeout token, never the wake token, and ConsumeToken
      //      ignores and clears pending timeout tokens while waiting — so a
      //      late tick cannot satisfy the drain in place of the waker's post,
      //      and the next ArmTimed retires the epoch anyway.
      bool claimed_by_waker = false;
      RunInternalTx([&] {
        claimed_by_waker = (Read(&slot.asleep) == 0);
        Write(&slot.active, 0);
        Write(&slot.asleep, 0);
      });
      if (claimed_by_waker) {
        lot_.ConsumeToken(d.park);
      }
    }
  }
  waiters_->UnmarkRegistered(d.tid);
  TCS_PROTO(proto_->OnPresenceUnmark(d.tid));
  // Clears this tid's shard and fallback entries alike, so every exit —
  // wakeup, timeout, and the no-sleep double-check — leaves the index clean.
  wake_index_->Remove(d.tid);

  d.mem.ReclaimDeferred();
  d.skip_backoff = true;
  throw TxRestart{};
}

// wakeWaiters, batched and with a lock-free claim fast path. Algorithm 4
// re-checks each candidate in its own internal transaction, so every candidate
// costs a full tx setup/commit (one global-clock RMW each) on the committing
// writer's critical path. Here the writer instead (1) collects candidate tids
// — the shard-indexed waiters its write-set shard union covers, then the
// global-fallback waiters, in that order, deduplicated (ForEachCandidateIn
// can emit a tid twice; see below) — (2) tries to claim each uncontended
// findChanges candidate with a single orec CAS and no transaction at all
// (TryCasWakeClaim below), and (3) evaluates predicates and claims slots for
// the leftover candidates in batches of up to the effective batch size inside
// ONE wake transaction each, posting every claimed semaphore strictly after
// its claim is durable. With adaptive_wake_batch the effective batch size
// shrinks while the recent wake-transaction abort rate (EWMA in TxDesc) is
// high, degrading toward the paper's per-candidate baseline under contention
// instead of repeatedly aborting large batches.
//
// Why batching preserves the no-lost-wakeup argument (extending the
// conservativeness argument in wake_index.h): a claim is the transactional
// transition asleep 1→0, and the post still happens strictly after the
// claiming transaction commits, so per claimed waiter the protocol is exactly
// Algorithm 4's — the only change is that several claims share one
// serialization point. The batch transaction serializes against every
// waiter's registration transaction: if a waiter registers after the batch
// serialized, its registration double-check runs against the writer's
// committed state and sees the new values; if before, the batch's candidate
// collection (which happens after the writer's commit fence) sees the index
// entry and the batch re-reads `active`/`asleep` transactionally. A batch
// that aborts mid-claim is rolled back by the TM (the tentative asleep=0
// writes are undone/dropped) and re-executed: the claim list is rebuilt from
// scratch on every execution and posts happen only for the claims of the one
// committed execution, so an abort can neither lose a claim (the re-execution
// re-reads active/asleep and re-claims whoever still qualifies) nor duplicate
// one (no post precedes the commit). A waiter claimed by a *different* writer
// between our executions shows asleep==0 and is skipped — exactly the
// idempotence the per-candidate protocol already relied on.
//
// wake_single stops claiming at the first non-vacuous satisfied waiter both
// within a batch (no further candidates of the batch are examined) and across
// batches (no further batch runs). Vacuous empty-waitset claims earlier in
// the same batch are still posted — they were committed — but do not absorb
// the single-wakeup budget.
// The lock-free claim fast path. An uncontended claim is, at bottom, the
// asleep 1→0 transition made durable at a serialization point — nothing about
// it *needs* a full transaction. The fast path performs it directly:
//
//   1. Enter the backend's wake-claim region (sim-HTM: join the serial-token
//      Dekker handshake, since serial-irrevocable writers bypass orecs).
//   2. CAS-lock the orec covering `slot.asleep`. This excludes every
//      transactional toucher of the slot: the registration transaction and
//      the timeout deregistration write `asleep` (so they need this orec),
//      and the wakeup deregistration can only run after a *claim*, which
//      needs it too. Holding it with asleep == 1 therefore pins the slot in
//      its published state — fn/args/sem are frozen (they are rewritten only
//      after asleep returns to 0) and no other waker can claim.
//   3. Snapshot-evaluate the findChanges predicate seqlock-style: per waitset
//      entry, sample the covering orec, read the value, re-sample. Equal
//      unlocked samples prove the value is a committed one (every release
//      kind that could have covered a memory modification changes the
//      version; the exact-version releases never touched memory). Any locked
//      or changed sample → fall back to the wake transaction.
//   4. Claim: store asleep = 0, then release the orec at a fresh global-clock
//      increment. Publishing a *new* version is what makes the claim a real
//      serialization point: a concurrent wake transaction that read
//      asleep == 1 before our claim now fails validation (version > its
//      start) and re-executes, re-reads asleep == 0, and skips — the same
//      idempotence argument the batched path relies on. Releasing at the old
//      version would let that transaction commit a second claim.
//   5. Post, strictly after the release — exactly Algorithm 4's escape-action
//      ordering, with the orec release as the commit point.
//
// The quiesce table brackets the whole attempt: the raw waitset reads in step
// 3 look at memory a concurrent committer may be about to privatize/free, so
// the claimer registers as an active reader at its sampled clock, making the
// committer's quiescence fence wait for it exactly as it would for a reader
// transaction.
TmSystem::CasClaimResult TmSystem::TryCasWakeClaim(TxDesc& d, int waiter_tid) {
  WaiterSlot& slot = waiters_->slot(waiter_tid);
  // Cheap raw peek before touching any shared cache line exclusively: a
  // candidate already claimed (or never re-registered) needs no claim.
  // mo: relaxed — advisory peek only; the post-CAS acquire re-read decides.
  if (std::atomic_ref<const TmWord>(slot.active)
              .load(std::memory_order_relaxed) == 0 ||
      std::atomic_ref<const TmWord>(slot.asleep)
              .load(std::memory_order_relaxed) == 0) {
    return CasClaimResult::kSkipped;
  }
  if (!EnterWakeClaimRegion(d)) {
    return CasClaimResult::kFallback;  // serial-mode writer active (sim-HTM)
  }
  Orec& claim_orec = orecs_.For(&slot.asleep);
  // mo: acquire — pairs with [orec-publish]; the CAS below must key on a
  // version published by a completed release.
  std::uint64_t prev = claim_orec.word.load(std::memory_order_acquire);
  if (Orec::IsLocked(prev) ||
      // mo: acq_rel — the acquire leg pairs with the previous owner's release
      // store [orec-publish]; the release leg publishes the locked word other
      // threads' acquire samples key on.
      !claim_orec.word.compare_exchange_strong(prev, Orec::MakeLocked(d.tid),
                                               std::memory_order_acq_rel)) {
    ExitWakeClaimRegion(d);
    return CasClaimResult::kFallback;  // contended or mid-registration
  }
  TCS_PROTO(proto_->OnOrecAcquire(&claim_orec, d.tid, Orec::Version(prev)));
  // Re-read under the lock; only now are the loads decisive (see step 2).
  // mo: acquire — pairs with the registration transaction's commit release
  // [orec-publish]: asleep == 1 proves the registration committed, which
  // makes the slot's plain-stored fn/args/park visible and frozen.
  bool published =
      std::atomic_ref<const TmWord>(slot.active)
              .load(std::memory_order_acquire) == 1 &&
      std::atomic_ref<const TmWord>(slot.asleep)
              .load(std::memory_order_acquire) == 1;
  if (!published) {
    TCS_PROTO(proto_->OnOrecRelease(&claim_orec, d.tid, Orec::Version(prev),
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: nothing under the orec was modified; the
    // unlock still pairs with concurrent acquire samples.
    claim_orec.word.store(Orec::MakeVersion(Orec::Version(prev)),
                          std::memory_order_release);
    ExitWakeClaimRegion(d);
    return CasClaimResult::kSkipped;
  }
  const WaitSet* ws = nullptr;
  if (slot.fn == &FindChangesPred) {
    ws = reinterpret_cast<const WaitSet*>(slot.args.v[0]);
  }
  bool changed = false;
  bool consistent = ws != nullptr && !ws->Empty();
  if (consistent) {
    for (const WaitSet::Entry& e : ws->entries()) {
      Orec& o = orecs_.For(e.addr);
      if (&o == &claim_orec) {
        // Entry aliases the orec we hold: the value is pinned by our own lock.
        if (LoadWordAcquire(e.addr) != e.val) {
          changed = true;
        }
        continue;
      }
      // mo: acquire — sample leg of the sample/read/re-check snapshot; pairs
      // with [orec-publish] so matching unlocked samples bracket a committed
      // value (no release kind that covers a memory change keeps the version).
      std::uint64_t w1 = o.word.load(std::memory_order_acquire);
      if (Orec::IsLocked(w1)) {
        consistent = false;
        break;
      }
      TmWord v = LoadWordAcquire(e.addr);
      // mo: acquire — re-check leg; pairs with [orec-publish], as above.
      std::uint64_t w2 = o.word.load(std::memory_order_acquire);
      if (w1 != w2) {
        consistent = false;
        break;
      }
      if (v != e.val) {
        changed = true;
      }
    }
  }
  if (!consistent) {
    // Arbitrary predicate, empty waitset (vacuous-wake semantics belong to
    // the transactional path), or a concurrent writer mid-flight over an
    // entry: the wake transaction decides instead.
    TCS_PROTO(proto_->OnOrecRelease(&claim_orec, d.tid, Orec::Version(prev),
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: no modification under the orec; unlock
    // pairs with concurrent acquire samples.
    claim_orec.word.store(Orec::MakeVersion(Orec::Version(prev)),
                          std::memory_order_release);
    ExitWakeClaimRegion(d);
    return CasClaimResult::kFallback;
  }
  d.stats.Bump(Counter::kWakeChecks);
  if (!changed) {
    // Predicate unchanged at a consistent snapshot: final, exactly like the
    // batch path's skip — any writer that satisfies it later runs its own
    // wake pass against the still-registered slot.
    TCS_PROTO(proto_->OnOrecRelease(&claim_orec, d.tid, Orec::Version(prev),
                                    ProtocolChecker::ReleaseKind::kAbortExact));
    // mo: release — [orec-publish]: no modification under the orec; unlock
    // pairs with concurrent acquire samples.
    claim_orec.word.store(Orec::MakeVersion(Orec::Version(prev)),
                          std::memory_order_release);
    ExitWakeClaimRegion(d);
    return CasClaimResult::kSkipped;
  }
  // Claim. The data store is ordered before the version publish below.
  StoreWordRelease(&slot.asleep, 0);
  std::uint64_t end = clock_.Increment();
  TCS_PROTO(proto_->OnClockObserved(d.tid, end));
  TCS_PROTO(proto_->OnOrecRelease(&claim_orec, d.tid, end,
                                  ProtocolChecker::ReleaseKind::kCommit));
  // mo: release — [orec-publish]: orders the asleep store above before the
  // fresh version concurrent validators key on; publishing a *new* version is
  // what invalidates wake transactions that read asleep == 1 before us.
  claim_orec.word.store(Orec::MakeVersion(end), std::memory_order_release);
  ExitWakeClaimRegion(d);
  TCS_PROTO(proto_->OnWakeClaimCas(waiter_tid));
  d.stats.Bump(Counter::kCasWakeClaims);
  TCS_TRACE_EVENT(d, TraceEvent::kCasWakeClaim,
                  static_cast<std::uint64_t>(waiter_tid));
  // The post happens strictly after the orec release — the claim's commit
  // point — preserving Algorithm 4's escape-action ordering.
  TCS_PROTO(proto_->OnWakePost(waiter_tid));
  if (cfg_.latency_metrics) {
    slot.StampWakePost(ObsNowNs());
  }
  lot_.Post(*slot.park);
  d.stats.Bump(Counter::kWakeups);
  return CasClaimResult::kClaimed;
}

void TmSystem::WakeWaiters(const std::vector<const Orec*>& write_orecs) {
  TxDesc& d = Desc();

  // Phase 1: collect candidates. Order is significant (shard-indexed first;
  // see ForEachCandidateIn) and self never qualifies. Collection dedups with
  // a per-writer seen bitmap: ForEachCandidateIn's global pass masks against
  // the *current* shard words, so a waiter that deregistered from a shard and
  // re-registered globally between the two passes is emitted twice — harmless
  // for claiming (the second claim sees asleep == 0) but it would double the
  // candidate's wake-check cost and skew the precision counters.
  std::vector<int>& cands = d.wake_candidates;
  cands.clear();
  // Sized to the registry's populated tid bound, not max_threads: a 64Ki-thread
  // ceiling must not cost every committing writer an 8KB bitmap clear.
  const std::size_t seen_words =
      (static_cast<std::size_t>(waiters_->TidBound()) + 63) / 64;
  d.wake_seen_scratch.assign(seen_words, 0);
  auto collect = [&](int tid) {
    if (tid != d.tid) {
      const std::size_t wi = static_cast<std::size_t>(tid) / 64;
      if (wi >= d.wake_seen_scratch.size()) {
        // A segment published after the bound was sampled can emit tids past
        // it mid-pass; grow (zero-filled) rather than drop the candidate.
        d.wake_seen_scratch.resize(wi + 1, 0);
      }
      std::uint64_t& word = d.wake_seen_scratch[wi];
      const std::uint64_t bit = std::uint64_t{1} << (tid % 64);
      if ((word & bit) == 0) {
        word |= bit;
        cands.push_back(tid);
      }
    }
    return true;
  };
  if (cfg_.targeted_wakeup && !write_orecs.empty()) {
    // Targeted pass: only the shards this write set covers, plus the global
    // fallback list. Work scales with relevant waiters, not registered ones.
    // The shard-set bitmap is built once into per-thread scratch (reused
    // commit to commit) via the index's two-phase collect/visit API. The
    // registry's segment summary — snapshotted repair-stably — masks the
    // index walk down to segments holding at least one registered waiter:
    // sound because a waiter's summary bit, like its index entry, is set
    // before its registration transaction can commit, so any waiter this
    // commit is obliged to wake has both visible here (see wake_index.h).
    d.wake_shard_scratch.resize(
        static_cast<std::size_t>(wake_index_->shard_words()));
    wake_index_->BuildShardSet(write_orecs.data(), write_orecs.size(),
                               d.wake_shard_scratch.data());
    d.wake_seg_scratch.resize(
        static_cast<std::size_t>(waiters_->summary_words()));
    waiters_->SnapshotSummary(d.wake_seg_scratch.data());
    wake_index_->ForEachCandidateInSegments(d.wake_shard_scratch.data(),
                                            d.wake_seg_scratch.data(),
                                            waiters_->summary_words(), collect);
  } else {
    // Global scan: targeting disabled, or the write-set snapshot was not taken
    // (no waiter was visible mid-commit; any waiter visible now either
    // registered after this commit serialized — and so re-checked its
    // predicate against our writes — or is covered by this conservative scan).
    waiters_->ForEachRegistered(
        [&](int tid, WaiterSlot&) { return collect(tid); });
  }

  bool stop = false;

  // Phase 2: the lock-free claim fast path. The common case — a few disjoint
  // waiters, nobody racing — claims every candidate here and never runs a
  // wake transaction at all. Undecidable candidates accumulate for phase 3.
  std::vector<int>& work = d.wake_fallback;
  work.clear();
  if (cfg_.cas_claim_fast_path && !cands.empty()) {
    // Register as an active reader for the raw predicate snapshots (see
    // TryCasWakeClaim); our own quiesce entry is free post-commit.
    std::uint64_t snap_start = clock_.Load();
    TCS_PROTO(proto_->OnClockObserved(d.tid, snap_start));
    quiesce_.SetActive(d.tid, snap_start);
    for (int tid : cands) {
      if (stop) {
        break;
      }
      switch (TryCasWakeClaim(d, tid)) {
        case CasClaimResult::kClaimed:
          if (cfg_.wake_single) {
            // Fast-path claims are never vacuous (empty waitsets fall back),
            // so every claim absorbs the single-wakeup budget.
            stop = true;
          }
          break;
        case CasClaimResult::kSkipped:
          break;
        case CasClaimResult::kFallback:
          d.stats.Bump(Counter::kCasClaimFallbacks);
          work.push_back(tid);
          break;
      }
    }
    quiesce_.SetInactive(d.tid);
  } else {
    work = cands;
  }

  // Phase 3: batched wake transactions over the leftover candidates. The
  // effective batch size is capped by wake_batch_size and, when adaptive,
  // shrunk while the recent wake-tx abort-rate EWMA is high — big batches
  // amortize commit cost but repeatedly aborting ones re-run more checks.
  const std::size_t batch_cap =
      cfg_.wake_batch_size > 0 ? static_cast<std::size_t>(cfg_.wake_batch_size)
                               : std::size_t{1};
  std::size_t batch_size = batch_cap;
  if (cfg_.adaptive_wake_batch) {
    const std::uint64_t ewma = d.wake_abort_ewma_permille;
    if (ewma >= 500) {
      batch_size = std::max<std::size_t>(1, batch_cap / 4);
    } else if (ewma >= 250) {
      batch_size = std::max<std::size_t>(1, batch_cap / 2);
    }
  }
  std::uint64_t executions = 0;
  std::uint64_t batches = 0;
  for (std::size_t base = 0; base < work.size() && !stop; base += batch_size) {
    const std::size_t end = std::min(work.size(), base + batch_size);
    std::vector<TxDesc::WakeClaim>& claims = d.wake_claims;
    std::size_t checks_this_batch = 0;
    RunInternalTx([&] {
      // Re-execution of an aborted batch starts clean: tentative claims were
      // rolled back with the transaction, so the list must be rebuilt (else a
      // retried batch would double-post) and active/asleep re-read (else it
      // would claim a waiter another writer took in the meantime).
      ++executions;
      claims.clear();
      checks_this_batch = 0;
      for (std::size_t i = base; i < end; ++i) {
        WaiterSlot& slot = waiters_->slot(work[i]);
        if (Read(&slot.active) == 0 || Read(&slot.asleep) == 0) {
          continue;
        }
        ++checks_this_batch;
        bool satisfied = slot.fn(*this, slot.args);
        bool vacuous = false;
        if (!satisfied && slot.fn == &FindChangesPred &&
            reinterpret_cast<const WaitSet*>(slot.args.v[0])->Empty()) {
          // An address-free findChanges waiter can never observe a change, so
          // without this clause no commit would ever satisfy it; treat any
          // writer commit as a conservative broadcast-style wakeup instead
          // (the re-execution re-checks its real precondition and either
          // proceeds or re-publishes — at worst one false wakeup per commit).
          satisfied = true;
          vacuous = true;
        }
        if (satisfied) {
          Write(&slot.asleep, 0);
          claims.push_back({work[i], vacuous});
          if (cfg_.wake_single && !vacuous) {
            // First non-vacuous satisfied waiter: stop claiming within this
            // batch; the cross-batch stop happens below, after the commit.
            break;
          }
        }
      }
    });
#if TCS_PROTOCOL_CHECKS
    // The claim list now reflects the one committed execution of the batch.
    for (const TxDesc::WakeClaim& c : claims) {
      proto_->OnWakeClaimCommitted(c.tid);
    }
#endif
    ++batches;
    // Counters reflect the committed execution only (an aborted batch's
    // checks died with it), so kWakeChecks stays an exact per-commit metric.
    d.stats.Bump(Counter::kWakeBatches);
    if (checks_this_batch > 0) {
      d.stats.Bump(Counter::kWakeChecks, checks_this_batch);
      d.stats.Bump(Counter::kWakeChecksBatched, checks_this_batch);
    }
    if (!claims.empty()) {
      TCS_TRACE_EVENT(d, TraceEvent::kWakeBatch, claims.size());
    }
    for (const TxDesc::WakeClaim& c : claims) {
      // The semaphore post is an escape action, so it happens strictly after
      // the wake transaction commits (Algorithm 4, line 9).
      TCS_PROTO(proto_->OnWakePost(c.tid));
      WaiterSlot& claimed = waiters_->slot(c.tid);
      if (cfg_.latency_metrics) {
        // Stamp strictly before the post so the waiter's read (after the park
        // returns) observes it via the [park-handoff] edge. Exclusive: this
        // writer won the transactional asleep 1→0 claim for this sleep.
        claimed.StampWakePost(ObsNowNs());
      }
      lot_.Post(*claimed.park);
      d.stats.Bump(Counter::kWakeups);
      if (c.vacuous) {
        // A vacuous (empty-waitset) wake is no evidence anyone was satisfied;
        // it must not absorb the single-wakeup budget, or a genuinely
        // satisfied waiter later in the scan would starve behind a waiter
        // that just re-parks without ever committing. Counted separately so
        // precision metrics can subtract it from kWakeups.
        d.stats.Bump(Counter::kVacuousWakeups);
      } else if (cfg_.wake_single) {
        stop = true;
      }
    }
  }

  // Feed the adaptive policy: executions counts every entry into the batch
  // lambda, batches only committed ones, so the difference is exactly the
  // aborted-and-re-run attempts. The EWMA (alpha = 1/8, permille) smooths a
  // single contended commit into a gradual batch-size response.
  if (executions > 0) {
    const std::uint64_t aborts = executions - batches;
    if (aborts > 0) {
      d.stats.Bump(Counter::kWakeTxAborts, aborts);
    }
    const std::uint64_t rate = aborts * 1000 / executions;
    // mo: relaxed — monitoring-only tally, owner-writer (this thread is the
    // sole writer of its own EWMA; SnapshotObs reads it racily, like `stats`).
    std::atomic_ref<std::uint64_t>(d.wake_abort_ewma_permille)
        .store((7 * d.wake_abort_ewma_permille + rate) / 8,
               std::memory_order_relaxed);
  }
}

}  // namespace tcs
