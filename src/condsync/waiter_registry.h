// The global list of descheduled threads (Algorithm 4's `waiters`), as a fixed slab
// of per-thread slots.
//
// Slot state (`active`, `asleep`, `waitfunc`) is read and written through the TM
// itself — registration and wake checks are transactions, exactly as Algorithm 4
// presents them — so the TM's conflict detection serializes a waiter's registration
// against writer commits and closes the lost-wakeup window.
//
// A writer that committed must not pay a scan when nobody waits. The registry keeps
// a conservative bitmap of possibly-registered slots: a waiter sets its bit (release)
// *before* its registration transaction begins and clears it after deregistering.
// Writer commits and the bitmap load are ordered through the global version clock's
// RMW chain ([clock-chain]'s release sequence), so "registration serialized before
// my commit" implies "I see the bit" — the full argument is the [wake-publish]
// glossary entry in wake_index.h. The no-waiters fast path is therefore a handful
// of acquire loads — the paper's "no overhead on in-flight hardware transactions".
#ifndef TCS_CONDSYNC_WAITER_REGISTRY_H_
#define TCS_CONDSYNC_WAITER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/cache_line.h"
#include "src/common/semaphore.h"
#include "src/tm/tx_desc.h"
#include "src/tm/word.h"

namespace tcs {

struct alignas(kCacheLineBytes) WaiterSlot {
  // Transactional words, accessed through TmSystem::Read/Write only.
  TmWord active = 0;
  TmWord asleep = 0;

  // Published with plain stores before the registration transaction commits; the
  // commit's release ordering makes them visible to any waker that observes
  // active == 1 transactionally.
  WaitPredFn fn = nullptr;
  WaitArgs args;
  Semaphore* sem = nullptr;

  // Wake-latency handshake (observability): the claiming waker stamps the post
  // time just before sem->Post(); the waiter reads it right after its Wait()
  // returns. Exclusivity comes from the claim protocol (the transactional
  // asleep 1→0 admits exactly one waker per sleep) and the value rides the
  // [sem] post/wait edge; atomic_ref keeps the cross-thread access tear-free.
  std::uint64_t wake_post_ns = 0;

  void StampWakePost(std::uint64_t ns) {
    // mo: relaxed — ordering comes from the [sem] edge (Post happens-before
    // the waiter's return from Wait); this store only needs atomicity.
    std::atomic_ref<std::uint64_t>(wake_post_ns)
        .store(ns, std::memory_order_relaxed);
  }
  std::uint64_t LoadWakePost() const {
    // mo: relaxed — read after Wait() returned; the [sem] edge already orders
    // the waker's stamp before this load.
    return std::atomic_ref<const std::uint64_t>(wake_post_ns)
        .load(std::memory_order_relaxed);
  }

  void Prepare(WaitPredFn f, const WaitArgs& a, Semaphore* s) {
    fn = f;
    args = a;
    sem = s;
  }
};

class WaiterRegistry {
 public:
  explicit WaiterRegistry(int max_threads);

  WaiterRegistry(const WaiterRegistry&) = delete;
  WaiterRegistry& operator=(const WaiterRegistry&) = delete;

  WaiterSlot& slot(int tid) { return slots_[tid]; }
  int capacity() const { return capacity_; }

  // Conservative "anyone possibly waiting?" peek for the writer fast path.
  bool HasWaiters() const {
    for (int w = 0; w < mask_words_; ++w) {
      // mo: acquire — [wake-publish]: the peek runs after the writer's commit
      // RMW on the version clock; [clock-chain]'s release sequence carries the
      // waiter's release MarkRegistered (sequenced before its registration
      // commit) to this load, closing the lost-wakeup window.
      if (mask_[w].load(std::memory_order_acquire) != 0) {
        return true;
      }
    }
    return false;
  }

  void MarkRegistered(int tid) {
    // mo: release — [wake-publish]: the bit set precedes the registration
    // transaction's [clock-chain] RMW in program order; a writer whose commit
    // serializes after that registration picks it up through the clock's
    // release sequence, so "registration serialized before the commit" implies
    // "the writer sees the bit".
    mask_[tid / 64].fetch_or(std::uint64_t{1} << (tid % 64),
                             std::memory_order_release);
  }

  void UnmarkRegistered(int tid) {
    // mo: relaxed — [wake-publish] rider: per-word coherence keeps set/clear
    // of the same bit ordered; a writer that sees the cleared bit merely skips
    // a slot whose transactional deregistration already committed, and one
    // that sees a stale set bit wakes a candidate the transactional check
    // (asleep == 0) rejects.
    mask_[tid / 64].fetch_and(~(std::uint64_t{1} << (tid % 64)),
                              std::memory_order_relaxed);
  }

  // Introspection for tests and debugging: is this slot's presence bit set?
  // A timed wait that expires must leave its bit clear (no leaked entries).
  bool IsRegistered(int tid) const {
    // mo: acquire — [wake-publish]: test assertions run after a join or a
    // committed transition they arranged themselves; acquire pairs with the
    // release Mark and per-word coherence covers the Unmark rider.
    return (mask_[tid / 64].load(std::memory_order_acquire) &
            (std::uint64_t{1} << (tid % 64))) != 0;
  }

  // Conservative count of possibly-registered slots (test/debug only).
  int RegisteredCount() const {
    int n = 0;
    for (int w = 0; w < mask_words_; ++w) {
      // mo: acquire — [wake-publish]: same pairing as IsRegistered above.
      n += __builtin_popcountll(mask_[w].load(std::memory_order_acquire));
    }
    return n;
  }

  // Invokes fn(tid, slot) for every possibly-registered slot; fn returns false to
  // stop the scan early (wake_single ablation).
  template <typename Fn>
  void ForEachRegistered(Fn&& fn) {
    for (int w = 0; w < mask_words_; ++w) {
      // mo: acquire — [wake-publish]: the writer-side scan runs after the
      // commit's [clock-chain] RMW, whose release sequence carries every
      // registration's release MarkRegistered to this load.
      std::uint64_t bits = mask_[w].load(std::memory_order_acquire);
      while (bits != 0) {
        int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        int tid = w * 64 + bit;
        if (!fn(tid, slots_[tid])) {
          return;
        }
      }
    }
  }

 private:
  int capacity_;
  int mask_words_;
  std::unique_ptr<WaiterSlot[]> slots_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> mask_;
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_WAITER_REGISTRY_H_
