// The global list of descheduled threads (Algorithm 4's `waiters`), segmented
// for the capacity tier.
//
// Slot state (`active`, `asleep`, `waitfunc`) is read and written through the TM
// itself — registration and wake checks are transactions, exactly as Algorithm 4
// presents them — so the TM's conflict detection serializes a waiter's registration
// against writer commits and closes the lost-wakeup window.
//
// Layout. Slots live in lazily allocated 256-thread segment control blocks
// (geometry in segment.h) behind a directory of atomic pointers, published
// with a release-CAS ([seg-publish]): capacity grows by appending segments,
// and 10^5 registered threads cost ~400 segment blocks instead of one
// max_threads-sized slab. Each segment owns a 4-word presence bitmap of its
// own tids, and a top-level *summary* bitmap keeps one bit per possibly-
// occupied segment.
//
// A writer that committed must not pay a scan when nobody waits, and at
// capacity-tier thread counts it must not even pay a bitmap walk proportional
// to max_threads. The summary gives both: HasWaiters reads
// ceil(num_segments/64) words, and the wake path walks popcount(summary)
// segments. A waiter sets its segment presence bit and then its summary bit
// (both release) *before* its registration transaction begins and clears them
// after deregistering; writer commits and the bitmap loads are ordered
// through the global version clock's RMW chain ([clock-chain]'s release
// sequence), so "registration serialized before my commit" implies "I see
// the bit" — the full argument is the [wake-publish] glossary entry in
// wake_index.h.
//
// Clearing a summary bit is the one delicate step: the last waiter leaving a
// segment races a new waiter entering it, and a writer that reads the summary
// exactly between the leaver's clear and its repair re-set would miss the
// newcomer — a lost wakeup, because writers scan once (they are not retrying
// sleepers). The repair therefore runs under a seqlock: generation goes odd,
// the bit is cleared (acq_rel), the segment mask is rescanned, the bit is
// conditionally re-set, generation goes even. Readers that would answer "no
// waiters" (or hand out a summary snapshot) validate the generation and
// retry; readers that see any set bit may return immediately — a stale set
// bit is merely conservative. See HasWaiters/SnapshotSummary for the
// interleaving argument.
#ifndef TCS_CONDSYNC_WAITER_REGISTRY_H_
#define TCS_CONDSYNC_WAITER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/cache_line.h"
#include "src/common/parking_lot.h"
#include "src/common/spin_lock.h"
#include "src/condsync/segment.h"
#include "src/tm/protocol_checker.h"
#include "src/tm/tx_desc.h"
#include "src/tm/word.h"

namespace tcs {

struct alignas(kCacheLineBytes) WaiterSlot {
  // Transactional words, accessed through TmSystem::Read/Write only.
  TmWord active = 0;
  TmWord asleep = 0;

  // Published with plain stores before the registration transaction commits; the
  // commit's release ordering makes them visible to any waker that observes
  // active == 1 transactionally.
  WaitPredFn fn = nullptr;
  WaitArgs args;
  ParkSpot* park = nullptr;

  // Wake-latency handshake (observability): the claiming waker stamps the post
  // time just before posting the wake token; the waiter reads it right after
  // its park returns. Exclusivity comes from the claim protocol (the
  // transactional asleep 1→0 admits exactly one waker per sleep) and the value
  // rides the [park-handoff] token edge; atomic_ref keeps the cross-thread
  // access tear-free.
  std::uint64_t wake_post_ns = 0;

  void StampWakePost(std::uint64_t ns) {
    // mo: relaxed — ordering comes from the [park-handoff] edge (the token
    // post happens-before the waiter's token consumption); this store only
    // needs atomicity.
    std::atomic_ref<std::uint64_t>(wake_post_ns)
        .store(ns, std::memory_order_relaxed);
  }
  std::uint64_t LoadWakePost() const {
    // mo: relaxed — read after the park returned; the [park-handoff] edge
    // already orders the waker's stamp before this load.
    return std::atomic_ref<const std::uint64_t>(wake_post_ns)
        .load(std::memory_order_relaxed);
  }

  void Prepare(WaitPredFn f, const WaitArgs& a, ParkSpot* s) {
    fn = f;
    args = a;
    park = s;
  }
};

class WaiterRegistry {
 public:
  explicit WaiterRegistry(int max_threads);
  ~WaiterRegistry();

  WaiterRegistry(const WaiterRegistry&) = delete;
  WaiterRegistry& operator=(const WaiterRegistry&) = delete;

  // Optional dynamic protocol checker (TCS_PROTOCOL_CHECKS builds): reports
  // segment publication so add-once balance is machine-checked.
  void AttachProtocolChecker(ProtocolChecker* checker) { checker_ = checker; }

  // The slot for `tid`, allocating its segment on first touch. Writers may
  // call this for candidate tids whose registry segment they have not seen
  // allocated — EnsureSegment races are resolved by the [seg-publish] CAS.
  WaiterSlot& slot(int tid) {
    return EnsureSegment(tid >> kCondSyncSegmentShift)
        .slots[tid & (kCondSyncSegmentSize - 1)];
  }
  int capacity() const { return capacity_; }

  // Conservative "anyone possibly waiting?" peek for the writer fast path:
  // a summary-word scan, independent of max_threads. A set bit may return
  // true immediately (stale set bits are conservative — the transactional
  // wake check rejects the candidates); an all-zero scan is only trusted if
  // no summary repair overlapped it, because a repair transiently clears a
  // bit it may be about to re-set (see UnmarkRegistered).
  bool HasWaiters() const {
    for (;;) {
      // mo: acquire — [wake-publish] rider: seqlock generation pre-read; the
      // summary word loads below carry the edge, this read only brackets
      // them for the all-zero validation.
      std::uint64_t g1 = repair_gen_.load(std::memory_order_acquire);
      bool any = false;
      for (int w = 0; w < summary_words_; ++w) {
        // mo: acquire — [wake-publish]: the peek runs after the writer's
        // commit RMW on the version clock; [clock-chain]'s release sequence
        // carries the waiter's release summary set (sequenced before its
        // registration commit) to this load, closing the lost-wakeup window.
        // Reading a repair's transient clear (an acq_rel RMW) instead
        // synchronizes with the repair, forcing the generation re-read below
        // to observe its odd generation and retry.
        if (summary_[w].load(std::memory_order_acquire) != 0) {
          any = true;
          break;
        }
      }
      if (any) {
        return true;
      }
      // mo: relaxed — [wake-publish] rider: seqlock validation re-read,
      // ordered after the summary loads by their acquire; it observes an
      // odd/advanced generation iff a repair's transient clear could have
      // hidden a bit from this scan.
      std::uint64_t g2 = repair_gen_.load(std::memory_order_relaxed);
      if (g1 == g2 && (g1 & 1) == 0) {
        return false;
      }
    }
  }

  // Copies a repair-stable summary snapshot into `out` (summary_words()
  // words). The snapshot is a sound iteration mask for the wake path: every
  // waiter whose registration serialized before the caller's commit has its
  // segment's bit set in any stable snapshot taken after that commit
  // ([wake-publish] + the seqlock retry), so skipping zero bits never skips
  // a relevant waiter.
  void SnapshotSummary(std::uint64_t* out) const {
    for (;;) {
      // mo: acquire — [wake-publish] rider: seqlock generation pre-read
      // (see HasWaiters).
      std::uint64_t g1 = repair_gen_.load(std::memory_order_acquire);
      if ((g1 & 1) != 0) {
        continue;  // Repair in flight; its transient clear may be visible.
      }
      for (int w = 0; w < summary_words_; ++w) {
        // mo: acquire — [wake-publish]: same pairing as HasWaiters' scan.
        out[w] = summary_[w].load(std::memory_order_acquire);
      }
      // mo: relaxed — [wake-publish] rider: seqlock validation re-read,
      // ordered after the word loads by their acquire (see HasWaiters).
      std::uint64_t g2 = repair_gen_.load(std::memory_order_relaxed);
      if (g1 == g2) {
        return;
      }
    }
  }
  int summary_words() const { return summary_words_; }

  void MarkRegistered(int tid) {
    const int si = tid >> kCondSyncSegmentShift;
    Segment& seg = EnsureSegment(si);
    const int rel = tid & (kCondSyncSegmentSize - 1);
    // mo: release — [wake-publish]: the bit set precedes the registration
    // transaction's [clock-chain] RMW in program order; a writer whose commit
    // serializes after that registration picks it up through the clock's
    // release sequence, so "registration serialized before the commit" implies
    // "the writer sees the bit".
    seg.mask[rel / 64].fetch_or(std::uint64_t{1} << (rel % 64),
                                std::memory_order_release);
    // mo: release — [wake-publish]: the summary bit follows the segment bit
    // and precedes the registration commit the same way; a racing summary
    // repair that clears it synchronizes with this RMW through the summary
    // word and re-sets it after rescanning the segment mask set above.
    summary_[si / 64].fetch_or(std::uint64_t{1} << (si % 64),
                               std::memory_order_release);
  }

  void UnmarkRegistered(int tid) {
    const int si = tid >> kCondSyncSegmentShift;
    Segment* seg = SegmentOf(si);
    if (seg == nullptr) {
      return;  // Never marked: nothing to clear.
    }
    const int rel = tid & (kCondSyncSegmentSize - 1);
    // mo: relaxed — [wake-publish] rider: per-word coherence keeps set/clear
    // of the same bit ordered; a writer that sees the cleared bit merely skips
    // a slot whose transactional deregistration already committed, and one
    // that sees a stale set bit wakes a candidate the transactional check
    // (asleep == 0) rejects.
    std::uint64_t prev = seg->mask[rel / 64].fetch_and(
        ~(std::uint64_t{1} << (rel % 64)), std::memory_order_relaxed);
    if ((prev & ~(std::uint64_t{1} << (rel % 64))) != 0) {
      return;  // Segment word still occupied; summary bit stays.
    }
    for (int w = 0; w < kCondSyncSegmentWords; ++w) {
      // mo: relaxed — [wake-publish] rider: occupancy peek deciding whether
      // to attempt a summary repair; a stale nonzero word only keeps a
      // conservative summary bit, and a racing registration that makes a
      // word nonzero after this peek re-sets the summary bit itself.
      if (w != rel / 64 &&
          seg->mask[w].load(std::memory_order_relaxed) != 0) {
        return;
      }
    }
    RepairSummary(si);
  }

  // Introspection for tests and debugging: is this slot's presence bit set?
  // A timed wait that expires must leave its bit clear (no leaked entries).
  bool IsRegistered(int tid) const {
    const Segment* seg = SegmentOf(tid >> kCondSyncSegmentShift);
    if (seg == nullptr) {
      return false;
    }
    const int rel = tid & (kCondSyncSegmentSize - 1);
    // mo: acquire — [wake-publish]: test assertions run after a join or a
    // committed transition they arranged themselves; acquire pairs with the
    // release Mark and per-word coherence covers the Unmark rider.
    return (seg->mask[rel / 64].load(std::memory_order_acquire) &
            (std::uint64_t{1} << (rel % 64))) != 0;
  }

  // Exact count of possibly-registered slots (test/debug/leak checks): scans
  // every allocated segment's mask, not the conservative summary.
  int RegisteredCount() const {
    int n = 0;
    for (int si = 0; si < num_segments_; ++si) {
      const Segment* seg = SegmentOf(si);
      if (seg == nullptr) {
        continue;
      }
      for (int w = 0; w < kCondSyncSegmentWords; ++w) {
        // mo: acquire — [wake-publish]: same pairing as IsRegistered above.
        n += __builtin_popcountll(
            seg->mask[w].load(std::memory_order_acquire));
      }
    }
    return n;
  }

  // Invokes fn(tid, slot) for every possibly-registered slot, ascending tid;
  // fn returns false to stop the scan early (wake_single ablation). Iterates
  // allocated segments directly (segment masks, not the summary), so it never
  // depends on summary-repair timing.
  template <typename Fn>
  void ForEachRegistered(Fn&& fn) {
    for (int si = 0; si < num_segments_; ++si) {
      // mo: acquire — [seg-publish]: pairs with the allocator's release
      // directory CAS; a non-null pointer implies a fully initialized block.
      Segment* seg = segments_[si].load(std::memory_order_acquire);
      if (seg == nullptr) {
        continue;
      }
      for (int w = 0; w < kCondSyncSegmentWords; ++w) {
        // mo: acquire — [wake-publish]: the writer-side scan runs after the
        // commit's [clock-chain] RMW, whose release sequence carries every
        // registration's release MarkRegistered to this load.
        std::uint64_t bits = seg->mask[w].load(std::memory_order_acquire);
        while (bits != 0) {
          int bit = __builtin_ctzll(bits);
          bits &= bits - 1;
          int tid = si * kCondSyncSegmentSize + w * 64 + bit;
          if (!fn(tid, seg->slots[w * 64 + bit])) {
            return;
          }
        }
      }
    }
  }

  // Exclusive upper bound on tids that can currently be emitted by any scan
  // (= highest allocated segment's end). Lets callers size per-candidate
  // scratch to the *populated* range instead of max_threads; a segment
  // allocated after this call can only hold waiters that registered after
  // the caller's commit, which the caller may size for lazily.
  int TidBound() const {
    // mo: acquire — [seg-publish] rider: the bound is advanced before the
    // segment's publishing CAS, so any reader that can see a segment's tids
    // (via an acquire directory load) also sees a bound covering them.
    return tid_bound_.load(std::memory_order_acquire);
  }

  // Bytes currently committed to this registry: the directory plus every
  // allocated segment block. Feeds the memory-per-waiter metric.
  std::size_t FootprintBytes() const;

  // Number of segments with an allocated control block.
  int AllocatedSegments() const;

 private:
  // One 256-thread segment control block: the segment's presence bitmap and
  // its slot slab. Slots are cache-line-aligned individually; the leading
  // mask words share the block's first line, which only Mark/Unmark and
  // writer scans touch.
  struct alignas(kCacheLineBytes) Segment {
    std::atomic<std::uint64_t> mask[kCondSyncSegmentWords];
    WaiterSlot slots[kCondSyncSegmentSize];
  };

  Segment& EnsureSegment(int si);
  Segment* SegmentOf(int si) const {
    // mo: acquire — [seg-publish]: pairs with the allocator's release
    // directory CAS; a non-null pointer implies a fully initialized block.
    return segments_[si].load(std::memory_order_acquire);
  }
  void RepairSummary(int si);

  int capacity_;
  int num_segments_;
  int summary_words_;
  // Directory of lazily allocated segments; entries are owned (deleted in the
  // destructor) and published at most once via release-CAS.
  std::unique_ptr<std::atomic<Segment*>[]> segments_;
  // One bit per possibly-occupied segment; cleared only under the seqlock
  // repair below.
  std::unique_ptr<std::atomic<std::uint64_t>[]> summary_;
  // Seqlock generation for summary repairs: odd while a repair's transient
  // clear may be visible. repair_lock_ serializes repairs so odd/even stays
  // meaningful under concurrent drains of different segments.
  mutable std::atomic<std::uint64_t> repair_gen_{0};
  SpinLock repair_lock_;
  std::atomic<int> tid_bound_{0};
  ProtocolChecker* checker_ = nullptr;
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_WAITER_REGISTRY_H_
