// Transaction-safe condition variables (the evaluation's "TMCondVar" baseline,
// after Wang et al., SPAA 2014).
//
// Unlike Retry/Await/WaitPred, a condvar wait *breaks atomicity*: Wait() commits
// the in-flight transaction at the wait point — exposing any partial updates — then
// sleeps, and after wakeup the atomic block restarts from the top (the explicit
// `while(true)` retry loop of the paper's Algorithm 2, folded into Atomically()).
// Signals issued inside a transaction are deferred until that transaction commits.
//
// The waiter queue itself is transactional state: the enqueue is part of the
// committing transaction, so a waiter can never miss a signal from a writer whose
// commit serialized after its wait-commit (the predicate it tested and the enqueue
// are one atomic action). The ring, its capacity, and both cursors are all read
// and written transactionally; a full ring grows transactionally (TxAlloc + copy
// + TxFree of the old ring, made safe by commit-time quiescence) instead of
// silently overwriting a parked waiter's entry.
#ifndef TCS_CONDSYNC_TM_CONDVAR_H_
#define TCS_CONDSYNC_TM_CONDVAR_H_

#include <cstddef>
#include <vector>

#include "src/tm/word.h"

namespace tcs {

class TmSystem;

class TmCondVar {
 public:
  // `capacity` (> 0, checked) sizes the initial ring; each thread has at most
  // one queue entry at a time, and the ring grows transactionally if more
  // threads than expected wait concurrently.
  explicit TmCondVar(int capacity);
  ~TmCondVar();

  TmCondVar(const TmCondVar&) = delete;
  TmCondVar& operator=(const TmCondVar&) = delete;

  // Must be called inside a transaction. Transactionally enqueues the caller,
  // commits the in-flight transaction (atomicity break), sleeps until signaled,
  // then restarts the atomic block.
  [[noreturn]] void Wait(TmSystem& sys);

  // Wake one / all waiters. Inside a transaction the signal is deferred to commit;
  // outside it takes effect immediately.
  void Signal(TmSystem& sys);
  void Broadcast(TmSystem& sys);

  // Post-commit execution of a deferred signal (called by the runtime).
  void SignalNow(TmSystem& sys);
  void BroadcastNow(TmSystem& sys);

 private:
  // Doubles the ring inside the caller's in-flight transaction. `h`/`t`/`cap`
  // are the values the transaction already read.
  void Grow(TmSystem& sys, TmWord h, TmWord t, TmWord cap);

  // Pops up to `max` waiting tids inside ONE internal transaction, appending
  // them to `out`; returns the number popped. Semaphore posts are the caller's
  // job, strictly after this commits.
  std::size_t PopBatch(TmSystem& sys, std::size_t max, std::vector<int>& out);

  // All four words are transactional state (accessed via sys.Read/Write).
  // ring_ holds the current buffer pointer as a TmWord: growth retargets it
  // transactionally, so concurrent pops and enqueues see pointer, capacity,
  // and cursors change atomically.
  TmWord cap_;
  TmWord ring_;  // TmWord* holding waiting tids
  TmWord head_ = 0;
  TmWord tail_ = 0;
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_TM_CONDVAR_H_
