// Transaction-safe condition variables (the evaluation's "TMCondVar" baseline,
// after Wang et al., SPAA 2014).
//
// Unlike Retry/Await/WaitPred, a condvar wait *breaks atomicity*: Wait() commits
// the in-flight transaction at the wait point — exposing any partial updates — then
// sleeps, and after wakeup the atomic block restarts from the top (the explicit
// `while(true)` retry loop of the paper's Algorithm 2, folded into Atomically()).
// Signals issued inside a transaction are deferred until that transaction commits.
//
// The waiter queue itself is transactional state: the enqueue is part of the
// committing transaction, so a waiter can never miss a signal from a writer whose
// commit serialized after its wait-commit (the predicate it tested and the enqueue
// are one atomic action).
#ifndef TCS_CONDSYNC_TM_CONDVAR_H_
#define TCS_CONDSYNC_TM_CONDVAR_H_

#include <cstddef>
#include <memory>

#include "src/tm/word.h"

namespace tcs {

class TmSystem;

class TmCondVar {
 public:
  // `capacity` must be at least the number of threads that may wait concurrently
  // (each thread has at most one queue entry at a time).
  explicit TmCondVar(int capacity);

  TmCondVar(const TmCondVar&) = delete;
  TmCondVar& operator=(const TmCondVar&) = delete;

  // Must be called inside a transaction. Transactionally enqueues the caller,
  // commits the in-flight transaction (atomicity break), sleeps until signaled,
  // then restarts the atomic block.
  [[noreturn]] void Wait(TmSystem& sys);

  // Wake one / all waiters. Inside a transaction the signal is deferred to commit;
  // outside it takes effect immediately.
  void Signal(TmSystem& sys);
  void Broadcast(TmSystem& sys);

  // Post-commit execution of a deferred signal (called by the runtime).
  void SignalNow(TmSystem& sys);
  void BroadcastNow(TmSystem& sys);

 private:
  // Pops one waiting tid (inside an internal transaction); -1 if none.
  int PopOne(TmSystem& sys);

  std::size_t cap_;
  std::unique_ptr<TmWord[]> ring_;  // waiting tids
  TmWord head_ = 0;
  TmWord tail_ = 0;
};

}  // namespace tcs

#endif  // TCS_CONDSYNC_TM_CONDVAR_H_
