#include "src/condsync/wake_index.h"

namespace tcs {

namespace {

bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int Log2(int v) {
  int l = 0;
  while ((1 << l) < v) {
    ++l;
  }
  return l;
}

}  // namespace

WakeIndex::WakeIndex(int max_threads, int num_shards)
    : capacity_(max_threads),
      num_segments_((max_threads + kCondSyncSegmentSize - 1) >>
                    kCondSyncSegmentShift),
      num_shards_(num_shards),
      shards_log2_(Log2(num_shards)),
      shard_words_((num_shards + 63) / 64) {
  TCS_CHECK(max_threads > 0);
  TCS_CHECK_MSG(IsPowerOfTwo(num_shards) && num_shards <= kMaxShards,
                "wake-index shard count must be a power of two in [1, 4096]");
  segments_ = std::make_unique<std::atomic<IndexSegment*>[]>(
      static_cast<std::size_t>(num_segments_));
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — single-threaded construction; the index is published to
    // worker threads by the owning runtime's thread-start edge.
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
}

WakeIndex::~WakeIndex() {
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — destruction is single-threaded; every waiter and writer
    // is quiescent (the owning system joins/fences before teardown).
    delete segments_[i].load(std::memory_order_relaxed);
  }
}

WakeIndex::IndexSegment& WakeIndex::EnsureSegment(int si) {
  // mo: acquire — [seg-publish]: pairs with the release directory CAS below;
  // a non-null pointer implies a fully initialized block.
  IndexSegment* seg = segments_[si].load(std::memory_order_acquire);
  if (seg != nullptr) {
    return *seg;
  }
  auto fresh = std::make_unique<IndexSegment>();
  const std::size_t slab_words =
      static_cast<std::size_t>(num_shards_) * kCondSyncSegmentWords;
  fresh->bits = std::make_unique<std::atomic<std::uint64_t>[]>(slab_words);
  for (std::size_t i = 0; i < slab_words; ++i) {
    // mo: relaxed — pre-publication init; the publishing CAS below releases
    // these stores to every acquire reader of the directory entry.
    fresh->bits[i].store(0, std::memory_order_relaxed);
  }
  for (int w = 0; w < kCondSyncSegmentWords; ++w) {
    // mo: relaxed — pre-publication init, same as the slab zeroing above.
    fresh->global[w].store(0, std::memory_order_relaxed);
  }
  const std::size_t bk_words =
      static_cast<std::size_t>(kCondSyncSegmentSize) * shard_words_;
  // make_unique<T[]> value-initializes the plain bookkeeping arrays to zero.
  fresh->per_tid_shards = std::make_unique<std::uint64_t[]>(bk_words);
  for (int i = 0; i < kCondSyncSegmentSize; ++i) {
    fresh->per_tid_global[i] = 0;
  }
  IndexSegment* expected = nullptr;
  // mo: acq_rel — [seg-publish]: success releases the zero-initialized block
  // to every acquire directory load; failure acquires the winning racer's
  // publication so the adopted block is fully visible.
  if (segments_[si].compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel)) {
    IndexSegment* published = fresh.release();
    TCS_PROTO(if (checker_ != nullptr) checker_->OnSegmentPublished(
                  ProtocolChecker::SegmentKind::kWakeIndex, si));
    return *published;
  }
  // Lost the publication race: drop our block, adopt the winner's.
  return *expected;
}

int WakeIndex::ShardPopulation(int s) const {
  int n = 0;
  for (int si = 0; si < num_segments_; ++si) {
    IndexSegment* seg = SegmentOf(si);
    if (seg == nullptr) {
      continue;
    }
    for (int w = 0; w < kCondSyncSegmentWords; ++w) {
      // mo: acquire — [wake-publish]: introspection pairs with the release
      // inserts; callers that need a fresh count sequence their own barrier
      // (join/commit) before asking.
      n += __builtin_popcountll(
          ShardWord(*seg, s, w).load(std::memory_order_acquire));
    }
  }
  return n;
}

int WakeIndex::GlobalPopulation() const {
  int n = 0;
  for (int si = 0; si < num_segments_; ++si) {
    IndexSegment* seg = SegmentOf(si);
    if (seg == nullptr) {
      continue;
    }
    for (int w = 0; w < kCondSyncSegmentWords; ++w) {
      // mo: acquire — [wake-publish]: same pairing as the shard scan above.
      n += __builtin_popcountll(
          seg->global[w].load(std::memory_order_acquire));
    }
  }
  return n;
}

bool WakeIndex::Empty() const {
  for (int si = 0; si < num_segments_; ++si) {
    IndexSegment* seg = SegmentOf(si);
    if (seg == nullptr) {
      continue;
    }
    for (int w = 0; w < kCondSyncSegmentWords; ++w) {
      // mo: acquire — [wake-publish]: the leak check runs after every waiter
      // thread has joined (thread join orders the final Remove before this
      // load), so acquire is already stronger than required.
      if (seg->global[w].load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    const std::size_t slab_words =
        static_cast<std::size_t>(num_shards_) * kCondSyncSegmentWords;
    for (std::size_t i = 0; i < slab_words; ++i) {
      // mo: acquire — [wake-publish]: same argument as the global scan above.
      if (seg->bits[i].load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
  }
  return true;
}

std::size_t WakeIndex::FootprintBytes() const {
  std::size_t bytes =
      static_cast<std::size_t>(num_segments_) * sizeof(segments_[0]);
  const std::size_t per_segment =
      sizeof(IndexSegment) +
      static_cast<std::size_t>(num_shards_) * kCondSyncSegmentWords *
          sizeof(std::uint64_t) +
      static_cast<std::size_t>(kCondSyncSegmentSize) * shard_words_ *
          sizeof(std::uint64_t);
  for (int si = 0; si < num_segments_; ++si) {
    if (SegmentOf(si) != nullptr) {
      bytes += per_segment;
    }
  }
  return bytes;
}

int WakeIndex::AllocatedSegments() const {
  int n = 0;
  for (int si = 0; si < num_segments_; ++si) {
    if (SegmentOf(si) != nullptr) {
      ++n;
    }
  }
  return n;
}

}  // namespace tcs
