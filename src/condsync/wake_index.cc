#include "src/condsync/wake_index.h"

namespace tcs {

namespace {

bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int Log2(int v) {
  int l = 0;
  while ((1 << l) < v) {
    ++l;
  }
  return l;
}

}  // namespace

WakeIndex::WakeIndex(int max_threads, int num_shards)
    : capacity_(max_threads),
      mask_words_((max_threads + 63) / 64),
      num_shards_(num_shards),
      shards_log2_(Log2(num_shards)),
      shard_words_((num_shards + 63) / 64) {
  TCS_CHECK(max_threads > 0);
  TCS_CHECK_MSG(IsPowerOfTwo(num_shards) && num_shards <= kMaxShards,
                "wake-index shard count must be a power of two in [1, 4096]");
  constexpr std::size_t kWordsPerLine =
      kCacheLineBytes / sizeof(std::atomic<std::uint64_t>);
  stride_ = ((static_cast<std::size_t>(mask_words_) + kWordsPerLine - 1) /
             kWordsPerLine) *
            kWordsPerLine;
  bits_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(num_shards_) * stride_);
  global_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(mask_words_));
  for (std::size_t i = 0; i < static_cast<std::size_t>(num_shards_) * stride_;
       ++i) {
    // mo: relaxed — single-threaded construction; the index is published to
    // worker threads by the owning runtime's thread-start edge.
    bits_[i].store(0, std::memory_order_relaxed);
  }
  for (int w = 0; w < mask_words_; ++w) {
    // mo: relaxed — single-threaded construction, same as above.
    global_[w].store(0, std::memory_order_relaxed);
  }
  // make_unique<T[]> value-initializes these plain arrays to zero.
  per_tid_shards_ = std::make_unique<std::uint64_t[]>(
      static_cast<std::size_t>(max_threads) *
      static_cast<std::size_t>(shard_words_));
  per_tid_global_ =
      std::make_unique<std::uint8_t[]>(static_cast<std::size_t>(max_threads));
}

int WakeIndex::ShardPopulation(int s) const {
  int n = 0;
  for (int w = 0; w < mask_words_; ++w) {
    // mo: acquire — [wake-publish]: introspection pairs with the release
    // inserts; callers that need a fresh count sequence their own barrier
    // (join/commit) before asking.
    n += __builtin_popcountll(ShardWord(s, w).load(std::memory_order_acquire));
  }
  return n;
}

int WakeIndex::GlobalPopulation() const {
  int n = 0;
  for (int w = 0; w < mask_words_; ++w) {
    // mo: acquire — [wake-publish]: same pairing as the shard scan above.
    n += __builtin_popcountll(global_[w].load(std::memory_order_acquire));
  }
  return n;
}

bool WakeIndex::Empty() const {
  for (int w = 0; w < mask_words_; ++w) {
    // mo: acquire — [wake-publish]: the leak check runs after every waiter
    // thread has joined (thread join orders the final Remove before this
    // load), so acquire is already stronger than required.
    if (global_[w].load(std::memory_order_acquire) != 0) {
      return false;
    }
  }
  for (int s = 0; s < num_shards_; ++s) {
    for (int w = 0; w < mask_words_; ++w) {
      // mo: acquire — [wake-publish]: same argument as the global scan above.
      if (ShardWord(s, w).load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace tcs
