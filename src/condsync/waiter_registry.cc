#include "src/condsync/waiter_registry.h"

#include "src/common/assert.h"

namespace tcs {

WaiterRegistry::WaiterRegistry(int max_threads) : capacity_(max_threads) {
  TCS_CHECK(max_threads > 0);
  mask_words_ = (max_threads + 63) / 64;
  slots_ = std::make_unique<WaiterSlot[]>(static_cast<std::size_t>(max_threads));
  mask_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(mask_words_));
  for (int w = 0; w < mask_words_; ++w) {
    // mo: relaxed — single-threaded construction; the registry is published to
    // worker threads by the owning runtime's thread-start edge.
    mask_[w].store(0, std::memory_order_relaxed);
  }
}

}  // namespace tcs
