#include "src/condsync/waiter_registry.h"

#include "src/common/assert.h"

namespace tcs {

WaiterRegistry::WaiterRegistry(int max_threads) : capacity_(max_threads) {
  TCS_CHECK(max_threads > 0);
  num_segments_ =
      (max_threads + kCondSyncSegmentSize - 1) >> kCondSyncSegmentShift;
  summary_words_ = (num_segments_ + 63) / 64;
  segments_ = std::make_unique<std::atomic<Segment*>[]>(
      static_cast<std::size_t>(num_segments_));
  summary_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(summary_words_));
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — single-threaded construction; the registry is published to
    // worker threads by the owning runtime's thread-start edge.
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
  for (int w = 0; w < summary_words_; ++w) {
    // mo: relaxed — single-threaded construction, same as above.
    summary_[w].store(0, std::memory_order_relaxed);
  }
}

WaiterRegistry::~WaiterRegistry() {
  for (int i = 0; i < num_segments_; ++i) {
    // mo: relaxed — destruction is single-threaded; every waiter and writer
    // is quiescent (the owning system joins/fences before teardown).
    delete segments_[i].load(std::memory_order_relaxed);
  }
}

WaiterRegistry::Segment& WaiterRegistry::EnsureSegment(int si) {
  // mo: acquire — [seg-publish]: pairs with the release directory CAS below;
  // a non-null pointer implies a fully initialized block.
  Segment* seg = segments_[si].load(std::memory_order_acquire);
  if (seg != nullptr) {
    return *seg;
  }
  auto fresh = std::make_unique<Segment>();
  for (int w = 0; w < kCondSyncSegmentWords; ++w) {
    // mo: relaxed — pre-publication init; the publishing CAS below releases
    // these stores to every acquire reader of the directory entry.
    fresh->mask[w].store(0, std::memory_order_relaxed);
  }
  // Advance the tid bound BEFORE publishing: any thread that can emit this
  // segment's tids from a scan saw the pointer via an acquire load, which
  // also makes this bound update visible.
  const int bound = (si + 1) * kCondSyncSegmentSize;
  // mo: relaxed — [seg-publish] rider: the publishing CAS below orders this
  // maximum against every reader that can observe the segment.
  int cur = tid_bound_.load(std::memory_order_relaxed);
  while (cur < bound &&
         // mo: relaxed — [seg-publish] rider, same argument as the load.
         !tid_bound_.compare_exchange_weak(cur, bound,
                                           std::memory_order_relaxed)) {
  }
  Segment* expected = nullptr;
  // mo: acq_rel — [seg-publish]: success releases the zero-initialized block
  // (and the tid-bound advance) to every acquire directory load; failure
  // acquires the winning racer's publication so the adopted block is fully
  // visible.
  if (segments_[si].compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel)) {
    Segment* published = fresh.release();
    TCS_PROTO(if (checker_ != nullptr) checker_->OnSegmentPublished(
                  ProtocolChecker::SegmentKind::kWaiterRegistry, si));
    return *published;
  }
  // Lost the publication race: drop our block, adopt the winner's.
  return *expected;
}

void WaiterRegistry::RepairSummary(int si) {
  const std::uint64_t segbit = std::uint64_t{1} << (si % 64);
  Segment* seg = SegmentOf(si);
  SpinLockGuard g(repair_lock_);
  // mo: relaxed — [wake-publish] rider: seqlock enter (odd). Readers never
  // act on this value alone; one that observes the transient clear below
  // synchronizes through that acq_rel RMW, which orders this increment
  // before its validation re-read.
  repair_gen_.fetch_add(1, std::memory_order_relaxed);
  // mo: acq_rel — [wake-publish]: the repair's transient clear. Release: a
  // reader that observes the cleared word synchronizes with it and must see
  // the odd generation (retry). Acquire: if a racing registration's summary
  // fetch_or precedes this RMW in the word's modification order, this
  // operation synchronizes with it, so the rescan below is guaranteed to see
  // that registration's segment-mask bit (set before its summary bit) and
  // re-set; if it follows, the registration's own RMW re-sets the bit. Either
  // interleaving leaves the bit set once both complete.
  summary_[si / 64].fetch_and(~segbit, std::memory_order_acq_rel);
  bool occupied = false;
  for (int w = 0; w < kCondSyncSegmentWords; ++w) {
    // mo: acquire — [wake-publish]: rescan of the segment presence mask,
    // ordered after the clear above (see its annotation for why a racing
    // registration's bit is visible here when it must be).
    if (seg->mask[w].load(std::memory_order_acquire) != 0) {
      occupied = true;
      break;
    }
  }
  if (occupied) {
    // mo: release — [wake-publish]: conservative re-set, same publication
    // contract as MarkRegistered's summary fetch_or.
    summary_[si / 64].fetch_or(segbit, std::memory_order_release);
  }
  // mo: release — [wake-publish] rider: seqlock exit (even); orders the
  // repair's clear/re-set before any reader whose generation pre-read
  // acquires this value, so such a reader sees the repaired state, not the
  // transient clear.
  repair_gen_.fetch_add(1, std::memory_order_release);
}

std::size_t WaiterRegistry::FootprintBytes() const {
  std::size_t bytes =
      static_cast<std::size_t>(num_segments_) * sizeof(segments_[0]) +
      static_cast<std::size_t>(summary_words_) * sizeof(summary_[0]);
  for (int si = 0; si < num_segments_; ++si) {
    if (SegmentOf(si) != nullptr) {
      bytes += sizeof(Segment);
    }
  }
  return bytes;
}

int WaiterRegistry::AllocatedSegments() const {
  int n = 0;
  for (int si = 0; si < num_segments_; ++si) {
    if (SegmentOf(si) != nullptr) {
      ++n;
    }
  }
  return n;
}

}  // namespace tcs
