// Counting semaphore (POSIX sem_t wrapper).
//
// The paper's Deschedule mechanism parks each waiting thread on a per-thread
// semaphore (Algorithm 4). The runtime's wake path no longer does: per-waiter
// sem_t objects don't scale to the capacity tier's 10^5+ parked waiters, so
// descheduled threads now park on ParkSpot words through the shared
// ParkingLot (src/common/parking_lot.h). This class stays as a standalone
// primitive for tests and harnesses that need plain counting semantics.
#ifndef TCS_COMMON_SEMAPHORE_H_
#define TCS_COMMON_SEMAPHORE_H_

#include <semaphore.h>

#include <chrono>

namespace tcs {

class Semaphore {
 public:
  explicit Semaphore(unsigned initial = 0);
  ~Semaphore();

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Blocks until the count is positive, then decrements it.
  void Wait();

  // Blocks until the count is positive or `deadline` (steady clock) passes.
  // Returns true iff the count was decremented; false on timeout. The timed
  // deschedule path (RetryFor/AwaitFor/WaitPredFor) parks threads through this.
  bool WaitUntil(std::chrono::steady_clock::time_point deadline);

  // Returns true if the count was positive and was decremented.
  bool TryWait();

  // Increments the count, waking one waiter if any.
  void Post();

 private:
  sem_t sem_;
};

}  // namespace tcs

#endif  // TCS_COMMON_SEMAPHORE_H_
