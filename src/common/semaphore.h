// Counting semaphore used to put descheduled threads to sleep and wake them.
//
// The paper's Deschedule mechanism parks each waiting thread on a per-thread
// semaphore (Algorithm 4): the registration transaction and the waker's check run
// inside transactions, but the actual sleep/wake transitions happen strictly
// outside any transaction, so a plain POSIX semaphore is the right tool.
#ifndef TCS_COMMON_SEMAPHORE_H_
#define TCS_COMMON_SEMAPHORE_H_

#include <semaphore.h>

#include <chrono>

namespace tcs {

class Semaphore {
 public:
  explicit Semaphore(unsigned initial = 0);
  ~Semaphore();

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Blocks until the count is positive, then decrements it.
  void Wait();

  // Blocks until the count is positive or `deadline` (steady clock) passes.
  // Returns true iff the count was decremented; false on timeout. The timed
  // deschedule path (RetryFor/AwaitFor/WaitPredFor) parks threads through this.
  bool WaitUntil(std::chrono::steady_clock::time_point deadline);

  // Returns true if the count was positive and was decremented.
  bool TryWait();

  // Increments the count, waking one waiter if any.
  void Post();

 private:
  sem_t sem_;
};

}  // namespace tcs

#endif  // TCS_COMMON_SEMAPHORE_H_
