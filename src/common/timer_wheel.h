// Hierarchical timer wheel for timed waits at the capacity tier.
//
// The paper's timed waits (RetryFor / AwaitFor / WaitPredFor) each burned a
// private Semaphore::WaitUntil: N concurrent timed waits are N independent
// kernel timeouts, N wakeups per deadline storm, and N timer-queue entries
// the kernel must sort. At 10^5+ timed waiters that is the dominant cost of
// the wait path. The wheel collapses them to O(1) amortized per tick with
// ONE dedicated ticker thread: DescheduleImpl registers (spot, epoch,
// deadline) and parks on the spot; the ticker advances a classic
// hashed-hierarchical wheel (Varghese & Lauck) and posts a timeout token —
// ParkingLot::PostTimeout, the [wheel-tick] edge — to every entry whose slot
// comes due.
//
// Layout: level 0 is 256 ticks of `tick_ns` each; levels 1 and 2 are 64
// slots covering 256 and 256*64 ticks per slot; anything further out sits in
// an overflow list rescanned once per full level-2 revolution. Entries
// cascade down a level when their coarse slot expires. Deadlines round UP to
// a tick boundary — the wheel may fire late (bounded by tick_ns plus ticker
// scheduling lag, reported as max_lag_ns) but never early, so a fired waiter
// observing `now < deadline` can only mean a stale epoch, not an early fire.
//
// Cancellation is lazy (epoch-based, see ParkingLot::ArmTimed): a wait that
// ends by wakeup simply abandons its wheel entry; the entry fires later,
// PostTimeout sees the stale epoch and drops it (counted in Stats::stale).
// No search-and-delete, so Schedule is O(1) under one mutex.
//
// The ticker sleeps indefinitely while the wheel is empty (no idle ticks),
// and Schedule resynchronizes the wheel's origin to wall-clock when arming
// an empty wheel — idle periods advance time, not tick counts, which keeps
// the "ticks serviced ≪ timed waits" capacity property measurable.
#ifndef TCS_COMMON_TIMER_WHEEL_H_
#define TCS_COMMON_TIMER_WHEEL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/parking_lot.h"

namespace tcs {

class TimerWheel {
 public:
  struct Stats {
    std::uint64_t ticks = 0;       // ticker slot advances (not wall ticks)
    std::uint64_t scheduled = 0;   // Schedule() calls
    std::uint64_t fired = 0;       // timeout tokens actually delivered
    std::uint64_t stale = 0;       // fires dropped by the epoch filter
    std::uint64_t cascades = 0;    // entries re-placed from a coarser level
    std::uint64_t max_lag_ns = 0;  // worst observed fire-past-deadline lag
  };

  // `lot` must outlive the wheel. tick_ns is the level-0 granularity; timed
  // waits shorter than one tick still take at least one tick to fire.
  TimerWheel(ParkingLot* lot, std::uint64_t tick_ns);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Registers a timeout for `spot` under `epoch` (from ParkingLot::ArmTimed).
  // The ticker thread is spawned lazily on first use.
  void Schedule(ParkSpot* spot, std::uint64_t epoch,
                std::chrono::steady_clock::time_point deadline);

  Stats SnapshotStats() const;
  std::uint64_t tick_ns() const { return tick_ns_; }

 private:
  static constexpr int kL0Slots = 256;  // tick_ns each
  static constexpr int kL1Slots = 64;   // kL0Slots ticks each
  static constexpr int kL2Slots = 64;   // kL0Slots * kL1Slots ticks each

  struct Entry {
    ParkSpot* spot;
    std::uint64_t epoch;
    std::uint64_t deadline_tick;
  };

  // All private helpers run under mu_.
  void Place(Entry e);
  void FireSlot(std::vector<Entry>& slot);
  void AdvanceOneTick();
  std::uint64_t TickOf(std::chrono::steady_clock::time_point tp) const;
  void TickerMain();

  ParkingLot* const lot_;
  const std::uint64_t tick_ns_;
  const std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t current_tick_ = 0;
  std::uint64_t pending_ = 0;
  bool stop_ = false;
  bool ticker_started_ = false;
  std::vector<Entry> l0_[kL0Slots];
  std::vector<Entry> l1_[kL1Slots];
  std::vector<Entry> l2_[kL2Slots];
  std::vector<Entry> overflow_;
  Stats stats_;
  std::thread ticker_;
};

}  // namespace tcs

#endif  // TCS_COMMON_TIMER_WHEEL_H_
