#include "src/common/semaphore.h"

#include <cerrno>

#include "src/common/assert.h"

namespace tcs {

Semaphore::Semaphore(unsigned initial) {
  int rc = sem_init(&sem_, /*pshared=*/0, initial);
  TCS_CHECK_MSG(rc == 0, "sem_init failed");
}

Semaphore::~Semaphore() { sem_destroy(&sem_); }

void Semaphore::Wait() {
  int rc;
  do {
    rc = sem_wait(&sem_);
  } while (rc != 0 && errno == EINTR);
  TCS_CHECK_MSG(rc == 0, "sem_wait failed");
}

bool Semaphore::TryWait() {
  int rc;
  do {
    rc = sem_trywait(&sem_);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) {
    return true;
  }
  TCS_CHECK_MSG(errno == EAGAIN, "sem_trywait failed");
  return false;
}

void Semaphore::Post() {
  int rc = sem_post(&sem_);
  TCS_CHECK_MSG(rc == 0, "sem_post failed");
}

}  // namespace tcs
