#include "src/common/semaphore.h"

#include <cerrno>
#include <ctime>

#include "src/common/assert.h"

namespace tcs {

Semaphore::Semaphore(unsigned initial) {
  int rc = sem_init(&sem_, /*pshared=*/0, initial);
  TCS_CHECK_MSG(rc == 0, "sem_init failed");
}

Semaphore::~Semaphore() { sem_destroy(&sem_); }

void Semaphore::Wait() {
  int rc;
  do {
    rc = sem_wait(&sem_);
  } while (rc != 0 && errno == EINTR);
  TCS_CHECK_MSG(rc == 0, "sem_wait failed");
}

bool Semaphore::WaitUntil(std::chrono::steady_clock::time_point deadline) {
  // sem_timedwait takes a CLOCK_REALTIME absolute time; convert the steady
  // deadline to a realtime one at call (and retry) time so realtime clock jumps
  // only shift precision, never correctness of the steady-clock bound.
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return TryWait();
    }
    auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
        deadline - now);
    struct timespec abs;
    clock_gettime(CLOCK_REALTIME, &abs);
    abs.tv_sec += static_cast<time_t>(remaining.count() / 1'000'000'000);
    abs.tv_nsec += static_cast<long>(remaining.count() % 1'000'000'000);
    if (abs.tv_nsec >= 1'000'000'000) {
      abs.tv_sec += 1;
      abs.tv_nsec -= 1'000'000'000;
    }
    int rc = sem_timedwait(&sem_, &abs);
    if (rc == 0) {
      return true;
    }
    if (errno == ETIMEDOUT) {
      // Recheck against the steady clock: a realtime jump may have fired the
      // timeout early, in which case we just loop and wait out the remainder.
      continue;
    }
    TCS_CHECK_MSG(errno == EINTR, "sem_timedwait failed");
  }
}

bool Semaphore::TryWait() {
  int rc;
  do {
    rc = sem_trywait(&sem_);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) {
    return true;
  }
  TCS_CHECK_MSG(errno == EAGAIN, "sem_trywait failed");
  return false;
}

void Semaphore::Post() {
  int rc = sem_post(&sem_);
  TCS_CHECK_MSG(rc == 0, "sem_post failed");
}

}  // namespace tcs
