// Minimal streaming JSON writer — no dependencies. Shared by the benchmark
// harness (the BENCH_*.json trajectory files that make perf claims comparable
// PR-to-PR) and the runtime observability layer (TmSystem::SnapshotMetrics and
// the Chrome trace-event dump in src/obs/trace_dump.cc).
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("backend").String("eager-stm");
//   w.Key("rows").BeginArray();
//   w.BeginObject(); w.Key("threads").U64(4); w.EndObject();
//   w.EndArray();
//   w.EndObject();
//   w.WriteFile("BENCH_wakeup.json");
#ifndef TCS_COMMON_JSON_WRITER_H_
#define TCS_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tcs {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& k);

  JsonWriter& String(const std::string& v);
  JsonWriter& U64(std::uint64_t v);
  JsonWriter& Int(std::int64_t v);
  JsonWriter& Double(double v);  // non-finite values emit null
  JsonWriter& Bool(bool v);

  const std::string& str() const { return out_; }

  // Writes the document to `path`; returns false (and prints to stderr) on
  // failure.
  bool WriteFile(const std::string& path) const;

 private:
  void Separate();

  std::string out_;
  // One entry per open container: true once a value has been emitted there.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace tcs

#endif  // TCS_COMMON_JSON_WRITER_H_
