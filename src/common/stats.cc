#include "src/common/stats.h"

namespace tcs {

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kCommits:
      return "commits";
    case Counter::kReadOnlyCommits:
      return "read_only_commits";
    case Counter::kAborts:
      return "aborts";
    case Counter::kExplicitRestarts:
      return "explicit_restarts";
    case Counter::kRetryRestarts:
      return "retry_restarts";
    case Counter::kDeschedules:
      return "deschedules";
    case Counter::kSleeps:
      return "sleeps";
    case Counter::kWakeups:
      return "wakeups";
    case Counter::kWakeChecks:
      return "wake_checks";
    case Counter::kFalseWakeups:
      return "false_wakeups";
    case Counter::kHtmFallbacks:
      return "htm_fallbacks";
    case Counter::kHtmCapacityAborts:
      return "htm_capacity_aborts";
    case Counter::kHtmConflictAborts:
      return "htm_conflict_aborts";
    case Counter::kHtmExplicitAborts:
      return "htm_explicit_aborts";
    case Counter::kCondVarWaits:
      return "condvar_waits";
    case Counter::kCondVarSignals:
      return "condvar_signals";
    case Counter::kTimestampExtensions:
      return "timestamp_extensions";
    case Counter::kHtmPredTableFastPath:
      return "htm_pred_table_fast_path";
    case Counter::kWaitsetEntries:
      return "waitset_entries";
    case Counter::kQuiesceCalls:
      return "quiesce_calls";
    case Counter::kWaitTimeouts:
      return "wait_timeouts";
    case Counter::kOrElseFallbacks:
      return "orelse_fallbacks";
    case Counter::kPartialRollbacks:
      return "partial_rollbacks";
    case Counter::kIndexedDeschedules:
      return "indexed_deschedules";
    case Counter::kGlobalDeschedules:
      return "global_deschedules";
    case Counter::kWaitsetPruned:
      return "waitset_pruned";
    case Counter::kOrElseOrecReleases:
      return "orelse_orec_releases";
    case Counter::kExtendOnValidation:
      return "extend_on_validation";
    case Counter::kExtendOnOrecRelease:
      return "extend_on_orec_release";
    case Counter::kExtendOnCommitValidation:
      return "extend_on_commit_validation";
    case Counter::kExtendOnEncounterAcquisition:
      return "extend_on_encounter_acquisition";
    case Counter::kWakeBatches:
      return "wake_batches";
    case Counter::kWakeChecksBatched:
      return "wake_checks_batched";
    case Counter::kVacuousWakeups:
      return "vacuous_wakeups";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

}  // namespace tcs
