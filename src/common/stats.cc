#include "src/common/stats.h"

#include <iterator>

namespace tcs {

namespace {

// Indexed by Counter value. The static_assert below makes "added a counter,
// forgot its name" a compile error instead of a silent "unknown" in every
// stats dump (the old switch degraded that way — a missing case only warned).
constexpr std::string_view kCounterNames[] = {
    "commits",
    "read_only_commits",
    "aborts",
    "explicit_restarts",
    "retry_restarts",
    "deschedules",
    "sleeps",
    "wakeups",
    "wake_checks",
    "false_wakeups",
    "htm_fallbacks",
    "htm_capacity_aborts",
    "htm_conflict_aborts",
    "htm_explicit_aborts",
    "condvar_waits",
    "condvar_signals",
    "timestamp_extensions",
    "htm_pred_table_fast_path",
    "waitset_entries",
    "quiesce_calls",
    "wait_timeouts",
    "orelse_fallbacks",
    "partial_rollbacks",
    "indexed_deschedules",
    "global_deschedules",
    "waitset_pruned",
    "orelse_orec_releases",
    "extend_on_validation",
    "extend_on_orec_release",
    "extend_on_commit_validation",
    "extend_on_encounter_acquisition",
    "wake_batches",
    "wake_checks_batched",
    "vacuous_wakeups",
    "trace_events",
    "trace_drops",
    "cas_wake_claims",
    "cas_claim_fallbacks",
    "wake_tx_aborts",
    "condvar_batches",
    "condvar_ring_growths",
};
static_assert(std::size(kCounterNames) ==
                  static_cast<std::size_t>(Counter::kNumCounters),
              "kCounterNames out of sync with Counter — name every counter");

}  // namespace

std::string_view CounterName(Counter c) {
  auto i = static_cast<std::size_t>(c);
  return i < std::size(kCounterNames) ? kCounterNames[i] : "unknown";
}

}  // namespace tcs
