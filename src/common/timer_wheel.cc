#include "src/common/timer_wheel.h"

#include <utility>

namespace tcs {

TimerWheel::TimerWheel(ParkingLot* lot, std::uint64_t tick_ns)
    : lot_(lot),
      tick_ns_(tick_ns == 0 ? 1 : tick_ns),
      origin_(std::chrono::steady_clock::now()) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (ticker_.joinable()) {
    ticker_.join();
  }
}

std::uint64_t TimerWheel::TickOf(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= origin_) {
    return 0;
  }
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(tp - origin_)
                .count();
  // Round UP: the wheel fires late (bounded), never early.
  return (static_cast<std::uint64_t>(ns) + tick_ns_ - 1) / tick_ns_;
}

void TimerWheel::Place(Entry e) {
  // A deadline at or behind the wheel's cursor fires on the very next tick
  // (never early overall: the cursor only reaches a tick once its wall time
  // has passed).
  std::uint64_t due = e.deadline_tick > current_tick_ + 1
                          ? e.deadline_tick
                          : current_tick_ + 1;
  std::uint64_t delta = due - current_tick_;
  if (delta < static_cast<std::uint64_t>(kL0Slots)) {
    l0_[due % kL0Slots].push_back(e);
  } else if (delta < static_cast<std::uint64_t>(kL0Slots) * kL1Slots) {
    l1_[(due / kL0Slots) % kL1Slots].push_back(e);
  } else if (delta <
             static_cast<std::uint64_t>(kL0Slots) * kL1Slots * kL2Slots) {
    l2_[(due / (kL0Slots * kL1Slots)) % kL2Slots].push_back(e);
  } else {
    overflow_.push_back(e);
  }
}

void TimerWheel::FireSlot(std::vector<Entry>& slot) {
  for (Entry& e : slot) {
    // PostTimeout takes the lot's bucket mutex in the pool backend, which is
    // distinct from mu_ and never taken with mu_ held elsewhere, so holding
    // mu_ across the post cannot deadlock.
    if (lot_->PostTimeout(*e.spot, e.epoch)) {
      stats_.fired++;
      auto now = std::chrono::steady_clock::now();
      auto deadline =
          origin_ + std::chrono::nanoseconds(e.deadline_tick * tick_ns_);
      if (now > deadline) {
        auto lag = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       now - deadline)
                       .count();
        if (static_cast<std::uint64_t>(lag) > stats_.max_lag_ns) {
          stats_.max_lag_ns = static_cast<std::uint64_t>(lag);
        }
      }
    } else {
      stats_.stale++;
    }
    pending_--;
  }
  slot.clear();
}

void TimerWheel::AdvanceOneTick() {
  current_tick_++;
  stats_.ticks++;
  FireSlot(l0_[current_tick_ % kL0Slots]);
  if (current_tick_ % kL0Slots == 0) {
    // Cascade the expiring level-1 slot down; lagged entries land in the
    // next-tick slot via Place's clamp.
    std::vector<Entry> batch =
        std::move(l1_[(current_tick_ / kL0Slots) % kL1Slots]);
    l1_[(current_tick_ / kL0Slots) % kL1Slots].clear();
    for (Entry& e : batch) {
      stats_.cascades++;
      Place(e);  // pending_ already counts the entry; only FireSlot drops it.
    }
    if (current_tick_ % (static_cast<std::uint64_t>(kL0Slots) * kL1Slots) ==
        0) {
      std::vector<Entry> b2 = std::move(
          l2_[(current_tick_ / (kL0Slots * kL1Slots)) % kL2Slots]);
      l2_[(current_tick_ / (kL0Slots * kL1Slots)) % kL2Slots].clear();
      for (Entry& e : b2) {
        stats_.cascades++;
        Place(e);
      }
      if (current_tick_ %
              (static_cast<std::uint64_t>(kL0Slots) * kL1Slots * kL2Slots) ==
          0) {
        std::vector<Entry> ov = std::move(overflow_);
        overflow_.clear();
        for (Entry& e : ov) {
          stats_.cascades++;
          Place(e);
        }
      }
    }
  }
}

void TimerWheel::Schedule(ParkSpot* spot, std::uint64_t epoch,
                          std::chrono::steady_clock::time_point deadline) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!ticker_started_) {
      ticker_started_ = true;
      ticker_ = std::thread([this] { TickerMain(); });
    }
    if (pending_ == 0) {
      // Arming an empty wheel: jump the cursor to "now" without counting the
      // skipped ticks — idle periods advance time, not Stats::ticks.
      std::uint64_t now_tick = TickOf(std::chrono::steady_clock::now());
      if (now_tick > current_tick_) {
        current_tick_ = now_tick;
      }
    }
    stats_.scheduled++;
    pending_++;
    Place(Entry{spot, epoch, TickOf(deadline)});
  }
  cv_.notify_all();
}

void TimerWheel::TickerMain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (pending_ == 0) {
      cv_.wait(lk, [&] { return stop_ || pending_ > 0; });
      continue;
    }
    auto next = origin_ + std::chrono::nanoseconds((current_tick_ + 1) *
                                                   tick_ns_);
    if (std::chrono::steady_clock::now() < next) {
      cv_.wait_until(lk, next);
      continue;
    }
    // Advance every elapsed tick; slots between are almost always empty, so
    // catching up after scheduling lag is a cheap modulo walk.
    AdvanceOneTick();
  }
}

TimerWheel::Stats TimerWheel::SnapshotStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace tcs
