// Per-thread event counters for the TM runtime and the condition-synchronization
// mechanisms. Counters feed the ablation benchmarks (wakeup precision, waitset
// sizes) and let tests assert behavioral properties (e.g. "a silent store must not
// wake the waiter") instead of timing.
#ifndef TCS_COMMON_STATS_H_
#define TCS_COMMON_STATS_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace tcs {

enum class Counter : int {
  kCommits = 0,
  kReadOnlyCommits,
  kAborts,            // conflict/validation aborts
  kExplicitRestarts,  // Restart mechanism re-executions
  kRetryRestarts,     // first Retry() pass that re-executes to build the waitset
  kDeschedules,       // times a thread published itself and considered sleeping
  kSleeps,            // times a thread actually blocked on its semaphore
  kWakeups,           // semaphore posts issued by wakeWaiters
  kWakeChecks,        // waitfunc evaluations performed by writers
  kFalseWakeups,      // woken but condition still unsatisfied on re-execution
  kHtmFallbacks,      // simulated HTM transitions to serial-irrevocable mode
  kHtmCapacityAborts,
  kHtmConflictAborts,
  kHtmExplicitAborts,
  kCondVarWaits,
  kCondVarSignals,
  kTimestampExtensions,  // eager STM reads salvaged by extending the timestamp
  kHtmPredTableFastPath,  // WaitPred deschedules taken via the 8-bit abort code
  kWaitsetEntries,  // total addr/value pairs logged across deschedules
  kQuiesceCalls,
  kNumCounters,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);

std::string_view CounterName(Counter c);

// Plain per-thread tally; aggregation across threads happens in StatsRegistry.
struct TxStats {
  std::array<std::uint64_t, kNumCounters> counts{};

  void Bump(Counter c, std::uint64_t n = 1) { counts[static_cast<int>(c)] += n; }
  std::uint64_t Get(Counter c) const { return counts[static_cast<int>(c)]; }
  void Reset() { counts.fill(0); }

  void MergeFrom(const TxStats& other) {
    for (int i = 0; i < kNumCounters; ++i) {
      counts[i] += other.counts[i];
    }
  }
};

}  // namespace tcs

#endif  // TCS_COMMON_STATS_H_
