// Per-thread event counters for the TM runtime and the condition-synchronization
// mechanisms. Counters feed the ablation benchmarks (wakeup precision, waitset
// sizes) and let tests assert behavioral properties (e.g. "a silent store must not
// wake the waiter") instead of timing.
#ifndef TCS_COMMON_STATS_H_
#define TCS_COMMON_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace tcs {

enum class Counter : int {
  kCommits = 0,
  kReadOnlyCommits,
  kAborts,            // conflict/validation aborts
  kExplicitRestarts,  // Restart mechanism re-executions
  kRetryRestarts,     // first Retry() pass that re-executes to build the waitset
  kDeschedules,       // times a thread published itself and considered sleeping
  kSleeps,            // times a thread actually blocked on its semaphore
  kWakeups,           // semaphore posts issued by wakeWaiters
  kWakeChecks,        // waitfunc evaluations performed by writers
  kFalseWakeups,      // woken but condition still unsatisfied on re-execution
  kHtmFallbacks,      // simulated HTM transitions to serial-irrevocable mode
  kHtmCapacityAborts,
  kHtmConflictAborts,
  kHtmExplicitAborts,
  kCondVarWaits,
  kCondVarSignals,
  kTimestampExtensions,  // eager STM reads salvaged by extending the timestamp
  kHtmPredTableFastPath,  // WaitPred deschedules taken via the 8-bit abort code
  kWaitsetEntries,  // total addr/value pairs logged across deschedules
  kQuiesceCalls,
  kWaitTimeouts,       // timed waits that expired and returned kTimedOut
  kOrElseFallbacks,    // OrElse branches abandoned for their alternative
  kPartialRollbacks,   // savepoint rollbacks performed by OrElse
  kIndexedDeschedules,  // deschedules registered in the sharded wakeup index
  kGlobalDeschedules,   // deschedules on the index's global fallback list
  kWaitsetPruned,       // duplicate waitset entries dropped before publication
  kOrElseOrecReleases,  // orecs released by an abandoned OrElse branch
  kExtendOnValidation,  // shared TryExtendTimestamp calls from read validation
  kExtendOnOrecRelease,  // shared TryExtendTimestamp calls from orec release
  kExtendOnCommitValidation,  // TryExtendTimestamp calls from commit-time
                              // validation (lazy write-orec acquisition and
                              // read-set revalidation)
  kExtendOnEncounterAcquisition,  // TryExtendTimestamp calls from eager STM's
                                  // encounter-time write-orec acquisition on a
                                  // too-new orec
  kWakeBatches,        // internal wake transactions committed by wakeWaiters
  kWakeChecksBatched,  // wake checks that ran inside a committed wake batch
  kVacuousWakeups,     // conservative empty-waitset posts (no evidence the
                       // waiter was satisfied) — subtract from kWakeups for
                       // wake-precision metrics
  kTraceEvents,        // lifecycle events recorded into per-thread TraceRings
  kTraceDrops,         // ring-overflow overwrites (oldest record lost)
  kCasWakeClaims,      // waiter slots claimed by the lock-free CAS fast path
                       // (no wake transaction at all for these)
  kCasClaimFallbacks,  // fast-path attempts that bailed to the batched wake
                       // transaction (orec contention, mid-registration slot,
                       // serial-mode writer, inconsistent predicate snapshot)
  kWakeTxAborts,       // wake-transaction attempts that aborted and re-ran
                       // (batch lambda executions minus committed batches);
                       // feeds the adaptive-batch EWMA
  kCondVarBatches,     // internal pop transactions committed by TMCondVar
                       // signal/broadcast delivery (each pops up to
                       // wake_batch_size tids)
  kCondVarRingGrowths,  // TMCondVar ring doublings forced by a full ring
                        // (the pre-fix code silently overwrote a parked tid)
  kNumCounters,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);

std::string_view CounterName(Counter c);

// Per-thread tally, but not strictly single-writer: the owning thread bumps,
// while monitors aggregate concurrently and harnesses may Reset() between
// trials. All access is relaxed-atomic; Bump is an RMW so a concurrent
// Reset() cannot be silently undone by a racing load+store.
struct TxStats {
  std::array<std::uint64_t, kNumCounters> counts{};

  void Bump(Counter c, std::uint64_t n = 1) {
    // mo: relaxed — statistics need atomicity (vs. concurrent Reset/readers),
    // not ordering; no other data is published through a counter.
    std::atomic_ref<std::uint64_t>(counts[static_cast<int>(c)])
        .fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Get(Counter c) const {
    // mo: relaxed — monitors tolerate slightly stale tallies; test assertions
    // read after joining the worker threads.
    return std::atomic_ref<const std::uint64_t>(counts[static_cast<int>(c)])
        .load(std::memory_order_relaxed);
  }
  void Reset() {
    // mo: relaxed — harnesses reset between trials while workers are parked;
    // Bump's RMW keeps a racing bump from being silently undone.
    for (int i = 0; i < kNumCounters; ++i) {
      std::atomic_ref<std::uint64_t>(counts[i]).store(0,
                                                      std::memory_order_relaxed);
    }
  }

  void MergeFrom(const TxStats& other) {
    // mo: relaxed — aggregation tolerates in-flight bumps; exact totals are
    // only asserted after joining.
    for (int i = 0; i < kNumCounters; ++i) {
      counts[i] += std::atomic_ref<const std::uint64_t>(other.counts[i])
                       .load(std::memory_order_relaxed);
    }
  }
};

}  // namespace tcs

#endif  // TCS_COMMON_STATS_H_
