// Randomized exponential backoff for transaction restart loops.
#ifndef TCS_COMMON_BACKOFF_H_
#define TCS_COMMON_BACKOFF_H_

#include <cstdint>

#include "src/common/cpu.h"
#include "src/common/random.h"

namespace tcs {

// One instance per restart loop. Pause() spins for a randomized, exponentially
// growing number of iterations and yields beyond a threshold so that conflicting
// transactions on an oversubscribed machine eventually deschedule.
class Backoff {
 public:
  explicit Backoff(std::uint64_t seed) : rng_(seed | 1) {}

  void Pause() {
    std::uint64_t spins = rng_.NextBounded(limit_) + 1;
    if (limit_ < kMaxLimit) {
      limit_ <<= 1;
    }
    if (spins > kYieldThreshold) {
      CpuYield();
      return;
    }
    for (std::uint64_t i = 0; i < spins; ++i) {
      CpuRelax();
    }
  }

  void Reset() { limit_ = kInitialLimit; }

 private:
  static constexpr std::uint64_t kInitialLimit = 32;
  static constexpr std::uint64_t kMaxLimit = 1 << 16;
  static constexpr std::uint64_t kYieldThreshold = 1 << 12;

  SplitMix64 rng_;
  std::uint64_t limit_ = kInitialLimit;
};

}  // namespace tcs

#endif  // TCS_COMMON_BACKOFF_H_
