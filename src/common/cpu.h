// CPU-level helpers for spin loops.
#ifndef TCS_COMMON_CPU_H_
#define TCS_COMMON_CPU_H_

#include <sched.h>

namespace tcs {

// Hint to the CPU that we are in a spin-wait loop (x86 PAUSE when available).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

// Give up the rest of the time slice. Spin loops fall back to this when the
// machine is oversubscribed (the benchmark grids deliberately run more threads
// than cores, as the paper's p8-c8 configurations do).
inline void CpuYield() { sched_yield(); }

}  // namespace tcs

#endif  // TCS_COMMON_CPU_H_
