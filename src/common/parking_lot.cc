#include "src/common/parking_lot.h"

#include <condition_variable>
#include <mutex>

#include "src/common/cache_line.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#endif

namespace tcs {
namespace {

// Bucket count for the pool backend: prime, so spot addresses (which share
// low-bit alignment structure) spread evenly.
constexpr std::size_t kNumBuckets = 251;

}  // namespace

// One hashed bucket of the pool backend. The mutex is held only around the
// cv wait predicate and the poster's empty critical section; it orders
// nothing but the sleep/wake itself (data ordering is carried by the spot's
// state word, same as the futex backend).
struct alignas(kCacheLineBytes) ParkingLot::Bucket {
  std::mutex m;
  std::condition_variable cv;
};

ParkingLot::ParkingLot(Backend backend) {
#if defined(__linux__)
  use_futex_ = (backend != Backend::kPool);
#else
  use_futex_ = false;
  (void)backend;
#endif
  if (!use_futex_) {
    buckets_ = std::make_unique<Bucket[]>(kNumBuckets);
  }
}

ParkingLot::~ParkingLot() = default;

ParkingLot& ParkingLot::Default() {
  static ParkingLot lot(Backend::kAuto);
  return lot;
}

ParkingLot::Bucket& ParkingLot::BucketOf(const ParkSpot& spot) {
  auto a = reinterpret_cast<std::uintptr_t>(&spot);
  // Spots are at least 16-byte objects; drop the dead low bits before the
  // prime modulus so neighbouring spots land in different buckets.
  return buckets_[(a >> 4) % kNumBuckets];
}

void ParkingLot::WaitOn(ParkSpot& spot, std::uint32_t wanted,
                        std::uint32_t observed) {
#if defined(__linux__)
  if (use_futex_) {
    // The kernel re-checks state == observed under its own lock before
    // sleeping, so a token posted between our read and the syscall aborts
    // the wait (EAGAIN) instead of being missed.
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&spot.state),
            FUTEX_WAIT_PRIVATE, observed, nullptr, nullptr, 0);
    return;
  }
#else
  (void)observed;
#endif
  Bucket& b = BucketOf(spot);
  std::unique_lock<std::mutex> lk(b.m);
  b.cv.wait(lk, [&] {
    // mo: acquire — [park-handoff] / [wheel-tick] wait-predicate re-read of
    // the token word under the bucket mutex; pairs with the posting
    // fetch_or so the sleeping side cannot keep waiting after a token is
    // in (the poster's notify happens while holding this mutex). The
    // token-consuming acquire RMW in the caller is the edge's real acquire
    // endpoint; this load only gates the sleep.
    return (spot.state.load(std::memory_order_acquire) & wanted) != 0u;
  });
}

void ParkingLot::WaitOnUntil(ParkSpot& spot, std::uint32_t wanted,
                             std::uint32_t observed,
                             std::chrono::steady_clock::time_point deadline) {
#if defined(__linux__)
  if (use_futex_) {
    // FUTEX_WAIT_BITSET takes an *absolute* timespec; with
    // FUTEX_CLOCK_REALTIME unset it is read against CLOCK_MONOTONIC, which
    // is what libstdc++'s steady_clock is on Linux.
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count();
    if (ns < 0) {
      ns = 0;
    }
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(ns / 1000000000);
    ts.tv_nsec = static_cast<long>(ns % 1000000000);
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&spot.state),
            FUTEX_WAIT_BITSET_PRIVATE, observed, &ts, nullptr,
            FUTEX_BITSET_MATCH_ANY);
    return;
  }
#else
  (void)observed;
#endif
  Bucket& b = BucketOf(spot);
  std::unique_lock<std::mutex> lk(b.m);
  b.cv.wait_until(lk, deadline, [&] {
    // mo: acquire — [park-handoff] wait-predicate re-read under the bucket
    // mutex (see WaitOn); the consuming RMW in ParkUntil is the edge's
    // acquire endpoint.
    return (spot.state.load(std::memory_order_acquire) & wanted) != 0u;
  });
}

void ParkingLot::WakeAll(ParkSpot& spot) {
#if defined(__linux__)
  if (use_futex_) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&spot.state),
            FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
    return;
  }
#endif
  Bucket& b = BucketOf(spot);
  {
    // Empty critical section: excludes the window between a sleeper's
    // predicate check and its cv.wait, so the notify cannot be missed.
    std::lock_guard<std::mutex> lk(b.m);
  }
  b.cv.notify_all();
}

void ParkingLot::Post(ParkSpot& spot) {
  // mo: release — [park-handoff] release endpoint: publishes the wake token
  // after the claim commit and wake-post stamp; the owner's token-consuming
  // acquire RMW (ConsumeToken/ParkEither) pairs with this, making the
  // committed claim visible to the woken waiter.
  spot.state.fetch_or(kWakeToken, std::memory_order_release);
  WakeAll(spot);
}

bool ParkingLot::PostTimeout(ParkSpot& spot, std::uint64_t epoch) {
  // mo: relaxed — epoch staleness filter only; a stale match that slips
  // through (owner re-armed concurrently) just delivers a spurious timeout
  // token, which ParkEither's caller tolerates by re-checking the deadline.
  if (spot.epoch.load(std::memory_order_relaxed) != epoch) {
    return false;
  }
  // mo: release — [wheel-tick] release endpoint: the ticker publishes the
  // timeout token; the owner's token-consuming acquire RMW in ParkEither
  // pairs with it.
  spot.state.fetch_or(kTimeoutToken, std::memory_order_release);
  WakeAll(spot);
  return true;
}

void ParkingLot::ConsumeToken(ParkSpot& spot) {
  for (;;) {
    // mo: acquire — [park-handoff] peek before deciding to consume or sleep;
    // the consuming RMW below is the edge's real acquire endpoint.
    std::uint32_t s = spot.state.load(std::memory_order_acquire);
    if ((s & kWakeToken) != 0u) {
      // Clear a stale timeout token along with the wake token: the timed
      // wait it belonged to is over, and leaving it behind would corrupt
      // the next ParkEither.
      // mo: acquire — [park-handoff] acquire endpoint: consuming the wake
      // token pairs with Post's release fetch_or, so everything the waker
      // did before posting is visible here.
      spot.state.fetch_and(~(kWakeToken | kTimeoutToken),
                           std::memory_order_acquire);
      return;
    }
    WaitOn(spot, kWakeToken, s);
  }
}

bool ParkingLot::ParkEither(ParkSpot& spot) {
  for (;;) {
    // mo: acquire — [park-handoff] peek before deciding to consume or sleep;
    // the consuming RMWs below are the edges' real acquire endpoints.
    std::uint32_t s = spot.state.load(std::memory_order_acquire);
    if ((s & kWakeToken) != 0u) {
      // Wake beats a racing timeout: the claim protocol committed a wakeup
      // for this sleep, so the timeout token (if any) is stale — clear both.
      // mo: acquire — [park-handoff] acquire endpoint (see ConsumeToken).
      spot.state.fetch_and(~(kWakeToken | kTimeoutToken),
                           std::memory_order_acquire);
      return true;
    }
    if ((s & kTimeoutToken) != 0u) {
      // mo: acquire — [wheel-tick] acquire endpoint: consuming the timeout
      // token pairs with PostTimeout's release fetch_or. Only the timeout
      // bit is cleared — a wake token that lands after this read must
      // survive for the caller's timeout/wakeup drain.
      spot.state.fetch_and(~kTimeoutToken, std::memory_order_acquire);
      return false;
    }
    WaitOn(spot, kWakeToken | kTimeoutToken, s);
  }
}

bool ParkingLot::ParkUntil(ParkSpot& spot,
                           std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    // mo: acquire — [park-handoff] peek before deciding to consume or sleep;
    // the consuming RMW below is the edge's real acquire endpoint.
    std::uint32_t s = spot.state.load(std::memory_order_acquire);
    if ((s & kWakeToken) != 0u) {
      // mo: acquire — [park-handoff] acquire endpoint (see ConsumeToken).
      spot.state.fetch_and(~(kWakeToken | kTimeoutToken),
                           std::memory_order_acquire);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // At the deadline, still grab a token that raced in — same edge
      // semantics as Semaphore::WaitUntil's final TryWait, so the caller's
      // timeout/wakeup drain behaves identically on both timed paths.
      // mo: acquire — [park-handoff] acquire endpoint for the raced-in
      // token; pairs with Post's release fetch_or.
      std::uint32_t prev = spot.state.fetch_and(
          ~(kWakeToken | kTimeoutToken), std::memory_order_acquire);
      return (prev & kWakeToken) != 0u;
    }
    WaitOnUntil(spot, kWakeToken, s, deadline);
  }
}

std::uint64_t ParkingLot::ArmTimed(ParkSpot& spot) {
  // mo: relaxed — epoch bump is a staleness filter read relaxed by
  // PostTimeout; delivery correctness never depends on its ordering (a
  // stale fire that slips through is dropped by the deadline re-check).
  std::uint64_t e = spot.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  // mo: relaxed — owner-only cleanup of a stale timeout token from a prior
  // timed wait; producers only ever OR bits in, so no token can be lost,
  // and the owner is the sole reader of the cleared state.
  spot.state.fetch_and(~kTimeoutToken, std::memory_order_relaxed);
  return e;
}

void ParkingLot::Reset(ParkSpot& spot) {
  // mo: relaxed — tid recycling: the registration lock orders this store
  // against both the previous owner's last use and the next owner's first;
  // no concurrent producer can hold a claim on a parked-out descriptor.
  spot.state.store(0, std::memory_order_relaxed);
}

}  // namespace tcs
