#include "src/common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace tcs {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma and ':' follows it
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) {
      out_.push_back(',');
    }
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  if (!has_value_.empty()) {
    if (has_value_.back()) {
      out_.push_back(',');
    }
    has_value_.back() = true;
  }
  AppendEscaped(out_, k);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  Separate();
  AppendEscaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::U64(std::uint64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

bool JsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(out_.data(), 1, out_.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace tcs
