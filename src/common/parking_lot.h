// Pooled parking: the process-level sleep/wake primitive behind Deschedule.
//
// The paper parks each descheduled thread on a private POSIX semaphore. That
// is one kernel object (plus one sem_t cache line) per waiter — invisible at
// the paper's four threads, dominant at the capacity tier's 10^5–10^6 parked
// waiters. A ParkingLot replaces the per-slot semaphore with a per-slot
// *word*: each waiter owns a ParkSpot (two words embedded in its TxDesc), and
// the lot blocks/wakes threads on that word through a shared facility —
// futex(2) on Linux, where the kernel needs no per-waiter object at all, or a
// small hashed pool of mutex+condvar buckets keyed by spot address elsewhere.
// Per-waiter kernel cost drops to ~0 and memory-per-waiter becomes a bounded,
// measurable number (see TmSystem::SnapshotMetrics "condsync").
//
// Token protocol. A spot's state word carries two token bits:
//
//   kWakeToken    — posted by a claiming waker (ParkingLot::Post), exactly
//                   once per committed claim (the transactional asleep 1→0
//                   admits one waker per sleep; deschedule.cc).
//   kTimeoutToken — posted by the TimerWheel when a timed wait's deadline
//                   tick fires (ParkingLot::PostTimeout).
//
// The spot's owner is the only consumer. ConsumeToken blocks until the wake
// token is present; ParkEither blocks until either token is present and
// reports which (preferring the wake token when both raced in — a claimed
// wakeup must win over a simultaneous timeout, or the claim would be
// half-consumed). Timed-wait cancellation is epoch-based and lazy: the waiter
// bumps the spot's epoch (ArmTimed) before each timed sleep, and a wheel fire
// carrying a stale epoch is dropped by PostTimeout — the wheel never has to
// search-and-delete cancelled entries (timer_wheel.h).
//
// Ordering: Post's release fetch_or pairs with the consumer's acquire clear —
// the [park-handoff] edge (glossary in wake_index.h) — so everything the
// claiming waker did before posting (the committed claim, the wake-post
// stamp) is visible to the woken waiter. PostTimeout's release/acquire pair
// is the [wheel-tick] edge. The blocking facility underneath (futex or the
// bucket mutex) only adds sleep/wake; it carries no data on its own, which is
// what lets both backends share one protocol with zero seq_cst.
#ifndef TCS_COMMON_PARKING_LOT_H_
#define TCS_COMMON_PARKING_LOT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace tcs {

// One waiter's parking place: a token word plus the timed-wait epoch. Embed
// one per thread (TxDesc::park); the owning thread is the only consumer, the
// claiming waker and the timer wheel are the only producers.
struct ParkSpot {
  std::atomic<std::uint32_t> state{0};
  // Timed-wait generation, bumped by ArmTimed before each timed sleep; a
  // TimerWheel entry fires only if its captured epoch still matches
  // (lazy cancellation — see PostTimeout).
  std::atomic<std::uint64_t> epoch{0};
};

class ParkingLot {
 public:
  static constexpr std::uint32_t kWakeToken = 1u << 0;
  static constexpr std::uint32_t kTimeoutToken = 1u << 1;

  // Backend selection (TmConfig::park_backend uses the same numbering):
  // kAuto picks futex where available (Linux), else the mutex+condvar pool.
  enum class Backend : int { kAuto = 0, kFutex = 1, kPool = 2 };

  explicit ParkingLot(Backend backend = Backend::kAuto);
  // Out of line: ~unique_ptr<Bucket[]> needs the complete Bucket type.
  ~ParkingLot();

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  // Process-wide lot for standalone users with no owning TmSystem (the
  // Retry-Orig registry constructed directly by unit tests).
  static ParkingLot& Default();

  // True when futex backs this lot (bench reporting; pool otherwise).
  bool UsesFutex() const { return use_futex_; }

  // Producer side. Post delivers the wake token (exactly once per committed
  // claim — the caller's protocol, not ours). PostTimeout delivers the
  // timeout token iff `epoch` still matches the spot's current epoch; returns
  // false when the fire was stale (the wait it belonged to already ended).
  void Post(ParkSpot& spot);
  bool PostTimeout(ParkSpot& spot, std::uint64_t epoch);

  // Consumer side (spot owner only). ConsumeToken blocks until the wake token
  // is present and clears it (a stale timeout token is cleared with it — the
  // timed wait it belonged to is over). ParkEither blocks until either token
  // is present: true = wake token consumed, false = timeout token consumed.
  void ConsumeToken(ParkSpot& spot);
  bool ParkEither(ParkSpot& spot);

  // Wheel-less timed park (TmConfig::timer_wheel = false ablation): blocks
  // until the wake token or `deadline`. Mirrors Semaphore::WaitUntil's edge
  // semantics — at the deadline a token that already raced in is still
  // consumed (returns true), so the caller's timeout/wakeup drain sees the
  // same outcomes on both timed paths.
  bool ParkUntil(ParkSpot& spot,
                 std::chrono::steady_clock::time_point deadline);

  // Arms a timed wait: bumps the epoch (invalidating every wheel entry
  // scheduled for earlier waits on this spot) and clears any stale timeout
  // token. Returns the new epoch to schedule the wheel entry under. Owner
  // only, before parking.
  std::uint64_t ArmTimed(ParkSpot& spot);

  // Clears both tokens (descriptor recycling: a fresh thread adopting a tid
  // must not inherit its predecessor's consumed-slot state). The caller
  // orders this against all prior use of the spot (registration lock).
  void Reset(ParkSpot& spot);

 private:
  struct Bucket;

  // Blocks until `spot.state & wanted` is nonzero (may also return early —
  // callers loop). `observed` is the state value the caller just read with
  // none of the wanted bits set.
  void WaitOn(ParkSpot& spot, std::uint32_t wanted, std::uint32_t observed);
  // Timed variant; returns once a wanted bit is set or the deadline passed.
  void WaitOnUntil(ParkSpot& spot, std::uint32_t wanted, std::uint32_t observed,
                   std::chrono::steady_clock::time_point deadline);
  void WakeAll(ParkSpot& spot);
  Bucket& BucketOf(const ParkSpot& spot);

  bool use_futex_;
  // Hashed mutex+condvar buckets, allocated only for the pool backend.
  std::unique_ptr<Bucket[]> buckets_;
};

}  // namespace tcs

#endif  // TCS_COMMON_PARKING_LOT_H_
