// Test-and-test-and-set spin lock with yield fallback.
//
// Used only on slow paths (the simulated HTM's serial-irrevocable mode and the
// Retry-Orig global waiting lock from Algorithm 1). Yields after a bounded spin so
// that oversubscribed configurations (more threads than cores) make progress.
#ifndef TCS_COMMON_SPIN_LOCK_H_
#define TCS_COMMON_SPIN_LOCK_H_

#include <atomic>

#include "src/common/cpu.h"

namespace tcs {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    int spins = 0;
    for (;;) {
      // mo: acquire — pairs with Unlock's release store, so the critical
      // section sees everything the previous holder wrote.
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // mo: relaxed — polling only; the acquiring exchange above provides the
      // ordering once the lock looks free.
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinLimit) {
          CpuRelax();
        } else {
          CpuYield();
          spins = 0;
        }
      }
    }
  }

  // mo: acquire — same pairing as Lock's exchange.
  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  // mo: release — publishes the critical section to the next Lock/TryLock
  // acquire exchange.
  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 128;
  std::atomic<bool> locked_{false};
};

// RAII guard, analogous to std::lock_guard.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace tcs

#endif  // TCS_COMMON_SPIN_LOCK_H_
