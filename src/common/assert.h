// Lightweight always-on invariant checks for the tcsync runtime.
//
// TCS_CHECK is enabled in all build types: a violated runtime invariant in a TM
// implementation silently corrupts user data, so the cost of the branch is always
// worth it on the paths where we use it (slow paths, commit-time validation
// plumbing). TCS_DCHECK compiles away outside debug builds and may be used on
// per-access fast paths.
#ifndef TCS_COMMON_ASSERT_H_
#define TCS_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

#define TCS_CHECK(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "TCS_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define TCS_CHECK_MSG(cond, msg)                                                     \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "TCS_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,       \
                   __FILE__, __LINE__);                                              \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#ifndef NDEBUG
#define TCS_DCHECK(cond) TCS_CHECK(cond)
#else
#define TCS_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // TCS_COMMON_ASSERT_H_
