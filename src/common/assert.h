// Lightweight invariant checks for the tcsync runtime.
//
// Two tiers, by path cost:
//
//  * TCS_CHECK / TCS_CHECK_MSG — enabled in ALL build types. A violated
//    runtime invariant in a TM implementation silently corrupts user data, so
//    the branch is always worth it on the paths where these are used: slow
//    paths (serial fallback, OrElse partial rollback, condvar signal plumbing)
//    and commit-time validation plumbing. If an invariant guards in-place data
//    mutation or lock release, it belongs in this tier — see the promoted
//    checks in eager_stm.cc / lazy_stm.cc / sim_htm.cc PartialRollback.
//
//  * TCS_DCHECK / TCS_DCHECK_MSG — debug-only, allowed on per-access fast
//    paths (transactional Read/Write entry, sub-word splicing). Compiled away
//    unless one of the following enables it:
//      - !NDEBUG             (Debug / RelWithDebInfo-without-NDEBUG builds)
//      - TCS_FORCE_DCHECKS   (opt-in for release-mode soak runs)
//      - TCS_PROTOCOL_CHECKS (a protocol-checked build is a correctness run;
//                             disabled DCHECKs there would hide exactly the
//                             local invariants whose protocol-level shadows
//                             the checker verifies)
//    The disabled form still compiles (but never evaluates) the condition, so
//    a DCHECK-only variable does not become an unused-variable warning and
//    bit-rotted conditions fail the build in every configuration.
//
// Hot-path files tagged `lint:hot-path` additionally ban TCS_DCHECK inside
// loops (tools/lint_tm_discipline.py): a Debug-only check in a per-access loop
// distorts Debug timing enough to mask interleavings, which is when DCHECK
// coverage is most needed.
#ifndef TCS_COMMON_ASSERT_H_
#define TCS_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

#define TCS_CHECK(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "TCS_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define TCS_CHECK_MSG(cond, msg)                                                     \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "TCS_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,       \
                   __FILE__, __LINE__);                                              \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#if !defined(NDEBUG) || defined(TCS_FORCE_DCHECKS) || TCS_PROTOCOL_CHECKS
#define TCS_DCHECK(cond) TCS_CHECK(cond)
#define TCS_DCHECK_MSG(cond, msg) TCS_CHECK_MSG(cond, msg)
#else
#define TCS_DCHECK(cond) \
  do {                   \
    if (false) {         \
      (void)(cond);      \
    }                    \
  } while (0)
#define TCS_DCHECK_MSG(cond, msg) \
  do {                            \
    if (false) {                  \
      (void)(cond);               \
      (void)(msg);                \
    }                             \
  } while (0)
#endif

#endif  // TCS_COMMON_ASSERT_H_
