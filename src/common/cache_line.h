// Cache-line geometry shared by the TM substrates and the padded per-thread tables.
#ifndef TCS_COMMON_CACHE_LINE_H_
#define TCS_COMMON_CACHE_LINE_H_

#include <cstddef>
#include <cstdint>

namespace tcs {

inline constexpr std::size_t kCacheLineBytes = 64;

// Identifier of the cache line containing `addr`. The simulated HTM detects
// conflicts at this granularity, like real best-effort HTM.
inline std::uintptr_t CacheLineOf(const void* addr) {
  return reinterpret_cast<std::uintptr_t>(addr) / kCacheLineBytes;
}

}  // namespace tcs

#endif  // TCS_COMMON_CACHE_LINE_H_
