// Small deterministic PRNGs for workload generation and randomized backoff.
// Workloads need reproducible streams that are cheap enough to call inside
// measured regions; std::mt19937 is too heavy for that.
#ifndef TCS_COMMON_RANDOM_H_
#define TCS_COMMON_RANDOM_H_

#include <cstdint>

namespace tcs {

// SplitMix64: tiny, statistically solid, and seedable from any 64-bit value.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t NextBounded(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace tcs

#endif  // TCS_COMMON_RANDOM_H_
