// mini-x264: the H.264 encoder's synchronization skeleton.
//
// Original structure: one thread per in-flight frame; motion estimation for a
// macroblock row of frame f may only start once frame f-1 has encoded two rows
// further down (the reference area must exist). One unique condition-
// synchronization point: the inter-frame row-progress dependency wait.
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/ticket_gate.h"

namespace tcs {
namespace {

constexpr int kFramesPerScale = 12;
constexpr std::uint64_t kRows = 24;
constexpr int kEncodeRounds = 120;
constexpr std::uint64_t kRefLead = 2;  // rows of lead required in the reference frame

// The shared output bitstream: encoded-bit digest plus row count, one typed
// transactional cell whose two words commit as a unit. Mutex-protected under
// kPthreads.
struct Bitstream {
  std::uint64_t bits;
  std::uint64_t rows_encoded;
};

}  // namespace

AppResult RunX264(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int frames = kFramesPerScale * cfg.scale;

  // Per-frame row-progress gates. gates[f] publishes how many rows of frame f
  // are encoded; the encoder of frame f+1 waits on it.
  std::vector<std::unique_ptr<TicketGate>> gates;
  gates.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    gates.push_back(std::make_unique<TicketGate>(rt.get(), cfg.mech));
  }
  SharedCell<Bitstream> bitstream(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> encoders;
  for (int w = 0; w < cfg.threads; ++w) {
    encoders.emplace_back([&, w] {
      // Frames are assigned round-robin to encoder threads.
      for (int f = w; f < frames; f += cfg.threads) {
        for (std::uint64_t r = 0; r < kRows; ++r) {
          if (f > 0) {
            // [sync: row_dependency_gate] the reference rows must exist.
            std::uint64_t need = r + kRefLead < kRows ? r + kRefLead : kRows;
            gates[static_cast<std::size_t>(f) - 1]->WaitFor(need);
          }
          std::uint64_t row_bits =
              BusyWork(cfg.seed + static_cast<std::uint64_t>(f) * kRows + r,
                       kEncodeRounds);
          bitstream.Update([&](Bitstream& b) {
            b.bits += row_bits;
            b.rows_encoded += 1;
          });
          gates[static_cast<std::size_t>(f)]->Bump();
        }
      }
    });
  }
  for (auto& e : encoders) {
    e.join();
  }
  double t1 = NowSeconds();
  Bitstream final_bs = bitstream.UnsafeRead();  // encoders joined: quiescent
  TCS_CHECK_MSG(final_bs.rows_encoded ==
                    static_cast<std::uint64_t>(frames) * kRows,
                "x264 end-state invariant: every macroblock row encoded once");
  return {final_bs.bits, t1 - t0};
}

}  // namespace tcs
