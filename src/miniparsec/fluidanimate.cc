// mini-fluidanimate: the SPH fluid simulator's synchronization skeleton.
//
// Original structure: statically partitioned cells, with every timestep split
// into barriered phases (density, forces, advance, rebin). Four unique
// condition-synchronization points: the four barrier crossings per timestep.
#include <memory>
#include <thread>
#include <vector>

#include "src/miniparsec/app_common.h"
#include "src/sync/phase_barrier.h"

namespace tcs {
namespace {

constexpr int kStepsPerScale = 10;
constexpr std::uint64_t kCells = 256;
constexpr int kPhaseRounds = 80;

// Per-phase energy totals, held in one typed transactional cell (TVar<T>
// spreads the struct across three backing words; a transactional update
// commits them as a unit). Under kPthreads the same cell is mutex-protected.
struct EnergyTotals {
  std::uint64_t density;
  std::uint64_t forces;
  std::uint64_t moved;
};

}  // namespace

AppResult RunFluidanimate(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int steps = kStepsPerScale * cfg.scale;
  const int workers_n = cfg.threads;

  PhaseBarrier density_barrier(rt.get(), cfg.mech, workers_n);  // [sync: density_barrier]
  PhaseBarrier force_barrier(rt.get(), cfg.mech, workers_n);    // [sync: force_barrier]
  PhaseBarrier advance_barrier(rt.get(), cfg.mech, workers_n);  // [sync: advance_barrier]
  PhaseBarrier rebin_barrier(rt.get(), cfg.mech, workers_n);    // [sync: rebin_barrier]
  SharedCell<EnergyTotals> energy(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < workers_n; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t lo = static_cast<std::uint64_t>(w) * kCells /
                         static_cast<std::uint64_t>(workers_n);
      std::uint64_t hi = static_cast<std::uint64_t>(w + 1) * kCells /
                         static_cast<std::uint64_t>(workers_n);
      for (int s = 0; s < steps; ++s) {
        std::uint64_t step_seed = cfg.seed + static_cast<std::uint64_t>(s) * kCells;
        std::uint64_t densities = 0;
        for (std::uint64_t c = lo; c < hi; ++c) {
          densities += BusyWork(step_seed + c, kPhaseRounds);
        }
        density_barrier.ArriveAndWait();
        std::uint64_t forces = 0;
        for (std::uint64_t c = lo; c < hi; ++c) {
          forces += BusyWork(step_seed + c + 1, kPhaseRounds);
        }
        force_barrier.ArriveAndWait();
        std::uint64_t moved = 0;
        for (std::uint64_t c = lo; c < hi; ++c) {
          // Per-cell work only: the checksum is a sum over cells, so it is
          // independent of how cells are partitioned across workers.
          moved += BusyWork(step_seed + 2 * kCells + c, kPhaseRounds / 2);
        }
        advance_barrier.ArriveAndWait();
        energy.Update([&](EnergyTotals& t) {
          t.density += densities;
          t.forces += forces;
          t.moved += moved;
        });
        rebin_barrier.ArriveAndWait();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  double t1 = NowSeconds();
  EnergyTotals total = energy.UnsafeRead();  // workers joined: quiescent
  return {total.density + total.forces + total.moved, t1 - t0};
}

}  // namespace tcs
