#include "src/miniparsec/app_common.h"

#include <chrono>

#include "src/common/assert.h"

namespace tcs {

std::uint64_t BusyWork(std::uint64_t seed, int rounds) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < rounds; ++i) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
  }
  return z;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const std::vector<AppInfo>& MiniParsecApps() {
  static const auto* apps = new std::vector<AppInfo>{
      {"bodytrack",
       {{"model_ready_gate", SyncKind::kGate},
        {"task_pop", SyncKind::kQueuePop},
        {"task_push", SyncKind::kQueuePush},
        {"frame_done_gate", SyncKind::kGate},
        {"pool_shutdown", SyncKind::kQueuePop}},
       &RunBodytrack},
      {"dedup",
       {{"chunk_to_compress", SyncKind::kQueuePop},
        {"compress_to_write", SyncKind::kQueuePop},
        {"ordered_output_gate", SyncKind::kGate}},
       &RunDedup},
      {"facesim",
       {{"partition_pop", SyncKind::kQueuePop},
        {"partition_push", SyncKind::kQueuePush},
        {"solve_barrier_a", SyncKind::kBarrier},
        {"solve_barrier_b", SyncKind::kBarrier},
        {"residual_gate", SyncKind::kGate},
        {"frame_gate", SyncKind::kGate},
        {"done_gate", SyncKind::kGate}},
       &RunFacesim},
      {"ferret",
       {{"segment_to_extract", SyncKind::kQueuePop},
        {"extract_to_rank", SyncKind::kQueuePop}},
       &RunFerret},
      {"fluidanimate",
       {{"density_barrier", SyncKind::kBarrier},
        {"force_barrier", SyncKind::kBarrier},
        {"advance_barrier", SyncKind::kBarrier},
        {"rebin_barrier", SyncKind::kBarrier}},
       &RunFluidanimate},
      {"raytrace",
       {{"tile_pop", SyncKind::kQueuePop},
        {"tile_push", SyncKind::kQueuePush},
        {"frame_done_gate", SyncKind::kGate}},
       &RunRaytrace},
      {"streamcluster",
       {{"assign_barrier", SyncKind::kBarrier},
        {"update_barrier", SyncKind::kBarrier},
        {"evaluate_barrier", SyncKind::kBarrier},
        {"open_center_gate", SyncKind::kGate},
        {"result_gate", SyncKind::kGate}},
       &RunStreamcluster},
      {"x264",
       {{"row_dependency_gate", SyncKind::kGate}},
       &RunX264},
  };
  return *apps;
}

AppResult RunMiniParsecApp(const std::string& name, const AppConfig& cfg) {
  for (const AppInfo& app : MiniParsecApps()) {
    if (name == app.name) {
      return app.run(cfg);
    }
  }
  TCS_CHECK_MSG(false, "unknown mini-PARSEC app");
  return {};
}

}  // namespace tcs
