// mini-streamcluster: the online-clustering kernel's synchronization skeleton.
//
// Original structure: statically partitioned points, with each clustering round
// split into barriered phases (assign, update, evaluate) and a master thread
// that decides whether to open a new center and publishes results. Five unique
// condition-synchronization points: the three barriers, the open-center gate,
// and the result gate.
#include <memory>
#include <thread>
#include <vector>

#include "src/miniparsec/app_common.h"
#include "src/sync/phase_barrier.h"
#include "src/sync/ticket_gate.h"

namespace tcs {
namespace {

constexpr int kRoundsPerScale = 8;
constexpr std::uint64_t kPoints = 256;
constexpr int kPhaseRounds = 70;

// Per-phase clustering cost, one typed transactional cell (TVar<T> backs the
// struct with three words committed as a unit); mutex-protected under
// kPthreads.
struct RoundCost {
  std::uint64_t assign;
  std::uint64_t update;
  std::uint64_t evaluate;
};

}  // namespace

AppResult RunStreamcluster(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int rounds = kRoundsPerScale * cfg.scale;
  const int workers_n = cfg.threads;
  const auto wn = static_cast<std::uint64_t>(workers_n);

  PhaseBarrier assign_barrier(rt.get(), cfg.mech, workers_n);    // [sync: assign_barrier]
  PhaseBarrier update_barrier(rt.get(), cfg.mech, workers_n);    // [sync: update_barrier]
  PhaseBarrier evaluate_barrier(rt.get(), cfg.mech, workers_n);  // [sync: evaluate_barrier]
  TicketGate center_open(rt.get(), cfg.mech);  // [sync: open_center_gate]
  TicketGate result_ready(rt.get(), cfg.mech);  // [sync: result_gate]
  SharedCell<RoundCost> cost(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < workers_n; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t lo = static_cast<std::uint64_t>(w) * kPoints / wn;
      std::uint64_t hi = static_cast<std::uint64_t>(w + 1) * kPoints / wn;
      for (int r = 0; r < rounds; ++r) {
        // The coordinator decides the round's candidate center; workers wait
        // for the decision before assigning points to it. This also keeps a
        // round's cost updates from racing the coordinator's read of the
        // previous round's result.
        center_open.WaitFor(static_cast<std::uint64_t>(r) + 1);
        std::uint64_t round_seed =
            cfg.seed + static_cast<std::uint64_t>(r) * 3 * kPoints;
        std::uint64_t assign_cost = 0;
        for (std::uint64_t p = lo; p < hi; ++p) {
          assign_cost += BusyWork(round_seed + p, kPhaseRounds);
        }
        assign_barrier.ArriveAndWait();
        std::uint64_t update_cost = 0;
        for (std::uint64_t p = lo; p < hi; ++p) {
          update_cost += BusyWork(round_seed + kPoints + p, kPhaseRounds);
        }
        update_barrier.ArriveAndWait();
        std::uint64_t eval_cost = 0;
        for (std::uint64_t p = lo; p < hi; ++p) {
          eval_cost += BusyWork(round_seed + 2 * kPoints + p, kPhaseRounds / 2);
        }
        cost.Update([&](RoundCost& c) {
          c.assign += assign_cost;
          c.update += update_cost;
          c.evaluate += eval_cost;
        });
        evaluate_barrier.ArriveAndWait();
        if (w == 0) {
          result_ready.Bump();
        }
      }
    });
  }
  std::uint64_t checksum = 0;
  for (int r = 0; r < rounds; ++r) {
    center_open.Publish(static_cast<std::uint64_t>(r) + 1);
    result_ready.WaitFor(static_cast<std::uint64_t>(r) + 1);
    RoundCost c = cost.Snapshot();
    checksum ^= BusyWork(c.assign + c.update + c.evaluate +
                             static_cast<std::uint64_t>(r),
                         4);
  }
  for (auto& w : workers) {
    w.join();
  }
  double t1 = NowSeconds();
  return {checksum, t1 - t0};
}

}  // namespace tcs
