// mini-bodytrack: the particle-filter body tracker's synchronization skeleton.
//
// Original structure: a persistent worker pool evaluates particle likelihoods for
// each video frame; the main thread distributes per-frame task batches and blocks
// until the batch completes. Five unique condition-synchronization points: the
// model-ready gate at startup, task-queue pop/push, the per-frame completion
// gate, and pool shutdown.
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/ticket_gate.h"
#include "src/sync/work_queue.h"

namespace tcs {
namespace {

constexpr int kFramesPerScale = 6;
constexpr std::uint64_t kTasksPerFrame = 32;
constexpr int kWorkRounds = 400;

// The tracker's shared particle-weight table, held in one typed transactional
// cell: both fields commit as a unit (TVar<T> spreads the struct across two
// backing words), so a reader can never observe a weight total whose particle
// count is stale. Mutex-protected under kPthreads.
struct TrackerState {
  std::uint64_t weight_total;
  std::uint64_t particles_done;
};

}  // namespace

AppResult RunBodytrack(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int frames = kFramesPerScale * cfg.scale;

  WorkQueue tasks(rt.get(), cfg.mech, 16);        // [sync: task_push / task_pop]
  TicketGate model_ready(rt.get(), cfg.mech);     // [sync: model_ready_gate]
  TicketGate frame_done(rt.get(), cfg.mech);        // [sync: frame_done_gate]
  SharedCell<TrackerState> tracker(rt.get(), cfg.mech);  // the transactionalized CS

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < cfg.threads; ++w) {
    workers.emplace_back([&] {
      model_ready.WaitFor(1);
      // [sync: pool_shutdown] — Pop returns nullopt when the queue closes.
      while (auto task = tasks.Pop()) {
        std::uint64_t weight = BusyWork(cfg.seed + *task, kWorkRounds);
        tracker.Update([&](TrackerState& t) {
          t.weight_total += weight;
          t.particles_done += 1;
        });
        frame_done.Bump();
      }
    });
  }

  // "Load the body model", then open the pool.
  std::uint64_t model = BusyWork(cfg.seed, kWorkRounds * 4);
  model_ready.Publish(1);

  std::uint64_t checksum = model;
  for (int f = 0; f < frames; ++f) {
    for (std::uint64_t t = 0; t < kTasksPerFrame; ++t) {
      tasks.Push(static_cast<std::uint64_t>(f) * kTasksPerFrame + t);
    }
    // Block until every particle of this frame is weighted.
    frame_done.WaitFor(static_cast<std::uint64_t>(f + 1) * kTasksPerFrame);
    checksum ^= BusyWork(tracker.Snapshot().weight_total +
                             static_cast<std::uint64_t>(f),
                         8);
  }
  tasks.Close();
  for (auto& w : workers) {
    w.join();
  }
  double t1 = NowSeconds();
  TrackerState final_state = tracker.UnsafeRead();  // workers joined: quiescent
  TCS_CHECK_MSG(final_state.particles_done ==
                    static_cast<std::uint64_t>(frames) * kTasksPerFrame,
                "bodytrack end-state invariant: every particle weighted once");
  checksum += final_state.weight_total;
  return {checksum, t1 - t0};
}

}  // namespace tcs
