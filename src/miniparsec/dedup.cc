// mini-dedup: the deduplicating-compression pipeline's synchronization skeleton.
//
// Original structure: chunking → compression → ordered output, with bounded
// queues between stages and an ordering constraint at the writer. Three unique
// condition-synchronization points: the chunk→compress queue, the ordered-output
// turn gate, and the compress→write queue.
//
// Note: the paper observes dedup performs I/O inside critical sections, which
// forbids concurrency under TM (§2.4.2); the mini app models the I/O as serial
// busy-work inside the ordered-output turn, reproducing the serialization.
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/pipeline_channel.h"
#include "src/sync/ticket_gate.h"

namespace tcs {
namespace {

constexpr std::uint64_t kChunksPerScale = 192;
constexpr int kCompressRounds = 500;
constexpr int kWriteRounds = 60;

// The compress stage's shared chunk index — the analog of dedup's hash table
// of seen chunks, the critical section the TM port transactionalizes. One
// typed cell: the chunk count and the payload digest commit together, so a
// torn view (count without digest) is impossible on any backend.
struct ChunkIndex {
  std::uint64_t chunks_compressed;
  std::uint64_t payload_digest;
};

}  // namespace

AppResult RunDedup(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const std::uint64_t chunks = kChunksPerScale * static_cast<std::uint64_t>(cfg.scale);
  const int compressors = cfg.threads;

  PipelineChannel to_compress(rt.get(), cfg.mech, 16, 1);  // [sync: chunk_to_compress]
  PipelineChannel to_write(rt.get(), cfg.mech, 16, compressors);  // [sync: compress_to_write]
  TicketGate order(rt.get(), cfg.mech);  // [sync: ordered_output_gate]
  SharedCell<ChunkIndex> index(rt.get(), cfg.mech);
  std::vector<std::uint64_t> compressed(chunks, 0);

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < compressors; ++w) {
    workers.emplace_back([&] {
      while (auto id = to_compress.Pop()) {
        compressed[*id] = BusyWork(cfg.seed + *id, kCompressRounds);
        index.Update([&](ChunkIndex& ix) {
          ix.chunks_compressed += 1;
          ix.payload_digest += compressed[*id];
        });
        // Deduplicated chunks enter the output stream strictly in input order:
        // wait for our turn, then hand the chunk downstream and open the next.
        order.WaitFor(*id);
        to_write.Push(*id);
        order.Bump();
      }
      to_write.ProducerDone();
    });
  }
  std::uint64_t checksum = 0;
  std::thread writer([&] {
    while (auto id = to_write.Pop()) {
      // Simulated serial output I/O.
      checksum = BusyWork(checksum ^ compressed[*id], kWriteRounds);
    }
  });
  for (std::uint64_t id = 0; id < chunks; ++id) {
    to_compress.Push(id);
  }
  to_compress.ProducerDone();
  for (auto& w : workers) {
    w.join();
  }
  writer.join();
  double t1 = NowSeconds();
  ChunkIndex final_ix = index.UnsafeRead();  // workers joined: quiescent
  TCS_CHECK_MSG(final_ix.chunks_compressed == chunks,
                "dedup end-state invariant: every chunk compressed once");
  std::uint64_t digest = 0;
  for (std::uint64_t c : compressed) {
    digest += c;
  }
  TCS_CHECK_MSG(final_ix.payload_digest == digest,
                "dedup end-state invariant: index digest matches the chunks");
  return {checksum, t1 - t0};
}

}  // namespace tcs
