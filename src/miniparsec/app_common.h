// Mini-PARSEC: synthetic kernels reproducing the threading and condition-
// synchronization structure of the eight PARSEC benchmarks that use condition
// variables (§2.4.2). See DESIGN.md "Substitutions" for why this preserves the
// evaluation's behavior: the PARSEC results are about synchronization skeletons
// (pipelines, task pools, barriers, dependency waits) and wakeup traffic, not
// about the numerics of body tracking or video encoding.
//
// Every app:
//  * is parameterized by mechanism, backend, and thread count;
//  * does deterministic busy-work whose checksum is independent of scheduling,
//    mechanism, and thread count — tests validate cross-mechanism agreement;
//  * mirrors the original benchmark's count of unique condition-synchronization
//    points (Table 2.1's parenthesized numbers).
#ifndef TCS_MINIPARSEC_APP_COMMON_H_
#define TCS_MINIPARSEC_APP_COMMON_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {

struct AppConfig {
  Mechanism mech = Mechanism::kPthreads;
  Backend backend = Backend::kEagerStm;
  int threads = 2;
  // Workload multiplier: 1 = test-sized; benchmarks sweep larger values.
  int scale = 1;
  std::uint64_t seed = 42;
};

struct AppResult {
  std::uint64_t checksum = 0;
  double seconds = 0.0;
};

// Which adapter implements each synchronization point; the Table 2.1 harness
// derives per-mechanism line counts from these.
enum class SyncKind : int {
  kQueuePop = 0,     // WorkQueue / PipelineChannel empty-wait
  kQueuePush,        // full-wait
  kBarrier,          // PhaseBarrier crossing
  kGate,             // TicketGate dependency wait
  kNumKinds,
};

struct SyncPointInfo {
  const char* name;
  SyncKind kind;
};

struct AppInfo {
  const char* name;
  std::vector<SyncPointInfo> sync_points;
  AppResult (*run)(const AppConfig&);
};

// The eight apps in the paper's order: bodytrack, dedup, facesim, ferret,
// fluidanimate, raytrace, streamcluster, x264.
const std::vector<AppInfo>& MiniParsecApps();

// Runs app `name`; aborts if unknown.
AppResult RunMiniParsecApp(const std::string& name, const AppConfig& cfg);

AppResult RunBodytrack(const AppConfig& cfg);
AppResult RunDedup(const AppConfig& cfg);
AppResult RunFacesim(const AppConfig& cfg);
AppResult RunFerret(const AppConfig& cfg);
AppResult RunFluidanimate(const AppConfig& cfg);
AppResult RunRaytrace(const AppConfig& cfg);
AppResult RunStreamcluster(const AppConfig& cfg);
AppResult RunX264(const AppConfig& cfg);

// --- shared pieces ---

// Deterministic compute kernel: `rounds` iterations of integer mixing.
std::uint64_t BusyWork(std::uint64_t seed, int rounds);

// Order-insensitive shared accumulator: the transactionalized critical section
// the PARSEC ports replace locks with. Under kPthreads it is a mutex-protected
// counter; under TM mechanisms it is a transactional word.
class SharedAccumulator {
 public:
  SharedAccumulator(Runtime* rt, Mechanism mech) : rt_(rt), mech_(mech) {}

  void Add(std::uint64_t v);
  std::uint64_t Get();

 private:
  Runtime* rt_;
  Mechanism mech_;
  std::uint64_t value_ = 0;
  std::mutex mu_;
};

// Wall-clock helper.
double NowSeconds();

}  // namespace tcs

#endif  // TCS_MINIPARSEC_APP_COMMON_H_
