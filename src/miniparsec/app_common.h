// Mini-PARSEC: synthetic kernels reproducing the threading and condition-
// synchronization structure of the eight PARSEC benchmarks that use condition
// variables (§2.4.2). See DESIGN.md "Substitutions" for why this preserves the
// evaluation's behavior: the PARSEC results are about synchronization skeletons
// (pipelines, task pools, barriers, dependency waits) and wakeup traffic, not
// about the numerics of body tracking or video encoding.
//
// Every app:
//  * is parameterized by mechanism, backend, and thread count;
//  * does deterministic busy-work whose checksum is independent of scheduling,
//    mechanism, and thread count — tests validate cross-mechanism agreement;
//  * mirrors the original benchmark's count of unique condition-synchronization
//    points (Table 2.1's parenthesized numbers).
#ifndef TCS_MINIPARSEC_APP_COMMON_H_
#define TCS_MINIPARSEC_APP_COMMON_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/mechanism.h"
#include "src/core/runtime.h"
#include "src/core/transaction.h"

namespace tcs {

struct AppConfig {
  Mechanism mech = Mechanism::kPthreads;
  Backend backend = Backend::kEagerStm;
  int threads = 2;
  // Workload multiplier: 1 = test-sized; benchmarks sweep larger values.
  int scale = 1;
  std::uint64_t seed = 42;
};

struct AppResult {
  std::uint64_t checksum = 0;
  double seconds = 0.0;
};

// Which adapter implements each synchronization point; the Table 2.1 harness
// derives per-mechanism line counts from these.
enum class SyncKind : int {
  kQueuePop = 0,     // WorkQueue / PipelineChannel empty-wait
  kQueuePush,        // full-wait
  kBarrier,          // PhaseBarrier crossing
  kGate,             // TicketGate dependency wait
  kNumKinds,
};

struct SyncPointInfo {
  const char* name;
  SyncKind kind;
};

struct AppInfo {
  const char* name;
  std::vector<SyncPointInfo> sync_points;
  AppResult (*run)(const AppConfig&);
};

// The eight apps in the paper's order: bodytrack, dedup, facesim, ferret,
// fluidanimate, raytrace, streamcluster, x264.
const std::vector<AppInfo>& MiniParsecApps();

// Runs app `name`; aborts if unknown.
AppResult RunMiniParsecApp(const std::string& name, const AppConfig& cfg);

AppResult RunBodytrack(const AppConfig& cfg);
AppResult RunDedup(const AppConfig& cfg);
AppResult RunFacesim(const AppConfig& cfg);
AppResult RunFerret(const AppConfig& cfg);
AppResult RunFluidanimate(const AppConfig& cfg);
AppResult RunRaytrace(const AppConfig& cfg);
AppResult RunStreamcluster(const AppConfig& cfg);
AppResult RunX264(const AppConfig& cfg);

// --- shared pieces ---

// Deterministic compute kernel: `rounds` iterations of integer mixing.
std::uint64_t BusyWork(std::uint64_t seed, int rounds);

// A shared typed cell updated under the run's mechanism: the transactionalized
// critical section the PARSEC ports replace locks with. Under kPthreads the
// cell is mutex-protected; under TM mechanisms it is a typed transactional
// cell (TVar<T>) whose words commit as a unit. Every app declares its shared
// state as an app-specific struct held in one of these — multi-word, typed,
// and updated atomically — and the raw word-level Load/Store shim that
// early ports used is gone from this layer entirely (the library builds
// without TCS_ENABLE_RAW_TX_SHIM, so an app cannot regress onto it).
template <typename T>
class SharedCell {
 public:
  SharedCell(Runtime* rt, Mechanism mech) : rt_(rt), mech_(mech) {}

  // Applies `fn(T&)` atomically.
  template <typename Fn>
  void Update(Fn&& fn) {
    if (mech_ == Mechanism::kPthreads) {
      std::lock_guard<std::mutex> g(mu_);
      T t = cell_.UnsafeRead();
      fn(t);
      cell_.UnsafeWrite(t);
      return;
    }
    Atomically(rt_->sys(), [&](Tx& tx) {
      T t = tx.Load(cell_);
      fn(t);
      tx.Store(cell_, t);
    });
  }

  // Atomic read of the whole cell.
  T Snapshot() {
    if (mech_ == Mechanism::kPthreads) {
      std::lock_guard<std::mutex> g(mu_);
      return cell_.UnsafeRead();
    }
    return Atomically(rt_->sys(), [&](Tx& tx) { return tx.Load(cell_); });
  }

  // Quiescent read (workers joined).
  T UnsafeRead() const { return cell_.UnsafeRead(); }

 private:
  Runtime* rt_;
  Mechanism mech_;
  TVar<T> cell_;
  std::mutex mu_;
};

// Wall-clock helper.
double NowSeconds();

}  // namespace tcs

#endif  // TCS_MINIPARSEC_APP_COMMON_H_
