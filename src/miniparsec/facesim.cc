// mini-facesim: the face-simulation solver's synchronization skeleton.
//
// Original structure: per frame, an iterative two-phase solver over statically
// partitioned mesh nodes (barrier between phases), a reduction the master
// consumes, and a small dynamically-scheduled fixup pass between frames. Seven
// unique condition-synchronization points: the frame gate, the two solve
// barriers, the residual gate, fixup-task pop/push, and the fixup-done gate.
//
// Dynamic task pops never sit upstream of a barrier crossing: a worker that
// grabbed two tasks while another got none would otherwise strand the barrier
// (the "parties" of a barrier must arrive exactly once per phase). The solver
// phases therefore use static partitioning, and the dynamic queue is confined to
// the between-frames fixup pass where exactly one task per worker is issued.
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/phase_barrier.h"
#include "src/sync/ticket_gate.h"
#include "src/sync/work_queue.h"

namespace tcs {
namespace {

constexpr int kFramesPerScale = 3;
constexpr int kIterations = 4;
constexpr std::uint64_t kItems = 256;  // mesh nodes, fixed so checksums are stable
constexpr int kPhaseRounds = 60;

// The solver's shared reduction state: the residual from the barriered solve,
// the fixup-pass digest, and the fixup-task count, in one typed transactional
// cell (three backing words committed as a unit). Workers updating different
// fields contend on the same cell — exactly the multi-field critical section
// the face solver's reduction serializes.
struct SolverTotals {
  std::uint64_t residual;
  std::uint64_t fixup_digest;
  std::uint64_t fixups_done;
};

}  // namespace

AppResult RunFacesim(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int frames = kFramesPerScale * cfg.scale;
  const int workers_n = cfg.threads;
  const auto wn = static_cast<std::uint64_t>(workers_n);

  WorkQueue fixups(rt.get(), cfg.mech, 4);        // [sync: partition_push/pop]
  PhaseBarrier barrier_a(rt.get(), cfg.mech, workers_n);  // [sync: solve_barrier_a]
  PhaseBarrier barrier_b(rt.get(), cfg.mech, workers_n);  // [sync: solve_barrier_b]
  TicketGate residual_done(rt.get(), cfg.mech);   // [sync: residual_gate]
  TicketGate frame_open(rt.get(), cfg.mech);      // [sync: frame_gate]
  TicketGate fixup_done(rt.get(), cfg.mech);      // [sync: done_gate]
  SharedCell<SolverTotals> solver(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < workers_n; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t lo = static_cast<std::uint64_t>(w) * kItems / wn;
      std::uint64_t hi = static_cast<std::uint64_t>(w + 1) * kItems / wn;
      for (int f = 0; f < frames; ++f) {
        frame_open.WaitFor(static_cast<std::uint64_t>(f) + 1);
        std::uint64_t frame_seed =
            cfg.seed + static_cast<std::uint64_t>(f) * 3 * kItems;
        std::uint64_t partial = 0;
        for (int it = 0; it < kIterations; ++it) {
          std::uint64_t it_seed = frame_seed + static_cast<std::uint64_t>(it);
          for (std::uint64_t i = lo; i < hi; ++i) {
            partial += BusyWork(it_seed + i, kPhaseRounds);
          }
          barrier_a.ArriveAndWait();
          for (std::uint64_t i = lo; i < hi; ++i) {
            partial += BusyWork(it_seed + kItems + i, kPhaseRounds / 2);
          }
          barrier_b.ArriveAndWait();
        }
        solver.Update([&](SolverTotals& t) { t.residual += partial; });
        residual_done.Bump();
        // Fixup pass: exactly one dynamically scheduled task per worker. Each
        // task covers a fixed slice of items so the frame's total fixup work is
        // independent of the worker count.
        auto task = fixups.Pop();
        if (task.has_value()) {
          std::uint64_t flo = *task * kItems / wn;
          std::uint64_t fhi = (*task + 1) * kItems / wn;
          std::uint64_t sum = 0;
          for (std::uint64_t i = flo; i < fhi; ++i) {
            sum += BusyWork(frame_seed + 2 * kItems + i, kPhaseRounds / 4);
          }
          solver.Update([&](SolverTotals& t) {
            t.fixup_digest += sum;
            t.fixups_done += 1;
          });
          fixup_done.Bump();
        }
      }
    });
  }

  std::uint64_t checksum = 0;
  for (int f = 0; f < frames; ++f) {
    frame_open.Publish(static_cast<std::uint64_t>(f) + 1);
    residual_done.WaitFor(static_cast<std::uint64_t>(f + 1) * wn);
    checksum ^= BusyWork(solver.Snapshot().residual +
                             static_cast<std::uint64_t>(f),
                         4);
    for (std::uint64_t p = 0; p < wn; ++p) {
      fixups.Push(p);
    }
    fixup_done.WaitFor(static_cast<std::uint64_t>(f + 1) * wn);
    checksum ^= BusyWork(solver.Snapshot().fixup_digest +
                             static_cast<std::uint64_t>(f),
                         4);
  }
  fixups.Close();
  for (auto& w : workers) {
    w.join();
  }
  double t1 = NowSeconds();
  SolverTotals final_totals = solver.UnsafeRead();  // workers joined: quiescent
  TCS_CHECK_MSG(final_totals.fixups_done ==
                    static_cast<std::uint64_t>(frames) * wn,
                "facesim end-state invariant: one fixup task per worker per frame");
  return {checksum, t1 - t0};
}

}  // namespace tcs
