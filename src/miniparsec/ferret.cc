// mini-ferret: the content-similarity-search pipeline's synchronization skeleton.
//
// Original structure: a multi-stage pipeline (segment → extract → index → rank)
// with bounded queues between stages. Two unique condition-synchronization
// points: the two inter-stage queues (segment→extract and extract→rank).
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/pipeline_channel.h"

namespace tcs {
namespace {

constexpr std::uint64_t kQueriesPerScale = 160;
constexpr int kExtractRounds = 350;
constexpr int kRankRounds = 350;

// The shared ranking table the last pipeline stage updates — ferret's top-k
// result list, the critical section its TM port transactionalizes. One typed
// cell: rank digest and ranked-query count commit as a unit.
struct RankTable {
  std::uint64_t rank_sum;
  std::uint64_t queries_ranked;
};

}  // namespace

AppResult RunFerret(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const std::uint64_t queries =
      kQueriesPerScale * static_cast<std::uint64_t>(cfg.scale);
  const int extractors = cfg.threads > 1 ? cfg.threads / 2 : 1;
  const int rankers = cfg.threads > 1 ? cfg.threads - extractors : 1;

  PipelineChannel to_extract(rt.get(), cfg.mech, 16, 1);  // [sync: segment_to_extract]
  PipelineChannel to_rank(rt.get(), cfg.mech, 16, extractors);  // [sync: extract_to_rank]
  SharedCell<RankTable> ranks(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> threads;
  for (int w = 0; w < extractors; ++w) {
    threads.emplace_back([&] {
      while (auto q = to_extract.Pop()) {
        // Feature extraction is a pure function of the query id, so the handoff
        // can carry the feature itself.
        std::uint64_t feature = BusyWork(cfg.seed + *q, kExtractRounds);
        to_rank.Push(feature);
      }
      to_rank.ProducerDone();
    });
  }
  for (int w = 0; w < rankers; ++w) {
    threads.emplace_back([&] {
      while (auto feature = to_rank.Pop()) {
        std::uint64_t rank = BusyWork(*feature, kRankRounds);
        ranks.Update([&](RankTable& t) {
          t.rank_sum += rank;
          t.queries_ranked += 1;
        });
      }
    });
  }
  for (std::uint64_t q = 0; q < queries; ++q) {
    to_extract.Push(q);
  }
  to_extract.ProducerDone();
  for (auto& t : threads) {
    t.join();
  }
  double t1 = NowSeconds();
  RankTable final_table = ranks.UnsafeRead();  // workers joined: quiescent
  TCS_CHECK_MSG(final_table.queries_ranked == queries,
                "ferret end-state invariant: every query ranked once");
  return {final_table.rank_sum, t1 - t0};
}

}  // namespace tcs
