// mini-raytrace: the real-time raytracer's synchronization skeleton.
//
// Original structure: per frame, screen tiles go into a dynamic task queue; a
// worker pool renders tiles; the main thread blocks until the frame's tiles are
// done before issuing the next frame (camera update). Three unique condition-
// synchronization points: tile pop, tile push, and the frame-done gate.
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.h"
#include "src/miniparsec/app_common.h"
#include "src/sync/ticket_gate.h"
#include "src/sync/work_queue.h"

namespace tcs {
namespace {

constexpr int kFramesPerScale = 5;
constexpr std::uint64_t kTilesPerFrame = 48;
constexpr int kRenderRounds = 350;

// The accumulated frame buffer: pixel digest plus tiles-rendered count, one
// typed cell whose words commit as a unit, so the camera-update read can never
// see a digest from one tile set and a count from another. Mutex-protected
// under kPthreads.
struct FrameBuffer {
  std::uint64_t pixel_digest;
  std::uint64_t tiles_rendered;
};

}  // namespace

AppResult RunRaytrace(const AppConfig& cfg) {
  std::unique_ptr<Runtime> rt;
  if (MechanismUsesTm(cfg.mech)) {
    TmConfig tm;
    tm.backend = cfg.backend;
    tm.max_threads = cfg.threads + 8;
    rt = std::make_unique<Runtime>(tm);
  }
  const int frames = kFramesPerScale * cfg.scale;

  WorkQueue tiles(rt.get(), cfg.mech, 8);       // [sync: tile_push / tile_pop]
  TicketGate frame_done(rt.get(), cfg.mech);    // [sync: frame_done_gate]
  SharedCell<FrameBuffer> image(rt.get(), cfg.mech);

  double t0 = NowSeconds();
  std::vector<std::thread> workers;
  for (int w = 0; w < cfg.threads; ++w) {
    workers.emplace_back([&] {
      while (auto tile = tiles.Pop()) {
        std::uint64_t pixels = BusyWork(cfg.seed + *tile, kRenderRounds);
        image.Update([&](FrameBuffer& fb) {
          fb.pixel_digest += pixels;
          fb.tiles_rendered += 1;
        });
        frame_done.Bump();
      }
    });
  }
  std::uint64_t checksum = 0;
  for (int f = 0; f < frames; ++f) {
    for (std::uint64_t t = 0; t < kTilesPerFrame; ++t) {
      tiles.Push(static_cast<std::uint64_t>(f) * kTilesPerFrame + t);
    }
    frame_done.WaitFor(static_cast<std::uint64_t>(f + 1) * kTilesPerFrame);
    // Camera update consumes the finished frame.
    checksum ^= BusyWork(image.Snapshot().pixel_digest +
                             static_cast<std::uint64_t>(f),
                         8);
  }
  tiles.Close();
  for (auto& w : workers) {
    w.join();
  }
  double t1 = NowSeconds();
  FrameBuffer final_fb = image.UnsafeRead();  // workers joined: quiescent
  TCS_CHECK_MSG(final_fb.tiles_rendered ==
                    static_cast<std::uint64_t>(frames) * kTilesPerFrame,
                "raytrace end-state invariant: every tile rendered once");
  return {checksum, t1 - t0};
}

}  // namespace tcs
