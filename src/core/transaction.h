// The public transactional programming surface: the Tx handle passed to
// transaction bodies, and the Atomically() execution loop.
//
// A body may execute any number of times (conflict aborts, Retry re-executions,
// deschedule wakeups), so it must be side-effect-free except through Tx operations
// — the standard TM programming model. Re-invoking the body lambda plays the role
// of the paper's checkpoint restore.
#ifndef TCS_CORE_TRANSACTION_H_
#define TCS_CORE_TRANSACTION_H_

#include <cstring>
#include <initializer_list>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/common/assert.h"
#include "src/condsync/tm_condvar.h"
#include "src/tm/tm_system.h"
#include "src/tm/tx_exceptions.h"

namespace tcs {

class Tx {
 public:
  explicit Tx(TmSystem& sys) : sys_(sys) {}

  // --- transactional data access ---
  // T must be trivially copyable, at most word-sized, and must not straddle an
  // aligned 8-byte boundary. Sub-word accesses are spliced into the containing
  // word, which is how word-granular STMs handle them.
  template <typename T>
  T Load(const T& src) const {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&src);
    if constexpr (sizeof(T) == sizeof(TmWord)) {
      TCS_DCHECK(a % sizeof(TmWord) == 0);
      TmWord w = sys_.Read(reinterpret_cast<const TmWord*>(a));
      T out;
      std::memcpy(&out, &w, sizeof(T));
      return out;
    } else {
      std::uintptr_t base = a & ~(sizeof(TmWord) - 1);
      std::size_t off = a - base;
      TCS_DCHECK(off + sizeof(T) <= sizeof(TmWord));
      TmWord w = sys_.Read(reinterpret_cast<const TmWord*>(base));
      T out;
      std::memcpy(&out, reinterpret_cast<const char*>(&w) + off, sizeof(T));
      return out;
    }
  }

  template <typename T>
  void Store(T& dst, T val) const {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&dst);
    if constexpr (sizeof(T) == sizeof(TmWord)) {
      TCS_DCHECK(a % sizeof(TmWord) == 0);
      TmWord w;
      std::memcpy(&w, &val, sizeof(T));
      sys_.Write(reinterpret_cast<TmWord*>(a), w);
    } else {
      std::uintptr_t base = a & ~(sizeof(TmWord) - 1);
      std::size_t off = a - base;
      TCS_DCHECK(off + sizeof(T) <= sizeof(TmWord));
      TmWord w = sys_.Read(reinterpret_cast<TmWord*>(base));
      std::memcpy(reinterpret_cast<char*>(&w) + off, &val, sizeof(T));
      sys_.Write(reinterpret_cast<TmWord*>(base), w);
    }
  }

  // --- transactional allocation ---
  void* AllocBytes(std::size_t n) const { return sys_.TxAlloc(n); }
  void FreeBytes(void* p) const { sys_.TxFree(p); }

  // --- condition synchronization ---
  [[noreturn]] void Retry() const { sys_.Retry(); }

  // Await on the words containing the given variables (Algorithm 6).
  template <typename... Ts>
  [[noreturn]] void Await(const Ts&... vars) const {
    const TmWord* addrs[] = {WordAddrOf(vars)...};
    sys_.Await(addrs, sizeof...(Ts));
  }

  [[noreturn]] void WaitPred(WaitPredFn fn, const WaitArgs& args) const {
    sys_.WaitPred(fn, args);
  }

  [[noreturn]] void RetryOrig() const { sys_.RetryOrig(); }
  [[noreturn]] void RestartNow() const { sys_.RestartNow(); }

  // --- transactional condition variables (baseline) ---
  [[noreturn]] void CondWait(TmCondVar& cv) const { cv.Wait(sys_); }
  void CondSignal(TmCondVar& cv) const { cv.Signal(sys_); }
  void CondBroadcast(TmCondVar& cv) const { cv.Broadcast(sys_); }

  TmSystem& sys() const { return sys_; }

 private:
  template <typename T>
  static constexpr void CheckType() {
    static_assert(std::is_trivially_copyable_v<T>, "transactional data must be POD");
    static_assert(sizeof(T) <= sizeof(TmWord), "word-granularity TM: sizeof(T) <= 8");
  }

  template <typename T>
  static const TmWord* WordAddrOf(const T& var) {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&var);
    return reinterpret_cast<const TmWord*>(a & ~(sizeof(TmWord) - 1));
  }

  TmSystem& sys_;
};

// Runs `body` (callable taking Tx&) as a transaction, re-executing it until it
// commits. Nested calls run flat (subsumption nesting, Appendix A): the inner body
// executes inline inside the enclosing transaction, so an inner Retry unrolls the
// outermost transaction — the composability property of §1.2.
template <typename Body>
auto Atomically(TmSystem& sys, Body&& body) {
  using R = std::invoke_result_t<Body&, Tx&>;
  Tx tx(sys);
  if (sys.InTx()) {
    return body(tx);
  }
  if constexpr (std::is_void_v<R>) {
    for (;;) {
      sys.Begin();
      try {
        body(tx);
        sys.Commit();
        return;
      } catch (const TxRestart&) {
        sys.OnRestart();
      }
    }
  } else {
    for (;;) {
      sys.Begin();
      try {
        R result = body(tx);
        sys.Commit();
        return result;
      } catch (const TxRestart&) {
        sys.OnRestart();
      }
    }
  }
}

}  // namespace tcs

#endif  // TCS_CORE_TRANSACTION_H_
