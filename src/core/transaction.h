// The public transactional programming surface: the Tx handle passed to
// transaction bodies, and the Atomically() execution loop.
//
// lint:hot-path — per-access TM fast path: TCS_DCHECK must not appear inside
// loops here (tools/lint_tm_discipline.py); use TCS_CHECK on slow paths.
//
// A body may execute any number of times (conflict aborts, Retry re-executions,
// deschedule wakeups), so it must be side-effect-free except through Tx operations
// — the standard TM programming model. Re-invoking the body lambda plays the role
// of the paper's checkpoint restore.
//
// Data access comes in two layers:
//  * TVar<T> (core/tvar.h) — the typed surface: any trivially-copyable T,
//    stored in word-aligned cells the library owns, no size restriction. This
//    is the only surface the library, the sync adapters, the mini-PARSEC apps,
//    the benchmarks, and the examples use.
//  * raw Load/Store on plain lvalues — the original word-granularity shim.
//    Compiled out unless TCS_ENABLE_RAW_TX_SHIM is defined, which only the
//    word-granularity TM tests do (they probe orec mapping and sub-word
//    splicing directly). Application code cannot regress onto it: the library
//    itself builds without the define.
//
// Composition:
//  * tx.OrElse(b1, b2) — run b1; if it Retry()s, roll its speculative writes
//    back and run b2; if both retry, the transaction descheds on the union of
//    both branches' read sets (composable choice, §1.2 / composable STM).
//  * tx.RetryFor/AwaitFor/WaitPredFor — bounded waits returning
//    WaitResult::kTimedOut once the (restart-spanning) deadline expires.
#ifndef TCS_CORE_TRANSACTION_H_
#define TCS_CORE_TRANSACTION_H_

#include <array>
#include <chrono>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <source_location>
#include <type_traits>
#include <utility>

#include "src/common/assert.h"
#include "src/condsync/tm_condvar.h"
#include "src/core/tvar.h"
#include "src/tm/tm_system.h"
#include "src/tm/tx_exceptions.h"

namespace tcs {

class Tx {
 public:
  explicit Tx(TmSystem& sys) : sys_(sys) {}

  // --- transactional data access: TVar<T> (preferred) ---
  template <typename T>
  T Load(const TVar<T>& var) const {
    std::array<TmWord, TVar<T>::kWords> img;
    for (std::size_t i = 0; i < TVar<T>::kWords; ++i) {
      img[i] = sys_.Read(var.word(i));
    }
    return TVar<T>::Decode(img);
  }

  template <typename T>
  void Store(TVar<T>& var, const T& val) const {
    const std::array<TmWord, TVar<T>::kWords> img = TVar<T>::Encode(val);
    for (std::size_t i = 0; i < TVar<T>::kWords; ++i) {
      sys_.Write(var.word_mut(i), img[i]);
    }
  }

#if defined(TCS_ENABLE_RAW_TX_SHIM)
  // --- transactional data access: raw lvalues (test-only shim) ---
  // T must be trivially copyable, at most word-sized, and must not straddle an
  // aligned 8-byte boundary. Sub-word accesses are spliced into the containing
  // word, which is how word-granular STMs handle them. TVar<T> lifts all three
  // restrictions and is the only surface available without the define.
  template <typename T>
    requires(!kIsTVar<T>)
  T Load(const T& src) const {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&src);
    if constexpr (sizeof(T) == sizeof(TmWord)) {
      TCS_DCHECK(a % sizeof(TmWord) == 0);
      TmWord w = sys_.Read(reinterpret_cast<const TmWord*>(a));
      T out;
      std::memcpy(&out, &w, sizeof(T));
      return out;
    } else {
      std::uintptr_t base = a & ~(sizeof(TmWord) - 1);
      std::size_t off = a - base;
      TCS_DCHECK(off + sizeof(T) <= sizeof(TmWord));
      TmWord w = sys_.Read(reinterpret_cast<const TmWord*>(base));
      T out;
      std::memcpy(&out, reinterpret_cast<const char*>(&w) + off, sizeof(T));
      return out;
    }
  }

  template <typename T>
    requires(!kIsTVar<T>)
  void Store(T& dst, T val) const {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&dst);
    if constexpr (sizeof(T) == sizeof(TmWord)) {
      TCS_DCHECK(a % sizeof(TmWord) == 0);
      TmWord w;
      std::memcpy(&w, &val, sizeof(T));
      sys_.Write(reinterpret_cast<TmWord*>(a), w);
    } else {
      std::uintptr_t base = a & ~(sizeof(TmWord) - 1);
      std::size_t off = a - base;
      TCS_DCHECK(off + sizeof(T) <= sizeof(TmWord));
      TmWord w = sys_.Read(reinterpret_cast<TmWord*>(base));
      std::memcpy(reinterpret_cast<char*>(&w) + off, &val, sizeof(T));
      sys_.Write(reinterpret_cast<TmWord*>(base), w);
    }
  }
#endif  // TCS_ENABLE_RAW_TX_SHIM

  // --- transactional allocation ---
  void* AllocBytes(std::size_t n) const { return sys_.TxAlloc(n); }
  void FreeBytes(void* p) const { sys_.TxFree(p); }

  // --- condition synchronization ---
  // Inside an OrElse branch that still has an alternative, Retry() transfers
  // control to that alternative instead of descheduling (see OrElse below).
  [[noreturn]] void Retry() const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    sys_.Retry();
  }

#if defined(TCS_ENABLE_RAW_TX_SHIM)
  // Await on the words containing the given variables (Algorithm 6). Like
  // Retry, an Await inside an OrElse branch with an alternative pending
  // transfers to the alternative instead of descheduling — every wait style
  // composes uniformly under OrElse.
  template <typename... Ts>
    requires(!kIsTVar<Ts> && ...)
  [[noreturn]] void Await(const Ts&... vars) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    const TmWord* addrs[] = {WordAddrOf(vars)...};
    sys_.Await(addrs, sizeof...(Ts));
  }
#endif  // TCS_ENABLE_RAW_TX_SHIM

  // Await on every backing word of the given TVars.
  template <typename... Ts>
  [[noreturn]] void Await(const TVar<Ts>&... vars) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    constexpr std::size_t kN = (TVar<Ts>::kWords + ... + 0);
    static_assert(kN > 0, "Await needs at least one variable");
    const TmWord* addrs[kN];
    std::size_t i = 0;
    (AppendWords(vars, addrs, i), ...);
    sys_.Await(addrs, kN);
  }

  [[noreturn]] void WaitPred(WaitPredFn fn, const WaitArgs& args) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    sys_.WaitPred(fn, args);
  }

  // --- bounded waits ---
  // Wait like Retry/Await/WaitPred, but give up after `timeout` of total
  // elapsed time. On expiry the call returns WaitResult::kTimedOut from a
  // fresh execution of the body, which stays live and committable — the idiom:
  //
  //   auto got = Atomically(sys, [&](Tx& tx) -> std::optional<V> {
  //     if (tx.Load(count) == 0) {
  //       if (tx.RetryFor(100ms) == WaitResult::kTimedOut) return std::nullopt;
  //     }
  //     return TakeOne(tx);
  //   });
  //
  // A satisfied wait never returns (the wakeup restarts the body), and
  // RetryFor(kNoTimeout) is exactly Retry(). Inside an OrElse branch with an
  // alternative pending, a bounded retry also transfers to the alternative.
  // Each call site gets its own deadline (keyed by source location here, by
  // address set for AwaitFor): the deadline spans the transaction's restarts,
  // but a later, different wait in the same transaction starts a fresh clock.
  WaitResult RetryFor(
      std::chrono::nanoseconds timeout,
      std::source_location loc = std::source_location::current()) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    return sys_.RetryFor(timeout, WaitKeyOf(loc));
  }

#if defined(TCS_ENABLE_RAW_TX_SHIM)
  template <typename... Ts>
    requires(!kIsTVar<Ts> && ...)
  WaitResult AwaitFor(std::chrono::nanoseconds timeout, const Ts&... vars) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    const TmWord* addrs[] = {WordAddrOf(vars)...};
    return sys_.AwaitFor(addrs, sizeof...(Ts), timeout);
  }
#endif  // TCS_ENABLE_RAW_TX_SHIM

  template <typename... Ts>
  WaitResult AwaitFor(std::chrono::nanoseconds timeout,
                      const TVar<Ts>&... vars) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    constexpr std::size_t kN = (TVar<Ts>::kWords + ... + 0);
    static_assert(kN > 0, "AwaitFor needs at least one variable");
    const TmWord* addrs[kN];
    std::size_t i = 0;
    (AppendWords(vars, addrs, i), ...);
    return sys_.AwaitFor(addrs, kN, timeout);
  }

  WaitResult WaitPredFor(
      WaitPredFn fn, const WaitArgs& args, std::chrono::nanoseconds timeout,
      std::source_location loc = std::source_location::current()) const {
    if (sys_.OrElseAltPending()) {
      throw TxRetrySignal{};
    }
    return sys_.WaitPredFor(fn, args, timeout, WaitKeyOf(loc));
  }

  // --- composable choice (orElse) ---
  // Runs `body1` (a callable taking Tx&). If it completes, its result is the
  // result of the whole OrElse. If it waits — Retry(), Await(), WaitPred(),
  // or any of their timed variants — its speculative writes
  // (and transactional allocations) are rolled back to the savepoint taken
  // here and `body2` runs against the restored state. If body2 also retries
  // (with no further alternative), the transaction descheds normally — and
  // because the retry waitset keeps entries across the partial rollback, the
  // thread wakes on a write to *either* branch's read set, the composed-choice
  // guarantee of composable STM. Nests: in OrElse(a, OrElse-free b) inside
  // OrElse(x, y), retries cascade innermost-first.
  template <typename B1, typename B2>
  auto OrElse(B1&& body1, B2&& body2) const {
    using R = std::invoke_result_t<B1&, Tx&>;
    static_assert(std::is_same_v<R, std::invoke_result_t<B2&, Tx&>>,
                  "OrElse branches must return the same type");
    Tx tx(sys_);
    const TxSavepoint sp = sys_.TakeSavepoint();
    sys_.EnterOrElse();
    try {
      if constexpr (std::is_void_v<R>) {
        body1(tx);
        sys_.ExitOrElse();
        return;
      } else {
        R result = body1(tx);
        sys_.ExitOrElse();
        return result;
      }
    } catch (const TxRetrySignal&) {
      sys_.ExitOrElse();
      sys_.OnOrElseFallback();
      sys_.RollbackToSavepoint(sp);
      return body2(tx);
    }
  }

  [[noreturn]] void RetryOrig() const { sys_.RetryOrig(); }
  [[noreturn]] void RestartNow() const { sys_.RestartNow(); }

  // --- transactional condition variables (baseline) ---
  [[noreturn]] void CondWait(TmCondVar& cv) const { cv.Wait(sys_); }
  void CondSignal(TmCondVar& cv) const { cv.Signal(sys_); }
  void CondBroadcast(TmCondVar& cv) const { cv.Broadcast(sys_); }

  TmSystem& sys() const { return sys_; }

 private:
  static std::uint64_t WaitKeyOf(const std::source_location& loc) {
    return reinterpret_cast<std::uintptr_t>(loc.file_name()) ^
           (static_cast<std::uint64_t>(loc.line()) << 20) ^
           (static_cast<std::uint64_t>(loc.column()) << 1) ^ 1;
  }

#if defined(TCS_ENABLE_RAW_TX_SHIM)
  template <typename T>
  static constexpr void CheckType() {
    static_assert(std::is_trivially_copyable_v<T>, "transactional data must be POD");
    static_assert(sizeof(T) <= sizeof(TmWord),
                  "word-granularity raw access: sizeof(T) <= 8 — use TVar<T> "
                  "for larger types");
  }

  template <typename T>
  static const TmWord* WordAddrOf(const T& var) {
    CheckType<T>();
    auto a = reinterpret_cast<std::uintptr_t>(&var);
    return reinterpret_cast<const TmWord*>(a & ~(sizeof(TmWord) - 1));
  }
#endif  // TCS_ENABLE_RAW_TX_SHIM

  template <typename T>
  static void AppendWords(const TVar<T>& v, const TmWord** out, std::size_t& i) {
    for (std::size_t w = 0; w < TVar<T>::kWords; ++w) {
      out[i++] = v.word(w);
    }
  }

  TmSystem& sys_;
};

// Runs `body` (callable taking Tx&) as a transaction, re-executing it until it
// commits. Nested calls run flat (subsumption nesting, Appendix A): the inner body
// executes inline inside the enclosing transaction, so an inner Retry unrolls the
// outermost transaction — the composability property of §1.2.
template <typename Body>
auto Atomically(TmSystem& sys, Body&& body) {
  using R = std::invoke_result_t<Body&, Tx&>;
  Tx tx(sys);
  if (sys.InTx()) {
    return body(tx);
  }
  if constexpr (std::is_void_v<R>) {
    for (;;) {
      sys.Begin();
      try {
        body(tx);
        sys.Commit();
        return;
      } catch (const TxRestart&) {
        sys.OnRestart();
      }
    }
  } else {
    for (;;) {
      sys.Begin();
      try {
        R result = body(tx);
        sys.Commit();
        return result;
      } catch (const TxRestart&) {
        sys.OnRestart();
      }
    }
  }
}

// Convenience: Atomically(sys, b1 `orElse` b2).
template <typename B1, typename B2>
auto AtomicallyOrElse(TmSystem& sys, B1&& body1, B2&& body2) {
  return Atomically(sys, [&](Tx& tx) { return tx.OrElse(body1, body2); });
}

}  // namespace tcs

#endif  // TCS_CORE_TRANSACTION_H_
