// TVar<T>: a typed transactional cell.
//
// The raw Tx::Load/Store surface exposes the TM's word granularity directly:
// values must be trivially copyable, at most 8 bytes, and must not straddle an
// aligned word boundary — constraints the *user* has to prove about memory the
// user owns. TVar<T> removes all three by owning the storage itself: any
// trivially-copyable T is held in a word-aligned array of ceil(sizeof(T)/8)
// TmWords, and transactional access splits the value across those words under
// the hood. Multi-word reads are consistent because every word read validates
// against the transaction's start time (opacity), and multi-word writes commit
// or roll back as a unit like any other transactional write set.
//
//   tcs::TVar<Order> pending;                 // any trivially-copyable struct
//   tcs::Atomically(rt.sys(), [&](tcs::Tx& tx) {
//     Order o = tx.Load(pending);
//     o.fills++;
//     tx.Store(pending, o);
//   });
//
// Padding bytes are always written as zero, so waitset value comparisons on
// the final word are deterministic (a silent re-store of an equal T stays
// silent, and never wakes a Retry waiter).
#ifndef TCS_CORE_TVAR_H_
#define TCS_CORE_TVAR_H_

#include <array>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "src/tm/word.h"

namespace tcs {

template <typename T>
class TVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "TVar<T> requires a trivially-copyable T");

 public:
  // Number of TmWords backing one T.
  static constexpr std::size_t kWords =
      (sizeof(T) + sizeof(TmWord) - 1) / sizeof(TmWord);

  TVar() : TVar(T{}) {}
  explicit TVar(const T& init) { UnsafeWrite(init); }

  TVar(const TVar&) = delete;
  TVar& operator=(const TVar&) = delete;

  // Non-transactional access, for single-threaded setup/teardown and reporting
  // only — never while transactions on other threads may touch this cell.
  T UnsafeRead() const {
    T out;
    std::memcpy(&out, words_.data(), sizeof(T));
    return out;
  }

  void UnsafeWrite(const T& v) { words_ = Encode(v); }

  // Address of the i-th backing word, for Await address lists and WaitPred
  // predicates (which read through TmSystem::Read at word granularity).
  const TmWord* word(std::size_t i = 0) const { return &words_[i]; }
  TmWord* word_mut(std::size_t i = 0) { return &words_[i]; }

  // Encodes `v` into a zero-padded word image (the representation stored by
  // transactional Stores). T's own padding bytes (internal and trailing) hold
  // indeterminate garbage in the source object; they must be zeroed here, or a
  // re-store of an equal value would change the backing words — waking Retry
  // waiters spuriously and breaking the value-based waitset's silent-store
  // immunity.
  static std::array<TmWord, kWords> Encode(const T& v) {
    std::array<TmWord, kWords> out{};
    T tmp = v;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_clear_padding(&tmp);
#endif
    std::memcpy(out.data(), &tmp, sizeof(T));
    return out;
  }

  static T Decode(const std::array<TmWord, kWords>& words) {
    T out;
    std::memcpy(&out, words.data(), sizeof(T));
    return out;
  }

 private:
  alignas(alignof(T) > alignof(TmWord) ? alignof(T) : alignof(TmWord))
      std::array<TmWord, kWords> words_;
};

// Trait used by Tx to keep the test-only raw Load/Store shim overloads
// (TCS_ENABLE_RAW_TX_SHIM) from swallowing TVar arguments.
template <typename T>
struct IsTVar : std::false_type {};
template <typename T>
struct IsTVar<TVar<T>> : std::true_type {};
template <typename T>
inline constexpr bool kIsTVar = IsTVar<std::remove_cv_t<T>>::value;

}  // namespace tcs

#endif  // TCS_CORE_TVAR_H_
