// tcs::Runtime — the top-level owner of one TM domain.
//
// Quickstart:
//
//   tcs::Runtime rt({.backend = tcs::Backend::kEagerStm});
//   tcs::Atomically(rt.sys(), [&](tcs::Tx& tx) {
//     if (tx.Load(count) == 0) { tx.Retry(); }
//     tx.Store(count, tx.Load(count) - 1);
//   });
#ifndef TCS_CORE_RUNTIME_H_
#define TCS_CORE_RUNTIME_H_

#include <memory>

#include "src/core/mechanism.h"
#include "src/core/transaction.h"
#include "src/tm/tm_config.h"
#include "src/tm/tm_system.h"

namespace tcs {

class Runtime {
 public:
  explicit Runtime(const TmConfig& config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  TmSystem& sys() { return *sys_; }
  const TmConfig& config() const { return sys_->config(); }
  Backend backend() const { return sys_->backend(); }

  TxStats AggregateStats() const { return sys_->AggregateStats(); }
  void ResetStats() { sys_->ResetStats(); }

 private:
  std::unique_ptr<TmSystem> sys_;
};

}  // namespace tcs

#endif  // TCS_CORE_RUNTIME_H_
