#include "src/core/runtime.h"

namespace tcs {

Runtime::Runtime(const TmConfig& config) : sys_(TmSystem::Create(config)) {}

Runtime::~Runtime() = default;

}  // namespace tcs
