// The seven condition-synchronization mechanisms compared in the evaluation
// (§2.4): the Pthreads and TMCondVar baselines, the paper's three Deschedule-based
// mechanisms, the original STM-coupled Retry, and the abort-and-respin strawman.
#ifndef TCS_CORE_MECHANISM_H_
#define TCS_CORE_MECHANISM_H_

#include <array>

namespace tcs {

enum class Mechanism : int {
  kPthreads = 0,   // pthread mutex + condition variables (no TM)
  kTmCondVar = 1,  // transaction-safe condition variables (breaks atomicity)
  kWaitPred = 2,   // Algorithm 7: explicit predicate
  kAwait = 3,      // Algorithm 6: explicit address list
  kRetry = 4,      // Algorithm 5: dynamic read-set waitset
  kRetryOrig = 5,  // Algorithm 1: orec-intersection retry (STM only)
  kRestart = 6,    // abort and immediately re-execute
};

inline constexpr std::array<Mechanism, 7> kAllMechanisms = {
    Mechanism::kPthreads,  Mechanism::kTmCondVar, Mechanism::kWaitPred,
    Mechanism::kAwait,     Mechanism::kRetry,     Mechanism::kRetryOrig,
    Mechanism::kRestart,
};

constexpr const char* MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kPthreads:
      return "Pthreads";
    case Mechanism::kTmCondVar:
      return "TMCondVar";
    case Mechanism::kWaitPred:
      return "WaitPred";
    case Mechanism::kAwait:
      return "Await";
    case Mechanism::kRetry:
      return "Retry";
    case Mechanism::kRetryOrig:
      return "Retry-Orig";
    case Mechanism::kRestart:
      return "Restart";
  }
  return "unknown";
}

// True if the mechanism runs on top of transactions (everything but Pthreads).
constexpr bool MechanismUsesTm(Mechanism m) { return m != Mechanism::kPthreads; }

}  // namespace tcs

#endif  // TCS_CORE_MECHANISM_H_
