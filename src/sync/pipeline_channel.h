// Pipeline stage channel: a bounded queue of tokens flowing between pipeline
// stages, plus an end-of-stream protocol for multi-producer stages.
//
// This is the synchronization skeleton of PARSEC's pipeline benchmarks (dedup,
// ferret, x264's frame pipeline): stage k's workers pop from channel k, compute,
// and push to channel k+1; the last producer of a stage closes the downstream
// channel.
#ifndef TCS_SYNC_PIPELINE_CHANNEL_H_
#define TCS_SYNC_PIPELINE_CHANNEL_H_

#include <cstdint>
#include <mutex>
#include <optional>

#include "src/core/tvar.h"
#include "src/sync/work_queue.h"

namespace tcs {

class PipelineChannel {
 public:
  // `producers` is the number of upstream workers that must call ProducerDone()
  // before the channel closes.
  PipelineChannel(Runtime* rt, Mechanism mech, std::uint64_t capacity, int producers);

  PipelineChannel(const PipelineChannel&) = delete;
  PipelineChannel& operator=(const PipelineChannel&) = delete;

  void Push(std::uint64_t token) { queue_.Push(token); }
  std::optional<std::uint64_t> Pop() { return queue_.Pop(); }

  // Called once per upstream worker; the last call closes the channel.
  void ProducerDone();

 private:
  WorkQueue queue_;
  Runtime* rt_;
  const Mechanism mech_;
  // End-of-stream count. Transactional under the TM mechanisms; under the
  // pthreads reference (no Runtime) it is read/written under mu_, like
  // WorkQueue's pthreads path. Either way the sync/ adapters carry no raw
  // atomics (the memory-order reasoning lives in the TM and condsync layers;
  // tools/lint_tm_discipline.py enforces the boundary).
  std::mutex mu_;
  TVar<std::uint64_t> producers_left_;
};

}  // namespace tcs

#endif  // TCS_SYNC_PIPELINE_CHANNEL_H_
