#include "src/sync/phase_barrier.h"

#include "src/common/assert.h"

namespace tcs {

PhaseBarrier::PhaseBarrier(Runtime* rt, Mechanism mech, int parties)
    : rt_(rt), mech_(mech), parties_(static_cast<std::uint64_t>(parties)) {
  TCS_CHECK(parties > 0);
  TCS_CHECK_MSG(mech == Mechanism::kPthreads || rt != nullptr,
                "TM mechanisms need a Runtime");
  if (mech == Mechanism::kTmCondVar) {
    tm_cv_ = std::make_unique<TmCondVar>(rt->config().max_threads);
  }
}

bool PhaseBarrier::GenerationChangedPred(TmSystem& sys, const WaitArgs& args) {
  const auto* b = reinterpret_cast<const PhaseBarrier*>(args.v[0]);
  TmWord gen = sys.Read(b->generation_.word());
  return gen != args.v[1];
}

void PhaseBarrier::ArriveAndWait() {
  if (mech_ == Mechanism::kPthreads) {
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t my_gen = generation_.UnsafeRead();
    std::uint64_t a = arrived_.UnsafeRead() + 1;
    if (a == parties_) {
      arrived_.UnsafeWrite(0);
      generation_.UnsafeWrite(my_gen + 1);
      cv_.notify_all();
      return;
    }
    arrived_.UnsafeWrite(a);
    while (generation_.UnsafeRead() == my_gen) {
      cv_.wait(lk);
    }
    return;
  }

  // Transaction 1: publish the arrival; the last arrival opens the next phase.
  std::uint64_t my_gen = 0;
  bool last = Atomically(rt_->sys(), [&](Tx& tx) -> bool {
    my_gen = tx.Load(generation_);
    std::uint64_t a = tx.Load(arrived_) + 1;
    if (a == parties_) {
      tx.Store(arrived_, std::uint64_t{0});
      tx.Store(generation_, my_gen + 1);
      if (mech_ == Mechanism::kTmCondVar) {
        tx.CondBroadcast(*tm_cv_);
      }
      return true;
    }
    tx.Store(arrived_, a);
    return false;
  });
  if (last) {
    return;
  }

  // Transaction 2: a pure precondition — wait for the generation to advance.
  Atomically(rt_->sys(), [&](Tx& tx) {
    if (tx.Load(generation_) != my_gen) {
      return;
    }
    switch (mech_) {
      case Mechanism::kTmCondVar:
        tx.CondWait(*tm_cv_);
      case Mechanism::kWaitPred: {
        WaitArgs args;
        args.v[0] = reinterpret_cast<TmWord>(this);
        args.v[1] = my_gen;
        args.n = 2;
        tx.WaitPred(&PhaseBarrier::GenerationChangedPred, args);
      }
      case Mechanism::kAwait:
        tx.Await(generation_);
      case Mechanism::kRetry:
        tx.Retry();
      case Mechanism::kRetryOrig:
        tx.RetryOrig();
      default:
        tx.RestartNow();
    }
  });
}

}  // namespace tcs
