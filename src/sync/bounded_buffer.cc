#include "src/sync/bounded_buffer.h"

#include "src/common/assert.h"

namespace tcs {

BoundedBuffer::BoundedBuffer(Runtime* rt, Mechanism mech, std::uint64_t capacity)
    : rt_(rt), mech_(mech), cap_(capacity) {
  TCS_CHECK(capacity > 0);
  TCS_CHECK_MSG(mech == Mechanism::kPthreads || rt != nullptr,
                "TM mechanisms need a Runtime");
  buf_ = std::make_unique<TVar<std::uint64_t>[]>(capacity);
  if (mech == Mechanism::kTmCondVar) {
    cv_notempty_ = std::make_unique<TmCondVar>(rt->config().max_threads);
    cv_notfull_ = std::make_unique<TmCondVar>(rt->config().max_threads);
  }
}

void BoundedBuffer::Put(Tx& tx, std::uint64_t x) {
  std::uint64_t np = tx.Load(nextprod_);
  tx.Store(buf_[np], x);
  tx.Store(nextprod_, (np + 1) % cap_);
  tx.Store(count_, tx.Load(count_) + 1);
}

std::uint64_t BoundedBuffer::Get(Tx& tx) {
  std::uint64_t nc = tx.Load(nextcons_);
  std::uint64_t x = tx.Load(buf_[nc]);
  tx.Store(nextcons_, (nc + 1) % cap_);
  tx.Store(count_, tx.Load(count_) - 1);
  return x;
}

bool BoundedBuffer::NotFullPred(TmSystem& sys, const WaitArgs& args) {
  const auto* b = reinterpret_cast<const BoundedBuffer*>(args.v[0]);
  TmWord count = sys.Read(b->count_.word());
  return count < b->cap_;
}

bool BoundedBuffer::NotEmptyPred(TmSystem& sys, const WaitArgs& args) {
  const auto* b = reinterpret_cast<const BoundedBuffer*>(args.v[0]);
  TmWord count = sys.Read(b->count_.word());
  return count > 0;
}

void BoundedBuffer::UnsafePrefill(std::uint64_t n, std::uint64_t value_base) {
  TCS_CHECK(count_.UnsafeRead() == 0 && n <= cap_);
  for (std::uint64_t i = 0; i < n; ++i) {
    buf_[i].UnsafeWrite(value_base + i);
  }
  nextprod_.UnsafeWrite(n % cap_);
  nextcons_.UnsafeWrite(0);
  count_.UnsafeWrite(n);
}

void BoundedBuffer::ProducePthreads(std::uint64_t x) {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_.UnsafeRead() == cap_) {
    notfull_.wait(lk);
  }
  std::uint64_t np = nextprod_.UnsafeRead();
  buf_[np].UnsafeWrite(x);
  nextprod_.UnsafeWrite((np + 1) % cap_);
  count_.UnsafeWrite(count_.UnsafeRead() + 1);
  notempty_.notify_one();
}

std::uint64_t BoundedBuffer::ConsumePthreads() {
  std::unique_lock<std::mutex> lk(mu_);
  while (count_.UnsafeRead() == 0) {
    notempty_.wait(lk);
  }
  std::uint64_t nc = nextcons_.UnsafeRead();
  std::uint64_t x = buf_[nc].UnsafeRead();
  nextcons_.UnsafeWrite((nc + 1) % cap_);
  count_.UnsafeWrite(count_.UnsafeRead() - 1);
  notfull_.notify_one();
  return x;
}

bool BoundedBuffer::TryProducePthreadsFor(std::uint64_t x,
                                          std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!notfull_.wait_for(lk, timeout,
                         [&] { return count_.UnsafeRead() < cap_; })) {
    return false;
  }
  std::uint64_t np = nextprod_.UnsafeRead();
  buf_[np].UnsafeWrite(x);
  nextprod_.UnsafeWrite((np + 1) % cap_);
  count_.UnsafeWrite(count_.UnsafeRead() + 1);
  notempty_.notify_one();
  return true;
}

std::optional<std::uint64_t> BoundedBuffer::TryConsumePthreadsFor(
    std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!notempty_.wait_for(lk, timeout,
                          [&] { return count_.UnsafeRead() > 0; })) {
    return std::nullopt;
  }
  std::uint64_t nc = nextcons_.UnsafeRead();
  std::uint64_t x = buf_[nc].UnsafeRead();
  nextcons_.UnsafeWrite((nc + 1) % cap_);
  count_.UnsafeWrite(count_.UnsafeRead() - 1);
  notfull_.notify_one();
  return x;
}

WaitResult BoundedBuffer::WaitNotFullFor(Tx& tx, std::chrono::nanoseconds timeout) {
  switch (mech_) {
    case Mechanism::kWaitPred: {
      WaitArgs args;
      args.v[0] = reinterpret_cast<TmWord>(this);
      args.n = 1;
      return tx.WaitPredFor(&BoundedBuffer::NotFullPred, args, timeout);
    }
    case Mechanism::kAwait:
      return tx.AwaitFor(timeout, count_);
    default:
      // Retry-style mechanisms (and the baselines, which have no native timed
      // form) all bound their wait with RetryFor.
      return tx.RetryFor(timeout);
  }
}

WaitResult BoundedBuffer::WaitNotEmptyFor(Tx& tx, std::chrono::nanoseconds timeout) {
  switch (mech_) {
    case Mechanism::kWaitPred: {
      WaitArgs args;
      args.v[0] = reinterpret_cast<TmWord>(this);
      args.n = 1;
      return tx.WaitPredFor(&BoundedBuffer::NotEmptyPred, args, timeout);
    }
    case Mechanism::kAwait:
      return tx.AwaitFor(timeout, count_);
    default:
      return tx.RetryFor(timeout);
  }
}

bool BoundedBuffer::TryProduceFor(std::uint64_t x,
                                  std::chrono::nanoseconds timeout) {
  if (mech_ == Mechanism::kPthreads) {
    return TryProducePthreadsFor(x, timeout);
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> bool {
    if (Full(tx)) {
      if (WaitNotFullFor(tx, timeout) == WaitResult::kTimedOut) {
        return false;
      }
    }
    Put(tx, x);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notempty_);
    }
    return true;
  });
}

std::optional<std::uint64_t> BoundedBuffer::TryConsumeFor(
    std::chrono::nanoseconds timeout) {
  if (mech_ == Mechanism::kPthreads) {
    return TryConsumePthreadsFor(timeout);
  }
  return Atomically(rt_->sys(), [&](Tx& tx) -> std::optional<std::uint64_t> {
    if (Empty(tx)) {
      if (WaitNotEmptyFor(tx, timeout) == WaitResult::kTimedOut) {
        return std::nullopt;
      }
    }
    std::uint64_t x = Get(tx);
    if (mech_ == Mechanism::kTmCondVar) {
      tx.CondSignal(*cv_notfull_);
    }
    return x;
  });
}

// Figure 2.2: the Put front ends for each mechanism. The TM variants need no
// explicit retry loop — "the unrolling of a transaction when using our mechanisms
// provides an implicit back-edge" (§2.2.1).
void BoundedBuffer::Produce(std::uint64_t x) {
  switch (mech_) {
    case Mechanism::kPthreads:
      ProducePthreads(x);
      return;
    case Mechanism::kTmCondVar:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          tx.CondWait(*cv_notfull_);
        }
        Put(tx, x);
        tx.CondSignal(*cv_notempty_);
      });
      return;
    case Mechanism::kWaitPred:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&BoundedBuffer::NotFullPred, args);
        }
        Put(tx, x);
      });
      return;
    case Mechanism::kAwait:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          tx.Await(count_);
        }
        Put(tx, x);
      });
      return;
    case Mechanism::kRetry:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          tx.Retry();
        }
        Put(tx, x);
      });
      return;
    case Mechanism::kRetryOrig:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          tx.RetryOrig();
        }
        Put(tx, x);
      });
      return;
    case Mechanism::kRestart:
      Atomically(rt_->sys(), [&](Tx& tx) {
        if (Full(tx)) {
          tx.RestartNow();
        }
        Put(tx, x);
      });
      return;
  }
  TCS_CHECK_MSG(false, "unknown mechanism");
}

std::uint64_t BoundedBuffer::Consume() {
  switch (mech_) {
    case Mechanism::kPthreads:
      return ConsumePthreads();
    case Mechanism::kTmCondVar:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          tx.CondWait(*cv_notempty_);
        }
        std::uint64_t x = Get(tx);
        tx.CondSignal(*cv_notfull_);
        return x;
      });
    case Mechanism::kWaitPred:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          WaitArgs args;
          args.v[0] = reinterpret_cast<TmWord>(this);
          args.n = 1;
          tx.WaitPred(&BoundedBuffer::NotEmptyPred, args);
        }
        return Get(tx);
      });
    case Mechanism::kAwait:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          tx.Await(count_);
        }
        return Get(tx);
      });
    case Mechanism::kRetry:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          tx.Retry();
        }
        return Get(tx);
      });
    case Mechanism::kRetryOrig:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          tx.RetryOrig();
        }
        return Get(tx);
      });
    case Mechanism::kRestart:
      return Atomically(rt_->sys(), [&](Tx& tx) -> std::uint64_t {
        if (Empty(tx)) {
          tx.RestartNow();
        }
        return Get(tx);
      });
  }
  TCS_CHECK_MSG(false, "unknown mechanism");
  return 0;
}

}  // namespace tcs
